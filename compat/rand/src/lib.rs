//! Offline compatibility shim for the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! crates-io cache, so the workspace vendors the *small subset* of the
//! `rand` 0.10 API it actually uses: [`rngs::SmallRng`] (xoshiro256++, the
//! same algorithm real `rand` uses for `SmallRng` on 64-bit targets),
//! [`SeedableRng::seed_from_u64`] (SplitMix64 expansion, as upstream), and
//! [`RngExt::random`] for the primitive types drawn in this workspace.
//!
//! Determinism contract: all campaign seeds in EXPERIMENTS.md refer to
//! *this* generator. Swapping back to crates-io `rand` would change the
//! exact streams (seeding path differs) but not any statistical result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-length byte array for our RNGs).
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` via SplitMix64 expansion (matches upstream).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from an RNG.
///
/// Stand-in for upstream's `StandardUniform` distribution bound.
pub trait Standard: Sized {
    /// Draw one uniformly-distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Convenience extension: `rng.random::<T>()`.
pub trait RngExt: RngCore {
    /// Draw a uniformly-distributed value of type `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: seed expander (same constants as upstream).
    #[inline]
    pub(crate) fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng { s: std::array::from_fn(|_| splitmix64(&mut sm)) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelated() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let equal = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn f64_in_unit_interval_and_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn bool_roughly_balanced() {
        let mut rng = SmallRng::seed_from_u64(9);
        let ones = (0..100_000).filter(|_| rng.random::<bool>()).count();
        assert!((ones as f64 / 1e5 - 0.5).abs() < 0.01, "{ones}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        use super::RngCore;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
