//! Offline compatibility shim for `proptest`.
//!
//! The build environment has no crates-io access, so this vendors the
//! subset of the proptest API the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, [`any`],
//! range strategies, tuple strategies, [`collection::vec`],
//! [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports its inputs (every strategy
//!   value is `Debug`-printed by the assert message) but is not minimised;
//! * **deterministic cases** — case `i` of every test derives its RNG from
//!   a fixed seed and `i`, so failures reproduce without a persistence
//!   file.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies. Public so the [`proptest!`] expansion can
/// construct it; not part of the mimicked API.
#[derive(Debug)]
pub struct TestRng(pub SmallRng);

impl TestRng {
    /// RNG for case `case` of a deterministic run.
    pub fn for_case(case: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(
            0x7072_6f70_7465_7374u64 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy yielding a single fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_prim!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Marker returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`: uniform over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.0.random::<u64>() % span) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_range_incl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.0.random::<u64>() % span) as $t
            }
        }
    )*};
}
impl_range_incl_strategy_int!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.0.random::<f64>() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Uniform choice among equally-weighted boxed alternatives
/// (the engine behind [`prop_oneof!`]).
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T: std::fmt::Debug> OneOf<T> {
    /// Choose uniformly among `choices`.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        OneOf { choices }
    }
}

impl<T: std::fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.0.random::<u64>() % self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};
    use rand::RngExt;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` of values from `element`, length uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.0.random::<u64>() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` module path used inside `proptest!` bodies.
pub mod prop {
    pub use crate::collection;
}

/// Commonly imported names.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Define property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..u64::from(cfg.cases) {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn oneof_hits_every_choice() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::for_case(1);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires strategies to arguments.
        #[test]
        fn macro_smoke(x in any::<u64>(), v in prop::collection::vec(0u8..4, 1..5)) {
            prop_assert!(v.len() < 5 && !v.is_empty());
            prop_assert_eq!(x, x);
            prop_assert!(v.iter().all(|&b| b < 4));
        }
    }
}
