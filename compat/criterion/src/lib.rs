//! Offline compatibility shim for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `black_box`) with a simple adaptive timing loop:
//! each benchmark is warmed up briefly, then timed over enough iterations
//! to fill the measurement window, and the mean time per iteration is
//! printed. No statistics, plots, or saved baselines — the point is that
//! `cargo bench` runs and prints comparable numbers without network
//! access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier (stable-Rust best effort, as upstream's default).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver. One per `criterion_group!` function.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { warm_up: Duration::from_millis(300), measurement: Duration::from_millis(1200) }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { warm_up: self.warm_up, measurement: self.measurement, result: None };
        f(&mut b);
        report(name.as_ref(), &b);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_owned() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's timing loop is
    /// adaptive, so the nominal sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        let mut b = Bencher {
            warm_up: self.parent.warm_up,
            measurement: self.parent.measurement,
            result: None,
        };
        f(&mut b);
        report(&full, &b);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Time `routine`, adaptively choosing the iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let target = (self.measurement.as_nanos() / per_iter.as_nanos().max(1)) as u64;
        let iters = target.clamp(1, 1_000_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((iters, start.elapsed()));
    }
}

fn report(name: &str, b: &Bencher) {
    match b.result {
        Some((iters, total)) => {
            let ns = total.as_nanos() as f64 / iters as f64;
            let (val, unit) = if ns < 1e3 {
                (ns, "ns")
            } else if ns < 1e6 {
                (ns / 1e3, "µs")
            } else {
                (ns / 1e6, "ms")
            };
            println!("bench {name:<40} {val:>10.2} {unit}/iter  ({iters} iters)");
        }
        None => println!("bench {name:<40} (no measurement — iter() not called)"),
    }
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_runs() {
        let mut c =
            Criterion { warm_up: Duration::from_millis(5), measurement: Duration::from_millis(10) };
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| black_box(3 * 7)));
        g.finish();
    }
}
