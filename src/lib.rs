//! # glitchmask
//!
//! Facade crate for the `glitchmask` workspace — a from-scratch Rust
//! reproduction of *"Low-Cost First-Order Secure Boolean Masking in Glitchy
//! Hardware"* (DATE 2023).
//!
//! The heavy lifting lives in the member crates, re-exported here:
//!
//! * [`netlist`] — gate-level IR, area model, static timing analysis;
//! * [`sim`] — event-driven transport-delay simulator with glitch-accurate
//!   waveforms, power model, noise, and coupling;
//! * [`leakage`] — streaming TVLA (Welch t-tests of orders 1–3), SNR, and
//!   leak detection;
//! * [`masking`] — the paper's contribution: `secAND2`, `secAND2-FF`,
//!   `secAND2-PD`, refresh gadgets, baselines (Trichina/DOM/TI), and
//!   composition rules;
//! * [`des`] — reference DES/TDES and the two first-order masked DES cores.
//!
//! See `examples/quickstart.rs` for a guided tour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gm_core as masking;
pub use gm_des as des;
pub use gm_leakage as leakage;
pub use gm_netlist as netlist;
pub use gm_sim as sim;
