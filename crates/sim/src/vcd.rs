//! VCD (Value Change Dump) waveform export.
//!
//! A [`VcdSink`] records every applied transition during simulation and
//! renders an IEEE-1364 VCD file viewable in GTKWave & co. — the
//! debugging loop any RTL engineer expects when chasing a glitch.
//! Symbols are precomputed per watched net, and [`VcdSink::write_to`]
//! streams through a [`std::io::BufWriter`] so large dumps never build
//! per-transition strings.

use crate::engine::PowerSink;
use gm_netlist::{NetId, Netlist};
use std::io;

/// Records transitions for a chosen set of nets and renders VCD.
#[derive(Debug, Clone)]
pub struct VcdSink {
    /// (net, symbol index into watched) lookup.
    watch_index: Vec<Option<u32>>,
    /// Watched nets with their display name and precomputed VCD symbol.
    watched: Vec<(NetId, String, String)>,
    initial: Vec<bool>,
    events: Vec<(u64, u32, bool)>,
}

impl VcdSink {
    /// Watch the given nets; names come from the netlist (or `n<id>`).
    /// `initial_values` are the pre-simulation values (e.g. after reset).
    pub fn new(netlist: &Netlist, nets: &[NetId], initial_values: &[bool]) -> Self {
        assert_eq!(nets.len(), initial_values.len(), "one initial value per net");
        let mut watch_index = vec![None; netlist.num_nets()];
        let watched = nets
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                watch_index[id.index()] = Some(i as u32);
                let name =
                    netlist.net_name(id).map(str::to_owned).unwrap_or_else(|| format!("n{}", id.0));
                (id, name, symbol(i))
            })
            .collect();
        VcdSink { watch_index, watched, initial: initial_values.to_vec(), events: Vec::new() }
    }

    /// Watch every net of the design (initial values all zero).
    pub fn all_nets(netlist: &Netlist) -> Self {
        let nets: Vec<NetId> = (0..netlist.num_nets() as u32).map(NetId).collect();
        let init = vec![false; nets.len()];
        Self::new(netlist, &nets, &init)
    }

    /// Number of recorded transitions.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Drop recorded transitions (between traces; the watch set stays).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Stream the VCD file contents into `writer` (buffered internally).
    pub fn write_to<W: io::Write>(
        &self,
        writer: W,
        design_name: &str,
        timescale: &str,
    ) -> io::Result<()> {
        use io::Write as _;
        let mut out = io::BufWriter::new(writer);
        writeln!(out, "$date synthetic $end")?;
        writeln!(out, "$version gm-sim $end")?;
        writeln!(out, "$timescale {timescale} $end")?;
        writeln!(out, "$scope module {design_name} $end")?;
        for (_, name, sym) in &self.watched {
            writeln!(out, "$var wire 1 {sym} {name} $end")?;
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        writeln!(out, "$dumpvars")?;
        for (i, &v) in self.initial.iter().enumerate() {
            writeln!(out, "{}{}", u8::from(v), self.watched[i].2)?;
        }
        writeln!(out, "$end")?;
        let mut last_time = u64::MAX;
        for &(t, sym, v) in &self.events {
            if t != last_time {
                writeln!(out, "#{t}")?;
                last_time = t;
            }
            writeln!(out, "{}{}", u8::from(v), self.watched[sym as usize].2)?;
        }
        out.flush()
    }

    /// Render the VCD file contents as a `String`.
    pub fn render(&self, design_name: &str, timescale: &str) -> String {
        let mut buf = Vec::new();
        self.write_to(&mut buf, design_name, timescale).expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("VCD output is ASCII")
    }
}

/// VCD short identifiers: printable ASCII 33..=126, base-94.
fn symbol(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

impl PowerSink for VcdSink {
    fn transition(&mut self, time_ps: u64, net: NetId, new_value: bool, _weight: f64) {
        if let Some(sym) = self.watch_index[net.index()] {
            self.events.push((time_ps, sym, new_value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayModel, Simulator};
    use gm_netlist::Netlist;

    #[test]
    fn symbols_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..5_000 {
            let s = symbol(i);
            assert!(s.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(s));
        }
    }

    #[test]
    fn vcd_of_a_glitchy_run() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let p = n.and2(a, b);
        let q0 = n.or2(a, b);
        let q1 = n.buf(q0);
        let q = n.buf(q1);
        let y = n.xor2(p, q);
        n.name_net(y, "y");
        n.output("y", y);
        n.validate().unwrap();

        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        let mut vcd = VcdSink::all_nets(&n);
        sim.schedule(a, 1_000, true);
        sim.schedule(b, 1_000, true);
        sim.run_until(50_000, &mut vcd);
        assert!(vcd.num_events() >= 5);

        let text = vcd.render("t", "1ps");
        assert!(text.starts_with("$date"));
        assert!(text.contains("$var wire 1"));
        assert!(text.contains(" y $end"));
        assert!(text.contains("#1000"));
        // The glitch on y appears as both a rise and a fall.
        let y_sym = {
            // y is the last watched net by id order; find its symbol line.
            let line = text.lines().find(|l| l.ends_with(" y $end")).expect("y declared");
            line.split_whitespace().nth(3).unwrap().to_owned()
        };
        let rises = text.lines().filter(|l| *l == format!("1{y_sym}")).count();
        let falls = text.lines().filter(|l| *l == format!("0{y_sym}")).count();
        assert!(rises >= 1 && falls >= 1, "glitch pulse visible in VCD");
    }

    #[test]
    fn watch_subset_only() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let x = n.inv(a);
        n.output("x", x);
        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        let mut vcd = VcdSink::new(&n, &[a], &[false]);
        sim.schedule(a, 100, true);
        sim.run_until(10_000, &mut vcd);
        assert_eq!(vcd.num_events(), 1, "only the watched net recorded");

        // clear() drops events but keeps the watch set.
        vcd.clear();
        assert_eq!(vcd.num_events(), 0);
        sim.schedule(a, 20_000, false);
        sim.run_until(30_000, &mut vcd);
        assert_eq!(vcd.num_events(), 1);
    }

    #[test]
    fn write_to_matches_render() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let x = n.inv(a);
        n.output("x", x);
        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        let mut vcd = VcdSink::all_nets(&n);
        sim.schedule(a, 100, true);
        sim.run_until(10_000, &mut vcd);
        let mut buf = Vec::new();
        vcd.write_to(&mut buf, "t", "1ps").unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), vcd.render("t", "1ps"));
    }
}
