//! # gm-sim
//!
//! Event-driven **transport-delay** simulation of `gm-netlist` circuits,
//! faithful enough to reproduce the glitch phenomena the paper builds on.
//!
//! This crate is the software stand-in for the paper's physical platform
//! (Spartan-6 FPGA + oscilloscope):
//!
//! * [`delay`] — per-gate-instance delays: nominal cell delay × process
//!   variation, plus per-event jitter. Unequal arrival times are the *only*
//!   source of glitches, exactly as in hardware.
//! * [`engine`] — the event queue. Every input edge re-evaluates the fan-out
//!   cone; a gate whose inputs settle at different moments emits the full
//!   glitch train, not just the final value.
//! * [`power`] — capacitance-weighted toggle counting into time bins: the
//!   standard dynamic-power proxy, playing the role of the shunt-resistor
//!   measurement on the SAKURA-G board.
//! * [`sched`] — the compiled-schedule backend: levelizes the event
//!   cascade once per trace-set and sweeps it for 64 traces at a time,
//!   falling back to the dynamic engine for the rare jitter-divergent
//!   lanes.
//! * [`noise`] — amplifier gain, Gaussian noise, and ADC quantisation, so
//!   traces look like the "raw oscilloscope ADC output" of Fig. 13/16.
//! * [`coupling`] — a Miller-capacitance model of crosstalk between
//!   designated (long) nets, the physical effect the paper blames for the
//!   residual first-order leakage of the secAND2-PD core (§VII-C).
//! * [`clocked`] — a multi-cycle harness that drives flip-flops, applies
//!   per-cycle stimuli with configurable intra-cycle arrival offsets, and
//!   produces one power trace per run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitclock;
pub mod clocked;
pub mod coupling;
pub mod delay;
pub mod engine;
pub mod noise;
pub mod power;
pub mod sched;
pub mod vcd;
pub mod waveform;
pub mod wheel;

pub use bitclock::{BitClockedSim, LaneActivity};
pub use clocked::{ClockedCore, ClockedSim};
pub use coupling::{CouplingModel, CouplingSink};
pub use delay::{set_wide_jitter, wide_jitter_enabled, DelayModel, JitterTile, TILE, WIDE};
pub use engine::{PowerSink, SimCore, SimGraph, SimStats, Simulator};
pub use noise::MeasurementModel;
pub use power::{
    CountingSink, LaneBinTrace, LaneCounting, LaneEnergy, LaneSink, LaneTrace, NullSink, PackStats,
    PowerTrace,
};
pub use sched::{
    repair_batch_enabled, set_repair_batch, CompiledSchedule, RepairQueue, RepairTicket,
    SchedRunner, SchedStats, LANES,
};
pub use vcd::VcdSink;
pub use waveform::WaveformRecorder;
pub use wheel::{TimingWheel, WheelStats};
