//! Switching-activity power model.
//!
//! Dynamic power of a CMOS circuit is dominated by `α · C · V² · f`; with
//! voltage and frequency fixed, the per-sample power is proportional to the
//! capacitance-weighted toggle count. [`PowerTrace`] bins weighted toggles
//! into fixed-width time windows, which corresponds to the oscilloscope
//! samples of the paper's measurement setup.

use crate::engine::PowerSink;
use gm_netlist::NetId;

/// Time-binned, capacitance-weighted toggle counts — one power trace.
#[derive(Debug, Clone)]
pub struct PowerTrace {
    bin_ps: u64,
    start_ps: u64,
    samples: Vec<f64>,
}

impl PowerTrace {
    /// A trace with `num_bins` samples of `bin_ps` width starting at
    /// `start_ps`. Transitions outside the window are dropped.
    pub fn new(start_ps: u64, bin_ps: u64, num_bins: usize) -> Self {
        assert!(bin_ps > 0, "bin width must be positive");
        PowerTrace { bin_ps, start_ps, samples: vec![0.0; num_bins] }
    }

    /// Bin width in ps.
    pub fn bin_ps(&self) -> u64 {
        self.bin_ps
    }

    /// The accumulated samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Consume the trace, returning its samples.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Reset all samples to zero for reuse (avoids reallocation per trace).
    pub fn clear(&mut self) {
        self.samples.iter_mut().for_each(|s| *s = 0.0);
    }

    /// Add `weight` at absolute time `time_ps` (no-op outside the window).
    #[inline]
    pub fn add(&mut self, time_ps: u64, weight: f64) {
        if time_ps < self.start_ps {
            return;
        }
        let idx = ((time_ps - self.start_ps) / self.bin_ps) as usize;
        if let Some(s) = self.samples.get_mut(idx) {
            *s += weight;
        }
    }
}

impl PowerSink for PowerTrace {
    fn transition(&mut self, time_ps: u64, _net: NetId, _new_value: bool, weight: f64) {
        self.add(time_ps, weight);
    }
}

/// Counts raw transitions and total weighted activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    /// Number of applied transitions.
    pub count: u64,
    /// Sum of transition weights.
    pub weighted: f64,
}

impl PowerSink for CountingSink {
    fn transition(&mut self, _time_ps: u64, _net: NetId, _new_value: bool, weight: f64) {
        self.count += 1;
        self.weighted += weight;
    }
}

/// Discards all activity (functional-only simulation).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

/// Counts transitions per net — the instrument behind per-wire
/// glitch-extended probing analysis.
#[derive(Debug, Clone)]
pub struct NetToggleSink {
    /// Toggle count per net index.
    pub counts: Vec<u32>,
}

impl NetToggleSink {
    /// A sink for a netlist with `num_nets` nets.
    pub fn new(num_nets: usize) -> Self {
        NetToggleSink { counts: vec![0; num_nets] }
    }

    /// Zero all counts for reuse.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }
}

impl PowerSink for NetToggleSink {
    fn transition(&mut self, _time_ps: u64, net: NetId, _new_value: bool, _weight: f64) {
        self.counts[net.index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_accumulate() {
        let mut t = PowerTrace::new(1_000, 500, 4);
        t.add(999, 1.0); // before window
        t.add(1_000, 1.0); // bin 0
        t.add(1_499, 2.0); // bin 0
        t.add(1_500, 3.0); // bin 1
        t.add(2_999, 4.0); // bin 3
        t.add(3_000, 5.0); // past the end
        assert_eq!(t.samples(), &[3.0, 3.0, 0.0, 4.0]);
    }

    #[test]
    fn clear_resets() {
        let mut t = PowerTrace::new(0, 10, 2);
        t.add(5, 1.0);
        t.clear();
        assert_eq!(t.samples(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_rejected() {
        let _ = PowerTrace::new(0, 0, 1);
    }
}
