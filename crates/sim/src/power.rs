//! Switching-activity power model.
//!
//! Dynamic power of a CMOS circuit is dominated by `α · C · V² · f`; with
//! voltage and frequency fixed, the per-sample power is proportional to the
//! capacitance-weighted toggle count. [`PowerTrace`] bins weighted toggles
//! into fixed-width time windows, which corresponds to the oscilloscope
//! samples of the paper's measurement setup.

use crate::engine::PowerSink;
use gm_netlist::NetId;
use gm_obs::{Counter, Report, Stopwatch};

/// Time-binned, capacitance-weighted toggle counts — one power trace.
#[derive(Debug, Clone)]
pub struct PowerTrace {
    bin_ps: u64,
    start_ps: u64,
    samples: Vec<f64>,
}

impl PowerTrace {
    /// A trace with `num_bins` samples of `bin_ps` width starting at
    /// `start_ps`. Transitions outside the window are dropped.
    pub fn new(start_ps: u64, bin_ps: u64, num_bins: usize) -> Self {
        assert!(bin_ps > 0, "bin width must be positive");
        PowerTrace { bin_ps, start_ps, samples: vec![0.0; num_bins] }
    }

    /// Bin width in ps.
    pub fn bin_ps(&self) -> u64 {
        self.bin_ps
    }

    /// The accumulated samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Consume the trace, returning its samples.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Reset all samples to zero for reuse (avoids reallocation per trace).
    pub fn clear(&mut self) {
        self.samples.iter_mut().for_each(|s| *s = 0.0);
    }

    /// Add `weight` at absolute time `time_ps` (no-op outside the window).
    #[inline]
    pub fn add(&mut self, time_ps: u64, weight: f64) {
        if time_ps < self.start_ps {
            return;
        }
        let idx = ((time_ps - self.start_ps) / self.bin_ps) as usize;
        if let Some(s) = self.samples.get_mut(idx) {
            *s += weight;
        }
    }
}

impl PowerSink for PowerTrace {
    fn transition(&mut self, time_ps: u64, _net: NetId, _new_value: bool, weight: f64) {
        self.add(time_ps, weight);
    }
}

/// Counts raw transitions and total weighted activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    /// Number of applied transitions.
    pub count: u64,
    /// Sum of transition weights.
    pub weighted: f64,
}

impl PowerSink for CountingSink {
    fn transition(&mut self, _time_ps: u64, _net: NetId, _new_value: bool, weight: f64) {
        self.count += 1;
        self.weighted += weight;
    }
}

/// Discards all activity (functional-only simulation).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

/// Counts transitions per net — the instrument behind per-wire
/// glitch-extended probing analysis.
#[derive(Debug, Clone)]
pub struct NetToggleSink {
    /// Toggle count per net index.
    pub counts: Vec<u32>,
}

impl NetToggleSink {
    /// A sink for a netlist with `num_nets` nets.
    pub fn new(num_nets: usize) -> Self {
        NetToggleSink { counts: vec![0; num_nets] }
    }

    /// Zero all counts for reuse.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }
}

impl PowerSink for NetToggleSink {
    fn transition(&mut self, _time_ps: u64, net: NetId, _new_value: bool, _weight: f64) {
        self.counts[net.index()] += 1;
    }
}

/// Lane-parallel counterpart of [`PowerSink`] for the compiled-schedule
/// backend ([`crate::sched`]): one call delivers the same net transition
/// for up to 64 traces at once.
///
/// `applied` selects the lanes in which the transition actually fired;
/// `times[lane]` is its per-lane absolute time (jitter makes these
/// differ) and bit `lane` of `values` its new value. Implementations
/// must ignore lanes outside `applied`, whose entries are unspecified.
pub trait LaneSink {
    /// Deliver one net transition across lanes.
    fn transitions(&mut self, net: NetId, weight: f64, applied: u64, values: u64, times: &[u64]);
}

/// Per-lane [`CountingSink`]: raw and weighted toggle totals per trace.
#[derive(Debug, Clone)]
pub struct LaneCounting {
    /// Applied transitions per lane.
    pub count: [u64; 64],
    /// Weighted activity per lane.
    pub weighted: [f64; 64],
}

impl Default for LaneCounting {
    fn default() -> Self {
        LaneCounting { count: [0; 64], weighted: [0.0; 64] }
    }
}

impl LaneCounting {
    /// Zero all lanes for reuse.
    pub fn clear(&mut self) {
        self.count = [0; 64];
        self.weighted = [0.0; 64];
    }
}

impl LaneSink for LaneCounting {
    #[inline]
    fn transitions(
        &mut self,
        _net: NetId,
        weight: f64,
        applied: u64,
        _values: u64,
        _times: &[u64],
    ) {
        // Branchless across all 64 lanes: autovectorizes, and the masked
        // lanes contribute exact zeros.
        for l in 0..64 {
            let bit = applied >> l & 1;
            self.count[l] += bit;
            self.weighted[l] += weight * bit as f64;
        }
    }
}

/// Per-lane [`PowerTrace`]: `num_bins` time bins per lane, stored
/// lane-major (`samples[bin * 64 + lane]`) so one transition's scatter
/// across lanes stays within a few cache lines.
#[derive(Debug, Clone)]
pub struct LaneTrace {
    bin_ps: u64,
    start_ps: u64,
    num_bins: usize,
    samples: Vec<f64>,
}

impl LaneTrace {
    /// A 64-lane trace block with `num_bins` bins of `bin_ps` width
    /// starting at `start_ps`; transitions outside the window are dropped
    /// (same convention as [`PowerTrace`]).
    pub fn new(start_ps: u64, bin_ps: u64, num_bins: usize) -> Self {
        assert!(bin_ps > 0, "bin width must be positive");
        LaneTrace { bin_ps, start_ps, num_bins, samples: vec![0.0; num_bins * 64] }
    }

    /// Zero all bins for reuse.
    pub fn clear(&mut self) {
        self.samples.iter_mut().for_each(|s| *s = 0.0);
    }

    /// Copy one lane's binned samples into `out` (must hold `num_bins`).
    pub fn lane_into(&self, lane: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.num_bins);
        for (b, o) in out.iter_mut().enumerate() {
            *o = self.samples[b * 64 + lane];
        }
    }
}

impl LaneSink for LaneTrace {
    #[inline]
    fn transitions(&mut self, _net: NetId, weight: f64, applied: u64, _values: u64, times: &[u64]) {
        let mut m = applied;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            let t = times[l];
            if t >= self.start_ps {
                let idx = ((t - self.start_ps) / self.bin_ps) as usize;
                if idx < self.num_bins {
                    self.samples[idx * 64 + l] += weight;
                }
            }
        }
    }
}

/// Bit-planes per counter: per-pass toggle counts per (class, bin) stay
/// far below 2^16 (the compiled-schedule node cap is 2^14), and the
/// ripple-carry add touches only as many planes as the count's carry
/// chain reaches (~2 on average), so extra headroom costs nothing hot.
const PLANES: usize = 16;

/// Class tag of zero-weight nets: their transitions contribute exact
/// zeros either way, so the word-level sinks skip them outright.
const NO_CLASS: u16 = u16::MAX;

/// Dedup a per-net weight table into (class-of-net, class-weight)
/// form: the word-level sinks accumulate exact per-class toggle
/// *counts* and multiply by the class weight once per pass, instead of
/// scattering `weight × bit` per lane per transition.
fn weight_classes(weights: &[f64]) -> (Vec<u16>, Vec<f64>) {
    let mut class_w: Vec<f64> = Vec::new();
    let class_of = weights
        .iter()
        .map(|&w| {
            if w == 0.0 {
                return NO_CLASS;
            }
            match class_w.iter().position(|&c| c.to_bits() == w.to_bits()) {
                Some(i) => i as u16,
                None => {
                    class_w.push(w);
                    assert!(class_w.len() < NO_CLASS as usize, "weight table too diverse");
                    (class_w.len() - 1) as u16
                }
            }
        })
        .collect();
    (class_of, class_w)
}

/// Add a lane mask into a bit-plane counter (one `u64` per count bit):
/// a ripple-carry half-adder chain over as many planes as the carry
/// reaches. Indexing is bounds-checked, so a count overflowing the
/// plane budget panics instead of corrupting a neighbour counter.
#[inline]
fn ripple_add(planes: &mut [u64], mut mask: u64) {
    let mut p = 0usize;
    while mask != 0 {
        let x = planes[p];
        planes[p] = x ^ mask;
        mask &= x;
        p += 1;
    }
}

/// Counters of the word-level packing sinks ([`LaneEnergy`],
/// [`LaneBinTrace`]) — the `sim.pack.*` namespace. Zero-sized under
/// `obs-off`, like every gm-obs primitive.
#[derive(Debug, Default)]
pub struct PackStats {
    /// Pass conversions (bit-plane counts → f64) performed.
    pub conversions: Counter,
    /// Transitions accumulated word-level (one ripple add each).
    pub word_transitions: Counter,
    /// Transitions that fell off the word-level fast path (mixed time
    /// bins across lanes) and took the per-lane f64 spill.
    pub spill_transitions: Counter,
    /// Time inside the once-per-pass f64 conversion.
    pub ns: Stopwatch,
}

impl PackStats {
    /// Export under `<prefix>.*` (canonically `sim.pack.*`).
    pub fn report_into(&self, prefix: &str, r: &mut Report) {
        r.set_nonzero(&format!("{prefix}.conversions"), self.conversions.get());
        r.set_nonzero(&format!("{prefix}.word_transitions"), self.word_transitions.get());
        r.set_nonzero(&format!("{prefix}.spill_transitions"), self.spill_transitions.get());
        r.set_nonzero(&format!("{prefix}.ns"), self.ns.ns());
    }
}

/// Word-level replacement for [`LaneCounting`]'s weighted total: one
/// bit-plane toggle counter per weight class, fed by a ripple-carry add
/// of the whole 64-lane mask (~2 word ops per transition instead of a
/// 64-iteration scalar loop), converted to per-lane f64 energies once
/// per pass. Counts are exact integers, so the conversion's few-term
/// `Σ weight_class × count` dot product reproduces the scalar
/// accumulation to well inside the campaign's 1e-9 agreement band.
#[derive(Debug)]
pub struct LaneEnergy {
    class_of: Vec<u16>,
    class_w: Vec<f64>,
    /// `[class][plane]` bit-plane counters, flattened.
    planes: Vec<u64>,
    /// Packing counters (`sim.pack.*`).
    pub stats: PackStats,
}

impl LaneEnergy {
    /// A sink for the given per-net weight table — the **same** table
    /// later passed to `run_pass` (the sink classifies by net and
    /// ignores the per-call weight except to cross-check it in debug
    /// builds).
    pub fn new(weights: &[f64]) -> Self {
        let (class_of, class_w) = weight_classes(weights);
        let planes = vec![0u64; class_w.len() * PLANES];
        LaneEnergy { class_of, class_w, planes, stats: PackStats::default() }
    }

    /// Zero all counters for the next pass.
    pub fn clear(&mut self) {
        self.planes.iter_mut().for_each(|p| *p = 0);
    }

    /// Convert the pass's counts into per-lane energies — the single
    /// per-pass f64 reduction that replaces the per-transition scatter.
    pub fn energies_into(&mut self, out: &mut [f64; 64]) {
        let _t = self.stats.ns.span();
        let _pack_span = gm_obs::trace::span("sched.pack");
        out.fill(0.0);
        for (c, &w) in self.class_w.iter().enumerate() {
            let planes = &self.planes[c * PLANES..(c + 1) * PLANES];
            // Per set plane bit, add `w × 2^p` (exact: a power-of-two
            // scale). The work tracks the population of the counters,
            // not classes × lanes × planes, and zero planes skip at the
            // word level.
            for (p, &word) in planes.iter().enumerate() {
                let mut b = word;
                if b == 0 {
                    continue;
                }
                let wp = w * (1u64 << p) as f64;
                while b != 0 {
                    let l = b.trailing_zeros() as usize;
                    b &= b - 1;
                    out[l] += wp;
                }
            }
        }
        self.stats.conversions.inc();
    }
}

impl LaneSink for LaneEnergy {
    #[inline]
    fn transitions(&mut self, net: NetId, weight: f64, applied: u64, _values: u64, _times: &[u64]) {
        let c = self.class_of[net.index()];
        if c == NO_CLASS {
            return;
        }
        debug_assert_eq!(weight.to_bits(), self.class_w[c as usize].to_bits());
        let base = c as usize * PLANES;
        ripple_add(&mut self.planes[base..base + PLANES], applied);
        self.stats.word_transitions.inc();
    }
}

/// Word-level replacement for [`LaneTrace`]: bit-plane toggle counters
/// per (weight class × time bin), with a per-lane f64 spill lane for
/// the rare transition whose jittered per-lane times straddle a bin
/// boundary. [`LaneBinTrace::finish_pass`] converts counts (plus the
/// spill) into the lane-major sample block once per pass;
/// [`LaneBinTrace::lane_into`] then reads it out per lane exactly like
/// [`LaneTrace`].
#[derive(Debug)]
pub struct LaneBinTrace {
    bin_ps: u64,
    start_ps: u64,
    num_bins: usize,
    class_of: Vec<u16>,
    class_w: Vec<f64>,
    /// `[class][bin][plane]` bit-plane counters, flattened.
    planes: Vec<u64>,
    /// Mixed-bin spill, lane-major like `samples`.
    spill: Vec<f64>,
    /// Converted samples (`samples[bin * 64 + lane]`), valid after
    /// [`LaneBinTrace::finish_pass`].
    samples: Vec<f64>,
    /// Packing counters (`sim.pack.*`).
    pub stats: PackStats,
}

impl LaneBinTrace {
    /// A 64-lane binned sink over the given weight table (same window
    /// convention as [`PowerTrace`]: transitions outside are dropped).
    pub fn new(start_ps: u64, bin_ps: u64, num_bins: usize, weights: &[f64]) -> Self {
        assert!(bin_ps > 0, "bin width must be positive");
        let (class_of, class_w) = weight_classes(weights);
        LaneBinTrace {
            bin_ps,
            start_ps,
            num_bins,
            planes: vec![0u64; class_w.len() * num_bins * PLANES],
            spill: vec![0.0; num_bins * 64],
            samples: vec![0.0; num_bins * 64],
            class_of,
            class_w,
            stats: PackStats::default(),
        }
    }

    /// Zero all counters and the spill for the next pass.
    pub fn clear(&mut self) {
        self.planes.iter_mut().for_each(|p| *p = 0);
        self.spill.iter_mut().for_each(|s| *s = 0.0);
    }

    /// Bin index of an absolute time, or `None` outside the window.
    #[inline]
    fn bin_of(&self, t: u64) -> Option<usize> {
        if t < self.start_ps {
            return None;
        }
        let idx = ((t - self.start_ps) / self.bin_ps) as usize;
        (idx < self.num_bins).then_some(idx)
    }

    /// Convert the pass's counts + spill into the lane-major sample
    /// block — the single per-pass f64 reduction.
    pub fn finish_pass(&mut self) {
        let _t = self.stats.ns.span();
        let _pack_span = gm_obs::trace::span("sched.pack");
        self.samples.copy_from_slice(&self.spill);
        for (c, &w) in self.class_w.iter().enumerate() {
            for bin in 0..self.num_bins {
                let base = (c * self.num_bins + bin) * PLANES;
                let planes = &self.planes[base..base + PLANES];
                let row = &mut self.samples[bin * 64..(bin + 1) * 64];
                // Per set plane bit, add `w × 2^p` (exact power-of-two
                // scale); zero planes skip at the word level.
                for (p, &word) in planes.iter().enumerate() {
                    let mut b = word;
                    if b == 0 {
                        continue;
                    }
                    let wp = w * (1u64 << p) as f64;
                    while b != 0 {
                        let l = b.trailing_zeros() as usize;
                        b &= b - 1;
                        row[l] += wp;
                    }
                }
            }
        }
        self.stats.conversions.inc();
    }

    /// Copy one lane's binned samples into `out` (must hold `num_bins`);
    /// call [`LaneBinTrace::finish_pass`] first.
    pub fn lane_into(&self, lane: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.num_bins);
        for (b, o) in out.iter_mut().enumerate() {
            *o = self.samples[b * 64 + lane];
        }
    }
}

impl LaneSink for LaneBinTrace {
    #[inline]
    fn transitions(&mut self, net: NetId, weight: f64, applied: u64, _values: u64, times: &[u64]) {
        let c = self.class_of[net.index()];
        if c == NO_CLASS || applied == 0 {
            return;
        }
        debug_assert_eq!(weight.to_bits(), self.class_w[c as usize].to_bits());
        // Fast path: every applied lane lands in one bin (jitter is tiny
        // against campaign bin widths, so this is the overwhelmingly
        // common case) — one ripple add for the whole mask.
        let first = applied.trailing_zeros() as usize;
        let b0 = self.bin_of(times[first]);
        let mut same = true;
        let mut m = applied & (applied - 1);
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.bin_of(times[l]) != b0 {
                same = false;
                break;
            }
        }
        if same {
            if let Some(bin) = b0 {
                let base = (c as usize * self.num_bins + bin) * PLANES;
                ripple_add(&mut self.planes[base..base + PLANES], applied);
                self.stats.word_transitions.inc();
            }
            // All lanes outside the window: dropped, like `PowerTrace`.
            return;
        }
        // Mixed bins: per-lane spill, same arithmetic as `LaneTrace`.
        let mut m = applied;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            if let Some(bin) = self.bin_of(times[l]) {
                self.spill[bin * 64 + l] += weight;
            }
        }
        self.stats.spill_transitions.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_accumulate() {
        let mut t = PowerTrace::new(1_000, 500, 4);
        t.add(999, 1.0); // before window
        t.add(1_000, 1.0); // bin 0
        t.add(1_499, 2.0); // bin 0
        t.add(1_500, 3.0); // bin 1
        t.add(2_999, 4.0); // bin 3
        t.add(3_000, 5.0); // past the end
        assert_eq!(t.samples(), &[3.0, 3.0, 0.0, 4.0]);
    }

    #[test]
    fn clear_resets() {
        let mut t = PowerTrace::new(0, 10, 2);
        t.add(5, 1.0);
        t.clear();
        assert_eq!(t.samples(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_rejected() {
        let _ = PowerTrace::new(0, 0, 1);
    }

    #[test]
    fn lane_counting_masks_lanes() {
        let mut s = LaneCounting::default();
        let times = [0u64; 64];
        s.transitions(NetId(0), 2.5, 0b101, 0b001, &times);
        s.transitions(NetId(1), 1.0, 0b100, 0b100, &times);
        assert_eq!(s.count[0], 1);
        assert_eq!(s.count[1], 0);
        assert_eq!(s.count[2], 2);
        assert_eq!(s.weighted[0], 2.5);
        assert_eq!(s.weighted[2], 3.5);
    }

    #[test]
    fn lane_energy_matches_lane_counting() {
        // Nets 0..3 with two distinct weights plus a zero-weight net.
        let weights = [2.5f64, 1.0, 2.5, 0.0];
        let mut word = LaneEnergy::new(&weights);
        let mut scalar = LaneCounting::default();
        let times = [0u64; 64];
        let cases = [(0u32, 0b1011u64), (1, !0u64), (2, 0b1101), (3, !0u64), (0, 1u64 << 63)];
        for &(net, mask) in &cases {
            word.transitions(NetId(net), weights[net as usize], mask, 0, &times);
            scalar.transitions(NetId(net), weights[net as usize], mask, 0, &times);
        }
        let mut e = [0.0f64; 64];
        word.energies_into(&mut e);
        for (l, &el) in e.iter().enumerate() {
            assert!(
                (el - scalar.weighted[l]).abs() <= 1e-12,
                "lane {l}: word {} vs scalar {}",
                el,
                scalar.weighted[l]
            );
        }
        // Clear really clears.
        word.clear();
        word.energies_into(&mut e);
        assert_eq!(e, [0.0; 64]);
    }

    #[test]
    fn lane_bin_trace_matches_lane_trace() {
        let weights = [2.0f64, 0.5];
        let mut word = LaneBinTrace::new(1_000, 500, 4, &weights);
        let mut scalar = LaneTrace::new(1_000, 500, 4);
        let mut times = [0u64; 64];
        // Same-bin fast path.
        times.fill(1_100);
        word.transitions(NetId(0), 2.0, 0b111, 0, &times);
        scalar.transitions(NetId(0), 2.0, 0b111, 0, &times);
        // Mixed bins (spill): lanes straddle bins and the window edges.
        times[0] = 1_100;
        times[3] = 2_700;
        times[5] = 900;
        times[6] = 3_000;
        let m = 1 | 1 << 3 | 1 << 5 | 1 << 6;
        word.transitions(NetId(1), 0.5, m, 0, &times);
        scalar.transitions(NetId(1), 0.5, m, 0, &times);
        // All-outside-window fast path: dropped by both.
        times.fill(999);
        word.transitions(NetId(0), 2.0, 0b11, 0, &times);
        scalar.transitions(NetId(0), 2.0, 0b11, 0, &times);
        word.finish_pass();
        let (mut got, mut want) = ([0.0f64; 4], [0.0f64; 4]);
        for l in [0usize, 1, 2, 3, 5, 6, 63] {
            word.lane_into(l, &mut got);
            scalar.lane_into(l, &mut want);
            for b in 0..4 {
                assert!((got[b] - want[b]).abs() <= 1e-12, "lane {l} bin {b}");
            }
        }
    }

    #[test]
    fn ripple_counter_counts_past_plane_one() {
        let weights = [1.0f64];
        let mut word = LaneEnergy::new(&weights);
        let times = [0u64; 64];
        for _ in 0..137 {
            word.transitions(NetId(0), 1.0, !0u64, 0, &times);
        }
        let mut e = [0.0f64; 64];
        word.energies_into(&mut e);
        assert!(e.iter().all(|&x| x == 137.0), "count must survive carry chains");
    }

    #[test]
    fn lane_trace_bins_per_lane_times() {
        let mut t = LaneTrace::new(1_000, 500, 4);
        let mut times = [0u64; 64];
        times[0] = 1_100; // bin 0
        times[3] = 2_700; // bin 3
        times[5] = 900; // before window
        times[6] = 3_000; // past the end
        t.transitions(NetId(0), 2.0, 1 | 1 << 3 | 1 << 5 | 1 << 6, 0, &times);
        let mut lane = [0.0; 4];
        t.lane_into(0, &mut lane);
        assert_eq!(lane, [2.0, 0.0, 0.0, 0.0]);
        t.lane_into(3, &mut lane);
        assert_eq!(lane, [0.0, 0.0, 0.0, 2.0]);
        t.lane_into(5, &mut lane);
        assert_eq!(lane, [0.0; 4]);
        t.lane_into(6, &mut lane);
        assert_eq!(lane, [0.0; 4]);
    }
}
