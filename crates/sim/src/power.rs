//! Switching-activity power model.
//!
//! Dynamic power of a CMOS circuit is dominated by `α · C · V² · f`; with
//! voltage and frequency fixed, the per-sample power is proportional to the
//! capacitance-weighted toggle count. [`PowerTrace`] bins weighted toggles
//! into fixed-width time windows, which corresponds to the oscilloscope
//! samples of the paper's measurement setup.

use crate::engine::PowerSink;
use gm_netlist::NetId;

/// Time-binned, capacitance-weighted toggle counts — one power trace.
#[derive(Debug, Clone)]
pub struct PowerTrace {
    bin_ps: u64,
    start_ps: u64,
    samples: Vec<f64>,
}

impl PowerTrace {
    /// A trace with `num_bins` samples of `bin_ps` width starting at
    /// `start_ps`. Transitions outside the window are dropped.
    pub fn new(start_ps: u64, bin_ps: u64, num_bins: usize) -> Self {
        assert!(bin_ps > 0, "bin width must be positive");
        PowerTrace { bin_ps, start_ps, samples: vec![0.0; num_bins] }
    }

    /// Bin width in ps.
    pub fn bin_ps(&self) -> u64 {
        self.bin_ps
    }

    /// The accumulated samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Consume the trace, returning its samples.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Reset all samples to zero for reuse (avoids reallocation per trace).
    pub fn clear(&mut self) {
        self.samples.iter_mut().for_each(|s| *s = 0.0);
    }

    /// Add `weight` at absolute time `time_ps` (no-op outside the window).
    #[inline]
    pub fn add(&mut self, time_ps: u64, weight: f64) {
        if time_ps < self.start_ps {
            return;
        }
        let idx = ((time_ps - self.start_ps) / self.bin_ps) as usize;
        if let Some(s) = self.samples.get_mut(idx) {
            *s += weight;
        }
    }
}

impl PowerSink for PowerTrace {
    fn transition(&mut self, time_ps: u64, _net: NetId, _new_value: bool, weight: f64) {
        self.add(time_ps, weight);
    }
}

/// Counts raw transitions and total weighted activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    /// Number of applied transitions.
    pub count: u64,
    /// Sum of transition weights.
    pub weighted: f64,
}

impl PowerSink for CountingSink {
    fn transition(&mut self, _time_ps: u64, _net: NetId, _new_value: bool, weight: f64) {
        self.count += 1;
        self.weighted += weight;
    }
}

/// Discards all activity (functional-only simulation).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

/// Counts transitions per net — the instrument behind per-wire
/// glitch-extended probing analysis.
#[derive(Debug, Clone)]
pub struct NetToggleSink {
    /// Toggle count per net index.
    pub counts: Vec<u32>,
}

impl NetToggleSink {
    /// A sink for a netlist with `num_nets` nets.
    pub fn new(num_nets: usize) -> Self {
        NetToggleSink { counts: vec![0; num_nets] }
    }

    /// Zero all counts for reuse.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }
}

impl PowerSink for NetToggleSink {
    fn transition(&mut self, _time_ps: u64, net: NetId, _new_value: bool, _weight: f64) {
        self.counts[net.index()] += 1;
    }
}

/// Lane-parallel counterpart of [`PowerSink`] for the compiled-schedule
/// backend ([`crate::sched`]): one call delivers the same net transition
/// for up to 64 traces at once.
///
/// `applied` selects the lanes in which the transition actually fired;
/// `times[lane]` is its per-lane absolute time (jitter makes these
/// differ) and bit `lane` of `values` its new value. Implementations
/// must ignore lanes outside `applied`, whose entries are unspecified.
pub trait LaneSink {
    /// Deliver one net transition across lanes.
    fn transitions(&mut self, net: NetId, weight: f64, applied: u64, values: u64, times: &[u64]);
}

/// Per-lane [`CountingSink`]: raw and weighted toggle totals per trace.
#[derive(Debug, Clone)]
pub struct LaneCounting {
    /// Applied transitions per lane.
    pub count: [u64; 64],
    /// Weighted activity per lane.
    pub weighted: [f64; 64],
}

impl Default for LaneCounting {
    fn default() -> Self {
        LaneCounting { count: [0; 64], weighted: [0.0; 64] }
    }
}

impl LaneCounting {
    /// Zero all lanes for reuse.
    pub fn clear(&mut self) {
        self.count = [0; 64];
        self.weighted = [0.0; 64];
    }
}

impl LaneSink for LaneCounting {
    #[inline]
    fn transitions(
        &mut self,
        _net: NetId,
        weight: f64,
        applied: u64,
        _values: u64,
        _times: &[u64],
    ) {
        // Branchless across all 64 lanes: autovectorizes, and the masked
        // lanes contribute exact zeros.
        for l in 0..64 {
            let bit = applied >> l & 1;
            self.count[l] += bit;
            self.weighted[l] += weight * bit as f64;
        }
    }
}

/// Per-lane [`PowerTrace`]: `num_bins` time bins per lane, stored
/// lane-major (`samples[bin * 64 + lane]`) so one transition's scatter
/// across lanes stays within a few cache lines.
#[derive(Debug, Clone)]
pub struct LaneTrace {
    bin_ps: u64,
    start_ps: u64,
    num_bins: usize,
    samples: Vec<f64>,
}

impl LaneTrace {
    /// A 64-lane trace block with `num_bins` bins of `bin_ps` width
    /// starting at `start_ps`; transitions outside the window are dropped
    /// (same convention as [`PowerTrace`]).
    pub fn new(start_ps: u64, bin_ps: u64, num_bins: usize) -> Self {
        assert!(bin_ps > 0, "bin width must be positive");
        LaneTrace { bin_ps, start_ps, num_bins, samples: vec![0.0; num_bins * 64] }
    }

    /// Zero all bins for reuse.
    pub fn clear(&mut self) {
        self.samples.iter_mut().for_each(|s| *s = 0.0);
    }

    /// Copy one lane's binned samples into `out` (must hold `num_bins`).
    pub fn lane_into(&self, lane: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.num_bins);
        for (b, o) in out.iter_mut().enumerate() {
            *o = self.samples[b * 64 + lane];
        }
    }
}

impl LaneSink for LaneTrace {
    #[inline]
    fn transitions(&mut self, _net: NetId, weight: f64, applied: u64, _values: u64, times: &[u64]) {
        let mut m = applied;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            let t = times[l];
            if t >= self.start_ps {
                let idx = ((t - self.start_ps) / self.bin_ps) as usize;
                if idx < self.num_bins {
                    self.samples[idx * 64 + l] += weight;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_accumulate() {
        let mut t = PowerTrace::new(1_000, 500, 4);
        t.add(999, 1.0); // before window
        t.add(1_000, 1.0); // bin 0
        t.add(1_499, 2.0); // bin 0
        t.add(1_500, 3.0); // bin 1
        t.add(2_999, 4.0); // bin 3
        t.add(3_000, 5.0); // past the end
        assert_eq!(t.samples(), &[3.0, 3.0, 0.0, 4.0]);
    }

    #[test]
    fn clear_resets() {
        let mut t = PowerTrace::new(0, 10, 2);
        t.add(5, 1.0);
        t.clear();
        assert_eq!(t.samples(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_rejected() {
        let _ = PowerTrace::new(0, 0, 1);
    }

    #[test]
    fn lane_counting_masks_lanes() {
        let mut s = LaneCounting::default();
        let times = [0u64; 64];
        s.transitions(NetId(0), 2.5, 0b101, 0b001, &times);
        s.transitions(NetId(1), 1.0, 0b100, 0b100, &times);
        assert_eq!(s.count[0], 1);
        assert_eq!(s.count[1], 0);
        assert_eq!(s.count[2], 2);
        assert_eq!(s.weighted[0], 2.5);
        assert_eq!(s.weighted[2], 3.5);
    }

    #[test]
    fn lane_trace_bins_per_lane_times() {
        let mut t = LaneTrace::new(1_000, 500, 4);
        let mut times = [0u64; 64];
        times[0] = 1_100; // bin 0
        times[3] = 2_700; // bin 3
        times[5] = 900; // before window
        times[6] = 3_000; // past the end
        t.transitions(NetId(0), 2.0, 1 | 1 << 3 | 1 << 5 | 1 << 6, 0, &times);
        let mut lane = [0.0; 4];
        t.lane_into(0, &mut lane);
        assert_eq!(lane, [2.0, 0.0, 0.0, 0.0]);
        t.lane_into(3, &mut lane);
        assert_eq!(lane, [0.0, 0.0, 0.0, 2.0]);
        t.lane_into(5, &mut lane);
        assert_eq!(lane, [0.0; 4]);
        t.lane_into(6, &mut lane);
        assert_eq!(lane, [0.0; 4]);
    }
}
