//! Crosstalk (coupling) between designated nets.
//!
//! Section VII-C of the paper attributes the residual first-order leakage
//! of the secAND2-PD DES core to *coupling*: the long LUT-chain delay lines
//! run close together, so the effective switching capacitance of one wire
//! depends on what its neighbour is doing (the Miller effect). This module
//! implements that mechanism:
//!
//! * if the aggressor toggles while the victim is **static**, the coupling
//!   capacitance adds `±k/2` depending on whether the wires end up at the
//!   same or opposite level;
//! * if both wires toggle within a small window, a same-direction pair
//!   switches the coupling capacitance not at all (`-k`), while an
//!   opposite-direction pair switches it twice (`+k`).
//!
//! The per-transition extra weight is therefore a function of *pairs* of
//! signal values — which is precisely how a first-order-secure sharing can
//! leak first-order information through physical adjacency.

use crate::engine::PowerSink;
use gm_netlist::{Csr, NetId};

/// Static description of which nets couple, and how strongly.
#[derive(Debug, Clone, Default)]
pub struct CouplingModel {
    pairs: Vec<(NetId, NetId, f64)>,
    /// Two transitions closer than this count as simultaneous.
    pub window_ps: u64,
}

impl CouplingModel {
    /// Empty model (no crosstalk).
    pub fn new(window_ps: u64) -> Self {
        CouplingModel { pairs: Vec::new(), window_ps }
    }

    /// Declare that `a` and `b` are routed adjacently with coupling
    /// strength `k` (in toggle-weight units).
    pub fn add_pair(&mut self, a: NetId, b: NetId, k: f64) {
        self.pairs.push((a, b, k));
    }

    /// Number of declared pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Build the runtime sink wrapping `inner`. The sink owns flat copies
    /// of the pair tables (no borrow of the model), so it can persist
    /// inside campaign workers and be [`CouplingSink::reset`] per trace.
    pub fn sink<S: PowerSink>(&self, inner: S) -> CouplingSink<S> {
        // Dense-index the coupled nets so per-transition state lives in a
        // small flat array instead of hash maps.
        let mut coupled: Vec<u32> = Vec::new();
        let dense_of = |coupled: &mut Vec<u32>, n: NetId| -> u32 {
            match coupled.iter().position(|&c| c == n.0) {
                Some(i) => i as u32,
                None => {
                    coupled.push(n.0);
                    coupled.len() as u32 - 1
                }
            }
        };
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut ks: Vec<f64> = Vec::new();
        for &(a, b, k) in &self.pairs {
            let da = dense_of(&mut coupled, a);
            let db = dense_of(&mut coupled, b);
            edges.push((da, db));
            edges.push((db, da));
            ks.push(k);
            ks.push(k);
        }
        let partners = Csr::from_pairs(coupled.len(), &edges);
        // Csr preserves pair order per row, but rows interleave: rebuild
        // the k payload aligned with the flat value order.
        let mut partner_k = vec![0.0f64; edges.len()];
        let mut cursor: Vec<usize> =
            (0..coupled.len()).map(|d| partners.row_range(d).start).collect();
        for (&(d, _), &k) in edges.iter().zip(&ks) {
            partner_k[cursor[d as usize]] = k;
            cursor[d as usize] += 1;
        }
        let max_net = coupled.iter().max().map_or(0, |&m| m as usize + 1);
        let mut dense_index = vec![u32::MAX; max_net];
        for (d, &n) in coupled.iter().enumerate() {
            dense_index[n as usize] = d as u32;
        }
        CouplingSink {
            window_ps: self.window_ps,
            dense_index,
            partners,
            partner_k,
            state: vec![IDLE; coupled.len()],
            inner,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct NetState {
    level: bool,
    last_edge_ps: u64,
    last_dir_rising: bool,
}

/// The never-toggled state (matches a missing entry of the old hash map).
const IDLE: NetState = NetState { level: false, last_edge_ps: u64::MAX, last_dir_rising: false };

/// Runtime coupling sink; forwards every transition to `inner`, adding
/// crosstalk weight for transitions on coupled nets. Self-contained (no
/// borrow of the [`CouplingModel`]): build once, [`CouplingSink::reset`]
/// between traces.
pub struct CouplingSink<S: PowerSink> {
    window_ps: u64,
    /// net id -> dense coupled-net index (`u32::MAX` = uncoupled).
    dense_index: Vec<u32>,
    /// dense index -> dense partner indices.
    partners: Csr,
    /// Coupling strength per `partners` value slot.
    partner_k: Vec<f64>,
    /// Per coupled net, dense-indexed.
    state: Vec<NetState>,
    inner: S,
}

impl<S: PowerSink> CouplingSink<S> {
    /// Access the wrapped sink (e.g. to read accumulated power).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Access the wrapped sink mutably (e.g. to clear a persistent trace).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Consume the wrapper, returning the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Forget transition history (between independent traces).
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|s| *s = IDLE);
    }
}

impl<S: PowerSink> PowerSink for CouplingSink<S> {
    fn transition(&mut self, time_ps: u64, net: NetId, new_value: bool, weight: f64) {
        let mut extra = 0.0;
        let dense = self.dense_index.get(net.index()).copied().unwrap_or(u32::MAX);
        if dense != u32::MAX {
            let range = self.partners.row_range(dense as usize);
            for (&other, &k) in self.partners.row(dense as usize).iter().zip(&self.partner_k[range])
            {
                let other_state = self.state[other as usize];
                let simultaneous = other_state.last_edge_ps != u64::MAX
                    && time_ps.abs_diff(other_state.last_edge_ps) <= self.window_ps;
                if simultaneous {
                    // Same-direction pair: coupling cap does not switch.
                    // Opposite: it switches twice.
                    extra += if other_state.last_dir_rising == new_value { -k } else { k };
                } else {
                    // Victim static: Miller cap charges toward/away from it.
                    extra += if other_state.level == new_value { -0.5 * k } else { 0.5 * k };
                }
            }
            self.state[dense as usize] =
                NetState { level: new_value, last_edge_ps: time_ps, last_dir_rising: new_value };
        }
        self.inner.transition(time_ps, net, new_value, weight + extra);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::CountingSink;

    fn fire(sink: &mut impl PowerSink, t: u64, net: u32, v: bool) {
        sink.transition(t, NetId(net), v, 1.0);
    }

    #[test]
    fn uncoupled_nets_pass_through() {
        let model = CouplingModel::new(100);
        let mut sink = model.sink(CountingSink::default());
        fire(&mut sink, 10, 0, true);
        fire(&mut sink, 20, 1, true);
        let c = sink.into_inner();
        assert_eq!(c.count, 2);
        assert!((c.weighted - 2.0).abs() < 1e-12);
    }

    #[test]
    fn opposite_simultaneous_edges_cost_more() {
        let mut model = CouplingModel::new(100);
        model.add_pair(NetId(0), NetId(1), 0.4);

        // Same direction: total = 1.0 (first, vs silent partner at level 0,
        // rising => opposite level => +0.2) + second rising within window,
        // same dir => -0.4.
        let mut s = model.sink(CountingSink::default());
        fire(&mut s, 10, 0, true);
        fire(&mut s, 20, 1, true);
        let same = s.into_inner().weighted;

        // Opposite direction: net1 first set high (outside window), then
        // net0 rises while net1 falls simultaneously.
        let mut s = model.sink(CountingSink::default());
        fire(&mut s, 10, 1, true); // prep, far in the past
        fire(&mut s, 10_000, 0, true);
        fire(&mut s, 10_020, 1, false);
        let opp = s.into_inner().weighted;

        assert!(opp > same, "opposite-direction crosstalk must cost more: opp={opp} same={same}");
    }

    #[test]
    fn static_victim_level_matters() {
        let mut model = CouplingModel::new(10);
        model.add_pair(NetId(0), NetId(1), 1.0);

        // Victim at level 0, aggressor rises to 1 (opposite): +0.5.
        let mut s = model.sink(CountingSink::default());
        fire(&mut s, 1_000, 0, true);
        let toward_opposite = s.into_inner().weighted;

        // Victim raised to 1 long before, aggressor rises to 1 (same): -0.5.
        let mut s = model.sink(CountingSink::default());
        fire(&mut s, 10, 1, true);
        fire(&mut s, 100_000, 0, true);
        let toward_same = s.into_inner().weighted - 1.5; // subtract net1's own event (1.0 + 0.5)

        assert!(toward_opposite > toward_same);
    }

    #[test]
    fn reset_clears_history() {
        let mut model = CouplingModel::new(100);
        model.add_pair(NetId(0), NetId(1), 1.0);
        let mut s = model.sink(CountingSink::default());
        fire(&mut s, 10, 0, true);
        s.reset();
        // After reset the partner looks static-low again.
        fire(&mut s, 20, 1, true);
        let w = s.into_inner().weighted;
        // Both events saw "static low partner, rising": +0.5 each => 3.0.
        assert!((w - 3.0).abs() < 1e-12, "weighted={w}");
    }
}
