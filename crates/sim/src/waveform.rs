//! Full waveform recording with glitch-oriented queries.
//!
//! Where [`crate::PowerTrace`] aggregates activity into power samples,
//! a [`WaveformRecorder`] keeps every transition of every watched net so
//! you can interrogate the simulation like a logic analyser: value at a
//! time, toggle counts in a window, pulse widths — and, the query this
//! workspace exists for, *glitch detection*: pulses narrower than a
//! threshold that a zero-delay analysis would never show.

use crate::engine::PowerSink;
use gm_netlist::NetId;

/// Records `(time, new_value)` transitions per net.
#[derive(Debug, Clone)]
pub struct WaveformRecorder {
    initial: Vec<bool>,
    transitions: Vec<Vec<(u64, bool)>>,
}

impl WaveformRecorder {
    /// Recorder for a design with `num_nets` nets, all initially
    /// `initial_values[i]` (pass the post-reset settle state).
    pub fn new(initial_values: Vec<bool>) -> Self {
        WaveformRecorder {
            transitions: vec![Vec::new(); initial_values.len()],
            initial: initial_values,
        }
    }

    /// Recorder with all-zero initial state.
    pub fn all_zero(num_nets: usize) -> Self {
        Self::new(vec![false; num_nets])
    }

    /// The recorded transitions of one net.
    pub fn transitions(&self, net: NetId) -> &[(u64, bool)] {
        &self.transitions[net.index()]
    }

    /// Value of `net` at time `t` (after applying all transitions ≤ t).
    pub fn value_at(&self, net: NetId, t: u64) -> bool {
        let trs = &self.transitions[net.index()];
        match trs.partition_point(|&(time, _)| time <= t) {
            0 => self.initial[net.index()],
            k => trs[k - 1].1,
        }
    }

    /// Number of transitions of `net` inside `[from, to)`.
    pub fn toggles_in(&self, net: NetId, from: u64, to: u64) -> usize {
        let trs = &self.transitions[net.index()];
        trs.partition_point(|&(t, _)| t < to) - trs.partition_point(|&(t, _)| t < from)
    }

    /// Widths of all complete pulses of `net` (time between consecutive
    /// transitions), in order.
    pub fn pulse_widths(&self, net: NetId) -> Vec<u64> {
        self.transitions[net.index()].windows(2).map(|w| w[1].0 - w[0].0).collect()
    }

    /// Glitch query: pulses of `net` narrower than `max_width_ps`.
    pub fn glitches(&self, net: NetId, max_width_ps: u64) -> Vec<(u64, u64)> {
        let trs = &self.transitions[net.index()];
        trs.windows(2)
            .filter(|w| w[1].0 - w[0].0 < max_width_ps)
            .map(|w| (w[0].0, w[1].0))
            .collect()
    }

    /// Nets that glitched (any pulse `< max_width_ps`), with counts.
    pub fn glitch_summary(&self, max_width_ps: u64) -> Vec<(NetId, usize)> {
        (0..self.transitions.len())
            .filter_map(|i| {
                let id = NetId(i as u32);
                let count = self.glitches(id, max_width_ps).len();
                (count > 0).then_some((id, count))
            })
            .collect()
    }

    /// Total transitions across all nets.
    pub fn total_transitions(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }
}

impl PowerSink for WaveformRecorder {
    fn transition(&mut self, time_ps: u64, net: NetId, new_value: bool, _weight: f64) {
        self.transitions[net.index()].push((time_ps, new_value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayModel, Simulator};
    use gm_netlist::Netlist;

    fn record_glitchy_xor() -> (Netlist, NetId, WaveformRecorder) {
        // y = (a&b) ^ buf(buf(a|b)): skewed XOR inputs pulse y when a,b
        // rise together.
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let p = n.and2(a, b);
        let q0 = n.or2(a, b);
        let q1 = n.buf(q0);
        let q = n.buf(q1);
        let y = n.xor2(p, q);
        n.output("y", y);
        n.validate().unwrap();
        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        let mut rec = WaveformRecorder::all_zero(n.num_nets());
        sim.schedule(a, 1_000, true);
        sim.schedule(b, 1_000, true);
        sim.run_until(50_000, &mut rec);
        (n, y, rec)
    }

    #[test]
    fn records_and_queries_values() {
        let (_, y, rec) = record_glitchy_xor();
        assert!(!rec.value_at(y, 0), "initial 0");
        // Steady state: (1&1) ^ (1|1) = 0.
        assert!(!rec.value_at(y, 49_999));
        // But it pulsed in between.
        assert_eq!(rec.transitions(y).len(), 2, "rise then fall");
        assert!(rec.value_at(y, rec.transitions(y)[0].0), "high during the pulse");
    }

    #[test]
    fn glitch_detection() {
        let (_, y, rec) = record_glitchy_xor();
        let pulses = rec.pulse_widths(y);
        assert_eq!(pulses.len(), 1);
        // The pulse is about two buffer delays (350 ps each) wide.
        assert!((200..=700).contains(&pulses[0]), "width {}", pulses[0]);
        assert_eq!(rec.glitches(y, 1_000).len(), 1);
        assert!(rec.glitches(y, 100).is_empty(), "not narrower than 100 ps");
        let summary = rec.glitch_summary(1_000);
        assert!(summary.iter().any(|&(net, c)| net == y && c == 1));
    }

    #[test]
    fn toggle_window_counts() {
        let (_, y, rec) = record_glitchy_xor();
        let total = rec.total_transitions();
        assert!(total >= 6, "a,b,p,q0..q,y all move: {total}");
        let (start, end) = (rec.transitions(y)[0].0, rec.transitions(y)[1].0);
        assert_eq!(rec.toggles_in(y, start, end + 1), 2);
        assert_eq!(rec.toggles_in(y, end + 1, 50_000), 0);
    }
}
