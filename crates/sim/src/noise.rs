//! Measurement-chain model: amplifier gain, additive Gaussian noise, and
//! ADC quantisation — turning ideal toggle-count traces into something that
//! looks like the "raw oscilloscope ADC output" of Fig. 13/16.
//!
//! The noise sigma is the lever that maps the paper's trace counts onto
//! tractable simulated campaigns: TVLA detection thresholds scale with
//! `noise² / N`, so dividing sigma by √k divides the traces-to-detection by
//! k. EXPERIMENTS.md records the scaling used for each figure.

use crate::delay::wide_jitter_enabled;
use rand::rngs::SmallRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::sync::OnceLock;

/// Ziggurat layer count (Marsaglia–Tsang, standard normal).
const ZIG_LAYERS: usize = 256;
/// Rightmost layer boundary for 256 layers.
const ZIG_R: f64 = 3.654_152_885_361_009;
/// Per-layer area (the bottom layer's includes the tail mass).
const ZIG_V: f64 = 0.004_928_673_233_974_655;

/// Layer edges `x[i]` and densities `f[i] = exp(-x[i]²/2)`.
struct ZigTables {
    x: [f64; ZIG_LAYERS + 1],
    f: [f64; ZIG_LAYERS + 1],
}

/// Tables are derived once from `(R, V)` by the standard downward
/// recursion and shared process-wide (they are a property of N(0,1),
/// not of any particular noise model instance).
fn zig_tables() -> &'static ZigTables {
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut x = [0.0; ZIG_LAYERS + 1];
        let mut f = [0.0; ZIG_LAYERS + 1];
        // x[0] is the bottom layer's *effective* width: stretching the
        // strip to area V accounts for the tail beyond R.
        x[0] = ZIG_V / (-0.5 * ZIG_R * ZIG_R).exp();
        x[1] = ZIG_R;
        for i in 2..ZIG_LAYERS {
            let prev = x[i - 1];
            x[i] = (-2.0 * (ZIG_V / prev + (-0.5 * prev * prev).exp()).ln()).sqrt();
        }
        x[ZIG_LAYERS] = 0.0;
        for i in 0..=ZIG_LAYERS {
            f[i] = (-0.5 * x[i] * x[i]).exp();
        }
        ZigTables { x, f }
    })
}

/// A word source that serves a prefetched run of raw PRNG output before
/// falling through to the live generator.
///
/// The xoshiro step is a short serial dependency chain; interleaved with
/// the ziggurat transform, every draw stalls on the previous state
/// update. Prefetching one word per output sample in a tight loop lets
/// that chain retire back-to-back, and the transform loop then reads
/// words with no cross-iteration dependency. Each ziggurat sample
/// consumes **at least** one word, so a prefetch of `out.len()` words
/// never outlives its fill call: rejections simply overflow to the live
/// generator, whose state already sits past the prefetched run — the
/// consumed stream is position-for-position the sequential one.
struct BufferedWords<'a> {
    buf: &'a [u64],
    pos: usize,
    rng: &'a mut SmallRng,
}

impl RngCore for BufferedWords<'_> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        match self.buf.get(self.pos) {
            Some(&w) => {
                self.pos += 1;
                w
            }
            None => self.rng.next_u64(),
        }
    }
}

/// Ziggurat core, generic over the RNG borrow so the hoisted-table bulk
/// fill and the one-shot path share one implementation. See
/// [`MeasurementModel::gauss`] for the algorithm notes.
fn gauss_with<R: RngCore>(rng: &mut R, t: &ZigTables) -> f64 {
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xff) as usize;
        // 53-bit uniform in [-1, 1) from the non-layer bits.
        let u = ((bits >> 11) as f64) * (2.0 / 9_007_199_254_740_992.0) - 1.0;
        let x = u * t.x[i];
        if x.abs() < t.x[i + 1] {
            return x;
        }
        if i == 0 {
            // Tail beyond R: Marsaglia's exponential-majorant draw.
            loop {
                let a = rng.random::<f64>().max(f64::MIN_POSITIVE).ln() / ZIG_R;
                let b = rng.random::<f64>().max(f64::MIN_POSITIVE).ln();
                if -2.0 * b >= a * a {
                    return if u < 0.0 { a - ZIG_R } else { ZIG_R - a };
                }
            }
        }
        // Wedge: accept under the true density.
        if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * rng.random::<f64>() < (-0.5 * x * x).exp() {
            return x;
        }
    }
}

/// Measurement chain applied to an ideal power trace.
#[derive(Debug, Clone)]
pub struct MeasurementModel {
    /// Multiplicative gain (ADC counts per unit of weighted toggle).
    pub gain: f64,
    /// Additive Gaussian noise sigma, in ADC counts, applied per sample.
    pub noise_sigma: f64,
    /// ADC resolution in bits; samples clamp to the signed full-scale range.
    pub adc_bits: u32,
    rng: SmallRng,
}

impl MeasurementModel {
    /// Build a measurement model with its own noise RNG.
    pub fn new(gain: f64, noise_sigma: f64, adc_bits: u32, seed: u64) -> Self {
        assert!((2..=24).contains(&adc_bits), "unrealistic ADC width");
        MeasurementModel {
            gain,
            noise_sigma,
            adc_bits,
            rng: SmallRng::seed_from_u64(seed ^ 0x853c_49e6_748f_ea9b),
        }
    }

    /// Standard normal deviate: 256-layer ziggurat (Marsaglia–Tsang).
    ///
    /// The noise draw sits on the campaign hot path — one per trace
    /// sample — and Box–Muller's `ln`/`sin_cos` pair dominated whole
    /// TVLA campaigns. The ziggurat needs one `u64` draw, a table
    /// lookup, and a multiply ~98.8% of the time; only wedge and tail
    /// rejections (the remaining ~1%) touch `exp`/`ln`. The sampled
    /// distribution is exactly N(0,1) either way.
    fn gauss(&mut self) -> f64 {
        gauss_with(&mut self.rng, zig_tables())
    }

    /// Fill `out` with standard-normal draws — the bulk form of the
    /// per-sample ziggurat, consuming the noise RNG stream in element
    /// order. `out[j]` is bit-identical to the `j`-th sequential
    /// `gauss()` on the same state; the lane-major trace sources prefill
    /// one tile per 64-trace group with this so the noise stage runs
    /// once per group instead of once per sample call.
    pub fn fill_gauss(&mut self, out: &mut [f64]) {
        let t = zig_tables();
        // Prefetch one raw word per sample per chunk (see
        // [`BufferedWords`]); values and stream order are untouched.
        const CHUNK: usize = 1024;
        let mut words = [0u64; CHUNK];
        for block in out.chunks_mut(CHUNK) {
            let prefetched = &mut words[..block.len()];
            for w in prefetched.iter_mut() {
                *w = self.rng.next_u64();
            }
            let mut src = BufferedWords { buf: prefetched, pos: 0, rng: &mut self.rng };
            for o in block {
                *o = gauss_with(&mut src, t);
            }
        }
    }

    /// Noise-free unquantised chain (for calibration and debugging).
    pub fn ideal() -> Self {
        MeasurementModel::new(1.0, 0.0, 24, 0)
    }

    /// ADC full scale (half range, signed).
    pub fn full_scale(&self) -> f64 {
        f64::from(1u32 << (self.adc_bits - 1))
    }

    /// Apply gain, noise, and quantisation to one sample.
    pub fn sample(&mut self, ideal: f64) -> f64 {
        let mut v = ideal * self.gain;
        if self.noise_sigma > 0.0 {
            v += self.gauss() * self.noise_sigma;
        }
        let fs = self.full_scale();
        v.round().clamp(-fs, fs - 1.0)
    }

    /// Apply the chain to a whole trace in place — batched form of
    /// [`MeasurementModel::sample`], bit-identical per element.
    ///
    /// Under the wide jitter gate ([`wide_jitter_enabled`]) the chain
    /// splits into three element-wise loops — gain, noise draws,
    /// round/clamp — so the gain and quantisation stages autovectorize.
    /// The noise stage stays sequential: the ziggurat consumes a
    /// variable number of RNG words per draw and the stream order is
    /// pinned by the golden traces. Every element still sees exactly
    /// `sample`'s arithmetic in `sample`'s order, so toggling the gate
    /// never changes an ADC count.
    pub fn apply(&mut self, trace: &mut [f64]) {
        if !wide_jitter_enabled() {
            for s in trace {
                *s = self.sample(*s);
            }
            return;
        }
        for s in trace.iter_mut() {
            *s *= self.gain;
        }
        if self.noise_sigma > 0.0 {
            for s in trace.iter_mut() {
                *s += self.gauss() * self.noise_sigma;
            }
        }
        let fs = self.full_scale();
        for s in trace.iter_mut() {
            *s = s.round().clamp(-fs, fs - 1.0);
        }
    }

    /// Run `ideal` through the chain into `out` (up to the shorter of
    /// the two slices): the out-of-place batched form campaign trace
    /// sources use to turn binned toggle energy into ADC samples.
    pub fn sample_into(&mut self, ideal: &[f64], out: &mut [f64]) {
        let n = ideal.len().min(out.len());
        out[..n].copy_from_slice(&ideal[..n]);
        self.apply(&mut out[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_chain_rounds_only() {
        let mut m = MeasurementModel::ideal();
        assert_eq!(m.sample(3.4), 3.0);
        assert_eq!(m.sample(3.6), 4.0);
    }

    #[test]
    fn clamps_to_adc_range() {
        let mut m = MeasurementModel::new(1.0, 0.0, 8, 0);
        assert_eq!(m.sample(1e9), 127.0);
        assert_eq!(m.sample(-1e9), -128.0);
    }

    #[test]
    fn noise_statistics() {
        let mut m = MeasurementModel::new(1.0, 10.0, 16, 1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| m.sample(100.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
        // Quantisation adds 1/12 variance.
        assert!((var - 100.0).abs() < 5.0, "var {var}");
    }

    /// The split-loop batched chain must consume the RNG stream exactly
    /// like the per-sample chain: same seed, same ADC counts, both ways
    /// of the runtime gate and via both entry points.
    #[test]
    fn batched_chain_matches_per_sample() {
        use crate::delay::set_wide_jitter;
        let ideal: Vec<f64> = (0..257).map(|i| (i as f64 * 13.7).sin() * 900.0).collect();
        let mut want = Vec::new();
        {
            let mut m = MeasurementModel::new(1.3, 6.0, 12, 77);
            for &s in &ideal {
                want.push(m.sample(s));
            }
        }
        for wide in [true, false] {
            set_wide_jitter(wide);
            let mut m = MeasurementModel::new(1.3, 6.0, 12, 77);
            let mut got = ideal.clone();
            m.apply(&mut got);
            assert_eq!(got, want, "apply, wide={wide}");
            let mut m = MeasurementModel::new(1.3, 6.0, 12, 77);
            let mut got = vec![0.0; ideal.len()];
            m.sample_into(&ideal, &mut got);
            assert_eq!(got, want, "sample_into, wide={wide}");
        }
        set_wide_jitter(true);
    }

    /// The bulk fill must be the same RNG stream as sequential draws.
    #[test]
    fn fill_gauss_matches_sequential_draws() {
        let mut seq = MeasurementModel::new(1.0, 1.0, 12, 123);
        let want: Vec<f64> = (0..1000).map(|_| seq.gauss()).collect();
        let mut bulk = MeasurementModel::new(1.0, 1.0, 12, 123);
        let mut got = vec![0.0; 1000];
        bulk.fill_gauss(&mut got);
        assert_eq!(got, want);
        // Split fills continue the stream exactly.
        let mut split = MeasurementModel::new(1.0, 1.0, 12, 123);
        let mut head = vec![0.0; 300];
        let mut tail = vec![0.0; 700];
        split.fill_gauss(&mut head);
        split.fill_gauss(&mut tail);
        head.extend_from_slice(&tail);
        assert_eq!(head, want);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = MeasurementModel::new(1.0, 5.0, 12, 9);
        let mut b = MeasurementModel::new(1.0, 5.0, 12, 9);
        for _ in 0..100 {
            assert_eq!(a.sample(7.0), b.sample(7.0));
        }
    }
}
