//! Measurement-chain model: amplifier gain, additive Gaussian noise, and
//! ADC quantisation — turning ideal toggle-count traces into something that
//! looks like the "raw oscilloscope ADC output" of Fig. 13/16.
//!
//! The noise sigma is the lever that maps the paper's trace counts onto
//! tractable simulated campaigns: TVLA detection thresholds scale with
//! `noise² / N`, so dividing sigma by √k divides the traces-to-detection by
//! k. EXPERIMENTS.md records the scaling used for each figure.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Measurement chain applied to an ideal power trace.
#[derive(Debug, Clone)]
pub struct MeasurementModel {
    /// Multiplicative gain (ADC counts per unit of weighted toggle).
    pub gain: f64,
    /// Additive Gaussian noise sigma, in ADC counts, applied per sample.
    pub noise_sigma: f64,
    /// ADC resolution in bits; samples clamp to the signed full-scale range.
    pub adc_bits: u32,
    rng: SmallRng,
    /// Second Box–Muller deviate, held for the next sample (the pair
    /// costs one `ln`/`sqrt` — discarding half of it doubled the noise
    /// cost on the campaign hot path).
    spare_gauss: Option<f64>,
}

impl MeasurementModel {
    /// Build a measurement model with its own noise RNG.
    pub fn new(gain: f64, noise_sigma: f64, adc_bits: u32, seed: u64) -> Self {
        assert!((2..=24).contains(&adc_bits), "unrealistic ADC width");
        MeasurementModel {
            gain,
            noise_sigma,
            adc_bits,
            rng: SmallRng::seed_from_u64(seed ^ 0x853c_49e6_748f_ea9b),
            spare_gauss: None,
        }
    }

    /// Standard normal deviate: Box–Muller, both values of the pair used.
    fn gauss(&mut self) -> f64 {
        if let Some(g) = self.spare_gauss.take() {
            return g;
        }
        let u1: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let (sin, cos) = (std::f64::consts::TAU * u2).sin_cos();
        self.spare_gauss = Some(r * sin);
        r * cos
    }

    /// Noise-free unquantised chain (for calibration and debugging).
    pub fn ideal() -> Self {
        MeasurementModel::new(1.0, 0.0, 24, 0)
    }

    /// ADC full scale (half range, signed).
    pub fn full_scale(&self) -> f64 {
        f64::from(1u32 << (self.adc_bits - 1))
    }

    /// Apply gain, noise, and quantisation to one sample.
    pub fn sample(&mut self, ideal: f64) -> f64 {
        let mut v = ideal * self.gain;
        if self.noise_sigma > 0.0 {
            v += self.gauss() * self.noise_sigma;
        }
        let fs = self.full_scale();
        v.round().clamp(-fs, fs - 1.0)
    }

    /// Apply the chain to a whole trace in place.
    pub fn apply(&mut self, trace: &mut [f64]) {
        for s in trace {
            *s = self.sample(*s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_chain_rounds_only() {
        let mut m = MeasurementModel::ideal();
        assert_eq!(m.sample(3.4), 3.0);
        assert_eq!(m.sample(3.6), 4.0);
    }

    #[test]
    fn clamps_to_adc_range() {
        let mut m = MeasurementModel::new(1.0, 0.0, 8, 0);
        assert_eq!(m.sample(1e9), 127.0);
        assert_eq!(m.sample(-1e9), -128.0);
    }

    #[test]
    fn noise_statistics() {
        let mut m = MeasurementModel::new(1.0, 10.0, 16, 1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| m.sample(100.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
        // Quantisation adds 1/12 variance.
        assert!((var - 100.0).abs() < 5.0, "var {var}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = MeasurementModel::new(1.0, 5.0, 12, 9);
        let mut b = MeasurementModel::new(1.0, 5.0, 12, 9);
        for _ in 0..100 {
            assert_eq!(a.sample(7.0), b.sample(7.0));
        }
    }
}
