//! Per-instance gate delay model.
//!
//! Three layers, mirroring a real fabric:
//!
//! 1. **Nominal** delay per cell kind ([`gm_netlist::GateKind::nominal_delay_ps`]).
//! 2. **Process/placement variation**: a per-instance factor sampled once
//!    when the "device is manufactured" (i.e. when the model is built).
//!    On FPGA this captures routing-detour differences between LUTs.
//! 3. **Per-event jitter**: electrical noise, supply ripple and local
//!    temperature, sampled for every propagation. This is what makes two
//!    nominally-ordered edges occasionally swap — the effect that defeats
//!    undersized DelayUnits in Fig. 15.

use gm_netlist::{GateId, Netlist};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicU8, Ordering};

/// Default inertial pulse-rejection width: pulses narrower than this are
/// annihilated rather than propagated. Physically the gate's output
/// switching (rise/fall) time — much shorter than its propagation delay.
pub const DEFAULT_PULSE_REJECT_PS: u64 = 200;

/// Delay model for one instantiated netlist.
///
/// The per-instance tables are precomputed when the "device" is built:
/// `base_fixed_ps` holds the already-clamped integer delay used on the
/// jitter-free fast path, and `reject_ps` the per-gate inertial
/// pulse-rejection threshold, so the event hot loop never recomputes
/// either.
#[derive(Debug, Clone)]
pub struct DelayModel {
    base_ps: Vec<f64>,
    /// `max(base_ps, 1)` as integer ps: the whole sample when jitter is off.
    base_fixed_ps: Vec<u64>,
    jitter_sigma_ps: f64,
    pulse_reject_ps: u64,
    /// Per-gate rejection thresholds (currently uniform; kept per-instance
    /// so a future threshold-variation model is a table fill, not an API
    /// change).
    reject_ps: Vec<u64>,
}

impl DelayModel {
    fn from_base(base_ps: Vec<f64>, jitter_sigma_ps: f64) -> Self {
        let base_fixed_ps = base_ps.iter().map(|&d| d.max(1.0) as u64).collect();
        let reject_ps = vec![DEFAULT_PULSE_REJECT_PS; base_ps.len()];
        DelayModel {
            base_ps,
            base_fixed_ps,
            jitter_sigma_ps,
            pulse_reject_ps: DEFAULT_PULSE_REJECT_PS,
            reject_ps,
        }
    }

    /// Nominal delays only: no variation, no jitter. Deterministic; good
    /// for functional and directed glitch tests.
    pub fn nominal(n: &Netlist) -> Self {
        Self::from_base(n.gates().iter().map(|g| g.kind.nominal_delay_ps() as f64).collect(), 0.0)
    }

    /// Nominal delays scaled by a per-instance factor drawn uniformly from
    /// `[1 - spread, 1 + spread]`, plus per-event Gaussian jitter with the
    /// given sigma. `seed` fixes the "manufactured device".
    pub fn with_variation(n: &Netlist, spread: f64, jitter_sigma_ps: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&spread), "spread must be in [0,1)");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let base_ps = n
            .gates()
            .iter()
            .map(|g| {
                let f = 1.0 + spread * (rng.random::<f64>() * 2.0 - 1.0);
                g.kind.nominal_delay_ps() as f64 * f
            })
            .collect();
        Self::from_base(base_ps, jitter_sigma_ps)
    }

    /// Per-event jitter sigma in ps.
    pub fn jitter_sigma_ps(&self) -> f64 {
        self.jitter_sigma_ps
    }

    /// Override the per-event jitter sigma.
    pub fn set_jitter_sigma_ps(&mut self, sigma: f64) {
        self.jitter_sigma_ps = sigma;
    }

    /// Inertial pulse-rejection width in ps (see
    /// [`DEFAULT_PULSE_REJECT_PS`]).
    pub fn pulse_reject_ps(&self) -> u64 {
        self.pulse_reject_ps
    }

    /// Override the inertial pulse-rejection width (0 = pure transport).
    pub fn set_pulse_reject_ps(&mut self, width: u64) {
        self.pulse_reject_ps = width;
        self.reject_ps.iter_mut().for_each(|r| *r = width);
    }

    /// Inertial pulse-rejection threshold of one gate instance in ps.
    #[inline]
    pub fn pulse_reject_of(&self, gate: GateId) -> u64 {
        self.reject_ps[gate.index()]
    }

    /// Base (nominal × process) delay of a gate instance in ps.
    pub fn base_ps(&self, gate: GateId) -> f64 {
        self.base_ps[gate.index()]
    }

    /// Sample the delay of one propagation event through `gate`.
    /// Always at least 1 ps so causality is preserved.
    #[inline]
    pub fn sample_ps(&self, gate: GateId, rng: &mut SmallRng) -> u64 {
        if self.jitter_sigma_ps > 0.0 {
            (self.base_ps[gate.index()] + gaussian(rng) * self.jitter_sigma_ps).max(1.0) as u64
        } else {
            self.base_fixed_ps[gate.index()]
        }
    }

    /// Sample the delay of the `ordinal`-th *toggling* evaluation of
    /// `gate` within the trace salted by `salt`.
    ///
    /// **Order-invariant**: the draw depends only on `(gate, ordinal,
    /// salt)`, never on global event processing order. Two engines that
    /// evaluate the same gate the same number of times draw identical
    /// delays even when they interleave unrelated gates differently —
    /// the property the compiled-schedule backend's wheel≡schedule
    /// equivalence rests on (see `sched`). The event engine's hot loop
    /// calls this once per scheduled output change, so the jitter draw
    /// is a counter hash plus one quantile-table lookup — no rejection
    /// loop like the ziggurat (which survives for the per-trace-bin
    /// draws of `noise::MeasurementModel`).
    #[inline]
    pub fn sample_event_ps(&self, gate: GateId, salt: u64, ordinal: u32) -> u64 {
        let gi = gate.index();
        if self.jitter_sigma_ps > 0.0 {
            let g = quantized_gaussian(event_hash(salt, gate.0, ordinal));
            (self.base_ps[gi] + g * self.jitter_sigma_ps).max(1.0) as u64
        } else {
            self.base_fixed_ps[gi]
        }
    }

    /// Jitter-free fixed delay of `gate` — the compile-time base the
    /// compiled schedule ([`crate::sched`]) orders its sweep by.
    pub(crate) fn base_fixed_of(&self, gate: GateId) -> u64 {
        self.base_fixed_ps[gate.index()]
    }

    /// Batched [`DelayModel::sample_event_ps`] over the first `n` keys
    /// of `tile` (one gate, per-draw `(salt, ordinal)` inputs): fills
    /// `tile.d[..n]` with the same `u64` picoseconds the scalar sampler
    /// draws for each `(gate, tile.salt[j], tile.ord[j])`.
    ///
    /// **Bit-identical** by construction: every arithmetic step either
    /// is the scalar op itself or provably computes the same value (see
    /// the stage comments). The work is split into flat stages over the
    /// tile so the hash and float pipelines autovectorize under the
    /// repo's x86-64-v3 baseline — the scalar chain's ~15-cycle serial
    /// tail is the hottest per-event cost in a glitch campaign.
    pub fn sample_event_tile(&self, gate: GateId, n: usize, tile: &mut JitterTile) {
        debug_assert!(n <= TILE);
        let gi = gate.index();
        if self.jitter_sigma_ps <= 0.0 {
            tile.d[..n].fill(self.base_fixed_ps[gi]);
            return;
        }
        // Stage 1 — hash, uniform conversion, knot index and fraction in
        // one element-wise loop (everything up to the table gather, so
        // the whole chain autovectorizes with values held in registers).
        //
        // The hash is `event_hash` verbatim. The u64→f64 conversion
        // splits the 53-bit value at 2^52: `v as f64` is exact for
        // v < 2^53, and so are both halves and their sum (all integers
        // under 2^53), so `lo + hi` equals the scalar's single
        // conversion bit-for-bit — AVX2 has no packed u64→f64, but the
        // split form vectorizes. `x as u32` truncates to the same
        // integer as the scalar's `x as usize` (x ∈ [0, 2047)).
        const EXP52: u64 = 0x4330_0000_0000_0000; // 2^52 as f64 bits
        const TWO52: f64 = 4_503_599_627_370_496.0;
        let gate_hi = (gate.0 as u64) << 32;
        // Lanes of one visit usually share the toggling-evaluation
        // ordinal (they advance in lockstep until glitch trains split
        // them), and the index stride depends only on `(gate, ordinal)`
        // — when all ordinals match, its 64-bit multiply hoists out of
        // the loop, leaving the salt mix as the only per-draw u64
        // multiplies. Identical arithmetic per element either way.
        let ord0 = tile.ord[0];
        let uniform = tile.ord[..n].iter().all(|&o| o == ord0);
        if uniform {
            let idx = (gate_hi | ord0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for j in 0..n {
                let mut z = tile.salt[j] ^ idx;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                let v = (z ^ (z >> 31)) >> 11;
                let lo = f64::from_bits((v & (TWO52 as u64 - 1)) | EXP52) - TWO52;
                let hi = ((v >> 52) as u32 as f64) * TWO52;
                let u = (lo + hi) * (1.0 / (1u64 << 53) as f64);
                let x = u * (QUANT_KNOTS - 1) as f64;
                let i = x as u32;
                tile.knot[j] = i;
                tile.frac[j] = x - i as f64;
            }
        } else {
            for j in 0..n {
                let idx = (gate_hi | tile.ord[j] as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let mut z = tile.salt[j] ^ idx;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                let v = (z ^ (z >> 31)) >> 11;
                let lo = f64::from_bits((v & (TWO52 as u64 - 1)) | EXP52) - TWO52;
                let hi = ((v >> 52) as u32 as f64) * TWO52;
                let u = (lo + hi) * (1.0 / (1u64 << 53) as f64);
                let x = u * (QUANT_KNOTS - 1) as f64;
                let i = x as u32;
                tile.knot[j] = i;
                tile.frac[j] = x - i as f64;
            }
        }
        // Stage 2 — gathered lerp and the delay clamp. The masks are
        // no-ops (i ≤ 2046) that let the fixed-size table index without
        // bounds checks; `as i64 as u64` equals the scalar's `as u64`
        // for the clamped range [1, 2^63) and compiles to the bare
        // conversion instead of the unsigned fix-up sequence.
        let t = quant_table();
        let base = self.base_ps[gi];
        let sigma = self.jitter_sigma_ps;
        for j in 0..n {
            let i = tile.knot[j] as usize & (QUANT_KNOTS - 1);
            let t0 = t[i];
            let t1 = t[(i + 1) & (QUANT_KNOTS - 1)];
            let q = t0 + tile.frac[j] * (t1 - t0);
            tile.d[j] = (base + q * sigma).max(1.0) as i64 as u64;
        }
    }

    /// Batched [`DelayModel::sample_event_ps`] over one trace salt and
    /// up to 8 distinct `(gate, ordinal)` keys — the dynamic engine's
    /// burst draw when one popped event toggles several fan-out gates.
    /// Elements past `n` are untouched. Bit-identical to the scalar
    /// sampler, per key (same stage arithmetic as
    /// [`DelayModel::sample_event_tile`]).
    pub fn sample_event_ps_x8(
        &self,
        salt: u64,
        gates: &[u32; WIDE],
        ords: &[u32; WIDE],
        n: usize,
        out: &mut [u64; WIDE],
    ) {
        debug_assert!(n <= WIDE);
        if self.jitter_sigma_ps <= 0.0 {
            for i in 0..n {
                out[i] = self.base_fixed_ps[gates[i] as usize];
            }
            return;
        }
        let mut h8 = [0u64; WIDE];
        for i in 0..WIDE {
            let idx =
                ((gates[i] as u64) << 32 | ords[i] as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut z = salt ^ idx;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            h8[i] = z ^ (z >> 31);
        }
        let sigma = self.jitter_sigma_ps;
        for i in 0..n {
            let q = quantized_gaussian(h8[i]);
            out[i] = (self.base_ps[gates[i] as usize] + q * sigma).max(1.0) as u64;
        }
    }
}

/// Lane width of the dynamic engine's burst draw
/// ([`DelayModel::sample_event_ps_x8`]).
pub const WIDE: usize = 8;

/// Tile width of the staged batch sampler
/// ([`DelayModel::sample_event_tile`]): one draw per sweep lane.
pub const TILE: usize = 64;

/// Reusable stage buffers for [`DelayModel::sample_event_tile`]. Owned
/// by each sweep runner so the arrays stay cache-hot and are never
/// re-zeroed: every stage writes `..n` before anything reads it.
#[derive(Debug, Clone)]
pub struct JitterTile {
    /// Input: per-draw trace salt.
    pub salt: [u64; TILE],
    /// Input: per-draw toggling-evaluation ordinal.
    pub ord: [u32; TILE],
    /// Output: sampled delays in integer ps.
    pub d: [u64; TILE],
    frac: [f64; TILE],
    knot: [u32; TILE],
}

impl Default for JitterTile {
    fn default() -> Self {
        JitterTile {
            salt: [0; TILE],
            ord: [0; TILE],
            d: [0; TILE],
            frac: [0.0; TILE],
            knot: [0; TILE],
        }
    }
}

impl JitterTile {
    /// A fresh tile (buffers zeroed once; stages overwrite before use).
    pub fn new() -> Self {
        JitterTile::default()
    }
}

/// Runtime switch for the batched jitter path. Three states so the env
/// var is read once, lazily: 0 = undecided, 1 = wide, 2 = scalar.
static WIDE_JITTER: AtomicU8 = AtomicU8::new(0);

/// Whether the batched (8-wide) jitter path is active. Decided once from
/// `GM_JITTER_WIDE` (`0`/`off` forces the scalar fallback, `1`/`on`
/// forces wide) or, unset, from runtime CPU detection: on x86-64 the
/// wide path wants AVX2 (the repo builds at x86-64-v3, but a generic
/// build on an older machine should keep the scalar loop); elsewhere the
/// portable wide code is enabled — it is never incorrect, only possibly
/// not faster. Both paths draw bit-identical samples, so this gate is a
/// performance choice, never a correctness one.
pub fn wide_jitter_enabled() -> bool {
    match WIDE_JITTER.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = match std::env::var("GM_JITTER_WIDE") {
                Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => false,
                Ok(v) if v == "1" || v.eq_ignore_ascii_case("on") => true,
                _ => detect_wide_default(),
            };
            WIDE_JITTER.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_wide_default() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_wide_default() -> bool {
    true
}

/// Force the batched jitter path on or off, overriding the env/CPU
/// default (benchmarks A/B the two paths in-process; the CI scalar
/// smoke pins the fallback). Takes effect for subsequent passes.
pub fn set_wide_jitter(enabled: bool) {
    WIDE_JITTER.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
}

/// Mix `(salt, gate, ordinal)` into one uniform 64-bit word
/// (splitmix64 finalizer over a golden-ratio index stride).
#[inline]
pub(crate) fn event_hash(salt: u64, gate: u32, ordinal: u32) -> u64 {
    splitmix(salt ^ event_index(gate, ordinal))
}

/// The golden-ratio index stride of [`event_hash`], shared with the
/// wide variants so per-`(gate, ordinal)` work is hoisted out of lane
/// loops.
#[inline]
fn event_index(gate: u32, ordinal: u32) -> u64 {
    ((gate as u64) << 32 | ordinal as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// splitmix64 finalizer (the mixing tail of [`event_hash`]).
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Quantile knots of the piecewise-linear inverse normal CDF used for
/// per-event jitter. 2048 knots keep the table L1-resident (16 KiB);
/// the distribution is truncated at the outermost knots
/// (±Φ⁻¹(1/4096) ≈ ±3.54σ), a deliberate model simplification: a
/// jitter excursion beyond 3.5σ on a ~1 ns gate delay is electrically
/// implausible, and the truncation error is invisible to every
/// moment/quantile test at campaign scale.
const QUANT_KNOTS: usize = 2048;

fn quant_table() -> &'static [f64; QUANT_KNOTS] {
    static TBL: std::sync::OnceLock<[f64; QUANT_KNOTS]> = std::sync::OnceLock::new();
    TBL.get_or_init(|| {
        let mut t = [0.0f64; QUANT_KNOTS];
        for (i, v) in t.iter_mut().enumerate() {
            *v = inv_norm_cdf((i as f64 + 0.5) / QUANT_KNOTS as f64);
        }
        t
    })
}

/// Standard-normal draw from one uniform 64-bit word: piecewise-linear
/// interpolation between the [`quant_table`] quantile knots.
#[inline]
pub(crate) fn quantized_gaussian(h: u64) -> f64 {
    let t = quant_table();
    // Top 53 bits -> uniform in [0, 1), scaled to the knot index range.
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let x = u * (QUANT_KNOTS - 1) as f64;
    let i = x as usize;
    let f = x - i as f64;
    t[i] + f * (t[i + 1] - t[i])
}

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.2e-9). Only runs at table-build time.
fn inv_norm_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inv_norm_cdf(1.0 - p)
    }
}

/// Number of ziggurat layers.
const ZIG_LAYERS: usize = 128;
/// Rightmost layer edge of the 128-layer normal ziggurat (Doornik).
const ZIG_R: f64 = 3.442619855899;
/// Area of each ziggurat block for 128 layers (Doornik).
const ZIG_V: f64 = 9.91256303526217e-3;

/// Ziggurat tables for the standard normal: layer edges `x[i]`
/// (decreasing, `x[1] = R`, `x[128] = 0`) and the rectangle/wedge split
/// ratios `r[i] = x[i+1] / x[i]`.
struct ZigTables {
    x: [f64; ZIG_LAYERS + 1],
    r: [f64; ZIG_LAYERS],
}

fn zig_tables() -> &'static ZigTables {
    static ZIG: std::sync::OnceLock<ZigTables> = std::sync::OnceLock::new();
    ZIG.get_or_init(|| {
        let mut x = [0.0f64; ZIG_LAYERS + 1];
        let mut f = (-0.5 * ZIG_R * ZIG_R).exp();
        x[0] = ZIG_V / f; // base block extends into the tail
        x[1] = ZIG_R;
        for i in 2..ZIG_LAYERS {
            x[i] = (-2.0 * (ZIG_V / x[i - 1] + f).ln()).sqrt();
            f = (-0.5 * x[i] * x[i]).exp();
        }
        let mut r = [0.0f64; ZIG_LAYERS];
        for i in 0..ZIG_LAYERS {
            r[i] = x[i + 1] / x[i];
        }
        ZigTables { x, r }
    })
}

/// Standard normal sample via the ziggurat method (Marsaglia–Tsang,
/// Doornik's layout): the per-propagation jitter draw is the hottest
/// arithmetic in a campaign, and the ziggurat's common case is one
/// uniform, one table compare and one multiply — no `ln`/`sqrt`/`cos`
/// like the Box–Muller sampler it replaced (which survives in
/// `noise::MeasurementModel`, where sampling is per trace bin, not per
/// event).
pub(crate) fn gaussian(rng: &mut SmallRng) -> f64 {
    let t = zig_tables();
    loop {
        let bits = rng.random::<u64>();
        let i = (bits & (ZIG_LAYERS as u64 - 1)) as usize;
        // Signed uniform in [-1, 1) from the top 53 bits.
        let u = (bits >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0;
        if u.abs() < t.r[i] {
            return u * t.x[i]; // strictly inside the layer rectangle
        }
        if i == 0 {
            // Base layer: exponential-rejection sample from the tail.
            loop {
                let x = rng.random::<f64>().max(f64::MIN_POSITIVE).ln() / ZIG_R;
                let y = rng.random::<f64>().max(f64::MIN_POSITIVE).ln();
                if -2.0 * y >= x * x {
                    return if u < 0.0 { x - ZIG_R } else { ZIG_R - x };
                }
            }
        }
        // Wedge: accept with probability density(x) within the layer.
        let x = u * t.x[i];
        let f0 = (-0.5 * (t.x[i] * t.x[i] - x * x)).exp();
        let f1 = (-0.5 * (t.x[i + 1] * t.x[i + 1] - x * x)).exp();
        if f1 + rng.random::<f64>() * (f0 - f1) < 1.0 {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_netlist::Netlist;

    fn tiny() -> Netlist {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let y = n.and2(a, b);
        let z = n.xor2(y, a);
        n.output("z", z);
        n
    }

    #[test]
    fn nominal_matches_library() {
        let n = tiny();
        let m = DelayModel::nominal(&n);
        assert_eq!(m.base_ps(GateId(0)), 350.0);
        assert_eq!(m.base_ps(GateId(1)), 450.0);
    }

    #[test]
    fn variation_is_bounded_and_deterministic() {
        let n = tiny();
        let m1 = DelayModel::with_variation(&n, 0.2, 0.0, 7);
        let m2 = DelayModel::with_variation(&n, 0.2, 0.0, 7);
        for g in [GateId(0), GateId(1)] {
            assert_eq!(m1.base_ps(g), m2.base_ps(g), "same seed, same device");
            let nom = n.gate(g).kind.nominal_delay_ps() as f64;
            assert!(m1.base_ps(g) >= nom * 0.8 && m1.base_ps(g) <= nom * 1.2);
        }
        let m3 = DelayModel::with_variation(&n, 0.2, 0.0, 8);
        assert_ne!(m1.base_ps(GateId(0)), m3.base_ps(GateId(0)), "different seed");
    }

    #[test]
    fn jitter_spreads_samples() {
        let n = tiny();
        let m = DelayModel::with_variation(&n, 0.0, 50.0, 1);
        let mut rng = SmallRng::seed_from_u64(42);
        let samples: Vec<u64> = (0..100).map(|_| m.sample_ps(GateId(0), &mut rng)).collect();
        let distinct: std::collections::HashSet<_> = samples.iter().collect();
        assert!(distinct.len() > 10, "jitter should vary the delay");
        assert!(samples.iter().all(|&d| d >= 1));
    }

    #[test]
    fn jitter_free_fast_path_matches_clamped_base() {
        let n = tiny();
        let m = DelayModel::with_variation(&n, 0.3, 0.0, 9);
        let mut rng = SmallRng::seed_from_u64(0);
        for g in [GateId(0), GateId(1)] {
            assert_eq!(m.sample_ps(g, &mut rng), m.base_ps(g).max(1.0) as u64);
        }
    }

    #[test]
    fn per_gate_reject_table_follows_override() {
        let n = tiny();
        let mut m = DelayModel::nominal(&n);
        for g in [GateId(0), GateId(1)] {
            assert_eq!(m.pulse_reject_of(g), DEFAULT_PULSE_REJECT_PS);
        }
        m.set_pulse_reject_ps(55);
        assert_eq!(m.pulse_reject_ps(), 55);
        for g in [GateId(0), GateId(1)] {
            assert_eq!(m.pulse_reject_of(g), 55);
        }
    }

    #[test]
    fn gaussian_has_roughly_unit_moments() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    /// The per-event draw must depend only on `(gate, ordinal, salt)`:
    /// identical inputs give identical delays regardless of call order,
    /// and each coordinate decorrelates the stream.
    #[test]
    fn event_sampler_is_order_invariant() {
        let n = tiny();
        let m = DelayModel::with_variation(&n, 0.2, 50.0, 7);
        let fwd: Vec<u64> = (0..32).map(|o| m.sample_event_ps(GateId(0), 0xabcd, o)).collect();
        let rev: Vec<u64> =
            (0..32).rev().map(|o| m.sample_event_ps(GateId(0), 0xabcd, o)).collect();
        let mut rev = rev;
        rev.reverse();
        assert_eq!(fwd, rev, "draws must not depend on call order");
        let distinct: std::collections::HashSet<_> = fwd.iter().collect();
        assert!(distinct.len() > 25, "ordinal must vary the draw");
        assert_ne!(
            m.sample_event_ps(GateId(0), 0xabcd, 0),
            m.sample_event_ps(GateId(1), 0xabcd, 0),
            "gate must vary the draw"
        );
        assert_ne!(
            m.sample_event_ps(GateId(0), 0xabcd, 0),
            m.sample_event_ps(GateId(0), 0xabce, 0),
            "salt must vary the draw"
        );
        assert!(fwd.iter().all(|&d| d >= 1));
    }

    /// With jitter off the event sampler is the clamped fixed base —
    /// same fast path as `sample_ps`.
    #[test]
    fn event_sampler_jitter_free_matches_base() {
        let n = tiny();
        let m = DelayModel::with_variation(&n, 0.3, 0.0, 9);
        for g in [GateId(0), GateId(1)] {
            assert_eq!(m.sample_event_ps(g, 1, 0), m.base_ps(g).max(1.0) as u64);
            assert_eq!(m.sample_event_ps(g, 2, 5), m.sample_event_ps(g, 3, 6));
        }
    }

    /// The staged tile sampler must be **bit-identical** to the scalar
    /// event sampler for every `(salt, gate, ordinal)` — the acceptance
    /// criterion the compiled≡wheel equivalence and the golden trains
    /// rest on. Covers full and partial tiles, adversarial salts
    /// (extreme hash values exercise the split conversion's high half
    /// and the table edges), and the jitter-free fast path.
    #[test]
    fn sample_event_tile_matches_scalar_sampler() {
        let n = tiny();
        for (sigma, salt_seed) in [(400.0, 0x5eed_u64), (50.0, 0xabcd), (0.0, 99)] {
            let m = DelayModel::with_variation(&n, 0.85, sigma, 7);
            let mut tile = JitterTile::new();
            for nt in [1usize, 7, 64] {
                for g in [GateId(0), GateId(1)] {
                    for j in 0..nt {
                        tile.salt[j] =
                            salt_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (j as u64 * 1729 + 5);
                        tile.ord[j] = (j * 3) as u32;
                    }
                    m.sample_event_tile(g, nt, &mut tile);
                    for j in 0..nt {
                        assert_eq!(
                            tile.d[j],
                            m.sample_event_ps(g, tile.salt[j], tile.ord[j]),
                            "sigma {sigma} tile {nt} gate {} draw {j}",
                            g.0
                        );
                    }
                }
            }
            // Adversarial keys: salts crafted so the hash lands near the
            // uniform extremes (sweep many salts; the table's first/last
            // knots and the 2^52 conversion boundary get hit by volume).
            let mut tile = JitterTile::new();
            for round in 0..64u64 {
                for j in 0..TILE {
                    tile.salt[j] = round.wrapping_mul(0x243f_6a88_85a3_08d3) ^ (j as u64) << 55;
                    tile.ord[j] = (round as u32) << 10 | j as u32;
                }
                m.sample_event_tile(GateId(1), TILE, &mut tile);
                for j in 0..TILE {
                    assert_eq!(tile.d[j], m.sample_event_ps(GateId(1), tile.salt[j], tile.ord[j]));
                }
            }
        }
    }

    /// The burst variant (one salt, 8 distinct keys) must also match the
    /// scalar sampler bit-for-bit, including short bursts.
    #[test]
    fn sample_event_ps_x8_matches_scalar_sampler() {
        let n = tiny();
        for sigma in [400.0, 0.0] {
            let m = DelayModel::with_variation(&n, 0.85, sigma, 7);
            for (salt, start) in [(0xdead_beef_u64, 0u32), (42, 1000)] {
                let gates = [0u32, 1, 0, 1, 0, 1, 0, 1];
                let ords: [u32; WIDE] = std::array::from_fn(|i| start + i as u32);
                for nb in [3usize, WIDE] {
                    let mut out = [0u64; WIDE];
                    m.sample_event_ps_x8(salt, &gates, &ords, nb, &mut out);
                    for i in 0..nb {
                        assert_eq!(
                            out[i],
                            m.sample_event_ps(GateId(gates[i]), salt, ords[i]),
                            "sigma {sigma} burst {nb} elem {i}"
                        );
                    }
                }
            }
        }
    }

    /// The runtime gate honors programmatic override in both directions.
    #[test]
    fn wide_jitter_gate_overrides() {
        set_wide_jitter(false);
        assert!(!wide_jitter_enabled());
        set_wide_jitter(true);
        assert!(wide_jitter_enabled());
    }

    /// The quantized inverse-CDF sampler must reproduce normal moments
    /// and quantiles like the ziggurat it parallels, within the
    /// table-truncation tolerance.
    #[test]
    fn quantized_gaussian_matches_normal() {
        let nsamp = 200_000usize;
        let mut mean = 0.0f64;
        let mut var = 0.0f64;
        let thresholds = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let phi = [0.02275, 0.15866, 0.5, 0.84134, 0.97725];
        let mut below = [0usize; 5];
        for i in 0..nsamp {
            let x = quantized_gaussian(event_hash(0x5eed, 0, i as u32));
            mean += x;
            var += x * x;
            for (c, &t) in below.iter_mut().zip(&thresholds) {
                *c += usize::from(x < t);
            }
            // Truncated at the outermost table knots.
            assert!(x.abs() < 3.6, "sample {x} outside truncation");
        }
        mean /= nsamp as f64;
        var = var / nsamp as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        for ((&c, &p), &t) in below.iter().zip(&phi).zip(&thresholds) {
            let emp = c as f64 / nsamp as f64;
            assert!((emp - p).abs() < 0.01, "CDF({t}) = {emp}, want {p}");
        }
    }

    /// The ziggurat must reproduce the normal CDF, not just its moments —
    /// a layer-table or wedge-acceptance bug skews quantiles long before
    /// it moves the variance.
    #[test]
    fn gaussian_matches_normal_quantiles() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 200_000usize;
        let thresholds = [-3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0];
        // Φ at the thresholds above.
        let phi = [0.00135, 0.02275, 0.15866, 0.5, 0.84134, 0.97725, 0.99865];
        let mut below = [0usize; 7];
        let mut beyond_r = 0usize;
        for _ in 0..n {
            let x = gaussian(&mut rng);
            for (c, &t) in below.iter_mut().zip(&thresholds) {
                *c += usize::from(x < t);
            }
            beyond_r += usize::from(x.abs() > ZIG_R);
        }
        for ((&c, &p), &t) in below.iter().zip(&phi).zip(&thresholds) {
            let emp = c as f64 / n as f64;
            assert!((emp - p).abs() < 0.01, "CDF({t}) = {emp}, want {p}");
        }
        // The tail path past R must actually fire with about 2(1 − Φ(R))
        // ≈ 5.7e-4 probability.
        assert!(beyond_r > 20 && beyond_r < 400, "tail samples: {beyond_r}");
    }
}
