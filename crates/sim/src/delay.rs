//! Per-instance gate delay model.
//!
//! Three layers, mirroring a real fabric:
//!
//! 1. **Nominal** delay per cell kind ([`gm_netlist::GateKind::nominal_delay_ps`]).
//! 2. **Process/placement variation**: a per-instance factor sampled once
//!    when the "device is manufactured" (i.e. when the model is built).
//!    On FPGA this captures routing-detour differences between LUTs.
//! 3. **Per-event jitter**: electrical noise, supply ripple and local
//!    temperature, sampled for every propagation. This is what makes two
//!    nominally-ordered edges occasionally swap — the effect that defeats
//!    undersized DelayUnits in Fig. 15.

use gm_netlist::{GateId, Netlist};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Default inertial pulse-rejection width: pulses narrower than this are
/// annihilated rather than propagated. Physically the gate's output
/// switching (rise/fall) time — much shorter than its propagation delay.
pub const DEFAULT_PULSE_REJECT_PS: u64 = 200;

/// Delay model for one instantiated netlist.
///
/// The per-instance tables are precomputed when the "device" is built:
/// `base_fixed_ps` holds the already-clamped integer delay used on the
/// jitter-free fast path, and `reject_ps` the per-gate inertial
/// pulse-rejection threshold, so the event hot loop never recomputes
/// either.
#[derive(Debug, Clone)]
pub struct DelayModel {
    base_ps: Vec<f64>,
    /// `max(base_ps, 1)` as integer ps: the whole sample when jitter is off.
    base_fixed_ps: Vec<u64>,
    jitter_sigma_ps: f64,
    pulse_reject_ps: u64,
    /// Per-gate rejection thresholds (currently uniform; kept per-instance
    /// so a future threshold-variation model is a table fill, not an API
    /// change).
    reject_ps: Vec<u64>,
}

impl DelayModel {
    fn from_base(base_ps: Vec<f64>, jitter_sigma_ps: f64) -> Self {
        let base_fixed_ps = base_ps.iter().map(|&d| d.max(1.0) as u64).collect();
        let reject_ps = vec![DEFAULT_PULSE_REJECT_PS; base_ps.len()];
        DelayModel {
            base_ps,
            base_fixed_ps,
            jitter_sigma_ps,
            pulse_reject_ps: DEFAULT_PULSE_REJECT_PS,
            reject_ps,
        }
    }

    /// Nominal delays only: no variation, no jitter. Deterministic; good
    /// for functional and directed glitch tests.
    pub fn nominal(n: &Netlist) -> Self {
        Self::from_base(n.gates().iter().map(|g| g.kind.nominal_delay_ps() as f64).collect(), 0.0)
    }

    /// Nominal delays scaled by a per-instance factor drawn uniformly from
    /// `[1 - spread, 1 + spread]`, plus per-event Gaussian jitter with the
    /// given sigma. `seed` fixes the "manufactured device".
    pub fn with_variation(n: &Netlist, spread: f64, jitter_sigma_ps: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&spread), "spread must be in [0,1)");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let base_ps = n
            .gates()
            .iter()
            .map(|g| {
                let f = 1.0 + spread * (rng.random::<f64>() * 2.0 - 1.0);
                g.kind.nominal_delay_ps() as f64 * f
            })
            .collect();
        Self::from_base(base_ps, jitter_sigma_ps)
    }

    /// Per-event jitter sigma in ps.
    pub fn jitter_sigma_ps(&self) -> f64 {
        self.jitter_sigma_ps
    }

    /// Override the per-event jitter sigma.
    pub fn set_jitter_sigma_ps(&mut self, sigma: f64) {
        self.jitter_sigma_ps = sigma;
    }

    /// Inertial pulse-rejection width in ps (see
    /// [`DEFAULT_PULSE_REJECT_PS`]).
    pub fn pulse_reject_ps(&self) -> u64 {
        self.pulse_reject_ps
    }

    /// Override the inertial pulse-rejection width (0 = pure transport).
    pub fn set_pulse_reject_ps(&mut self, width: u64) {
        self.pulse_reject_ps = width;
        self.reject_ps.iter_mut().for_each(|r| *r = width);
    }

    /// Inertial pulse-rejection threshold of one gate instance in ps.
    #[inline]
    pub fn pulse_reject_of(&self, gate: GateId) -> u64 {
        self.reject_ps[gate.index()]
    }

    /// Base (nominal × process) delay of a gate instance in ps.
    pub fn base_ps(&self, gate: GateId) -> f64 {
        self.base_ps[gate.index()]
    }

    /// Sample the delay of one propagation event through `gate`.
    /// Always at least 1 ps so causality is preserved.
    #[inline]
    pub fn sample_ps(&self, gate: GateId, rng: &mut SmallRng) -> u64 {
        if self.jitter_sigma_ps > 0.0 {
            (self.base_ps[gate.index()] + gaussian(rng) * self.jitter_sigma_ps).max(1.0) as u64
        } else {
            self.base_fixed_ps[gate.index()]
        }
    }
}

/// Number of ziggurat layers.
const ZIG_LAYERS: usize = 128;
/// Rightmost layer edge of the 128-layer normal ziggurat (Doornik).
const ZIG_R: f64 = 3.442619855899;
/// Area of each ziggurat block for 128 layers (Doornik).
const ZIG_V: f64 = 9.91256303526217e-3;

/// Ziggurat tables for the standard normal: layer edges `x[i]`
/// (decreasing, `x[1] = R`, `x[128] = 0`) and the rectangle/wedge split
/// ratios `r[i] = x[i+1] / x[i]`.
struct ZigTables {
    x: [f64; ZIG_LAYERS + 1],
    r: [f64; ZIG_LAYERS],
}

fn zig_tables() -> &'static ZigTables {
    static ZIG: std::sync::OnceLock<ZigTables> = std::sync::OnceLock::new();
    ZIG.get_or_init(|| {
        let mut x = [0.0f64; ZIG_LAYERS + 1];
        let mut f = (-0.5 * ZIG_R * ZIG_R).exp();
        x[0] = ZIG_V / f; // base block extends into the tail
        x[1] = ZIG_R;
        for i in 2..ZIG_LAYERS {
            x[i] = (-2.0 * (ZIG_V / x[i - 1] + f).ln()).sqrt();
            f = (-0.5 * x[i] * x[i]).exp();
        }
        let mut r = [0.0f64; ZIG_LAYERS];
        for i in 0..ZIG_LAYERS {
            r[i] = x[i + 1] / x[i];
        }
        ZigTables { x, r }
    })
}

/// Standard normal sample via the ziggurat method (Marsaglia–Tsang,
/// Doornik's layout): the per-propagation jitter draw is the hottest
/// arithmetic in a campaign, and the ziggurat's common case is one
/// uniform, one table compare and one multiply — no `ln`/`sqrt`/`cos`
/// like the Box–Muller sampler it replaced (which survives in
/// `noise::MeasurementModel`, where sampling is per trace bin, not per
/// event).
pub(crate) fn gaussian(rng: &mut SmallRng) -> f64 {
    let t = zig_tables();
    loop {
        let bits = rng.random::<u64>();
        let i = (bits & (ZIG_LAYERS as u64 - 1)) as usize;
        // Signed uniform in [-1, 1) from the top 53 bits.
        let u = (bits >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0;
        if u.abs() < t.r[i] {
            return u * t.x[i]; // strictly inside the layer rectangle
        }
        if i == 0 {
            // Base layer: exponential-rejection sample from the tail.
            loop {
                let x = rng.random::<f64>().max(f64::MIN_POSITIVE).ln() / ZIG_R;
                let y = rng.random::<f64>().max(f64::MIN_POSITIVE).ln();
                if -2.0 * y >= x * x {
                    return if u < 0.0 { x - ZIG_R } else { ZIG_R - x };
                }
            }
        }
        // Wedge: accept with probability density(x) within the layer.
        let x = u * t.x[i];
        let f0 = (-0.5 * (t.x[i] * t.x[i] - x * x)).exp();
        let f1 = (-0.5 * (t.x[i + 1] * t.x[i + 1] - x * x)).exp();
        if f1 + rng.random::<f64>() * (f0 - f1) < 1.0 {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_netlist::Netlist;

    fn tiny() -> Netlist {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let y = n.and2(a, b);
        let z = n.xor2(y, a);
        n.output("z", z);
        n
    }

    #[test]
    fn nominal_matches_library() {
        let n = tiny();
        let m = DelayModel::nominal(&n);
        assert_eq!(m.base_ps(GateId(0)), 350.0);
        assert_eq!(m.base_ps(GateId(1)), 450.0);
    }

    #[test]
    fn variation_is_bounded_and_deterministic() {
        let n = tiny();
        let m1 = DelayModel::with_variation(&n, 0.2, 0.0, 7);
        let m2 = DelayModel::with_variation(&n, 0.2, 0.0, 7);
        for g in [GateId(0), GateId(1)] {
            assert_eq!(m1.base_ps(g), m2.base_ps(g), "same seed, same device");
            let nom = n.gate(g).kind.nominal_delay_ps() as f64;
            assert!(m1.base_ps(g) >= nom * 0.8 && m1.base_ps(g) <= nom * 1.2);
        }
        let m3 = DelayModel::with_variation(&n, 0.2, 0.0, 8);
        assert_ne!(m1.base_ps(GateId(0)), m3.base_ps(GateId(0)), "different seed");
    }

    #[test]
    fn jitter_spreads_samples() {
        let n = tiny();
        let m = DelayModel::with_variation(&n, 0.0, 50.0, 1);
        let mut rng = SmallRng::seed_from_u64(42);
        let samples: Vec<u64> = (0..100).map(|_| m.sample_ps(GateId(0), &mut rng)).collect();
        let distinct: std::collections::HashSet<_> = samples.iter().collect();
        assert!(distinct.len() > 10, "jitter should vary the delay");
        assert!(samples.iter().all(|&d| d >= 1));
    }

    #[test]
    fn jitter_free_fast_path_matches_clamped_base() {
        let n = tiny();
        let m = DelayModel::with_variation(&n, 0.3, 0.0, 9);
        let mut rng = SmallRng::seed_from_u64(0);
        for g in [GateId(0), GateId(1)] {
            assert_eq!(m.sample_ps(g, &mut rng), m.base_ps(g).max(1.0) as u64);
        }
    }

    #[test]
    fn per_gate_reject_table_follows_override() {
        let n = tiny();
        let mut m = DelayModel::nominal(&n);
        for g in [GateId(0), GateId(1)] {
            assert_eq!(m.pulse_reject_of(g), DEFAULT_PULSE_REJECT_PS);
        }
        m.set_pulse_reject_ps(55);
        assert_eq!(m.pulse_reject_ps(), 55);
        for g in [GateId(0), GateId(1)] {
            assert_eq!(m.pulse_reject_of(g), 55);
        }
    }

    #[test]
    fn gaussian_has_roughly_unit_moments() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    /// The ziggurat must reproduce the normal CDF, not just its moments —
    /// a layer-table or wedge-acceptance bug skews quantiles long before
    /// it moves the variance.
    #[test]
    fn gaussian_matches_normal_quantiles() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 200_000usize;
        let thresholds = [-3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0];
        // Φ at the thresholds above.
        let phi = [0.00135, 0.02275, 0.15866, 0.5, 0.84134, 0.97725, 0.99865];
        let mut below = [0usize; 7];
        let mut beyond_r = 0usize;
        for _ in 0..n {
            let x = gaussian(&mut rng);
            for (c, &t) in below.iter_mut().zip(&thresholds) {
                *c += usize::from(x < t);
            }
            beyond_r += usize::from(x.abs() > ZIG_R);
        }
        for ((&c, &p), &t) in below.iter().zip(&phi).zip(&thresholds) {
            let emp = c as f64 / n as f64;
            assert!((emp - p).abs() < 0.01, "CDF({t}) = {emp}, want {p}");
        }
        // The tail path past R must actually fire with about 2(1 − Φ(R))
        // ≈ 5.7e-4 probability.
        assert!(beyond_r > 20 && beyond_r < 400, "tail samples: {beyond_r}");
    }
}
