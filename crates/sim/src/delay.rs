//! Per-instance gate delay model.
//!
//! Three layers, mirroring a real fabric:
//!
//! 1. **Nominal** delay per cell kind ([`gm_netlist::GateKind::nominal_delay_ps`]).
//! 2. **Process/placement variation**: a per-instance factor sampled once
//!    when the "device is manufactured" (i.e. when the model is built).
//!    On FPGA this captures routing-detour differences between LUTs.
//! 3. **Per-event jitter**: electrical noise, supply ripple and local
//!    temperature, sampled for every propagation. This is what makes two
//!    nominally-ordered edges occasionally swap — the effect that defeats
//!    undersized DelayUnits in Fig. 15.

use gm_netlist::{GateId, Netlist};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Default inertial pulse-rejection width: pulses narrower than this are
/// annihilated rather than propagated. Physically the gate's output
/// switching (rise/fall) time — much shorter than its propagation delay.
pub const DEFAULT_PULSE_REJECT_PS: u64 = 200;

/// Delay model for one instantiated netlist.
#[derive(Debug, Clone)]
pub struct DelayModel {
    base_ps: Vec<f64>,
    jitter_sigma_ps: f64,
    pulse_reject_ps: u64,
}

impl DelayModel {
    /// Nominal delays only: no variation, no jitter. Deterministic; good
    /// for functional and directed glitch tests.
    pub fn nominal(n: &Netlist) -> Self {
        DelayModel {
            base_ps: n.gates().iter().map(|g| g.kind.nominal_delay_ps() as f64).collect(),
            jitter_sigma_ps: 0.0,
            pulse_reject_ps: DEFAULT_PULSE_REJECT_PS,
        }
    }

    /// Nominal delays scaled by a per-instance factor drawn uniformly from
    /// `[1 - spread, 1 + spread]`, plus per-event Gaussian jitter with the
    /// given sigma. `seed` fixes the "manufactured device".
    pub fn with_variation(n: &Netlist, spread: f64, jitter_sigma_ps: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&spread), "spread must be in [0,1)");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let base_ps = n
            .gates()
            .iter()
            .map(|g| {
                let f = 1.0 + spread * (rng.random::<f64>() * 2.0 - 1.0);
                g.kind.nominal_delay_ps() as f64 * f
            })
            .collect();
        DelayModel { base_ps, jitter_sigma_ps, pulse_reject_ps: DEFAULT_PULSE_REJECT_PS }
    }

    /// Per-event jitter sigma in ps.
    pub fn jitter_sigma_ps(&self) -> f64 {
        self.jitter_sigma_ps
    }

    /// Override the per-event jitter sigma.
    pub fn set_jitter_sigma_ps(&mut self, sigma: f64) {
        self.jitter_sigma_ps = sigma;
    }

    /// Inertial pulse-rejection width in ps (see
    /// [`DEFAULT_PULSE_REJECT_PS`]).
    pub fn pulse_reject_ps(&self) -> u64 {
        self.pulse_reject_ps
    }

    /// Override the inertial pulse-rejection width (0 = pure transport).
    pub fn set_pulse_reject_ps(&mut self, width: u64) {
        self.pulse_reject_ps = width;
    }

    /// Base (nominal × process) delay of a gate instance in ps.
    pub fn base_ps(&self, gate: GateId) -> f64 {
        self.base_ps[gate.index()]
    }

    /// Sample the delay of one propagation event through `gate`.
    /// Always at least 1 ps so causality is preserved.
    pub fn sample_ps(&self, gate: GateId, rng: &mut SmallRng) -> u64 {
        let mut d = self.base_ps[gate.index()];
        if self.jitter_sigma_ps > 0.0 {
            d += gaussian(rng) * self.jitter_sigma_ps;
        }
        d.max(1.0) as u64
    }
}

/// Standard normal sample (Box–Muller; one value per call).
pub(crate) fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_netlist::Netlist;

    fn tiny() -> Netlist {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let y = n.and2(a, b);
        let z = n.xor2(y, a);
        n.output("z", z);
        n
    }

    #[test]
    fn nominal_matches_library() {
        let n = tiny();
        let m = DelayModel::nominal(&n);
        assert_eq!(m.base_ps(GateId(0)), 350.0);
        assert_eq!(m.base_ps(GateId(1)), 450.0);
    }

    #[test]
    fn variation_is_bounded_and_deterministic() {
        let n = tiny();
        let m1 = DelayModel::with_variation(&n, 0.2, 0.0, 7);
        let m2 = DelayModel::with_variation(&n, 0.2, 0.0, 7);
        for g in [GateId(0), GateId(1)] {
            assert_eq!(m1.base_ps(g), m2.base_ps(g), "same seed, same device");
            let nom = n.gate(g).kind.nominal_delay_ps() as f64;
            assert!(m1.base_ps(g) >= nom * 0.8 && m1.base_ps(g) <= nom * 1.2);
        }
        let m3 = DelayModel::with_variation(&n, 0.2, 0.0, 8);
        assert_ne!(m1.base_ps(GateId(0)), m3.base_ps(GateId(0)), "different seed");
    }

    #[test]
    fn jitter_spreads_samples() {
        let n = tiny();
        let m = DelayModel::with_variation(&n, 0.0, 50.0, 1);
        let mut rng = SmallRng::seed_from_u64(42);
        let samples: Vec<u64> = (0..100).map(|_| m.sample_ps(GateId(0), &mut rng)).collect();
        let distinct: std::collections::HashSet<_> = samples.iter().collect();
        assert!(distinct.len() > 10, "jitter should vary the delay");
        assert!(samples.iter().all(|&d| d >= 1));
    }

    #[test]
    fn gaussian_has_roughly_unit_moments() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
