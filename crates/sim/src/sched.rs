//! Compiled glitch schedule + 64-lane sweep executor.
//!
//! The dynamic engine ([`crate::engine`]) re-discovers the same event
//! cascade for every trace: pop, re-evaluate fan-out, push. For the
//! glitch campaigns of Table I / Fig. 15 the *topology* of that cascade
//! is fixed per trace-set — only the stimulus values and the per-event
//! jitter vary. This module exploits that:
//!
//! * [`CompiledSchedule::compile`] runs the event cascade **once** over
//!   the jitter-free base delays, recording a superset of every gate
//!   evaluation any trace can perform, linearized in base `(time, seq)`
//!   order. Compilation refuses netlists it cannot represent (clocked
//!   cores, cascades past the node cap) by returning `None`; callers
//!   then stay on the dynamic wheel wholesale.
//! * [`SchedRunner::run_pass`] sweeps that linear schedule once for up
//!   to 64 traces ("lanes") in parallel, carrying lane-word net values
//!   and drawing per-lane jitter with the same order-invariant counter
//!   hash the scalar engine uses ([`DelayModel::sample_event_ps`]).
//!
//! # Equivalence contract
//!
//! Per lane, a pass produces the **identical timed-transition multiset**
//! (time, net, value, weight) and final net values as the scalar wheel
//! run with the same trace seed — not the same emission *order*; every
//! real power sink (time-binning, counting) is order-insensitive, and
//! the property tests compare sorted streams. The contract holds because
//! jitter draws depend only on `(gate, ordinal, seed)`, so causally
//! independent events commute; where commutation could fail, the sweep
//! detects it and flags the lane **divergent**:
//!
//! * a gate observes pin events out of actual-time order (jitter
//!   reordered two arrivals across the base order), or tied between
//!   distinct gate-driven triggers (the scalar pop order of such a tie
//!   is not reconstructible from the schedule; ties between external
//!   stimulus slots are fine — slot order *is* the scalar seq order);
//! * an inertial annihilation must retract an output event that already
//!   committed with downstream consumers in the schedule.
//!
//! Divergent lanes are abandoned — their results are never emitted — and
//! the caller re-runs just those traces on the scalar wheel with the
//! same per-trace seed, which is bit-identical by construction. On the
//! bench gadget under Fig. 15 jitter (σ = 400 ps) about 2% of lanes
//! diverge, so the fallback is a small fraction of campaign time.

use crate::delay::{event_hash, quantized_gaussian, wide_jitter_enabled, DelayModel, JitterTile};
use crate::engine::{SimGraph, JITTER_SALT_XOR, MAX_PINS};
use crate::power::LaneSink;
use gm_netlist::{Csr, GateId, NetId};
use gm_obs::{Counter, Report, Stopwatch};
use std::sync::atomic::{AtomicU8, Ordering};

/// Traces per sweep pass (one bit per lane in every net-value word).
pub const LANES: usize = 64;

/// Runtime switch for deferred divergence repair. Three states so the
/// env var is read once, lazily: 0 = undecided, 1 = batched, 2 = inline.
static REPAIR_BATCH: AtomicU8 = AtomicU8::new(0);

/// Whether divergent-lane repair is deferred into a [`RepairQueue`] and
/// drained in batches. Decided once from `GM_REPAIR_BATCH` (`0`/`off`
/// pins the legacy inline per-lane fallback, anything else — including
/// unset — the batched drain). Either way every abandoned lane re-runs
/// the same seed on the same scalar wheel, so the gate is a performance
/// choice, never a correctness one; CI diffs campaign stdout across it
/// byte-for-byte.
pub fn repair_batch_enabled() -> bool {
    match REPAIR_BATCH.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = !matches!(std::env::var("GM_REPAIR_BATCH"),
                Ok(v) if v == "0" || v.eq_ignore_ascii_case("off"));
            REPAIR_BATCH.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Force deferred repair on or off, overriding the env default (the
/// equivalence tests and benchmarks A/B both paths in-process).
pub fn set_repair_batch(enabled: bool) {
    REPAIR_BATCH.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
}

/// One abandoned divergent lane, queued for deferred scalar repair:
/// everything the wheel rerun needs (the per-trace seed and the lane's
/// stimulus-slot values) plus the caller's label slot, so the repaired
/// result lands exactly where the inline fallback would have written it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairTicket {
    /// Per-trace simulation seed of the abandoned lane.
    pub seed: u64,
    /// Stimulus-slot values, bit `s` = slot `s` (campaign schedules hold
    /// a handful of slots; 32 is far above any compiled plan in use).
    pub stim_bits: u32,
    /// Caller-defined output slot; the class/row encoding is the
    /// caller's own and is never interpreted here.
    pub slot: u32,
}

/// Deferred divergence-repair queue: divergent `(seed, stim, slot)`
/// tuples collected across sweep passes and drained in one batch. The
/// batching amortizes the stopwatch span over the whole drain and keeps
/// the scalar wheel's working set hot across consecutive reruns instead
/// of interleaving one cold rerun per lane into the sweep loop.
///
/// Ordering contract: [`RepairQueue::drain`] visits tickets in push
/// order, and every rerun is a pure function of its ticket (the wheel
/// is reset to the ticket's seed), so deferring repair never changes a
/// campaign's bytes — results land in the same label slots with the
/// same values the inline fallback would have produced.
#[derive(Debug, Default)]
pub struct RepairQueue {
    tickets: Vec<RepairTicket>,
}

impl RepairQueue {
    /// An empty queue (capacity grows on first use and is recycled).
    pub fn new() -> Self {
        RepairQueue::default()
    }

    /// Queue one divergent lane for deferred repair.
    pub fn push(&mut self, seed: u64, stim_bits: u32, slot: u32) {
        self.tickets.push(RepairTicket { seed, stim_bits, slot });
    }

    /// Tickets currently queued.
    pub fn len(&self) -> usize {
        self.tickets.len()
    }

    /// Whether no repair is pending.
    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }

    /// Drain every queued ticket in push order under **one** hoisted
    /// `fallback_ns` span, calling `repair` per ticket, and account the
    /// batch in `stats` (`repair.lanes` / `repair.drains`). Returns the
    /// batch size (0 for an empty queue, which opens no span).
    pub fn drain(&mut self, stats: &mut SchedStats, mut repair: impl FnMut(RepairTicket)) -> usize {
        if self.tickets.is_empty() {
            return 0;
        }
        let span = stats.fallback_ns.span();
        let repair_span = gm_obs::trace::span("sched.repair");
        for &t in &self.tickets {
            repair(t);
        }
        drop(repair_span);
        drop(span);
        let n = self.tickets.len();
        stats.repair_drains.inc();
        stats.repair_lanes.add(n as u64);
        self.tickets.clear();
        n
    }
}

/// Compiled-cascade size cap: past this the superset cascade (deeply
/// reconvergent fan-out rings up exponentially many potential events)
/// stops paying for itself and [`CompiledSchedule::compile`] hands the
/// netlist back to the dynamic wheel.
const NODE_CAP: usize = 1 << 14;

/// Below this many toggled lanes a node visit draws jitter through the
/// scalar chain instead of the staged tile: four short stage loops cost
/// more than they save when only a couple of lanes toggle.
const TILE_MIN_DRAWS: u32 = 4;

/// Marks a stimulus node's `gate` field.
const STIM: u32 = u32::MAX;

/// Arrival-source tag ([`GateLane::src`]): no arrival seen this pass.
/// Zero so a fresh pass is one memset of the whole [`GateLane`] plane.
const NO_SRC: u16 = 0;
/// Arrival-source tag: last arrival was an external stimulus slot (any
/// slot — slot order is the scalar seq order, so stimulus ties are
/// always resolvable).
const STIM_SRC: u16 = 1;
/// Gate-trigger arrival tags start here: sweep index `k` encodes as
/// `k + SRC_BIAS` (fits `u16`: `NODE_CAP + SRC_BIAS < 65536`).
const SRC_BIAS: u16 = 2;
/// Fire-chain terminator ([`GateLane::last_node`] / `prev_fire`): zero
/// for the memset; a live node index `c` encodes as `c + 1`.
const NO_NODE: u16 = 0;

/// Per-(gate, lane) fire-side sweep state — the fields the draw/commit
/// loop reads and writes for every toggled lane. Split from
/// [`PinLane`] so the hottest loop touches an 8-byte record (one cache
/// line per eight lanes) and so the per-pass reset per plane is a
/// single zero-fill (every sentinel is 0). Times are `u32`:
/// compilation refuses schedules whose worst-case time bound
/// overflows, so in-pass actual times always fit.
#[derive(Debug, Clone, Copy, Default)]
struct GateLane {
    /// Last *scheduled* output-fire time (never reset by annihilation —
    /// scalar `out_last` parity).
    out_last: u32,
    /// Newest live fire of this gate (head of the `prev_fire` chain,
    /// node index + 1, [`NO_NODE`] when empty).
    last_node: u16,
    /// Toggling-evaluation ordinal this pass (the jitter-draw counter).
    ord: u16,
}

/// Per-(gate, lane) pin-arrival state — read only by the multi-source
/// monotonicity check, which most visits skip wholesale (`mono`), so
/// it lives apart from the fire-side [`GateLane`] plane.
#[derive(Debug, Clone, Copy, Default)]
struct PinLane {
    /// Newest pin-arrival time seen by the pin-order check.
    last_pin: u32,
    /// Source tag of that arrival ([`NO_SRC`]/[`STIM_SRC`]/`k + SRC_BIAS`).
    src: u16,
    _pad: u16,
}

/// One potential event in the compiled cascade.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Evaluated gate, or [`STIM`] for an external stimulus slot.
    gate: u32,
    /// Toggled net (gate output, or the stimulated net).
    net: u32,
    /// Triggering node (sweep index) for gate nodes; the stimulus slot
    /// index for stimulus nodes.
    trigger: u32,
    /// All the gate's pins hang off one source (single distinct input
    /// net): arrivals are monotone by construction — a driver's fires
    /// strictly increase in actual time and sweep in fire order — so the
    /// per-lane pin-order check is skipped wholesale.
    mono: bool,
    /// Jitter-free base time: the sweep ordering key (also the exact
    /// per-lane time for stimulus nodes — external edges carry no
    /// jitter).
    time: u64,
    /// Worst-case actual event time (base cascade + truncated-jitter
    /// ceiling + driver-edge clamps): when `wmax <= t_end` the whole
    /// lane-word commits without a per-lane window check.
    wmax: u64,
}

/// The per-trace-set static schedule: every gate evaluation any trace
/// can perform, in jitter-free `(time, seq)` order, with its trigger
/// edges. Immutable — build once per (netlist, stimulus plan), share
/// across worker threads (e.g. behind an `Arc`).
#[derive(Debug, Clone)]
pub struct CompiledSchedule {
    nodes: Vec<Node>,
    /// node -> dependent gate evaluations.
    children: Csr,
    num_stims: usize,
    /// Gates the cascade evaluates, with their visit counts: the
    /// runner's per-pass reset list (only these gates' lane state is
    /// ever read) and the bound on per-lane jitter ordinals.
    visited_gates: Vec<(u32, u32)>,
    /// Total gate visits of one pass (upper bound on per-lane jitter
    /// draws).
    num_slots: u32,
}

impl CompiledSchedule {
    /// Compile the cascade for `stims` (net, time) stimulus slots over
    /// the base delays of `delays`.
    ///
    /// Returns `None` — caller stays on the scalar wheel — when the
    /// netlist is clocked (flip-flop updates are the clocked harness's
    /// business), a stimulated net is gate-driven, or the cascade
    /// exceeds the node cap.
    pub fn compile(
        graph: &SimGraph,
        delays: &DelayModel,
        stims: &[(NetId, u64)],
    ) -> Option<CompiledSchedule> {
        if !graph.ff_gates.is_empty() || stims.is_empty() {
            return None;
        }
        for &(net, _) in stims {
            if graph.driver_gate[net.index()] != u32::MAX {
                return None;
            }
        }
        // Superset cascade over base delays: the dynamic engine's pop
        // loop with no values — every consumer evaluation is assumed to
        // potentially toggle.
        let mut gate: Vec<u32> = Vec::new();
        let mut net: Vec<u32> = Vec::new();
        let mut trigger: Vec<u32> = Vec::new();
        let mut time: Vec<u64> = Vec::new();
        let mut wmax: Vec<u64> = Vec::new();
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>> =
            std::collections::BinaryHeap::new();
        for (s, &(n, t)) in stims.iter().enumerate() {
            gate.push(STIM);
            net.push(n.0);
            trigger.push(s as u32);
            time.push(t);
            wmax.push(t);
            heap.push(std::cmp::Reverse((t, s as u32)));
        }
        // Worst-case actual delay per gate: base (process-varied) plus
        // the jitter truncation ceiling (the quantile table never leaves
        // ±3.54σ; 3.6 adds rounding slack).
        let sigma = delays.jitter_sigma_ps();
        let wc_delay =
            |g: u32| -> u64 { (delays.base_ps(GateId(g)) + 3.6 * sigma).max(1.0).ceil() as u64 };
        // Running worst-case fire time per gate: mirrors the runner's
        // `t = max(t_trigger + d, out_last + 1)` clamp over maxima.
        let mut gmax: Vec<u64> = vec![0; graph.num_gates()];
        let mut order: Vec<u32> = Vec::new();
        while let Some(std::cmp::Reverse((t, j))) = heap.pop() {
            order.push(j);
            for &g in graph.consumers.row(net[j as usize] as usize) {
                if gate.len() >= NODE_CAP {
                    return None;
                }
                let k = gate.len() as u32;
                gate.push(g);
                net.push(graph.outputs[g as usize]);
                trigger.push(j);
                time.push(t + delays.base_fixed_of(GateId(g)).max(1));
                let gm = &mut gmax[g as usize];
                *gm = (wmax[j as usize] + wc_delay(g)).max(*gm + 1);
                wmax.push(*gm);
                heap.push(std::cmp::Reverse((time[k as usize], k)));
            }
        }
        // Gates whose pins all hang off one input net see arrivals in
        // monotone actual-time order by construction (a single driver's
        // fires strictly increase and sweep in fire order; stimulus slots
        // sweep in scalar seq order), so the runner skips the per-lane
        // pin-order check for them.
        let mono_of: Vec<bool> = (0..graph.num_gates())
            .map(|g| {
                let row = graph.pins.row(g);
                row.windows(2).all(|w| w[0] == w[1])
            })
            .collect();
        // The runner keeps in-pass times as u32 (see [`GateLane`]): a
        // schedule whose worst-case bound could overflow — stimulus
        // times past ~4.29 ms, far beyond any glitch window — stays on
        // the scalar wheel.
        if wmax.iter().any(|&w| w >= u32::MAX as u64) {
            return None;
        }
        // Renumber into sweep (pop) order so the runner walks `nodes`
        // linearly. The heap tie-break by creation index keeps a gate's
        // own evaluations in trigger order and puts stimulus slots —
        // created first — ahead of gate events at equal times, exactly
        // like the scalar engine's `(time, seq)` pops.
        let mut sweep_of = vec![0u32; gate.len()];
        for (sweep, &creation) in order.iter().enumerate() {
            sweep_of[creation as usize] = sweep as u32;
        }
        let mut nodes = Vec::with_capacity(order.len());
        for &creation in &order {
            let c = creation as usize;
            let trig = if gate[c] == STIM { trigger[c] } else { sweep_of[trigger[c] as usize] };
            let mono = gate[c] == STIM || mono_of[gate[c] as usize];
            nodes.push(Node {
                gate: gate[c],
                net: net[c],
                trigger: trig,
                mono,
                time: time[c],
                wmax: wmax[c],
            });
        }
        let mut child_pairs: Vec<(u32, u32)> = Vec::with_capacity(nodes.len());
        for (k, node) in nodes.iter().enumerate() {
            if node.gate != STIM {
                child_pairs.push((node.trigger, k as u32));
            }
        }
        child_pairs.sort_unstable();
        let children = Csr::from_pairs(nodes.len(), &child_pairs);
        // Visited-gate census: the per-lane jitter ordinal advances at
        // most once per visit, so a gate visited `v` times never draws
        // past ordinal `v - 1`, and only these gates' lane state needs
        // resetting between passes.
        let mut visits = vec![0u32; graph.num_gates()];
        for node in &nodes {
            if node.gate != STIM {
                visits[node.gate as usize] += 1;
            }
        }
        let mut visited_gates = Vec::new();
        let mut num_slots = 0u32;
        for (g, &v) in visits.iter().enumerate() {
            if v > 0 {
                visited_gates.push((g as u32, v));
                num_slots += v;
            }
        }
        Some(CompiledSchedule { nodes, children, num_stims: stims.len(), visited_gates, num_slots })
    }

    /// Number of potential events per sweep (stimulus slots included).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of external stimulus slots.
    pub fn num_stims(&self) -> usize {
        self.num_stims
    }

    /// Total gate visits of one sweep — the upper bound on per-lane
    /// jitter draws (0 means no gate is ever evaluated).
    pub fn num_jitter_slots(&self) -> usize {
        self.num_slots as usize
    }
}

/// Sweep counters of a [`SchedRunner`] (zero-sized under `obs-off`).
#[derive(Debug, Default)]
pub struct SchedStats {
    /// Sweep passes executed.
    pub passes: Counter,
    /// Schedule nodes swept (nodes × passes).
    pub nodes_swept: Counter,
    /// Traces entered into lanes.
    pub lanes: Counter,
    /// Lanes abandoned to the scalar fallback.
    pub fallback_lanes: Counter,
    /// Time inside [`SchedRunner::run_pass`].
    pub pass_ns: Stopwatch,
    /// Caller-reported time re-running divergent lanes on the wheel
    /// (public so trace sources can wrap their fallback loop in
    /// `stats.fallback_ns.span()`).
    pub fallback_ns: Stopwatch,
    /// Jitter draws taken through the staged tile sampler (the wide
    /// path: every draw is consumed, nothing is over-drawn).
    pub jitter_batched: Counter,
    /// Jitter draws taken scalar inside the sweep loop (wide path off,
    /// or too few toggled lanes for a tile to pay).
    pub jitter_scalar: Counter,
    /// Divergent lanes repaired through a deferred [`RepairQueue`]
    /// drain (inline fallbacks count only in `fallback_lanes`).
    pub repair_lanes: Counter,
    /// Batched drains of the repair queue; `repair_lanes / repair_drains`
    /// is the realized batch size.
    pub repair_drains: Counter,
}

impl SchedStats {
    /// Export under `<prefix>.*` (canonically `sim.sched.*`).
    pub fn report_into(&self, prefix: &str, r: &mut Report) {
        r.set_nonzero(&format!("{prefix}.passes"), self.passes.get());
        r.set_nonzero(&format!("{prefix}.nodes_swept"), self.nodes_swept.get());
        r.set_nonzero(&format!("{prefix}.lanes"), self.lanes.get());
        r.set_nonzero(&format!("{prefix}.fallback_lanes"), self.fallback_lanes.get());
        r.set_nonzero(&format!("{prefix}.pass_ns"), self.pass_ns.ns());
        r.set_nonzero(&format!("{prefix}.fallback_ns"), self.fallback_ns.ns());
        r.set_nonzero(&format!("{prefix}.jitter.batched"), self.jitter_batched.get());
        r.set_nonzero(&format!("{prefix}.jitter.scalar"), self.jitter_scalar.get());
        r.set_nonzero(&format!("{prefix}.repair.lanes"), self.repair_lanes.get());
        r.set_nonzero(&format!("{prefix}.repair.drains"), self.repair_drains.get());
        // The drain span feeds `fallback_ns`, exported above; mirror it
        // under the repair prefix so the floor reads off one namespace.
        r.set_nonzero(&format!("{prefix}.repair.ns"), self.fallback_ns.ns());
    }
}

/// Reusable 64-lane sweep state over some [`CompiledSchedule`]. One per
/// worker thread; arrays are sized on first use and recycled across
/// passes without reallocation.
#[derive(Debug)]
pub struct SchedRunner {
    // Per (node, lane): actual event time.
    node_time: Vec<u64>,
    // Per (node, lane): previous live fire of the same gate (node index
    // + 1, [`NO_NODE`] at the chain end) — the compiled stand-in for
    // "events of this driver still in the queue", which scalar
    // annihilation kills wholesale via its version bump.
    prev_fire: Vec<u16>,
    // Per node (lane masks):
    fired: Vec<u64>,
    cancelled: Vec<u64>,
    applied: Vec<u64>,
    node_value: Vec<u64>,
    // Per net: lane-word values.
    values: Vec<u64>,
    // Per gate: lane-word last *scheduled* output values.
    out_sched: Vec<u64>,
    // Per (gate, lane): interleaved sweep state.
    glanes: Vec<GateLane>,
    // Stage scratch of the batched jitter sampler (persistent so the
    // buffers stay cache-hot across node visits).
    tile: JitterTile,
    // Deferred candidate times of inertially-rejected lanes (persistent
    // scratch: a visit writes `tarr[l]` before phase 3 reads it, only
    // for lanes in that visit's `rej` mask — stale entries are dead).
    tarr: [u64; LANES],
    salts: [u64; LANES],
    // Per (gate, lane): pin-arrival state of the monotonicity check.
    planes_pin: Vec<PinLane>,
    /// Sweep counters; `stats.fallback_ns` is the caller's to feed.
    pub stats: SchedStats,
}

impl Default for SchedRunner {
    fn default() -> Self {
        SchedRunner {
            node_time: Vec::new(),
            prev_fire: Vec::new(),
            fired: Vec::new(),
            cancelled: Vec::new(),
            applied: Vec::new(),
            node_value: Vec::new(),
            values: Vec::new(),
            out_sched: Vec::new(),
            glanes: Vec::new(),
            tile: JitterTile::new(),
            tarr: [0; LANES],
            salts: [0; LANES],
            planes_pin: Vec::new(),
            stats: SchedStats::default(),
        }
    }
}

impl SchedRunner {
    /// A fresh runner (arrays grow on first [`SchedRunner::run_pass`]).
    pub fn new() -> Self {
        SchedRunner::default()
    }

    /// Export sweep counters under `<prefix>.*`.
    pub fn obs_report(&self, prefix: &str, r: &mut Report) {
        self.stats.report_into(prefix, r);
    }

    /// Post-pass lane values of `net` (bit `l` = lane `l`; meaningful
    /// only for lanes outside the returned divergent mask).
    pub fn value(&self, net: NetId) -> u64 {
        self.values[net.index()]
    }

    fn ensure_capacity(&mut self, sched: &CompiledSchedule, graph: &SimGraph) {
        let nn = sched.nodes.len();
        if self.node_time.len() < nn * LANES {
            self.node_time.resize(nn * LANES, 0);
            self.prev_fire.resize(nn * LANES, 0);
            self.fired.resize(nn, 0);
            self.cancelled.resize(nn, 0);
            self.applied.resize(nn, 0);
            self.node_value.resize(nn, 0);
        }
        let ng = graph.num_gates();
        if self.glanes.len() < ng * LANES {
            self.out_sched.resize(ng, 0);
            self.glanes.resize(ng * LANES, GateLane::default());
            self.planes_pin.resize(ng * LANES, PinLane::default());
        }
        if self.values.len() < graph.num_nets() {
            self.values.resize(graph.num_nets(), 0);
        }
    }

    /// Sweep the compiled schedule once for `seeds.len()` (≤ 64) traces.
    ///
    /// `stim_values[s]` carries the per-lane value of stimulus slot `s`
    /// (bit `l` = lane `l`); `weights` is the per-net toggle weight
    /// table (a campaign passes its possibly overridden copy of the
    /// graph weights). Applied transitions are delivered to `sink` per
    /// node after the sweep, masked to the non-divergent lanes.
    ///
    /// Returns the divergent-lane mask: those traces were **not**
    /// simulated (no transitions emitted for them) and must be re-run on
    /// the scalar wheel with the same per-trace seed.
    #[allow(clippy::too_many_arguments)]
    pub fn run_pass(
        &mut self,
        sched: &CompiledSchedule,
        graph: &SimGraph,
        delays: &DelayModel,
        weights: &[f64],
        seeds: &[u64],
        stim_values: &[u64],
        t_end_ps: u64,
        sink: &mut impl LaneSink,
    ) -> u64 {
        assert!(!seeds.is_empty() && seeds.len() <= LANES, "1..=64 lanes per pass");
        assert_eq!(stim_values.len(), sched.num_stims);
        self.ensure_capacity(sched, graph);
        let span = self.stats.pass_ns.span();
        let _sweep_span = gm_obs::trace::span("sched.sweep");
        let lane_mask = if seeds.len() == LANES { !0u64 } else { (1u64 << seeds.len()) - 1 };
        for (l, &s) in seeds.iter().enumerate() {
            self.salts[l] = s ^ JITTER_SALT_XOR;
        }
        let nn = sched.nodes.len();
        self.fired[..nn].fill(0);
        self.cancelled[..nn].fill(0);
        self.applied[..nn].fill(0);
        self.node_value[..nn].fill(0);
        for (v, &b) in self.values.iter_mut().zip(graph.baseline_values.iter()) {
            *v = if b { !0 } else { 0 };
        }
        for (v, &b) in self.out_sched.iter_mut().zip(graph.baseline_out_sched.iter()) {
            *v = if b { !0 } else { 0 };
        }
        // Per-gate lane state is reset only for gates the schedule can
        // visit — no other gate's [`GateLane`] is ever read in a pass —
        // so the reset cost tracks the cascade, not the netlist.
        for &(g, _) in &sched.visited_gates {
            let gl = g as usize * LANES;
            self.glanes[gl..gl + LANES].fill(GateLane::default());
            self.planes_pin[gl..gl + LANES].fill(PinLane::default());
        }
        // Per-visit staged tile draws: a node visit that toggles enough
        // lanes compacts them into the runner's [`JitterTile`] and draws
        // all of them through the batched sampler, which is bit-identical
        // to the in-loop scalar chain — a pure performance fork. Unlike
        // a whole-pass pre-drawn plane this never over-draws: the
        // superset schedule visits gates ~3× more often than lanes
        // actually toggle.
        let use_tile = delays.jitter_sigma_ps() > 0.0 && wide_jitter_enabled();
        let mut batched_draws = 0u64;
        let mut scalar_draws = 0u64;
        let mut divergent = 0u64;

        for k in 0..nn {
            let node = sched.nodes[k];
            let net = node.net as usize;
            // Commit: apply the node's value change in the lanes where
            // it fired, was not annihilated, lands inside the window,
            // and actually changes the net (stimulus slots can be
            // redundant, exactly like the scalar engine's silent drop).
            let commit = if node.gate == STIM {
                let vals = stim_values[node.trigger as usize];
                self.node_value[k] = vals;
                if node.time <= t_end_ps {
                    self.node_time[k * LANES..(k + 1) * LANES].fill(node.time);
                    lane_mask & !divergent & (self.values[net] ^ vals)
                } else {
                    0
                }
            } else {
                let mut m = self.fired[k] & !self.cancelled[k] & !divergent;
                // Per-lane window check (actual times carry jitter) —
                // skipped when the compile-time worst case already fits.
                if m != 0 && node.wmax > t_end_ps {
                    let mut inside = 0u64;
                    let times = &self.node_time[k * LANES..(k + 1) * LANES];
                    let mut b = m;
                    while b != 0 {
                        let l = b.trailing_zeros() as usize;
                        b &= b - 1;
                        inside |= ((times[l] <= t_end_ps) as u64) << l;
                    }
                    m &= inside;
                }
                m
            };
            self.applied[k] = commit;
            if commit == 0 {
                continue;
            }
            self.values[net] = (self.values[net] & !commit) | (self.node_value[k] & commit);

            // Arrival-source tag for the pin-order check below: stimulus
            // slots collapse to one tag (slot order *is* the scalar seq
            // order, so stimulus ties are always fine).
            let idx_enc = if node.gate == STIM { STIM_SRC } else { k as u16 + SRC_BIAS };

            // Evaluate dependent gates at commit, like the scalar
            // engine's consumer loop at pop.
            for &c_u in sched.children.row(k) {
                let c = c_u as usize;
                let cn = sched.nodes[c];
                let g = cn.gate as usize;
                let gnet = cn.net as usize;
                let gl = g * LANES;
                // A child always schedules strictly later than its
                // trigger, so `k < c` in sweep order and the split
                // below is safe.
                let (head, tail) = self.node_time.split_at_mut(c * LANES);
                let times: &[u64] = &head[k * LANES..k * LANES + LANES];
                let ctimes: &mut [u64] = &mut tail[..LANES];

                // Pin-arrival monotonicity per lane: an older-than-seen
                // arrival, or a tie between gate-driven triggers, means
                // the base order lied for this lane — divergent.
                // Single-source gates are monotone by construction and
                // skip the check (and the lane loop) wholesale.
                let eval = if cn.mono {
                    commit
                } else {
                    let pls = &mut self.planes_pin[gl..gl + LANES];
                    let mut viol = 0u64;
                    // Iterate the committed lanes only (typically a
                    // fraction of 64): inactive lanes keep their state
                    // untouched either way.
                    let mut b = commit;
                    while b != 0 {
                        let l = b.trailing_zeros() as usize;
                        b &= b - 1;
                        let ple = &mut pls[l];
                        let t = times[l] as u32;
                        let src = ple.src;
                        let lpl = ple.last_pin;
                        // Tie (`t == lpl`): fine from the same trigger
                        // and fine after a stimulus slot.
                        if src != NO_SRC
                            && (t < lpl || (t == lpl && src != idx_enc && src != STIM_SRC))
                        {
                            viol |= 1u64 << l;
                        } else {
                            ple.last_pin = t;
                            ple.src = idx_enc;
                        }
                    }
                    divergent |= viol;
                    commit & !viol
                };
                if eval == 0 {
                    continue;
                }

                // Lane-parallel truth-table evaluation.
                let row = graph.pins.row(g);
                let mut pv = [0u64; MAX_PINS];
                for (p, &pn) in row.iter().enumerate() {
                    pv[p] = self.values[pn as usize];
                }
                let truth = graph.truth[g];
                let mut out = 0u64;
                for idx in 0..1u16 << row.len() {
                    // Skip zero minterms outright: the truth pattern
                    // repeats every visit of the same gate, so the
                    // branch predicts — and it halves the AND-chains
                    // for AND-like cells.
                    if truth >> idx & 1 == 0 {
                        continue;
                    }
                    let mut m = !0u64;
                    for (p, &v) in pv.iter().enumerate().take(row.len()) {
                        m &= if idx >> p & 1 != 0 { v } else { !v };
                    }
                    out |= m;
                }
                self.node_value[c] = out;
                let toggle = (out ^ self.out_sched[g]) & eval;
                if toggle == 0 {
                    continue;
                }

                // Phases 1+2 merged — per-lane jitter draw, candidate
                // time, inertial check, and plain-fire commit in one
                // walk over the toggled lanes: this loop is the single
                // hottest code in a glitch campaign. When enough lanes
                // toggle the draws go through the staged tile sampler
                // (hash/convert/lerp pipelines batched so they
                // autovectorize); the in-loop chain survives as the
                // exact fallback, replicating
                // `DelayModel::sample_event_ps` with the per-gate
                // pieces hoisted out of the loop.
                let gid = GateId(g as u32);
                let reject = delays.pulse_reject_of(gid);
                let base = delays.base_ps(gid);
                let base_fixed = delays.base_fixed_of(gid);
                let sigma = delays.jitter_sigma_ps();
                let cl = c * LANES;
                let c_enc = c as u16 + 1;
                let mut rej = 0u64;
                let mut ok = 0u64;
                let nt = toggle.count_ones();
                if use_tile && nt >= TILE_MIN_DRAWS {
                    // Compact the toggled lanes into the tile, draw the
                    // whole visit in one batched call, then do the
                    // bookkeeping over the compacted list.
                    let mut lanes = [0u8; LANES];
                    {
                        let gls = &self.glanes[gl..gl + LANES];
                        let mut b = toggle;
                        let mut j = 0usize;
                        while b != 0 {
                            let l = b.trailing_zeros() as usize;
                            b &= b - 1;
                            lanes[j] = l as u8;
                            self.tile.salt[j] = self.salts[l];
                            self.tile.ord[j] = gls[l].ord as u32;
                            j += 1;
                        }
                    }
                    {
                        let _jitter_span = gm_obs::trace::span("sched.jitter");
                        delays.sample_event_tile(gid, nt as usize, &mut self.tile);
                    }
                    batched_draws += nt as u64;
                    let gls = &mut self.glanes[gl..gl + LANES];
                    for (&lb, &d) in lanes[..nt as usize].iter().zip(&self.tile.d) {
                        let l = lb as usize;
                        let gle = &mut gls[l];
                        // The ordinal advances for every toggling
                        // evaluation, annihilated or not — exactly like
                        // the scalar engine.
                        gle.ord += 1;
                        let tj = times[l];
                        let ol = gle.out_last as u64;
                        let t = (tj + d).max(ol + 1);
                        if ol > tj && t - ol < reject {
                            // Rare inertial rejection: defer to phase 3.
                            self.tarr[l] = t;
                            rej |= 1u64 << l;
                        } else {
                            ok |= 1u64 << l;
                            ctimes[l] = t;
                            self.prev_fire[cl + l] = gle.last_node;
                            gle.out_last = t as u32;
                            gle.last_node = c_enc;
                        }
                    }
                } else {
                    let gls = &mut self.glanes[gl..gl + LANES];
                    let mut b = toggle;
                    while b != 0 {
                        let l = b.trailing_zeros() as usize;
                        b &= b - 1;
                        let gle = &mut gls[l];
                        let d = if sigma > 0.0 {
                            scalar_draws += 1;
                            let q = quantized_gaussian(event_hash(
                                self.salts[l],
                                g as u32,
                                gle.ord as u32,
                            ));
                            (base + q * sigma).max(1.0) as u64
                        } else {
                            base_fixed
                        };
                        gle.ord += 1;
                        let tj = times[l];
                        let ol = gle.out_last as u64;
                        let t = (tj + d).max(ol + 1);
                        if ol > tj && t - ol < reject {
                            self.tarr[l] = t;
                            rej |= 1u64 << l;
                        } else {
                            ok |= 1u64 << l;
                            ctimes[l] = t;
                            self.prev_fire[cl + l] = gle.last_node;
                            gle.out_last = t as u32;
                            gle.last_node = c_enc;
                        }
                    }
                }
                if ok != 0 {
                    self.fired[c] |= ok;
                    self.out_sched[g] = (self.out_sched[g] & !ok) | (out & ok);
                }

                // Phase 3 — rare inertial annihilations, lane by lane.
                let mut b = rej;
                while b != 0 {
                    let l = b.trailing_zeros() as usize;
                    b &= b - 1;
                    let bit = 1u64 << l;
                    let tj = times[l];
                    let t = self.tarr[l];
                    let out_bit = out >> l & 1 != 0;
                    // Scalar annihilation is a version bump: every
                    // event of this driver still in flight at `tj`
                    // (actual time > `tj`) dies at once, and
                    // out_sched falls back to the net's value *at
                    // tj*. Walk the live fire chain back to that
                    // point, retracting the killed fires. A fire
                    // that already committed in sweep order is
                    // retractable only if nothing downstream could
                    // have observed it (no dependent evaluations in
                    // the schedule); a fire tied exactly at `tj` has
                    // unknowable pop order — both flag the lane
                    // divergent.
                    let mut q = self.glanes[gl + l].last_node;
                    let mut bad = false;
                    let v = loop {
                        if q == NO_NODE {
                            break graph.baseline_values[gnet];
                        }
                        let qi = q as usize - 1;
                        let qt = head[qi * LANES + l];
                        if qt < tj {
                            break self.node_value[qi] >> l & 1 != 0;
                        }
                        if qt == tj {
                            bad = true;
                            break false;
                        }
                        if self.applied[qi] & bit != 0 {
                            if !sched.children.row(qi).is_empty() {
                                bad = true;
                                break false;
                            }
                            self.values[gnet] ^= bit;
                            self.applied[qi] &= !bit;
                        } else {
                            self.cancelled[qi] |= bit;
                        }
                        q = self.prev_fire[qi * LANES + l];
                    };
                    if bad {
                        divergent |= bit;
                        continue;
                    }
                    self.glanes[gl + l].last_node = q;
                    self.out_sched[g] = (self.out_sched[g] & !bit) | if v { bit } else { 0 };
                    if out_bit != v {
                        self.fired[c] |= bit;
                        ctimes[l] = t;
                        self.prev_fire[c * LANES + l] = q;
                        self.out_sched[g] =
                            (self.out_sched[g] & !bit) | if out_bit { bit } else { 0 };
                        let gle = &mut self.glanes[gl + l];
                        gle.out_last = t as u32;
                        gle.last_node = c as u16 + 1;
                    }
                }
            }
        }

        // Deferred emission: only now are annihilations settled, so
        // `applied` is final. Masked to non-divergent lanes — abandoned
        // lanes leak nothing into the sinks.
        let live = lane_mask & !divergent;
        for k in 0..nn {
            let m = self.applied[k] & live;
            if m != 0 {
                let net = sched.nodes[k].net as usize;
                sink.transitions(
                    NetId(net as u32),
                    weights[net],
                    m,
                    self.node_value[k],
                    &self.node_time[k * LANES..(k + 1) * LANES],
                );
            }
        }

        drop(span);
        self.stats.passes.inc();
        self.stats.nodes_swept.add(nn as u64);
        self.stats.lanes.add(seeds.len() as u64);
        self.stats.jitter_batched.add(batched_draws);
        self.stats.jitter_scalar.add(scalar_draws);
        divergent &= lane_mask;
        self.stats.fallback_lanes.add(divergent.count_ones() as u64);
        divergent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::LaneCounting;
    use crate::{PowerSink, SimCore, Simulator};
    use gm_netlist::Netlist;

    /// The golden hazard circuit: y = (a & b) ^ buf(buf(a | b)).
    fn hazard() -> (Netlist, [NetId; 2]) {
        let mut n = Netlist::new("hz");
        let a = n.input("a");
        let b = n.input("b");
        let p = n.and2(a, b);
        let q0 = n.or2(a, b);
        let q1 = n.buf(q0);
        let q = n.buf(q1);
        let y = n.xor2(p, q);
        n.output("y", y);
        n.validate().unwrap();
        (n, [a, b])
    }

    /// Scalar reference: sorted multiset of (time, net, value, weight
    /// bits) plus final net values.
    type Multiset = Vec<(u64, u32, bool, u64)>;

    fn scalar_multiset(
        graph: &SimGraph,
        delays: &DelayModel,
        stims: &[(NetId, u64)],
        vals: &[bool],
        seed: u64,
        t_end: u64,
    ) -> (Multiset, Vec<bool>) {
        struct Rec(Multiset);
        impl PowerSink for Rec {
            fn transition(&mut self, t: u64, net: NetId, v: bool, w: f64) {
                self.0.push((t, net.0, v, w.to_bits()));
            }
        }
        let mut sim = SimCore::new(graph, seed);
        for (&(net, t), &v) in stims.iter().zip(vals) {
            sim.schedule(net, t, v);
        }
        let mut rec = Rec(Vec::new());
        sim.run_until(graph, delays, t_end, &mut rec);
        rec.0.sort_unstable();
        let finals = (0..graph.num_nets()).map(|i| sim.value(NetId(i as u32))).collect();
        (rec.0, finals)
    }

    /// Lane sink recording full transitions for comparison.
    struct LaneRec(Vec<Vec<(u64, u32, bool, u64)>>);
    impl LaneRec {
        fn new() -> Self {
            LaneRec(vec![Vec::new(); LANES])
        }
    }
    impl LaneSink for LaneRec {
        fn transitions(&mut self, net: NetId, w: f64, applied: u64, values: u64, times: &[u64]) {
            let mut m = applied;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                self.0[l].push((times[l], net.0, values >> l & 1 != 0, w.to_bits()));
            }
        }
    }

    /// Every non-divergent lane's transition multiset and final values
    /// match the scalar wheel bit-for-bit, jitter included.
    #[test]
    fn lanes_match_scalar_wheel() {
        let (n, ins) = hazard();
        let graph = SimGraph::new(&n);
        for sigma in [0.0, 60.0, 400.0] {
            let delays = DelayModel::with_variation(&n, 0.4, sigma, 0xfeed);
            let stims: Vec<(NetId, u64)> = vec![(ins[0], 1_000), (ins[1], 1_400)];
            let sched = CompiledSchedule::compile(&graph, &delays, &stims)
                .expect("combinational cascade compiles");
            let t_end = 60_000u64;
            let mut runner = SchedRunner::new();
            let seeds: Vec<u64> = (0..LANES as u64).map(|l| l * 77 + 3).collect();
            // Lane l stimulus values cycle over all (a, b) combinations.
            let mut stim_vals = [0u64; 2];
            for l in 0..LANES {
                if l & 1 != 0 {
                    stim_vals[0] |= 1 << l;
                }
                if l & 2 != 0 {
                    stim_vals[1] |= 1 << l;
                }
            }
            let mut rec = LaneRec::new();
            let div = runner.run_pass(
                &sched,
                &graph,
                &delays,
                &graph.weights,
                &seeds,
                &stim_vals,
                t_end,
                &mut rec,
            );
            for (l, &lane_seed) in seeds.iter().enumerate() {
                if div >> l & 1 != 0 {
                    continue; // abandoned; caller would rerun on the wheel
                }
                let vals = [stim_vals[0] >> l & 1 != 0, stim_vals[1] >> l & 1 != 0];
                let (want, want_finals) =
                    scalar_multiset(&graph, &delays, &stims, &vals, lane_seed, t_end);
                let mut got = rec.0[l].clone();
                got.sort_unstable();
                assert_eq!(got, want, "lane {l} sigma {sigma}");
                for (i, &wv) in want_finals.iter().enumerate() {
                    assert_eq!(
                        runner.value(NetId(i as u32)) >> l & 1 != 0,
                        wv,
                        "final net {i} lane {l} sigma {sigma}"
                    );
                }
            }
            // The schedule must do real work. σ = 400 ps dwarfs this toy
            // circuit's 200–500 ps base delays, so genuine reorders are
            // common there (campaign gadgets run ~1 ns LUTs, where the
            // divergence rate is well under 1%); moderate jitter must
            // stay almost fully compiled.
            let cap = if sigma > 100.0 { 32 } else { 8 };
            assert!(div.count_ones() < cap, "sigma {sigma}: divergent mask {div:#x}");
        }
    }

    /// The window truncates compiled passes exactly like the wheel.
    #[test]
    fn window_truncation_matches() {
        let (n, ins) = hazard();
        let graph = SimGraph::new(&n);
        let delays = DelayModel::with_variation(&n, 0.3, 80.0, 9);
        let stims: Vec<(NetId, u64)> = vec![(ins[0], 500), (ins[1], 900)];
        let sched = CompiledSchedule::compile(&graph, &delays, &stims).unwrap();
        // Cut mid-cascade: base depth is ~3 gates × ~1 ns.
        for t_end in [1_000u64, 2_500, 4_000] {
            let mut runner = SchedRunner::new();
            let seeds = [11u64, 22, 33];
            let stim_vals = [0b111u64, 0b101];
            let mut rec = LaneRec::new();
            let div = runner.run_pass(
                &sched,
                &graph,
                &delays,
                &graph.weights,
                &seeds,
                &stim_vals,
                t_end,
                &mut rec,
            );
            for (l, &seed) in seeds.iter().enumerate() {
                if div >> l & 1 != 0 {
                    continue;
                }
                let vals = [stim_vals[0] >> l & 1 != 0, stim_vals[1] >> l & 1 != 0];
                let (want, _) = scalar_multiset(&graph, &delays, &stims, &vals, seed, t_end);
                let mut got = rec.0[l].clone();
                got.sort_unstable();
                assert_eq!(got, want, "lane {l} t_end {t_end}");
            }
        }
    }

    /// Inertial annihilation survives compilation: a narrow input pulse
    /// dies inside a delay buffer in compiled lanes exactly as on the
    /// wheel.
    #[test]
    fn annihilation_matches_scalar() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let buf = n.delay_buf(a);
        n.output("o", buf);
        n.validate().unwrap();
        let graph = SimGraph::new(&n);
        let delays = DelayModel::nominal(&n);
        // Slot plan: up at 100, down at 110 (narrow pulse), up at 50 000.
        let stims: Vec<(NetId, u64)> = vec![(a, 100), (a, 110), (a, 50_000)];
        let sched = CompiledSchedule::compile(&graph, &delays, &stims).unwrap();
        let mut runner = SchedRunner::new();
        let seeds = [7u64, 8];
        // Lane 0 runs the full pulse plan; lane 1 holds a at 1 from
        // t=100 on (slots 1 and 2 redundant), so no pulse exists.
        let stim_vals = [0b11u64, 0b10, 0b11];
        let mut counting = LaneCounting::default();
        let div = runner.run_pass(
            &sched,
            &graph,
            &delays,
            &graph.weights,
            &seeds,
            &stim_vals,
            100_000,
            &mut counting,
        );
        assert_eq!(div, 0);
        // Lane 0: a up/down/up + buf up = 4 (pulse annihilated in buf).
        assert_eq!(counting.count[0], 4);
        // Lane 1: a up + buf up = 2.
        assert_eq!(counting.count[1], 2);
        assert_eq!(runner.value(buf), 0b11);
    }

    /// The batched-tile (wide) path and the in-loop scalar path must
    /// produce identical transition streams, final values and divergence
    /// masks — the runtime gate is a pure performance fork. (Safe to
    /// toggle the global gate concurrently with other tests precisely
    /// because of this identity.)
    #[test]
    fn wide_and_scalar_jitter_paths_agree() {
        let (n, ins) = hazard();
        let graph = SimGraph::new(&n);
        let delays = DelayModel::with_variation(&n, 0.4, 400.0, 0xfeed);
        let stims: Vec<(NetId, u64)> = vec![(ins[0], 1_000), (ins[1], 1_400)];
        let sched = CompiledSchedule::compile(&graph, &delays, &stims).unwrap();
        assert!(sched.num_jitter_slots() > 0);
        let seeds: Vec<u64> = (0..LANES as u64).map(|l| l * 77 + 3).collect();
        let stim_vals = [0x5555_5555_5555_5555u64, 0x3333_3333_3333_3333];
        let mut streams = Vec::new();
        for wide in [true, false] {
            crate::delay::set_wide_jitter(wide);
            let mut runner = SchedRunner::new();
            let mut rec = LaneRec::new();
            let div = runner.run_pass(
                &sched,
                &graph,
                &delays,
                &graph.weights,
                &seeds,
                &stim_vals,
                60_000,
                &mut rec,
            );
            let finals: Vec<u64> =
                (0..graph.num_nets()).map(|i| runner.value(NetId(i as u32))).collect();
            #[cfg(not(feature = "obs-off"))]
            assert_eq!(
                runner.stats.jitter_batched.get() > 0,
                wide,
                "tile draws must follow the gate"
            );
            streams.push((div, rec.0, finals));
        }
        crate::delay::set_wide_jitter(true);
        assert_eq!(streams[0], streams[1], "wide and scalar jitter paths must be bit-identical");
    }

    /// Clocked netlists and gate-driven stimulus nets refuse to compile.
    #[test]
    fn compile_guards() {
        let mut n2 = Netlist::new("t2");
        let a = n2.input("a");
        let b = n2.buf(a);
        let y = n2.inv(b);
        n2.output("y", y);
        n2.validate().unwrap();
        let graph2 = SimGraph::new(&n2);
        let delays2 = DelayModel::nominal(&n2);
        assert!(
            CompiledSchedule::compile(&graph2, &delays2, &[(b, 100)]).is_none(),
            "gate-driven stimulus net must refuse"
        );
        assert!(CompiledSchedule::compile(&graph2, &delays2, &[]).is_none());
        let ok = CompiledSchedule::compile(&graph2, &delays2, &[(a, 100)]).unwrap();
        // a -> buf -> inv: stimulus + two gate evaluations.
        assert_eq!(ok.num_nodes(), 3);
        assert_eq!(ok.num_stims(), 1);
    }

    /// Sweep counters reconcile with the work done.
    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn stats_reconcile() {
        let (n, ins) = hazard();
        let graph = SimGraph::new(&n);
        let delays = DelayModel::nominal(&n);
        let stims: Vec<(NetId, u64)> = vec![(ins[0], 1_000), (ins[1], 1_000)];
        let sched = CompiledSchedule::compile(&graph, &delays, &stims).unwrap();
        let mut runner = SchedRunner::new();
        let mut counting = LaneCounting::default();
        for pass in 0..3u64 {
            let seeds = [pass + 1, pass + 2];
            runner.run_pass(
                &sched,
                &graph,
                &delays,
                &graph.weights,
                &seeds,
                &[!0u64, !0u64],
                50_000,
                &mut counting,
            );
        }
        assert_eq!(runner.stats.passes.get(), 3);
        assert_eq!(runner.stats.nodes_swept.get(), 3 * sched.num_nodes() as u64);
        assert_eq!(runner.stats.lanes.get(), 6);
        let mut r = Report::new();
        runner.obs_report("sim.sched", &mut r);
        assert_eq!(r.get("sim.sched.passes"), Some(3));
    }

    /// A compiled pass agrees with a Simulator on the same seed (the
    /// runner shares nothing mutable with the scalar path).
    #[test]
    fn coexists_with_scalar() {
        let (n, ins) = hazard();
        let graph = SimGraph::new(&n);
        let delays = DelayModel::with_variation(&n, 0.2, 30.0, 4);
        let stims: Vec<(NetId, u64)> = vec![(ins[0], 1_000), (ins[1], 1_000)];
        let sched = CompiledSchedule::compile(&graph, &delays, &stims).unwrap();
        let mut runner = SchedRunner::new();
        let mut counting = LaneCounting::default();
        let div = runner.run_pass(
            &sched,
            &graph,
            &delays,
            &graph.weights,
            &[5],
            &[!0u64, !0u64],
            50_000,
            &mut counting,
        );
        assert_eq!(div, 0);
        let mut sim = Simulator::with_graph(&graph, &delays, 5);
        sim.init_all_zero();
        sim.schedule(ins[0], 1_000, true);
        sim.schedule(ins[1], 1_000, true);
        assert_eq!(sim.run_counting(50_000), counting.count[0]);
    }
}
