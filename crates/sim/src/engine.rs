//! The event engine: transport delay with inertial pulse rejection.
//!
//! Semantics, matching CMOS physics:
//!
//! * **transport**: every scheduled output change wider than the gate's
//!   switching time is delivered — a gate whose inputs settle at clearly
//!   different moments emits its full glitch train (this is the hazard
//!   the paper builds on);
//! * **inertial rejection**: a pulse narrower than the gate's switching
//!   time ([`DelayModel::pulse_reject_ps`]) is annihilated before it can
//!   propagate — near-simultaneous input edges do *not* produce output
//!   energy. Without this filter a cancelled glitch would be counted as a
//!   full double-toggle and the data-dependence of glitch energy (the
//!   whole point of Table I) would wash out.
//!
//! # Layout
//!
//! The engine is split into immutable topology and mutable state so one
//! netlist can back millions of traces without rebuilding anything:
//!
//! * [`SimGraph`] — everything derivable from the [`Netlist`] alone:
//!   CSR fanout (net → consumer gates) and pin (gate → input nets)
//!   tables, per-net driver/weight tables, the topological order, and
//!   the settled all-zero baseline state. Built once, shared read-only
//!   across threads.
//! * [`SimCore`] — the per-"device" mutable state: net values, per-gate
//!   schedule bookkeeping, the event queue (a [`TimingWheel`]), the
//!   jitter RNG, and dirty lists that make [`SimCore::reset`] O(touched)
//!   instead of O(netlist).
//! * [`Simulator`] — a thin convenience wrapper binding a graph, a
//!   [`DelayModel`] and a core, keeping the original borrow-style API.

use crate::delay::{wide_jitter_enabled, DelayModel, WIDE};
use crate::power::NullSink;
use crate::wheel::{TimingWheel, WheelStats};
use gm_netlist::netlist::Driver;
use gm_netlist::{Csr, GateId, GateKind, NetId, Netlist};
use gm_obs::{Counter, Report};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Upper bound on combinational/sequential fan-in (Mux2 and configured
/// DFFs top out at 3 pins); lets pin values live on the stack.
pub(crate) const MAX_PINS: usize = 4;

/// Folded into the trace seed to derive the jitter salt. Shared with the
/// compiled-schedule backend ([`crate::sched`]) so both engines draw the
/// identical per-event delay for the same `(seed, gate, ordinal)`.
pub(crate) const JITTER_SALT_XOR: u64 = 0xd1b5_4a32_d192_ed03;

/// Receiver of net-transition (switching-activity) notifications.
///
/// `weight` is the capacitance proxy of the toggled net (the area of its
/// driver cell); implementations bin it into power samples, count it, or
/// feed crosstalk models.
pub trait PowerSink {
    /// Called once per *applied* net transition.
    fn transition(&mut self, time_ps: u64, net: NetId, new_value: bool, weight: f64);
}

impl<A: PowerSink, B: PowerSink> PowerSink for (A, B) {
    fn transition(&mut self, time_ps: u64, net: NetId, new_value: bool, weight: f64) {
        self.0.transition(time_ps, net, new_value, weight);
        self.1.transition(time_ps, net, new_value, weight);
    }
}

impl PowerSink for NullSink {
    fn transition(&mut self, _time_ps: u64, _net: NetId, _new_value: bool, _weight: f64) {}
}

/// Queued net change; time and seq live in the queue key.
#[derive(Debug, Clone, Copy)]
struct Pending {
    net: u32,
    value: bool,
    /// Driver-gate schedule version; stale versions are cancelled pulses.
    /// External events carry `u32::MAX` (never cancelled).
    version: u32,
}

/// Reference-queue event: the exact struct (and derived ordering) of the
/// original `BinaryHeap` engine. `seq` is unique per event, so the
/// derived `(time, seq, ..)` order *is* the `(time, seq)` order the
/// wheel uses — the property tests lean on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    seq: u64,
    net: NetId,
    value: bool,
    version: u32,
}

/// The pending-event queue: timing wheel by default, with the original
/// binary heap kept as a differential-testing reference.
//
// One Queue exists per SimCore (never stored in arrays), so the size
// gap between the inline wheel and the reference heap wastes nothing;
// boxing the wheel would add an indirection to every push/pop on the
// hot event path instead.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Queue {
    Wheel(TimingWheel<Pending>),
    Heap(BinaryHeap<Reverse<Event>>),
}

impl Queue {
    #[inline]
    fn push(&mut self, time: u64, seq: u64, p: Pending) {
        match self {
            Queue::Wheel(w) => w.push(time, seq, p),
            Queue::Heap(h) => h.push(Reverse(Event {
                time,
                seq,
                net: NetId(p.net),
                value: p.value,
                version: p.version,
            })),
        }
    }

    #[inline]
    fn peek_time(&mut self) -> Option<u64> {
        match self {
            Queue::Wheel(w) => w.peek_time(),
            Queue::Heap(h) => h.peek().map(|Reverse(e)| e.time),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(u64, Pending)> {
        match self {
            Queue::Wheel(w) => w.pop().map(|(t, _, p)| (t, p)),
            Queue::Heap(h) => h.pop().map(|Reverse(e)| {
                (e.time, Pending { net: e.net.0, value: e.value, version: e.version })
            }),
        }
    }

    /// Fused peek + pop: the earliest event iff its time is at most
    /// `t_max`. Like a peek, leaves the queue untouched when the front
    /// event lies beyond the horizon.
    #[inline]
    fn pop_at_most(&mut self, t_max: u64) -> Option<(u64, Pending)> {
        match self {
            Queue::Wheel(w) => w.pop_at_most(t_max).map(|(t, _, p)| (t, p)),
            Queue::Heap(h) => {
                if h.peek().is_none_or(|Reverse(e)| e.time > t_max) {
                    return None;
                }
                h.pop().map(|Reverse(e)| {
                    (e.time, Pending { net: e.net.0, value: e.value, version: e.version })
                })
            }
        }
    }

    fn clear(&mut self) {
        match self {
            Queue::Wheel(w) => w.clear(),
            Queue::Heap(h) => h.clear(),
        }
    }
}

/// Immutable simulation topology shared by every [`SimCore`] over the
/// same netlist: flat CSR adjacency, driver/weight tables, topological
/// order and the settled all-zero baseline. Build once per netlist
/// (typically behind an `Arc`), then hand out `&SimGraph` to as many
/// cores/threads as needed.
#[derive(Debug, Clone)]
pub struct SimGraph {
    /// net -> combinational consumer gates, in gate/pin declaration order.
    pub(crate) consumers: Csr,
    /// gate -> input nets, in pin order (sequential gates included, for
    /// the clocked harness).
    pub(crate) pins: Csr,
    pub(crate) kinds: Vec<GateKind>,
    /// gate -> precomputed truth table: bit `i` is the output when the
    /// pin values spell `i` (pin `k` → bit `k`). Replaces the
    /// `GateKind::eval` dispatch on the event hot path; sequential gates
    /// get 0 (register updates belong to the clocked harness).
    pub(crate) truth: Vec<u16>,
    /// gate -> output net.
    pub(crate) outputs: Vec<u32>,
    /// net -> driver gate (`u32::MAX` for inputs/constants).
    pub(crate) driver_gate: Vec<u32>,
    /// Default per-net toggle weight (driver cell area).
    pub(crate) weights: Vec<f64>,
    /// Constant-driven nets and their values.
    pub(crate) constants: Vec<(u32, bool)>,
    /// Sequential gates, in gate order.
    pub(crate) ff_gates: Vec<GateId>,
    /// Combinational gates in topological order.
    pub(crate) order: Vec<u32>,
    /// Settled net values of the all-zero initial state.
    pub(crate) baseline_values: Vec<bool>,
    /// Settled per-gate scheduled-output values of the all-zero state.
    pub(crate) baseline_out_sched: Vec<bool>,
}

impl SimGraph {
    /// Derive the simulation topology from a validated netlist.
    pub fn new(netlist: &Netlist) -> Self {
        let nn = netlist.num_nets();
        let ng = netlist.num_gates();
        let mut consumer_pairs: Vec<(u32, u32)> = Vec::new();
        let mut pin_pairs: Vec<(u32, u32)> = Vec::new();
        let mut kinds = Vec::with_capacity(ng);
        let mut outputs = Vec::with_capacity(ng);
        let mut ff_gates = Vec::new();
        for (gi, g) in netlist.gates().iter().enumerate() {
            kinds.push(g.kind);
            outputs.push(g.output.0);
            for &i in &g.inputs {
                pin_pairs.push((gi as u32, i.0));
            }
            if g.kind.is_sequential() {
                ff_gates.push(GateId(gi as u32));
            } else {
                for &i in &g.inputs {
                    consumer_pairs.push((i.0, gi as u32));
                }
            }
        }
        let consumers = Csr::from_pairs(nn, &consumer_pairs);
        let pins = Csr::from_pairs(ng, &pin_pairs);

        let mut truth = Vec::with_capacity(ng);
        for (gi, kind) in kinds.iter().enumerate() {
            let np = pins.row(gi).len();
            let mut t = 0u16;
            if !kind.is_sequential() {
                let mut buf = [false; MAX_PINS];
                for idx in 0..1u16 << np {
                    for (k, b) in buf.iter_mut().enumerate().take(np) {
                        *b = idx >> k & 1 != 0;
                    }
                    if kind.eval(&buf[..np]) {
                        t |= 1 << idx;
                    }
                }
            }
            truth.push(t);
        }

        let mut weights = vec![1.0; nn];
        let mut driver_gate = vec![u32::MAX; nn];
        let mut constants = Vec::new();
        for i in 0..nn {
            match netlist.driver(NetId(i as u32)) {
                Driver::Gate(g) => {
                    weights[i] = netlist.gate(g).kind.area_ge();
                    driver_gate[i] = g.0;
                }
                Driver::Constant(v) => constants.push((i as u32, v)),
                _ => {}
            }
        }

        let order: Vec<u32> = gm_netlist::topo::combinational_order(netlist)
            .expect("netlist validated before simulation")
            .into_iter()
            .map(|g| g.0)
            .collect();

        // Settle the all-zero state once; every core resets to this.
        let mut baseline_values = vec![false; nn];
        for &(ni, v) in &constants {
            baseline_values[ni as usize] = v;
        }
        let mut baseline_out_sched = vec![false; ng];
        for &gi in &order {
            let gi = gi as usize;
            let mut idx = 0usize;
            for (k, &pn) in pins.row(gi).iter().enumerate() {
                idx |= usize::from(baseline_values[pn as usize]) << k;
            }
            let v = truth[gi] >> idx & 1 != 0;
            baseline_values[outputs[gi] as usize] = v;
            baseline_out_sched[gi] = v;
        }

        SimGraph {
            consumers,
            pins,
            kinds,
            truth,
            outputs,
            driver_gate,
            weights,
            constants,
            ff_gates,
            order,
            baseline_values,
            baseline_out_sched,
        }
    }

    /// Number of nets in the underlying netlist.
    pub fn num_nets(&self) -> usize {
        self.weights.len()
    }

    /// Number of gates in the underlying netlist.
    pub fn num_gates(&self) -> usize {
        self.kinds.len()
    }

    /// Per-net toggle weights (the compiled-schedule backend's
    /// [`crate::sched::SchedRunner::run_pass`] takes these explicitly so
    /// campaigns can substitute an overridden table).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Sequential gates, in gate order.
    pub fn ff_gates(&self) -> &[GateId] {
        &self.ff_gates
    }

    /// Cell kind of a gate.
    pub fn kind(&self, gate: GateId) -> GateKind {
        self.kinds[gate.index()]
    }

    /// Output net of a gate.
    pub fn output(&self, gate: GateId) -> NetId {
        NetId(self.outputs[gate.index()])
    }

    /// Input nets of a gate, in pin order.
    pub fn inputs(&self, gate: GateId) -> &[u32] {
        self.pins.row(gate.index())
    }
}

/// Owned, reusable mutable simulation state over some [`SimGraph`].
///
/// All methods take the graph (and, where events propagate, the
/// [`DelayModel`]) by reference, so a `SimCore` can live inside
/// long-lived structs — e.g. per-worker trace sources — without
/// self-referential lifetimes. [`SimCore::reset`] restores the settled
/// all-zero state in O(touched) time and is bit-for-bit equivalent to
/// constructing a fresh core with the same seed.
#[derive(Debug)]
pub struct SimCore {
    values: Vec<bool>,
    /// Last *scheduled* output value per gate (transport-delay bookkeeping).
    out_sched: Vec<bool>,
    /// Time of the last scheduled output event per gate: jitter must not
    /// reorder a single driver's edges (a physical wire cannot).
    out_last_time: Vec<u64>,
    /// Schedule version per gate; bumping it cancels in-flight pulses.
    out_version: Vec<u32>,
    /// Per-net toggle weight; starts from the graph's defaults, mutable
    /// via [`SimCore::set_net_weight`] (persists across resets).
    weights: Vec<f64>,
    queue: Queue,
    seq: u64,
    time: u64,
    /// Per-trace jitter salt (`seed ^ JITTER_SALT_XOR`). Event delays are
    /// drawn by counter hash over `(salt, gate, ordinal)` — see
    /// [`DelayModel::sample_event_ps`] — so the jitter a gate's n-th
    /// toggling evaluation sees is a pure function of the trace seed,
    /// independent of how unrelated events interleave. The
    /// compiled-schedule backend replays the identical draws.
    salt: u64,
    /// Per-gate count of toggling evaluations this trace (the `ordinal`
    /// fed to the jitter hash).
    ev_ord: Vec<u32>,
    /// Nets whose value may deviate from the baseline.
    touched_nets: Vec<u32>,
    net_mark: Vec<bool>,
    /// Gates whose schedule bookkeeping may deviate from the baseline.
    touched_gates: Vec<u32>,
    gate_mark: Vec<bool>,
    stats: SimStats,
}

/// Lifetime event counters of a [`SimCore`] (all zero and zero-sized
/// under `obs-off`). Counters survive [`SimCore::reset`] — a recycled
/// per-worker core accumulates whole-campaign totals; snapshot or diff
/// at campaign boundaries.
#[derive(Debug, Default)]
pub struct SimStats {
    /// Events popped off the queue (applied + redundant + stale).
    pub events_popped: Counter,
    /// Net transitions actually applied (= power-sink calls).
    pub transitions: Counter,
    /// Popped events dropped because the net already held the value.
    pub redundant: Counter,
    /// Popped events dropped as cancelled pulses (stale schedule version).
    pub stale: Counter,
    /// Inertial annihilations (in-flight pulse narrower than the
    /// switching time, cancelled before delivery).
    pub annihilations: Counter,
    /// Events scheduled by combinational propagation.
    pub scheduled: Counter,
    /// External edges injected via [`SimCore::schedule`].
    pub external: Counter,
    /// Between-trace [`SimCore::reset`] calls.
    pub resets: Counter,
    /// Applied transitions by driver cell class
    /// ([`GateKind::class_index`] order).
    kind_transitions: [Counter; GateKind::NUM_CLASSES],
    /// Applied transitions on externally driven nets (primary inputs,
    /// FF outputs injected by clocked harnesses).
    pub input_transitions: Counter,
    /// Jitter draws taken through the 8-wide burst sampler
    /// ([`DelayModel::sample_event_ps_x8`]).
    pub jitter_batched: Counter,
    /// Jitter draws taken through the scalar sampler (wide path off,
    /// single-consumer fan-out, or jitter-free model).
    pub jitter_scalar: Counter,
}

impl SimStats {
    /// Applied transitions per cell class, in
    /// [`GateKind::CLASS_NAMES`] order (zeros under `obs-off`).
    pub fn kind_transitions(&self) -> [u64; GateKind::NUM_CLASSES] {
        let mut out = [0u64; GateKind::NUM_CLASSES];
        for (o, c) in out.iter_mut().zip(self.kind_transitions.iter()) {
            *o = c.get();
        }
        out
    }

    /// Export all counters under `prefix` (e.g. `"sim"`); the per-class
    /// census lands at `<prefix>.toggle.<class>`.
    pub fn report_into(&self, prefix: &str, r: &mut Report) {
        r.set_nonzero(&format!("{prefix}.events"), self.events_popped.get());
        r.set_nonzero(&format!("{prefix}.transitions"), self.transitions.get());
        r.set_nonzero(&format!("{prefix}.redundant"), self.redundant.get());
        r.set_nonzero(&format!("{prefix}.stale"), self.stale.get());
        r.set_nonzero(&format!("{prefix}.annihilations"), self.annihilations.get());
        r.set_nonzero(&format!("{prefix}.scheduled"), self.scheduled.get());
        r.set_nonzero(&format!("{prefix}.external"), self.external.get());
        r.set_nonzero(&format!("{prefix}.resets"), self.resets.get());
        r.set_nonzero(&format!("{prefix}.toggle.input"), self.input_transitions.get());
        r.set_nonzero(&format!("{prefix}.jitter.batched"), self.jitter_batched.get());
        r.set_nonzero(&format!("{prefix}.jitter.scalar"), self.jitter_scalar.get());
        for (name, c) in GateKind::CLASS_NAMES.iter().zip(self.kind_transitions.iter()) {
            r.set_nonzero(&format!("{prefix}.toggle.{name}"), c.get());
        }
    }
}

impl SimCore {
    /// A core in the settled all-zero state. `seed` drives per-event
    /// delay jitter.
    pub fn new(graph: &SimGraph, seed: u64) -> Self {
        SimCore {
            values: graph.baseline_values.clone(),
            out_sched: graph.baseline_out_sched.clone(),
            out_last_time: vec![0; graph.num_gates()],
            out_version: vec![0; graph.num_gates()],
            weights: graph.weights.clone(),
            queue: Queue::Wheel(TimingWheel::new()),
            seq: 0,
            time: 0,
            salt: seed ^ JITTER_SALT_XOR,
            ev_ord: vec![0; graph.num_gates()],
            touched_nets: Vec::new(),
            net_mark: vec![false; graph.num_nets()],
            touched_gates: Vec::new(),
            gate_mark: vec![false; graph.num_gates()],
            stats: SimStats::default(),
        }
    }

    /// Lifetime event counters (zeros under `obs-off`).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Export engine counters under `<prefix>.*` and, when the timing
    /// wheel is in use, queue counters under `<prefix>.wheel.*`.
    pub fn obs_report(&self, prefix: &str, r: &mut Report) {
        self.stats.report_into(prefix, r);
        if let Queue::Wheel(w) = &self.queue {
            w.stats().report_into(&format!("{prefix}.wheel"), r);
        }
    }

    /// Queue counters of the timing wheel, when it is in use.
    pub fn wheel_stats(&self) -> Option<&WheelStats> {
        match &self.queue {
            Queue::Wheel(w) => Some(w.stats()),
            Queue::Heap(_) => None,
        }
    }

    /// Swap the timing wheel for the original `BinaryHeap`. Differential
    /// testing only; must be called while the queue is empty.
    #[doc(hidden)]
    pub fn use_reference_heap_queue(&mut self) {
        assert!(self.queue.peek_time().is_none(), "queue must be empty to swap");
        self.queue = Queue::Heap(BinaryHeap::new());
    }

    /// Current simulation time (ps).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    #[inline]
    fn touch_net(&mut self, ni: usize) {
        if !self.net_mark[ni] {
            self.net_mark[ni] = true;
            self.touched_nets.push(ni as u32);
        }
    }

    #[inline]
    fn touch_gate(&mut self, gi: usize) {
        if !self.gate_mark[gi] {
            self.gate_mark[gi] = true;
            self.touched_gates.push(gi as u32);
        }
    }

    /// Set a net value *silently* (no event, no power) — initial condition.
    pub fn set_initial(&mut self, net: NetId, value: bool) {
        self.values[net.index()] = value;
        self.touch_net(net.index());
    }

    /// Override the toggle weight (capacitance proxy) of one net. The
    /// default is the driver cell's area; experiments targeting FPGA
    /// power may want e.g. LUT-as-buffer delay elements at LUT weight
    /// rather than their ASIC-area equivalent. Weight overrides persist
    /// across [`SimCore::reset`] (they describe the device, not a trace).
    pub fn set_net_weight(&mut self, net: NetId, weight: f64) {
        self.weights[net.index()] = weight;
    }

    /// Set the toggle weight of every net driven by a cell of `kind`.
    pub fn set_kind_weight(&mut self, graph: &SimGraph, kind: GateKind, weight: f64) {
        for gi in 0..graph.num_gates() {
            if graph.kinds[gi] == kind {
                self.weights[graph.outputs[gi] as usize] = weight;
            }
        }
    }

    /// Restore every touched net/gate to the settled all-zero baseline
    /// and drop pending events. O(touched), not O(netlist).
    fn restore_baseline(&mut self, graph: &SimGraph) {
        for &ni in &self.touched_nets {
            self.values[ni as usize] = graph.baseline_values[ni as usize];
            self.net_mark[ni as usize] = false;
        }
        self.touched_nets.clear();
        for &gi in &self.touched_gates {
            self.out_sched[gi as usize] = graph.baseline_out_sched[gi as usize];
            self.out_last_time[gi as usize] = 0;
            self.out_version[gi as usize] = 0;
            self.ev_ord[gi as usize] = 0;
            self.gate_mark[gi as usize] = false;
        }
        self.touched_gates.clear();
        self.queue.clear();
    }

    /// Zero every primary input and flip-flop output, then let the
    /// combinational logic settle silently. Mirrors the paper's "reset all
    /// registers to 0" starting condition: nets downstream of inverting
    /// logic settle to 1, exactly as in hardware. (The settled state is
    /// precomputed on the [`SimGraph`]; this restores it in O(touched).)
    pub fn init_all_zero(&mut self, graph: &SimGraph) {
        self.restore_baseline(graph);
    }

    /// Full between-traces reset: the settled all-zero state, time 0 and
    /// a fresh jitter stream. Bit-for-bit equivalent to replacing the
    /// core with `SimCore::new(graph, seed)`.
    pub fn reset(&mut self, graph: &SimGraph, seed: u64) {
        self.stats.resets.inc();
        self.restore_baseline(graph);
        self.seq = 0;
        self.time = 0;
        self.salt = seed ^ JITTER_SALT_XOR;
    }

    /// Silently settle combinational logic from the current initial values
    /// (zero-delay), so the first scheduled edges start from a consistent
    /// state. Constants are also applied here.
    pub fn settle_silent(&mut self, graph: &SimGraph) {
        for i in 0..graph.constants.len() {
            let (ni, v) = graph.constants[i];
            self.values[ni as usize] = v;
            self.touch_net(ni as usize);
        }
        for oi in 0..graph.order.len() {
            let gi = graph.order[oi] as usize;
            let mut idx = 0usize;
            for (k, &pn) in graph.pins.row(gi).iter().enumerate() {
                idx |= usize::from(self.values[pn as usize]) << k;
            }
            let v = graph.truth[gi] >> idx & 1 != 0;
            self.values[graph.outputs[gi] as usize] = v;
            self.out_sched[gi] = v;
            self.touch_net(graph.outputs[gi] as usize);
            self.touch_gate(gi);
        }
    }

    /// Schedule an external edge on `net` at absolute time `time_ps`.
    ///
    /// # Panics
    ///
    /// Panics when scheduling into the past.
    pub fn schedule(&mut self, net: NetId, time_ps: u64, value: bool) {
        assert!(time_ps >= self.time, "cannot schedule into the past");
        self.stats.external.inc();
        self.seq += 1;
        self.queue.push(time_ps, self.seq, Pending { net: net.0, value, version: u32::MAX });
    }

    /// Process all events up to and including `t_end_ps`, reporting every
    /// applied transition to `sink`.
    pub fn run_until(
        &mut self,
        graph: &SimGraph,
        delays: &DelayModel,
        t_end_ps: u64,
        sink: &mut impl PowerSink,
    ) {
        while let Some((time, p)) = self.queue.pop_at_most(t_end_ps) {
            self.stats.events_popped.inc();
            self.time = time;
            self.apply(graph, delays, time, p, sink);
        }
        self.time = self.time.max(t_end_ps);
    }

    /// Run until the event queue is empty (the circuit is quiescent).
    pub fn run_to_quiescence(
        &mut self,
        graph: &SimGraph,
        delays: &DelayModel,
        sink: &mut impl PowerSink,
    ) {
        while let Some((time, p)) = self.queue.pop() {
            self.stats.events_popped.inc();
            self.time = time;
            self.apply(graph, delays, time, p, sink);
        }
    }

    /// Run until `t_end_ps` and return the raw number of applied transitions.
    pub fn run_counting(&mut self, graph: &SimGraph, delays: &DelayModel, t_end_ps: u64) -> u64 {
        let mut sink = crate::power::CountingSink::default();
        self.run_until(graph, delays, t_end_ps, &mut sink);
        sink.count
    }

    /// Drain any still-pending events (ignoring their effects) and reset
    /// simulation time to 0, keeping current net values. Used between
    /// back-to-back acquisitions on the same "device".
    pub fn rewind_time(&mut self) {
        self.queue.clear();
        for &gi in &self.touched_gates {
            self.out_last_time[gi as usize] = 0;
        }
        self.time = 0;
    }

    fn apply(
        &mut self,
        graph: &SimGraph,
        delays: &DelayModel,
        time: u64,
        p: Pending,
        sink: &mut impl PowerSink,
    ) {
        let ni = p.net as usize;
        // Stale version: this pulse was inertially annihilated after being
        // scheduled.
        if p.version != u32::MAX && self.out_version[graph.driver_gate[ni] as usize] != p.version {
            self.stats.stale.inc();
            return;
        }
        if self.values[ni] == p.value {
            self.stats.redundant.inc();
            return; // redundant edge
        }
        self.values[ni] = p.value;
        self.touch_net(ni);
        self.stats.transitions.inc();
        if gm_obs::ENABLED {
            // Per-class glitch census: one table lookup, folded away
            // entirely under obs-off.
            let dg = graph.driver_gate[ni];
            if dg == u32::MAX {
                self.stats.input_transitions.inc();
            } else {
                self.stats.kind_transitions[graph.kinds[dg as usize].class_index()].inc();
            }
        }
        sink.transition(time, NetId(p.net), p.value, self.weights[ni]);

        // Re-evaluate combinational fan-out; schedule changed outputs.
        // Multi-consumer deliveries under jitter take the burst variant,
        // which draws all the toggling gates' delays through the 8-wide
        // sampler; the in-loop scalar draw survives as the exact
        // fallback (both orderings of the same bit-identical draws).
        if graph.consumers.row(ni).len() >= 2
            && delays.jitter_sigma_ps() > 0.0
            && wide_jitter_enabled()
        {
            self.apply_fanout_burst(graph, delays, time, ni);
            return;
        }
        for &gi_u in graph.consumers.row(ni) {
            let gi = gi_u as usize;
            let mut idx = 0usize;
            for (k, &pn) in graph.pins.row(gi).iter().enumerate() {
                idx |= usize::from(self.values[pn as usize]) << k;
            }
            let out = graph.truth[gi] >> idx & 1 != 0;
            if out != self.out_sched[gi] {
                self.touch_gate(gi);
                let ord = self.ev_ord[gi];
                self.ev_ord[gi] = ord + 1;
                self.stats.jitter_scalar.inc();
                let d = delays.sample_event_ps(GateId(gi_u), self.salt, ord);
                self.schedule_output(graph, delays, time, gi_u, out, d);
            }
        }
    }

    /// Burst form of the consumer loop in [`SimCore::apply`]: phase 1
    /// evaluates the fan-out gates and collects the toggling ones with
    /// their ordinals, phase 2 draws the whole chunk through
    /// [`DelayModel::sample_event_ps_x8`], phase 3 replays the exact
    /// scalar scheduling per gate. Chunks keep the consumer order, and
    /// phase 3 runs in that order, so queue contents — time, seq,
    /// version — are bit-identical to the scalar loop's.
    fn apply_fanout_burst(&mut self, graph: &SimGraph, delays: &DelayModel, time: u64, ni: usize) {
        let row = graph.consumers.row(ni);
        let mut gates = [0u32; WIDE];
        let mut ords = [0u32; WIDE];
        let mut vals = [false; WIDE];
        let mut ds = [0u64; WIDE];
        let mut pos = 0usize;
        while pos < row.len() {
            let mut nb = 0usize;
            while pos < row.len() && nb < WIDE {
                let gi_u = row[pos];
                pos += 1;
                // The consumer table carries one entry per connected
                // pin, so a gate fed twice by `ni` appears twice. The
                // scalar loop's second visit sees `out_sched` already
                // updated and drops out; here that update is deferred
                // to phase 3, so the duplicate is skipped explicitly.
                if (0..nb).any(|j| gates[j] == gi_u) {
                    continue;
                }
                let gi = gi_u as usize;
                let mut idx = 0usize;
                for (k, &pn) in graph.pins.row(gi).iter().enumerate() {
                    idx |= usize::from(self.values[pn as usize]) << k;
                }
                let out = graph.truth[gi] >> idx & 1 != 0;
                if out != self.out_sched[gi] {
                    self.touch_gate(gi);
                    gates[nb] = gi_u;
                    ords[nb] = self.ev_ord[gi];
                    vals[nb] = out;
                    self.ev_ord[gi] += 1;
                    nb += 1;
                }
            }
            if nb == 0 {
                continue;
            }
            delays.sample_event_ps_x8(self.salt, &gates, &ords, nb, &mut ds);
            self.stats.jitter_batched.add(nb as u64);
            for j in 0..nb {
                self.schedule_output(graph, delays, time, gates[j], vals[j], ds[j]);
            }
        }
    }

    /// Schedule one gate's output change at `time + d` — transport
    /// ordering, inertial annihilation, version bump and queue push.
    /// The tail both the scalar consumer loop and the burst variant
    /// funnel into.
    #[inline]
    fn schedule_output(
        &mut self,
        graph: &SimGraph,
        delays: &DelayModel,
        time: u64,
        gi_u: u32,
        out: bool,
        d: u64,
    ) {
        let gi = gi_u as usize;
        // A single driver's edges stay ordered even under jitter.
        let t = (time + d).max(self.out_last_time[gi] + 1);
        let pending = self.out_last_time[gi] > time;
        let out_net = graph.outputs[gi];
        if pending
            && t.saturating_sub(self.out_last_time[gi]) < delays.pulse_reject_of(GateId(gi_u))
        {
            // The in-flight pulse is narrower than the switching
            // time: annihilate it instead of delivering both edges.
            self.stats.annihilations.inc();
            self.out_version[gi] = self.out_version[gi].wrapping_add(1);
            self.out_sched[gi] = self.values[out_net as usize];
            if out == self.out_sched[gi] {
                return;
            }
        }
        self.out_sched[gi] = out;
        self.out_last_time[gi] = t;
        self.seq += 1;
        self.stats.scheduled.inc();
        self.queue.push(
            t,
            self.seq,
            Pending { net: out_net, value: out, version: self.out_version[gi] },
        );
    }
}

/// How a [`Simulator`]/[`ClockedSim`](crate::ClockedSim) holds its graph:
/// built on the spot, or borrowed from a shared prebuilt one.
#[derive(Debug)]
pub(crate) enum GraphRef<'a> {
    Owned(Box<SimGraph>),
    Shared(&'a SimGraph),
}

impl GraphRef<'_> {
    #[inline]
    pub(crate) fn get(&self) -> &SimGraph {
        match self {
            GraphRef::Owned(g) => g,
            GraphRef::Shared(g) => g,
        }
    }
}

/// Event-driven simulator over one [`Netlist`] instance.
///
/// External edges (primary inputs, flip-flop outputs) are injected with
/// [`Simulator::schedule`]; combinational propagation, including glitches,
/// follows from the [`DelayModel`].
///
/// For one-shot use, [`Simulator::new`] derives the topology itself. For
/// campaigns, build a [`SimGraph`] once, share it, and recycle one
/// simulator per worker via [`Simulator::with_graph`] +
/// [`Simulator::reset`].
///
/// # Examples
///
/// A NAND whose two inputs rise at different times produces a 0-glitch:
///
/// ```
/// use gm_netlist::Netlist;
/// use gm_sim::{DelayModel, Simulator};
///
/// let mut n = Netlist::new("g");
/// let a = n.input("a");
/// let b = n.input("b");
/// let inv_a = n.inv(a);           // slow path
/// let y = n.and2(inv_a, b);       // y = !a & b
/// n.output("y", y);
///
/// let delays = DelayModel::nominal(&n);
/// let mut sim = Simulator::new(&n, &delays, 0);
/// sim.init_all_zero();
/// sim.set_initial(b, false);
/// // a and b rise together: y should stay 0, but the inverter lags.
/// sim.schedule(a, 1_000, true);
/// sim.schedule(b, 1_000, true);
/// let toggles = sim.run_counting(10_000);
/// assert!(toggles >= 2, "glitch pulse on y expected, saw {toggles} toggles");
/// ```
pub struct Simulator<'a> {
    delays: &'a DelayModel,
    graph: GraphRef<'a>,
    core: SimCore,
}

impl<'a> Simulator<'a> {
    /// Build a simulator (deriving its own [`SimGraph`]). `seed` drives
    /// per-event delay jitter.
    pub fn new(netlist: &Netlist, delays: &'a DelayModel, seed: u64) -> Self {
        let graph = Box::new(SimGraph::new(netlist));
        let core = SimCore::new(&graph, seed);
        Simulator { delays, graph: GraphRef::Owned(graph), core }
    }

    /// Build a simulator over a shared prebuilt [`SimGraph`].
    pub fn with_graph(graph: &'a SimGraph, delays: &'a DelayModel, seed: u64) -> Self {
        let core = SimCore::new(graph, seed);
        Simulator { delays, graph: GraphRef::Shared(graph), core }
    }

    /// The simulation topology in use.
    pub fn graph(&self) -> &SimGraph {
        self.graph.get()
    }

    /// Full between-traces reset; bit-for-bit equivalent to a fresh
    /// `Simulator::new` with the same seed (see [`SimCore::reset`]).
    pub fn reset(&mut self, seed: u64) {
        self.core.reset(self.graph.get(), seed);
    }

    /// Swap in the reference heap queue (differential testing only).
    #[doc(hidden)]
    pub fn use_reference_heap_queue(&mut self) {
        self.core.use_reference_heap_queue();
    }

    /// Current simulation time (ps).
    pub fn time(&self) -> u64 {
        self.core.time()
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.core.value(net)
    }

    /// Set a net value *silently* (no event, no power) — initial condition.
    pub fn set_initial(&mut self, net: NetId, value: bool) {
        self.core.set_initial(net, value);
    }

    /// Override the toggle weight of one net (see [`SimCore::set_net_weight`]).
    pub fn set_net_weight(&mut self, net: NetId, weight: f64) {
        self.core.set_net_weight(net, weight);
    }

    /// Set the toggle weight of every net driven by a cell of `kind`.
    pub fn set_kind_weight(&mut self, kind: GateKind, weight: f64) {
        self.core.set_kind_weight(self.graph.get(), kind, weight);
    }

    /// Restore the settled all-zero state (see [`SimCore::init_all_zero`]).
    pub fn init_all_zero(&mut self) {
        self.core.init_all_zero(self.graph.get());
    }

    /// Silently settle combinational logic from the current initial values.
    pub fn settle_silent(&mut self) {
        self.core.settle_silent(self.graph.get());
    }

    /// Schedule an external edge on `net` at absolute time `time_ps`.
    ///
    /// # Panics
    ///
    /// Panics when scheduling into the past.
    pub fn schedule(&mut self, net: NetId, time_ps: u64, value: bool) {
        self.core.schedule(net, time_ps, value);
    }

    /// Process all events up to and including `t_end_ps`, reporting every
    /// applied transition to `sink`.
    pub fn run_until(&mut self, t_end_ps: u64, sink: &mut impl PowerSink) {
        self.core.run_until(self.graph.get(), self.delays, t_end_ps, sink);
    }

    /// Run until `t_end_ps` and return the raw number of applied transitions.
    pub fn run_counting(&mut self, t_end_ps: u64) -> u64 {
        self.core.run_counting(self.graph.get(), self.delays, t_end_ps)
    }

    /// Drain pending events and reset time to 0, keeping net values.
    pub fn rewind_time(&mut self) {
        self.core.rewind_time();
    }

    /// Run until the event queue is empty (the circuit is quiescent).
    pub fn run_to_quiescence(&mut self, sink: &mut impl PowerSink) {
        self.core.run_to_quiescence(self.graph.get(), self.delays, sink);
    }

    /// Lifetime event counters (zeros under `obs-off`).
    pub fn stats(&self) -> &SimStats {
        self.core.stats()
    }

    /// Export engine (and wheel) counters under `<prefix>.*`.
    pub fn obs_report(&self, prefix: &str, r: &mut Report) {
        self.core.obs_report(prefix, r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::{CountingSink, NullSink};

    /// y = a & b with equal input arrival: exactly the final transitions.
    #[test]
    fn no_glitch_when_inputs_aligned() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let y = n.and2(a, b);
        n.output("y", y);
        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        sim.schedule(a, 100, true);
        sim.schedule(b, 100, true);
        let mut c = CountingSink::default();
        sim.run_until(10_000, &mut c);
        // a, b, y — three transitions, no glitches.
        assert_eq!(c.count, 3);
        assert!(sim.value(y));
    }

    /// Static-1 hazard on an AND-OR pair: xor of skewed inputs glitches.
    #[test]
    fn skewed_inputs_glitch() {
        // y = (a & b) ^ (a | b); with a=b=1 -> 1^1 = 0, steady state 0->0,
        // but the AND path is faster/slower than the OR path via an extra buf.
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let p = n.and2(a, b);
        let q0 = n.or2(a, b);
        let q1 = n.buf(q0); // two buffers: skew > pulse-reject width
        let q = n.buf(q1);
        let y = n.xor2(p, q);
        n.output("y", y);
        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        sim.schedule(a, 100, true);
        sim.schedule(b, 100, true);
        let mut c = CountingSink::default();
        sim.run_until(20_000, &mut c);
        assert!(!sim.value(y), "steady state of 1&1 ^ 1|1 is 0");
        // y must have pulsed: transitions strictly exceed the glitch-free
        // count (a, b, p, q0, q1, q = 6).
        assert!(c.count > 6, "expected a glitch pulse, got {} transitions", c.count);
    }

    /// Final values always match zero-delay evaluation, glitches or not.
    #[test]
    fn settles_to_functional_value() {
        use rand::{RngExt, SeedableRng};
        let mut n = Netlist::new("t");
        let ins: Vec<_> = (0..4).map(|i| n.input(format!("i{i}"))).collect();
        let x0 = n.and2(ins[0], ins[1]);
        let x1 = n.or2(ins[2], ins[3]);
        let x2 = n.xor2(x0, x1);
        let x3 = n.mux2(ins[0], x2, x1);
        let inv = n.inv(x3);
        n.output("o", inv);
        n.validate().unwrap();

        let delays = DelayModel::with_variation(&n, 0.3, 40.0, 5);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        for trial in 0..50 {
            let mut sim = Simulator::new(&n, &delays, trial);
            sim.init_all_zero();
            let bits: Vec<bool> = (0..4).map(|_| rng.random()).collect();
            for (k, &net) in ins.iter().enumerate() {
                // staggered arrivals to invite glitches
                sim.schedule(net, 100 + 137 * k as u64, bits[k]);
            }
            sim.run_until(1_000_000, &mut NullSink);

            let mut ev = gm_netlist::Evaluator::new(&n).unwrap();
            let want =
                ev.run_combinational(&n, &ins.iter().copied().zip(bits).collect::<Vec<_>>())[0];
            assert_eq!(sim.value(inv), want, "trial {trial}");
        }
    }

    /// Pulses narrower than the switching time are inertially rejected;
    /// wide pulses are transported in full.
    #[test]
    fn inertial_rejects_narrow_transports_wide() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let chain = n.delay_chain(a, 2);
        n.output("o", chain);
        let delays = DelayModel::nominal(&n);

        // 10 ps pulse (<< pulse_reject_ps): dies at the first buffer.
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        sim.schedule(a, 100, true);
        sim.schedule(a, 110, false);
        let mut c = CountingSink::default();
        sim.run_until(100_000, &mut c);
        assert_eq!(c.count, 2, "only the input edges themselves");

        // 5 ns pulse (>> pulse_reject_ps): both chain nets pulse fully.
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        sim.schedule(a, 100, true);
        sim.schedule(a, 5_100, false);
        let mut c = CountingSink::default();
        sim.run_until(100_000, &mut c);
        assert_eq!(c.count, 6, "a up/down + 2 nets up/down");
    }

    /// run_to_quiescence drains everything regardless of horizon.
    #[test]
    fn run_to_quiescence_settles() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let chain = n.delay_chain(a, 5);
        n.output("o", chain);
        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        sim.schedule(a, 1, true);
        sim.run_to_quiescence(&mut NullSink);
        assert!(sim.value(chain), "edge must have traversed all 5 stages");
        assert!(sim.time() >= 5 * 1150);
    }

    /// An annihilated pulse leaves no residue: after the cancel, a later
    /// genuine edge still propagates with a fresh version.
    #[test]
    fn cancelled_pulse_then_real_edge() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let buf = n.delay_buf(a);
        n.output("o", buf);
        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        // 10 ps pulse: annihilated inside the DelayBuf.
        sim.schedule(a, 100, true);
        sim.schedule(a, 110, false);
        // Much later, a real edge.
        sim.schedule(a, 50_000, true);
        let mut c = CountingSink::default();
        sim.run_until(100_000, &mut c);
        assert!(sim.value(buf), "the real edge must arrive");
        // a: up/down/up (3) + buf: up (1).
        assert_eq!(c.count, 4);
    }

    #[test]
    fn redundant_edges_are_ignored() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let y = n.buf(a);
        n.output("y", y);
        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        sim.schedule(a, 100, false); // no-op: already 0
        let mut c = CountingSink::default();
        sim.run_until(10_000, &mut c);
        assert_eq!(c.count, 0);
    }

    /// reset() brings a dirtied simulator back to the exact fresh state:
    /// replaying the same stimuli yields the identical transition stream.
    #[test]
    fn reset_equals_fresh() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let p = n.and2(a, b);
        let q = n.xor2(p, a);
        let inv = n.inv(q);
        n.output("o", inv);
        n.validate().unwrap();
        let delays = DelayModel::with_variation(&n, 0.4, 60.0, 9);

        let record = |sim: &mut Simulator| {
            let mut rec = Vec::new();
            struct R<'v>(&'v mut Vec<(u64, u32, bool)>);
            impl PowerSink for R<'_> {
                fn transition(&mut self, t: u64, net: NetId, v: bool, _w: f64) {
                    self.0.push((t, net.0, v));
                }
            }
            sim.schedule(a, 500, true);
            sim.schedule(b, 900, true);
            sim.schedule(a, 30_000, false);
            sim.run_until(60_000, &mut R(&mut rec));
            rec
        };

        let mut fresh = Simulator::new(&n, &delays, 42);
        fresh.init_all_zero();
        let want = record(&mut fresh);

        // Dirty a simulator with a different seed/stimuli, then reset.
        let mut reused = Simulator::new(&n, &delays, 7);
        reused.init_all_zero();
        reused.schedule(b, 100, true);
        reused.run_until(900_000, &mut NullSink);
        reused.reset(42);
        let got = record(&mut reused);
        assert_eq!(got, want, "reset must reproduce the fresh stream");
    }

    /// The burst consumer loop (wide jitter path) must reproduce the
    /// scalar loop's transition stream exactly — same nets, times and
    /// order — on a fan-out-heavy netlist with annihilation-width
    /// jitter. Toggling the global gate is benign for concurrently
    /// running tests precisely because the two paths are bit-identical.
    #[test]
    fn burst_fanout_matches_scalar() {
        use crate::delay::set_wide_jitter;
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        // One net (a) fans out to many consumers so bursts exceed one
        // chunk; xor tree keeps everything toggling.
        let mut accs = Vec::new();
        for k in 0..10 {
            let p = if k % 2 == 0 { n.and2(a, b) } else { n.or2(a, b) };
            accs.push(n.xor2(p, a));
        }
        let mut acc = accs[0];
        for &x in &accs[1..] {
            acc = n.xor2(acc, x);
        }
        n.output("o", acc);
        n.validate().unwrap();
        let delays = DelayModel::with_variation(&n, 0.6, 300.0, 0x77);

        let record = |wide: bool, seed: u64| {
            set_wide_jitter(wide);
            let mut rec: Vec<(u64, u32, bool)> = Vec::new();
            struct R<'v>(&'v mut Vec<(u64, u32, bool)>);
            impl PowerSink for R<'_> {
                fn transition(&mut self, t: u64, net: NetId, v: bool, _w: f64) {
                    self.0.push((t, net.0, v));
                }
            }
            let mut sim = Simulator::new(&n, &delays, seed);
            sim.init_all_zero();
            sim.schedule(a, 1_000, true);
            sim.schedule(b, 1_100, true);
            sim.schedule(a, 9_000, false);
            sim.run_until(200_000, &mut R(&mut rec));
            set_wide_jitter(true);
            rec
        };
        for seed in 0..16u64 {
            let wide = record(true, seed);
            let scalar = record(false, seed);
            assert_eq!(wide, scalar, "seed {seed}: burst and scalar streams must be identical");
            assert!(wide.len() > 6, "seed {seed}: fan-out must actually glitch");
        }
    }

    /// The engine counters reconcile: every popped event is applied,
    /// redundant, or stale, and the per-class census sums to the applied
    /// transitions.
    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn stats_reconcile() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let p = n.and2(a, b);
        let q0 = n.or2(a, b);
        let q1 = n.buf(q0);
        let q = n.buf(q1);
        let y = n.xor2(p, q);
        n.output("y", y);
        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 3);
        sim.init_all_zero();
        sim.schedule(a, 100, true);
        sim.schedule(b, 100, true);
        let mut c = CountingSink::default();
        sim.run_until(50_000, &mut c);

        let s = sim.stats();
        assert_eq!(s.external.get(), 2);
        assert_eq!(
            s.events_popped.get(),
            s.transitions.get() + s.redundant.get() + s.stale.get(),
            "popped = applied + redundant + stale"
        );
        assert_eq!(s.transitions.get(), c.count, "census agrees with the power sink");
        let census: u64 = s.kind_transitions().iter().sum();
        assert_eq!(census + s.input_transitions.get(), s.transitions.get());
        assert_eq!(s.input_transitions.get(), 2, "a and b");

        let mut r = Report::new();
        sim.obs_report("sim", &mut r);
        assert_eq!(r.get("sim.transitions"), Some(s.transitions.get()));
        assert!(r.get("sim.wheel.push_drain").is_some() || r.get("sim.wheel.push_ring").is_some());
    }

    /// A shared SimGraph behaves identically to a privately built one.
    #[test]
    fn with_graph_matches_new() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let chain = n.delay_chain(a, 3);
        let inv = n.inv(chain);
        n.output("o", inv);
        let delays = DelayModel::with_variation(&n, 0.2, 30.0, 3);
        let graph = SimGraph::new(&n);

        let mut s1 = Simulator::new(&n, &delays, 5);
        let mut s2 = Simulator::with_graph(&graph, &delays, 5);
        for sim in [&mut s1, &mut s2] {
            sim.init_all_zero();
            sim.schedule(a, 1_000, true);
        }
        assert_eq!(s1.run_counting(100_000), s2.run_counting(100_000));
        assert_eq!(s1.value(inv), s2.value(inv));
        assert_eq!(s1.time(), s2.time());
    }
}
