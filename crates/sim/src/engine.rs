//! The event engine: transport delay with inertial pulse rejection.
//!
//! Semantics, matching CMOS physics:
//!
//! * **transport**: every scheduled output change wider than the gate's
//!   switching time is delivered — a gate whose inputs settle at clearly
//!   different moments emits its full glitch train (this is the hazard
//!   the paper builds on);
//! * **inertial rejection**: a pulse narrower than the gate's switching
//!   time ([`DelayModel::pulse_reject_ps`]) is annihilated before it can
//!   propagate — near-simultaneous input edges do *not* produce output
//!   energy. Without this filter a cancelled glitch would be counted as a
//!   full double-toggle and the data-dependence of glitch energy (the
//!   whole point of Table I) would wash out.

use crate::delay::DelayModel;
use crate::power::NullSink;
use gm_netlist::netlist::Driver;
use gm_netlist::{GateId, NetId, Netlist};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Receiver of net-transition (switching-activity) notifications.
///
/// `weight` is the capacitance proxy of the toggled net (the area of its
/// driver cell); implementations bin it into power samples, count it, or
/// feed crosstalk models.
pub trait PowerSink {
    /// Called once per *applied* net transition.
    fn transition(&mut self, time_ps: u64, net: NetId, new_value: bool, weight: f64);
}

impl<A: PowerSink, B: PowerSink> PowerSink for (A, B) {
    fn transition(&mut self, time_ps: u64, net: NetId, new_value: bool, weight: f64) {
        self.0.transition(time_ps, net, new_value, weight);
        self.1.transition(time_ps, net, new_value, weight);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    seq: u64,
    net: NetId,
    value: bool,
    /// Driver-gate schedule version; stale versions are cancelled pulses.
    /// External events carry `u32::MAX` (never cancelled).
    version: u32,
}

/// Event-driven simulator over one [`Netlist`] instance.
///
/// External edges (primary inputs, flip-flop outputs) are injected with
/// [`Simulator::schedule`]; combinational propagation, including glitches,
/// follows from the [`DelayModel`].
///
/// # Examples
///
/// A NAND whose two inputs rise at different times produces a 0-glitch:
///
/// ```
/// use gm_netlist::Netlist;
/// use gm_sim::{DelayModel, Simulator};
///
/// let mut n = Netlist::new("g");
/// let a = n.input("a");
/// let b = n.input("b");
/// let inv_a = n.inv(a);           // slow path
/// let y = n.and2(inv_a, b);       // y = !a & b
/// n.output("y", y);
///
/// let delays = DelayModel::nominal(&n);
/// let mut sim = Simulator::new(&n, &delays, 0);
/// sim.init_all_zero();
/// sim.set_initial(b, false);
/// // a and b rise together: y should stay 0, but the inverter lags.
/// sim.schedule(a, 1_000, true);
/// sim.schedule(b, 1_000, true);
/// let toggles = sim.run_counting(10_000);
/// assert!(toggles >= 2, "glitch pulse on y expected, saw {toggles} toggles");
/// ```
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    delays: &'a DelayModel,
    values: Vec<bool>,
    /// Last *scheduled* output value per gate (transport-delay bookkeeping).
    out_sched: Vec<bool>,
    /// Time of the last scheduled output event per gate: jitter must not
    /// reorder a single driver's edges (a physical wire cannot).
    out_last_time: Vec<u64>,
    /// Schedule version per gate; bumping it cancels in-flight pulses.
    out_version: Vec<u32>,
    /// Driver gate of each net (u32::MAX for inputs/constants).
    driver_gate: Vec<u32>,
    /// Per-net toggle weight (driver cell area).
    weights: Vec<f64>,
    /// Combinational consumers of each net.
    consumers: Vec<Vec<u32>>,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    time: u64,
    rng: SmallRng,
    pins_buf: Vec<bool>,
}

impl<'a> Simulator<'a> {
    /// Build a simulator. `seed` drives per-event delay jitter.
    pub fn new(netlist: &'a Netlist, delays: &'a DelayModel, seed: u64) -> Self {
        let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); netlist.num_nets()];
        for (gi, g) in netlist.gates().iter().enumerate() {
            if g.kind.is_sequential() {
                continue;
            }
            for &i in &g.inputs {
                consumers[i.index()].push(gi as u32);
            }
        }
        let mut weights = vec![1.0; netlist.num_nets()];
        let mut driver_gate = vec![u32::MAX; netlist.num_nets()];
        for i in 0..netlist.num_nets() {
            if let Driver::Gate(g) = netlist.driver(NetId(i as u32)) {
                weights[i] = netlist.gate(g).kind.area_ge();
                driver_gate[i] = g.0;
            }
        }
        Simulator {
            netlist,
            delays,
            values: vec![false; netlist.num_nets()],
            out_sched: vec![false; netlist.num_gates()],
            out_last_time: vec![0; netlist.num_gates()],
            out_version: vec![0; netlist.num_gates()],
            driver_gate,
            weights,
            consumers,
            queue: BinaryHeap::new(),
            seq: 0,
            time: 0,
            rng: SmallRng::seed_from_u64(seed ^ 0xd1b5_4a32_d192_ed03),
            pins_buf: Vec::with_capacity(3),
        }
    }

    /// Current simulation time (ps).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Set a net value *silently* (no event, no power) — initial condition.
    pub fn set_initial(&mut self, net: NetId, value: bool) {
        self.values[net.index()] = value;
    }

    /// Override the toggle weight (capacitance proxy) of one net. The
    /// default is the driver cell's area; experiments targeting FPGA
    /// power may want e.g. LUT-as-buffer delay elements at LUT weight
    /// rather than their ASIC-area equivalent.
    pub fn set_net_weight(&mut self, net: NetId, weight: f64) {
        self.weights[net.index()] = weight;
    }

    /// Set the toggle weight of every net driven by a cell of `kind`.
    pub fn set_kind_weight(&mut self, kind: gm_netlist::GateKind, weight: f64) {
        for g in self.netlist.gates() {
            if g.kind == kind {
                self.weights[g.output.index()] = weight;
            }
        }
    }

    /// Zero every primary input and flip-flop output, then let the
    /// combinational logic settle silently. Mirrors the paper's "reset all
    /// registers to 0" starting condition: nets downstream of inverting
    /// logic settle to 1, exactly as in hardware.
    pub fn init_all_zero(&mut self) {
        self.values.iter_mut().for_each(|v| *v = false);
        self.queue.clear();
        self.out_last_time.iter_mut().for_each(|t| *t = 0);
        self.settle_silent();
    }

    /// Silently settle combinational logic from the current initial values
    /// (zero-delay), so the first scheduled edges start from a consistent
    /// state. Constants are also applied here.
    pub fn settle_silent(&mut self) {
        for i in 0..self.netlist.num_nets() {
            if let Driver::Constant(v) = self.netlist.driver(NetId(i as u32)) {
                self.values[i] = v;
            }
        }
        let order = gm_netlist::topo::combinational_order(self.netlist)
            .expect("netlist validated before simulation");
        for gid in order {
            let g = self.netlist.gate(gid);
            self.pins_buf.clear();
            for &i in &g.inputs {
                self.pins_buf.push(self.values[i.index()]);
            }
            let v = g.kind.eval(&self.pins_buf);
            self.values[g.output.index()] = v;
            self.out_sched[gid.index()] = v;
        }
    }

    /// Schedule an external edge on `net` at absolute time `time_ps`.
    ///
    /// # Panics
    ///
    /// Panics when scheduling into the past.
    pub fn schedule(&mut self, net: NetId, time_ps: u64, value: bool) {
        assert!(time_ps >= self.time, "cannot schedule into the past");
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time: time_ps,
            seq: self.seq,
            net,
            value,
            version: u32::MAX,
        }));
    }

    /// Process all events up to and including `t_end_ps`, reporting every
    /// applied transition to `sink`.
    pub fn run_until(&mut self, t_end_ps: u64, sink: &mut impl PowerSink) {
        while let Some(&Reverse(ev)) = self.queue.peek() {
            if ev.time > t_end_ps {
                break;
            }
            self.queue.pop();
            self.time = ev.time;
            self.apply(ev, sink);
        }
        self.time = self.time.max(t_end_ps);
    }

    fn apply(&mut self, ev: Event, sink: &mut impl PowerSink) {
        let ni = ev.net.index();
        // Stale version: this pulse was inertially annihilated after being
        // scheduled.
        if ev.version != u32::MAX && self.out_version[self.driver_gate[ni] as usize] != ev.version {
            return;
        }
        if self.values[ni] == ev.value {
            return; // redundant edge
        }
        self.values[ni] = ev.value;
        sink.transition(ev.time, ev.net, ev.value, self.weights[ni]);

        // Re-evaluate combinational fan-out; schedule changed outputs.
        for ci in 0..self.consumers[ni].len() {
            let gi = self.consumers[ni][ci] as usize;
            let g = &self.netlist.gates()[gi];
            self.pins_buf.clear();
            for &i in &g.inputs {
                self.pins_buf.push(self.values[i.index()]);
            }
            let out = g.kind.eval(&self.pins_buf);
            if out != self.out_sched[gi] {
                let d = self.delays.sample_ps(GateId(gi as u32), &mut self.rng);
                // A single driver's edges stay ordered even under jitter.
                let t = (ev.time + d).max(self.out_last_time[gi] + 1);
                let pending = self.out_last_time[gi] > ev.time;
                if pending
                    && t.saturating_sub(self.out_last_time[gi]) < self.delays.pulse_reject_ps()
                {
                    // The in-flight pulse is narrower than the switching
                    // time: annihilate it instead of delivering both edges.
                    self.out_version[gi] = self.out_version[gi].wrapping_add(1);
                    self.out_sched[gi] = self.values[g.output.index()];
                    if out != self.out_sched[gi] {
                        self.out_sched[gi] = out;
                        self.out_last_time[gi] = t;
                        self.seq += 1;
                        self.queue.push(Reverse(Event {
                            time: t,
                            seq: self.seq,
                            net: g.output,
                            value: out,
                            version: self.out_version[gi],
                        }));
                    }
                } else {
                    self.out_sched[gi] = out;
                    self.out_last_time[gi] = t;
                    self.seq += 1;
                    self.queue.push(Reverse(Event {
                        time: t,
                        seq: self.seq,
                        net: g.output,
                        value: out,
                        version: self.out_version[gi],
                    }));
                }
            }
        }
    }

    /// Run until `t_end_ps` and return the raw number of applied transitions.
    pub fn run_counting(&mut self, t_end_ps: u64) -> u64 {
        let mut sink = crate::power::CountingSink::default();
        self.run_until(t_end_ps, &mut sink);
        sink.count
    }

    /// Drain any still-pending events (ignoring their effects) and reset
    /// simulation time to 0, keeping current net values. Used between
    /// independent trace acquisitions on the same "device".
    pub fn rewind_time(&mut self) {
        self.queue.clear();
        self.out_last_time.iter_mut().for_each(|t| *t = 0);
        self.time = 0;
    }

    /// Run until the event queue is empty (the circuit is quiescent).
    pub fn run_to_quiescence(&mut self, sink: &mut impl PowerSink) {
        while let Some(&Reverse(ev)) = self.queue.peek() {
            let _ = ev;
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.time = ev.time;
            self.apply(ev, sink);
        }
    }
}

impl PowerSink for NullSink {
    fn transition(&mut self, _time_ps: u64, _net: NetId, _new_value: bool, _weight: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::{CountingSink, NullSink};

    /// y = a & b with equal input arrival: exactly the final transitions.
    #[test]
    fn no_glitch_when_inputs_aligned() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let y = n.and2(a, b);
        n.output("y", y);
        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        sim.schedule(a, 100, true);
        sim.schedule(b, 100, true);
        let mut c = CountingSink::default();
        sim.run_until(10_000, &mut c);
        // a, b, y — three transitions, no glitches.
        assert_eq!(c.count, 3);
        assert!(sim.value(y));
    }

    /// Static-1 hazard on an AND-OR pair: xor of skewed inputs glitches.
    #[test]
    fn skewed_inputs_glitch() {
        // y = (a & b) ^ (a | b); with a=b=1 -> 1^1 = 0, steady state 0->0,
        // but the AND path is faster/slower than the OR path via an extra buf.
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let p = n.and2(a, b);
        let q0 = n.or2(a, b);
        let q1 = n.buf(q0); // two buffers: skew > pulse-reject width
        let q = n.buf(q1);
        let y = n.xor2(p, q);
        n.output("y", y);
        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        sim.schedule(a, 100, true);
        sim.schedule(b, 100, true);
        let mut c = CountingSink::default();
        sim.run_until(20_000, &mut c);
        assert!(!sim.value(y), "steady state of 1&1 ^ 1|1 is 0");
        // y must have pulsed: transitions strictly exceed the glitch-free
        // count (a, b, p, q0, q1, q = 6).
        assert!(c.count > 6, "expected a glitch pulse, got {} transitions", c.count);
    }

    /// Final values always match zero-delay evaluation, glitches or not.
    #[test]
    fn settles_to_functional_value() {
        use rand::{RngExt, SeedableRng};
        let mut n = Netlist::new("t");
        let ins: Vec<_> = (0..4).map(|i| n.input(format!("i{i}"))).collect();
        let x0 = n.and2(ins[0], ins[1]);
        let x1 = n.or2(ins[2], ins[3]);
        let x2 = n.xor2(x0, x1);
        let x3 = n.mux2(ins[0], x2, x1);
        let inv = n.inv(x3);
        n.output("o", inv);
        n.validate().unwrap();

        let delays = DelayModel::with_variation(&n, 0.3, 40.0, 5);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        for trial in 0..50 {
            let mut sim = Simulator::new(&n, &delays, trial);
            sim.init_all_zero();
            let bits: Vec<bool> = (0..4).map(|_| rng.random()).collect();
            for (k, &net) in ins.iter().enumerate() {
                // staggered arrivals to invite glitches
                sim.schedule(net, 100 + 137 * k as u64, bits[k]);
            }
            sim.run_until(1_000_000, &mut NullSink);

            let mut ev = gm_netlist::Evaluator::new(&n).unwrap();
            let want =
                ev.run_combinational(&n, &ins.iter().copied().zip(bits).collect::<Vec<_>>())[0];
            assert_eq!(sim.value(inv), want, "trial {trial}");
        }
    }

    /// Pulses narrower than the switching time are inertially rejected;
    /// wide pulses are transported in full.
    #[test]
    fn inertial_rejects_narrow_transports_wide() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let chain = n.delay_chain(a, 2);
        n.output("o", chain);
        let delays = DelayModel::nominal(&n);

        // 10 ps pulse (<< pulse_reject_ps): dies at the first buffer.
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        sim.schedule(a, 100, true);
        sim.schedule(a, 110, false);
        let mut c = CountingSink::default();
        sim.run_until(100_000, &mut c);
        assert_eq!(c.count, 2, "only the input edges themselves");

        // 5 ns pulse (>> pulse_reject_ps): both chain nets pulse fully.
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        sim.schedule(a, 100, true);
        sim.schedule(a, 5_100, false);
        let mut c = CountingSink::default();
        sim.run_until(100_000, &mut c);
        assert_eq!(c.count, 6, "a up/down + 2 nets up/down");
    }

    /// run_to_quiescence drains everything regardless of horizon.
    #[test]
    fn run_to_quiescence_settles() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let chain = n.delay_chain(a, 5);
        n.output("o", chain);
        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        sim.schedule(a, 1, true);
        sim.run_to_quiescence(&mut NullSink);
        assert!(sim.value(chain), "edge must have traversed all 5 stages");
        assert!(sim.time() >= 5 * 1150);
    }

    /// An annihilated pulse leaves no residue: after the cancel, a later
    /// genuine edge still propagates with a fresh version.
    #[test]
    fn cancelled_pulse_then_real_edge() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let buf = n.delay_buf(a);
        n.output("o", buf);
        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        // 10 ps pulse: annihilated inside the DelayBuf.
        sim.schedule(a, 100, true);
        sim.schedule(a, 110, false);
        // Much later, a real edge.
        sim.schedule(a, 50_000, true);
        let mut c = CountingSink::default();
        sim.run_until(100_000, &mut c);
        assert!(sim.value(buf), "the real edge must arrive");
        // a: up/down/up (3) + buf: up (1).
        assert_eq!(c.count, 4);
    }

    #[test]
    fn redundant_edges_are_ignored() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let y = n.buf(a);
        n.output("y", y);
        let delays = DelayModel::nominal(&n);
        let mut sim = Simulator::new(&n, &delays, 0);
        sim.init_all_zero();
        sim.schedule(a, 100, false); // no-op: already 0
        let mut c = CountingSink::default();
        sim.run_until(10_000, &mut c);
        assert_eq!(c.count, 0);
    }
}
