//! Multi-cycle clocked simulation harness.
//!
//! Wraps the event [`Simulator`] with synchronous register semantics:
//! at every rising edge all flip-flops sample their (settled) inputs and
//! their outputs change after a clk-to-Q delay, launching the next wave of
//! combinational — possibly glitchy — activity. Per-cycle stimuli can be
//! injected with arbitrary intra-cycle arrival offsets, which is how the
//! paper's controlled input-sequence experiments (Table I) are reproduced.

use crate::delay::DelayModel;
use crate::engine::{PowerSink, Simulator};
use gm_netlist::{GateId, NetId, Netlist};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A stimulus applied during one clock cycle.
#[derive(Debug, Clone, Copy)]
pub struct Stimulus {
    /// Primary-input net to drive.
    pub net: NetId,
    /// Arrival offset after the clock edge, in ps.
    pub offset_ps: u64,
    /// New value.
    pub value: bool,
}

/// Clocked wrapper over the event-driven [`Simulator`].
///
/// # Examples
///
/// A one-bit register pipeline under real event timing:
///
/// ```
/// use gm_netlist::Netlist;
/// use gm_sim::clocked::Stimulus;
/// use gm_sim::power::NullSink;
/// use gm_sim::{ClockedSim, DelayModel};
///
/// let mut n = Netlist::new("pipe");
/// let d = n.input("d");
/// let q0 = n.dff(d);
/// let q1 = n.dff(q0);
/// n.output("q1", q1);
///
/// let delays = DelayModel::nominal(&n);
/// let mut sim = ClockedSim::new(&n, &delays, 10_000, 0);
/// sim.step(&[Stimulus { net: d, offset_ps: 100, value: true }], &mut NullSink);
/// sim.step(&[], &mut NullSink);
/// sim.step(&[], &mut NullSink);
/// assert!(sim.value(q1), "the bit took two edges to reach q1");
/// ```
pub struct ClockedSim<'a> {
    sim: Simulator<'a>,
    netlist: &'a Netlist,
    delays: &'a DelayModel,
    ff_gates: Vec<GateId>,
    ff_state: Vec<bool>,
    period_ps: u64,
    cycle: u64,
    rng: SmallRng,
    pins_buf: Vec<bool>,
    next_buf: Vec<bool>,
}

impl<'a> ClockedSim<'a> {
    /// Build a clocked simulator with the given clock period.
    pub fn new(netlist: &'a Netlist, delays: &'a DelayModel, period_ps: u64, seed: u64) -> Self {
        assert!(period_ps > 0, "period must be positive");
        let ff_gates: Vec<GateId> = netlist
            .gates()
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind.is_sequential())
            .map(|(i, _)| GateId(i as u32))
            .collect();
        let mut sim = Simulator::new(netlist, delays, seed);
        sim.init_all_zero();
        sim.settle_silent();
        let n_ff = ff_gates.len();
        ClockedSim {
            sim,
            netlist,
            delays,
            ff_gates,
            ff_state: vec![false; n_ff],
            period_ps,
            cycle: 0,
            rng: SmallRng::seed_from_u64(seed ^ 0x94d0_49bb_1331_11eb),
            pins_buf: Vec::with_capacity(3),
            next_buf: Vec::with_capacity(n_ff),
        }
    }

    /// Clock period in ps.
    pub fn period_ps(&self) -> u64 {
        self.period_ps
    }

    /// Number of full cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current simulation time in ps.
    pub fn time_ps(&self) -> u64 {
        self.sim.time()
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.sim.value(net)
    }

    /// Flip-flops of the design, in gate order.
    pub fn ff_gates(&self) -> &[GateId] {
        &self.ff_gates
    }

    /// Current state of the `i`-th flip-flop (index into [`ClockedSim::ff_gates`]).
    pub fn ff_state(&self, i: usize) -> bool {
        self.ff_state[i]
    }

    /// Silently force every flip-flop (and every net) to zero, re-settle,
    /// and rewind simulation time to 0: a hard reset before a fresh
    /// acquisition.
    pub fn hard_reset(&mut self) {
        self.ff_state.iter_mut().for_each(|s| *s = false);
        self.sim.init_all_zero();
        self.sim.settle_silent();
        self.sim.rewind_time();
        self.cycle = 0;
    }

    /// Rewind the time base to cycle 0 while keeping every register and
    /// net value — for back-to-back acquisitions whose power traces must
    /// share a time axis (consecutive operations on the same device).
    /// Any still-pending events are dropped, so call it only when the
    /// circuit is quiescent.
    pub fn rebase_time(&mut self) {
        self.sim.rewind_time();
        self.cycle = 0;
    }

    /// Silently drive a primary input (initial condition, no power).
    pub fn set_input_silent(&mut self, net: NetId, value: bool) {
        self.sim.set_initial(net, value);
    }

    /// Silently re-settle combinational logic from current values.
    pub fn settle_silent(&mut self) {
        self.sim.settle_silent();
    }

    /// Advance one clock cycle.
    ///
    /// Order of operations at the edge:
    /// 1. every FF samples its settled input pins (enable/reset honoured),
    /// 2. changed FF outputs are scheduled after a (jittered) clk-to-Q delay,
    /// 3. `stimuli` are scheduled at their offsets,
    /// 4. events run until the next edge, feeding `sink`.
    pub fn step(&mut self, stimuli: &[Stimulus], sink: &mut impl PowerSink) {
        let t_edge = self.cycle * self.period_ps;

        // 1. Sample.
        self.next_buf.clear();
        for (i, &gid) in self.ff_gates.iter().enumerate() {
            let g = self.netlist.gate(gid);
            self.pins_buf.clear();
            for &pin in &g.inputs {
                self.pins_buf.push(self.sim.value(pin));
            }
            self.next_buf.push(g.kind.dff_next(self.ff_state[i], &self.pins_buf));
        }

        // 2. Launch changed outputs.
        for (i, &gid) in self.ff_gates.iter().enumerate() {
            let newv = self.next_buf[i];
            if newv != self.ff_state[i] {
                self.ff_state[i] = newv;
                let d = self.delays.sample_ps(gid, &mut self.rng);
                let out = self.netlist.gate(gid).output;
                self.sim.schedule(out, t_edge + d, newv);
            }
        }

        // 3. External stimuli.
        for s in stimuli {
            debug_assert!(s.offset_ps < self.period_ps, "stimulus beyond the cycle");
            self.sim.schedule(s.net, t_edge + s.offset_ps, s.value);
        }

        // 4. Propagate.
        self.sim.run_until(t_edge + self.period_ps, sink);
        self.cycle += 1;
    }

    /// Run `n` stimulus-free cycles.
    pub fn idle(&mut self, n: u64, sink: &mut impl PowerSink) {
        for _ in 0..n {
            self.step(&[], sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::{CountingSink, NullSink};

    /// A 3-bit ripple of DFFs shifting a pulse through.
    #[test]
    fn shift_register() {
        let mut n = Netlist::new("sr");
        let din = n.input("din");
        let q0 = n.dff(din);
        let q1 = n.dff(q0);
        let q2 = n.dff(q1);
        n.output("q2", q2);

        let delays = DelayModel::nominal(&n);
        let mut cs = ClockedSim::new(&n, &delays, 100_000, 0);
        // Cycle 0: din rises early in the cycle.
        cs.step(&[Stimulus { net: din, offset_ps: 1_000, value: true }], &mut NullSink);
        cs.step(&[Stimulus { net: din, offset_ps: 1_000, value: false }], &mut NullSink);
        assert!(cs.value(q0), "pulse in q0 after capture");
        cs.step(&[], &mut NullSink);
        assert!(cs.value(q1));
        assert!(!cs.value(q0));
        cs.step(&[], &mut NullSink);
        assert!(cs.value(q2));
    }

    /// FF with enable held low ignores its input.
    #[test]
    fn enable_gates_sampling() {
        let mut n = Netlist::new("t");
        let d = n.input("d");
        let en = n.input("en");
        let q = n.dff_en(d, en);
        n.output("q", q);
        let delays = DelayModel::nominal(&n);
        let mut cs = ClockedSim::new(&n, &delays, 100_000, 0);
        cs.set_input_silent(d, true);
        cs.settle_silent();
        cs.step(&[], &mut NullSink); // en = 0
        assert!(!cs.value(q));
        cs.step(&[Stimulus { net: en, offset_ps: 500, value: true }], &mut NullSink);
        assert!(!cs.value(q), "enable arrived after the edge");
        cs.step(&[], &mut NullSink);
        assert!(cs.value(q), "sampled at the following edge");
    }

    /// Power activity is observed exactly when registers launch new data.
    #[test]
    fn activity_follows_launches() {
        let mut n = Netlist::new("t");
        let din = n.input("din");
        let q = n.dff(din);
        let y = n.inv(q);
        n.output("y", y);
        let delays = DelayModel::nominal(&n);
        let mut cs = ClockedSim::new(&n, &delays, 100_000, 0);
        let mut c = CountingSink::default();
        cs.step(&[Stimulus { net: din, offset_ps: 100, value: true }], &mut c);
        let after_first = c.count; // din toggled only
        assert_eq!(after_first, 1);
        cs.step(&[], &mut c);
        // q rises, y falls: two more transitions.
        assert_eq!(c.count, 3);
        cs.step(&[], &mut c);
        assert_eq!(c.count, 3, "steady state is quiet");
    }

    #[test]
    fn hard_reset_clears_state() {
        let mut n = Netlist::new("t");
        let din = n.input("din");
        let q = n.dff(din);
        n.output("q", q);
        let delays = DelayModel::nominal(&n);
        let mut cs = ClockedSim::new(&n, &delays, 50_000, 0);
        cs.step(&[Stimulus { net: din, offset_ps: 10, value: true }], &mut NullSink);
        cs.step(&[], &mut NullSink);
        assert!(cs.value(q));
        cs.hard_reset();
        assert!(!cs.value(q));
        assert!(!cs.ff_state(0));
    }
}
