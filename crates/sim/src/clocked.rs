//! Multi-cycle clocked simulation harness.
//!
//! Wraps the event engine with synchronous register semantics: at every
//! rising edge all flip-flops sample their (settled) inputs and their
//! outputs change after a clk-to-Q delay, launching the next wave of
//! combinational — possibly glitchy — activity. Per-cycle stimuli can be
//! injected with arbitrary intra-cycle arrival offsets, which is how the
//! paper's controlled input-sequence experiments (Table I) are reproduced.
//!
//! [`ClockedCore`] is the owned, reusable state (one per campaign
//! worker); [`ClockedSim`] the borrow-style convenience wrapper.

use crate::delay::DelayModel;
use crate::engine::{GraphRef, PowerSink, SimCore, SimGraph, MAX_PINS};
use gm_netlist::{NetId, Netlist};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A stimulus applied during one clock cycle.
#[derive(Debug, Clone, Copy)]
pub struct Stimulus {
    /// Primary-input net to drive.
    pub net: NetId,
    /// Arrival offset after the clock edge, in ps.
    pub offset_ps: u64,
    /// New value.
    pub value: bool,
}

/// Owned clocked-simulation state over some [`SimGraph`]: an event
/// [`SimCore`] plus register values, the cycle counter and the clk-to-Q
/// jitter RNG. Like `SimCore`, every method takes the graph/delays by
/// reference so the core can persist inside campaign workers;
/// [`ClockedCore::reset`] restores the power-on state in O(touched).
#[derive(Debug)]
pub struct ClockedCore {
    sim: SimCore,
    ff_state: Vec<bool>,
    period_ps: u64,
    cycle: u64,
    rng: SmallRng,
    next_buf: Vec<bool>,
}

impl ClockedCore {
    /// Build a clocked core with the given clock period, in the settled
    /// all-zero power-on state.
    pub fn new(graph: &SimGraph, period_ps: u64, seed: u64) -> Self {
        assert!(period_ps > 0, "period must be positive");
        let n_ff = graph.ff_gates().len();
        ClockedCore {
            sim: SimCore::new(graph, seed),
            ff_state: vec![false; n_ff],
            period_ps,
            cycle: 0,
            rng: SmallRng::seed_from_u64(seed ^ 0x94d0_49bb_1331_11eb),
            next_buf: Vec::with_capacity(n_ff),
        }
    }

    /// Clock period in ps.
    pub fn period_ps(&self) -> u64 {
        self.period_ps
    }

    /// Number of full cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current simulation time in ps.
    pub fn time_ps(&self) -> u64 {
        self.sim.time()
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.sim.value(net)
    }

    /// Current state of the `i`-th flip-flop (index into
    /// [`SimGraph::ff_gates`]).
    pub fn ff_state(&self, i: usize) -> bool {
        self.ff_state[i]
    }

    /// The wrapped event core.
    pub fn sim(&self) -> &SimCore {
        &self.sim
    }

    /// The wrapped event core, mutably (weights, initial values…).
    pub fn sim_mut(&mut self) -> &mut SimCore {
        &mut self.sim
    }

    /// Silently force every flip-flop (and every net) to zero, re-settle,
    /// and rewind simulation time to 0: a hard reset before a fresh
    /// acquisition. Keeps both jitter streams where they are.
    pub fn hard_reset(&mut self, graph: &SimGraph) {
        self.ff_state.iter_mut().for_each(|s| *s = false);
        self.sim.init_all_zero(graph);
        self.sim.rewind_time();
        self.cycle = 0;
    }

    /// Full between-traces reset: power-on state, cycle 0 and fresh
    /// jitter streams. Bit-for-bit equivalent to replacing the core with
    /// `ClockedCore::new(graph, period_ps, seed)`.
    pub fn reset(&mut self, graph: &SimGraph, seed: u64) {
        self.ff_state.iter_mut().for_each(|s| *s = false);
        self.sim.reset(graph, seed);
        self.cycle = 0;
        self.rng = SmallRng::seed_from_u64(seed ^ 0x94d0_49bb_1331_11eb);
    }

    /// Rewind the time base to cycle 0 while keeping every register and
    /// net value — for back-to-back acquisitions whose power traces must
    /// share a time axis (consecutive operations on the same device).
    /// Any still-pending events are dropped, so call it only when the
    /// circuit is quiescent.
    pub fn rebase_time(&mut self) {
        self.sim.rewind_time();
        self.cycle = 0;
    }

    /// Advance one clock cycle.
    ///
    /// Order of operations at the edge:
    /// 1. every FF samples its settled input pins (enable/reset honoured),
    /// 2. changed FF outputs are scheduled after a (jittered) clk-to-Q delay,
    /// 3. `stimuli` are scheduled at their offsets,
    /// 4. events run until the next edge, feeding `sink`.
    pub fn step(
        &mut self,
        graph: &SimGraph,
        delays: &DelayModel,
        stimuli: &[Stimulus],
        sink: &mut impl PowerSink,
    ) {
        let t_edge = self.cycle * self.period_ps;

        // 1. Sample.
        self.next_buf.clear();
        let mut pins = [false; MAX_PINS];
        for (i, &gid) in graph.ff_gates().iter().enumerate() {
            let pin_nets = graph.inputs(gid);
            for (k, &pn) in pin_nets.iter().enumerate() {
                pins[k] = self.sim.value(NetId(pn));
            }
            self.next_buf.push(graph.kind(gid).dff_next(self.ff_state[i], &pins[..pin_nets.len()]));
        }

        // 2. Launch changed outputs.
        for (i, &gid) in graph.ff_gates().iter().enumerate() {
            let newv = self.next_buf[i];
            if newv != self.ff_state[i] {
                self.ff_state[i] = newv;
                let d = delays.sample_ps(gid, &mut self.rng);
                self.sim.schedule(graph.output(gid), t_edge + d, newv);
            }
        }

        // 3. External stimuli.
        for s in stimuli {
            debug_assert!(s.offset_ps < self.period_ps, "stimulus beyond the cycle");
            self.sim.schedule(s.net, t_edge + s.offset_ps, s.value);
        }

        // 4. Propagate.
        self.sim.run_until(graph, delays, t_edge + self.period_ps, sink);
        self.cycle += 1;
    }

    /// Run `n` stimulus-free cycles.
    pub fn idle(
        &mut self,
        graph: &SimGraph,
        delays: &DelayModel,
        n: u64,
        sink: &mut impl PowerSink,
    ) {
        for _ in 0..n {
            self.step(graph, delays, &[], sink);
        }
    }
}

/// Clocked wrapper over the event engine, binding a graph and a
/// [`DelayModel`] to a [`ClockedCore`].
///
/// # Examples
///
/// A one-bit register pipeline under real event timing:
///
/// ```
/// use gm_netlist::Netlist;
/// use gm_sim::clocked::Stimulus;
/// use gm_sim::power::NullSink;
/// use gm_sim::{ClockedSim, DelayModel};
///
/// let mut n = Netlist::new("pipe");
/// let d = n.input("d");
/// let q0 = n.dff(d);
/// let q1 = n.dff(q0);
/// n.output("q1", q1);
///
/// let delays = DelayModel::nominal(&n);
/// let mut sim = ClockedSim::new(&n, &delays, 10_000, 0);
/// sim.step(&[Stimulus { net: d, offset_ps: 100, value: true }], &mut NullSink);
/// sim.step(&[], &mut NullSink);
/// sim.step(&[], &mut NullSink);
/// assert!(sim.value(q1), "the bit took two edges to reach q1");
/// ```
pub struct ClockedSim<'a> {
    delays: &'a DelayModel,
    graph: GraphRef<'a>,
    core: ClockedCore,
}

impl<'a> ClockedSim<'a> {
    /// Build a clocked simulator with the given clock period.
    pub fn new(netlist: &Netlist, delays: &'a DelayModel, period_ps: u64, seed: u64) -> Self {
        let graph = Box::new(SimGraph::new(netlist));
        let core = ClockedCore::new(&graph, period_ps, seed);
        ClockedSim { delays, graph: GraphRef::Owned(graph), core }
    }

    /// Build a clocked simulator over a shared prebuilt [`SimGraph`].
    pub fn with_graph(
        graph: &'a SimGraph,
        delays: &'a DelayModel,
        period_ps: u64,
        seed: u64,
    ) -> Self {
        let core = ClockedCore::new(graph, period_ps, seed);
        ClockedSim { delays, graph: GraphRef::Shared(graph), core }
    }

    /// The simulation topology in use.
    pub fn graph(&self) -> &SimGraph {
        self.graph.get()
    }

    /// Clock period in ps.
    pub fn period_ps(&self) -> u64 {
        self.core.period_ps()
    }

    /// Number of full cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.core.cycle()
    }

    /// Current simulation time in ps.
    pub fn time_ps(&self) -> u64 {
        self.core.time_ps()
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.core.value(net)
    }

    /// Flip-flops of the design, in gate order.
    pub fn ff_gates(&self) -> &[gm_netlist::GateId] {
        self.graph.get().ff_gates()
    }

    /// Current state of the `i`-th flip-flop (index into [`ClockedSim::ff_gates`]).
    pub fn ff_state(&self, i: usize) -> bool {
        self.core.ff_state(i)
    }

    /// Silently force every flip-flop (and every net) to zero, re-settle,
    /// and rewind simulation time to 0 (see [`ClockedCore::hard_reset`]).
    pub fn hard_reset(&mut self) {
        self.core.hard_reset(self.graph.get());
    }

    /// Full between-traces reset (see [`ClockedCore::reset`]).
    pub fn reset(&mut self, seed: u64) {
        self.core.reset(self.graph.get(), seed);
    }

    /// Rewind the time base to cycle 0 keeping all state (see
    /// [`ClockedCore::rebase_time`]).
    pub fn rebase_time(&mut self) {
        self.core.rebase_time();
    }

    /// Silently drive a primary input (initial condition, no power).
    pub fn set_input_silent(&mut self, net: NetId, value: bool) {
        self.core.sim_mut().set_initial(net, value);
    }

    /// Silently re-settle combinational logic from current values.
    pub fn settle_silent(&mut self) {
        let graph = self.graph.get();
        self.core.sim_mut().settle_silent(graph);
    }

    /// Advance one clock cycle (see [`ClockedCore::step`]).
    pub fn step(&mut self, stimuli: &[Stimulus], sink: &mut impl PowerSink) {
        self.core.step(self.graph.get(), self.delays, stimuli, sink);
    }

    /// Run `n` stimulus-free cycles.
    pub fn idle(&mut self, n: u64, sink: &mut impl PowerSink) {
        self.core.idle(self.graph.get(), self.delays, n, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::{CountingSink, NullSink};

    /// A 3-bit ripple of DFFs shifting a pulse through.
    #[test]
    fn shift_register() {
        let mut n = Netlist::new("sr");
        let din = n.input("din");
        let q0 = n.dff(din);
        let q1 = n.dff(q0);
        let q2 = n.dff(q1);
        n.output("q2", q2);

        let delays = DelayModel::nominal(&n);
        let mut cs = ClockedSim::new(&n, &delays, 100_000, 0);
        // Cycle 0: din rises early in the cycle.
        cs.step(&[Stimulus { net: din, offset_ps: 1_000, value: true }], &mut NullSink);
        cs.step(&[Stimulus { net: din, offset_ps: 1_000, value: false }], &mut NullSink);
        assert!(cs.value(q0), "pulse in q0 after capture");
        cs.step(&[], &mut NullSink);
        assert!(cs.value(q1));
        assert!(!cs.value(q0));
        cs.step(&[], &mut NullSink);
        assert!(cs.value(q2));
    }

    /// FF with enable held low ignores its input.
    #[test]
    fn enable_gates_sampling() {
        let mut n = Netlist::new("t");
        let d = n.input("d");
        let en = n.input("en");
        let q = n.dff_en(d, en);
        n.output("q", q);
        let delays = DelayModel::nominal(&n);
        let mut cs = ClockedSim::new(&n, &delays, 100_000, 0);
        cs.set_input_silent(d, true);
        cs.settle_silent();
        cs.step(&[], &mut NullSink); // en = 0
        assert!(!cs.value(q));
        cs.step(&[Stimulus { net: en, offset_ps: 500, value: true }], &mut NullSink);
        assert!(!cs.value(q), "enable arrived after the edge");
        cs.step(&[], &mut NullSink);
        assert!(cs.value(q), "sampled at the following edge");
    }

    /// Power activity is observed exactly when registers launch new data.
    #[test]
    fn activity_follows_launches() {
        let mut n = Netlist::new("t");
        let din = n.input("din");
        let q = n.dff(din);
        let y = n.inv(q);
        n.output("y", y);
        let delays = DelayModel::nominal(&n);
        let mut cs = ClockedSim::new(&n, &delays, 100_000, 0);
        let mut c = CountingSink::default();
        cs.step(&[Stimulus { net: din, offset_ps: 100, value: true }], &mut c);
        let after_first = c.count; // din toggled only
        assert_eq!(after_first, 1);
        cs.step(&[], &mut c);
        // q rises, y falls: two more transitions.
        assert_eq!(c.count, 3);
        cs.step(&[], &mut c);
        assert_eq!(c.count, 3, "steady state is quiet");
    }

    #[test]
    fn hard_reset_clears_state() {
        let mut n = Netlist::new("t");
        let din = n.input("din");
        let q = n.dff(din);
        n.output("q", q);
        let delays = DelayModel::nominal(&n);
        let mut cs = ClockedSim::new(&n, &delays, 50_000, 0);
        cs.step(&[Stimulus { net: din, offset_ps: 10, value: true }], &mut NullSink);
        cs.step(&[], &mut NullSink);
        assert!(cs.value(q));
        cs.hard_reset();
        assert!(!cs.value(q));
        assert!(!cs.ff_state(0));
    }

    /// ClockedCore::reset replays the exact transition stream of a fresh
    /// construction, including both jitter streams.
    #[test]
    fn clocked_reset_equals_fresh() {
        let mut n = Netlist::new("t");
        let din = n.input("din");
        let q = n.dff(din);
        let y = n.inv(q);
        let q2 = n.dff(y);
        n.output("q2", q2);
        let delays = DelayModel::with_variation(&n, 0.3, 25.0, 4);
        let graph = SimGraph::new(&n);

        struct Rec(Vec<(u64, u32, bool)>);
        impl PowerSink for Rec {
            fn transition(&mut self, t: u64, net: NetId, v: bool, _w: f64) {
                self.0.push((t, net.0, v));
            }
        }
        let drive = |core: &mut ClockedCore| {
            let mut rec = Rec(Vec::new());
            core.step(
                &graph,
                &delays,
                &[Stimulus { net: din, offset_ps: 70, value: true }],
                &mut rec,
            );
            core.step(&graph, &delays, &[], &mut rec);
            core.step(&graph, &delays, &[], &mut rec);
            rec.0
        };

        let mut fresh = ClockedCore::new(&graph, 60_000, 77);
        let want = drive(&mut fresh);

        let mut reused = ClockedCore::new(&graph, 60_000, 3);
        let _ = drive(&mut reused); // dirty it with another seed
        reused.reset(&graph, 77);
        let got = drive(&mut reused);
        assert_eq!(got, want);
    }
}
