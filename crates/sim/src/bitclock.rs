//! Word-domain (64-lane bitsliced) FF/cycle scheduling.
//!
//! [`BitClockedSim`] is the cycle-model counterpart of
//! [`crate::ClockedSim`]: zero transport delay, synchronous register
//! semantics, but 64 independent evaluations advancing per clock edge in
//! the lanes of a [`BitEvaluator`]. Per cycle it reports the classic
//! toggle-count power terms — register Hamming distance and
//! combinational Hamming distance — for **all 64 lanes at once**, via
//! `count_ones` over transposed toggle words ([`LaneCounter`]) instead
//! of per-bit accumulation.
//!
//! Glitch-aware campaigns cannot use this harness — a glitch is a
//! *timing* artefact and zero-delay cycle semantics erase it. Their
//! lane-parallel counterpart is the compiled schedule of
//! [`crate::sched`], which keeps per-event timing by levelizing the
//! fixed stimulus cascade and carrying per-lane event times alongside
//! the lane words. This harness serves the non-glitch cycle-model
//! campaigns (and cross-checks of the value-level DES cycle engines).

use gm_netlist::bitslice::{BitEvaluator, LaneCounter};
use gm_netlist::{NetId, Netlist};
use gm_obs::{Counter, Report};

/// Per-cycle, per-lane toggle activity of one clock edge.
#[derive(Debug, Clone, Copy)]
pub struct LaneActivity {
    /// Register share toggles per lane (Hamming distance of all FF words).
    pub reg: [u32; 64],
    /// Combinational net toggles per lane.
    pub comb: [u32; 64],
}

/// 64-lane zero-delay clocked harness over a [`BitEvaluator`].
#[derive(Debug)]
pub struct BitClockedSim<'a> {
    netlist: &'a Netlist,
    ev: BitEvaluator,
    cycle: u64,
    prev_ff: Vec<u64>,
    prev_values: Vec<u64>,
    comb_nets: Vec<NetId>,
    reg_counter: LaneCounter,
    comb_counter: LaneCounter,
    steps: Counter,
}

impl<'a> BitClockedSim<'a> {
    /// Build a harness in the all-zero power-on state.
    ///
    /// Fails when the netlist has a combinational loop.
    pub fn new(netlist: &'a Netlist) -> Result<Self, gm_netlist::NetlistError> {
        let mut ev = BitEvaluator::new(netlist)?;
        ev.settle(netlist);
        // Nets whose toggles count as combinational activity: everything
        // not driven by a register (register toggles are counted from the
        // FF words directly, so FF output nets would double-count).
        let comb_nets: Vec<NetId> = (0..netlist.num_nets())
            .map(|i| NetId(i as u32))
            .filter(|&net| match netlist.driver(net) {
                gm_netlist::netlist::Driver::Gate(g) => !netlist.gate(g).kind.is_sequential(),
                _ => true,
            })
            .collect();
        let num_ffs = ev.ff_gates().len();
        Ok(BitClockedSim {
            prev_ff: vec![0; num_ffs],
            prev_values: vec![0; netlist.num_nets()],
            comb_nets,
            netlist,
            ev,
            cycle: 0,
            reg_counter: LaneCounter::new(),
            comb_counter: LaneCounter::new(),
            steps: Counter::new(),
        })
    }

    /// Export harness counters under `<prefix>.*`: lifetime clock edges
    /// (all 64 lanes each) and the toggle words/transposes of the two
    /// lane counters (zeros under `obs-off`).
    pub fn obs_report(&self, prefix: &str, r: &mut Report) {
        r.set_nonzero(&format!("{prefix}.steps"), self.steps.get());
        r.set_nonzero(
            &format!("{prefix}.toggle_words"),
            self.reg_counter.obs_words() + self.comb_counter.obs_words(),
        );
        r.set_nonzero(
            &format!("{prefix}.transposes"),
            self.reg_counter.obs_transposes() + self.comb_counter.obs_transposes(),
        );
    }

    /// Number of clock edges applied so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The wrapped lane evaluator.
    pub fn evaluator(&self) -> &BitEvaluator {
        &self.ev
    }

    /// Current lane word of a net.
    pub fn value(&self, net: NetId) -> u64 {
        self.ev.value(net)
    }

    /// Reset to the power-on state (all registers and nets zero, cycle 0).
    pub fn reset(&mut self) {
        self.ev.reset();
        self.ev.settle(self.netlist);
        self.prev_ff.iter_mut().for_each(|w| *w = 0);
        self.prev_values.iter_mut().for_each(|w| *w = 0);
        self.cycle = 0;
    }

    /// Apply per-lane input words, clock once, and return the per-lane
    /// toggle activity of the edge.
    pub fn step(&mut self, inputs: &[(NetId, u64)]) -> LaneActivity {
        for &(net, word) in inputs {
            self.ev.set_input(net, word);
        }
        // Snapshot pre-edge values for the combinational Hamming distance.
        self.ev.settle(self.netlist);
        for (&net, prev) in self.comb_nets.iter().zip(self.prev_values.iter_mut()) {
            *prev = self.ev.value(net);
        }
        for (i, &gid) in self.ev.ff_gates().iter().enumerate() {
            self.prev_ff[i] = self.ev.ff_state(gid);
        }

        self.ev.clock(self.netlist);
        self.cycle += 1;
        self.steps.inc();

        for (i, &gid) in self.ev.ff_gates().iter().enumerate() {
            self.reg_counter.push(self.prev_ff[i] ^ self.ev.ff_state(gid));
        }
        for (&net, &prev) in self.comb_nets.iter().zip(self.prev_values.iter()) {
            self.comb_counter.push(prev ^ self.ev.value(net));
        }
        LaneActivity { reg: self.reg_counter.drain(), comb: self.comb_counter.drain() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_netlist::Evaluator;

    /// Per-lane activity equals a per-lane scalar recount over the same
    /// clocked schedule.
    #[test]
    fn lane_activity_matches_scalar_recount() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor2(a, b);
        let q = n.dff(x);
        let m = n.mux2(q, a, b);
        let q2 = n.dff_en(m, q);
        n.output("q2", q2);

        let mut bs = BitClockedSim::new(&n).unwrap();
        let mut scalars: Vec<Evaluator> = (0..64).map(|_| Evaluator::new(&n).unwrap()).collect();
        let all_nets: Vec<NetId> = (0..n.num_nets()).map(|i| NetId(i as u32)).collect();
        let comb_nets: Vec<NetId> = all_nets
            .iter()
            .copied()
            .filter(|&net| match n.driver(net) {
                gm_netlist::netlist::Driver::Gate(g) => !n.gate(g).kind.is_sequential(),
                _ => true,
            })
            .collect();
        let ffs: Vec<_> = bs.evaluator().ff_gates().to_vec();

        let mut x64 = 0x9e37u64;
        for _ in 0..12 {
            x64 = x64.wrapping_mul(6364136223846793005).wrapping_add(1);
            let wa = x64;
            x64 = x64.wrapping_mul(6364136223846793005).wrapping_add(1);
            let wb = x64;
            let act = bs.step(&[(a, wa), (b, wb)]);

            for (lane, ev) in scalars.iter_mut().enumerate() {
                ev.set_input(a, (wa >> lane) & 1 == 1);
                ev.set_input(b, (wb >> lane) & 1 == 1);
                ev.settle(&n);
                let prev_comb: Vec<bool> = comb_nets.iter().map(|&net| ev.value(net)).collect();
                let prev_ff: Vec<bool> = ffs.iter().map(|&g| ev.ff_state(g)).collect();
                ev.clock(&n);
                let reg: u32 =
                    ffs.iter().zip(prev_ff).map(|(&g, p)| u32::from(p != ev.ff_state(g))).sum();
                let comb: u32 = comb_nets
                    .iter()
                    .zip(prev_comb)
                    .map(|(&net, p)| u32::from(p != ev.value(net)))
                    .sum();
                assert_eq!(act.reg[lane], reg, "reg toggles, lane {lane}");
                assert_eq!(act.comb[lane], comb, "comb toggles, lane {lane}");
            }
        }
    }

    #[test]
    fn reset_restores_power_on() {
        let mut n = Netlist::new("t");
        let d = n.input("d");
        let q = n.dff(d);
        n.output("q", q);
        let mut bs = BitClockedSim::new(&n).unwrap();
        let first = bs.step(&[(d, u64::MAX)]);
        assert_eq!(first.reg, [1u32; 64]);
        bs.reset();
        assert_eq!(bs.cycle(), 0);
        assert_eq!(bs.value(q), 0);
        let again = bs.step(&[(d, u64::MAX)]);
        assert_eq!(again.reg, [1u32; 64]);
    }
}
