//! Bucketed calendar queue ("timing wheel") for the event engine.
//!
//! The simulator's pending-event set is tiny and strongly clustered in
//! time (transport delays of a few hundred ps around the current
//! instant), which a `BinaryHeap` serves with `O(log n)` comparisons and
//! poor locality. The wheel instead hashes each event's timestamp into
//! one of [`NUM_BUCKETS`] ring slots of `2^`[`BUCKET_SHIFT`] ps; only
//! the bucket currently being drained is kept sorted. Far-future events
//! beyond one ring revolution go to an overflow list that is folded back
//! into the ring as the cursor approaches.
//!
//! Events are ordered by `(time, seq)`. The engine assigns every event a
//! unique, monotonically increasing `seq`, so this key is a *total*
//! order — identical to the ordering of the reference heap, which is
//! what the `wheel_matches_heap` property tests pin.

use gm_obs::{Counter, LogHist, Report};

/// log2 of the bucket width in ps (512 ps buckets: a few transport
/// delays per bucket for the calibrated gate library).
pub const BUCKET_SHIFT: u32 = 9;
/// Ring size in buckets (must be a power of two). Horizon =
/// `NUM_BUCKETS << BUCKET_SHIFT` = 131 ns, beyond one clock period of
/// every campaign in the workspace, so overflow is rare.
pub const NUM_BUCKETS: usize = 256;
const BUCKET_MASK: u64 = NUM_BUCKETS as u64 - 1;
const OCC_WORDS: usize = NUM_BUCKETS / 64;

#[derive(Debug, Clone)]
struct Entry<T> {
    time: u64,
    seq: u64,
    payload: T,
}

/// A min-queue over `(time, seq)` keys with constant-time operation on
/// the simulator's clustered event distributions.
///
/// Invariants:
/// * `cur` is the bucket of the most recently popped key (0 initially),
///   and it advances **only** inside [`TimingWheel::pop`] — every push
///   must carry a time at or after the last popped key, which is exactly
///   the engine's causality guarantee (`schedule` refuses the past,
///   propagation always lands strictly later);
/// * `drain` holds exactly the events of bucket `cur`, sorted
///   *descending* by `(time, seq)` so the minimum pops from the back;
/// * `slots[b & MASK]` holds the events of bucket `b` for
///   `cur < b < cur + NUM_BUCKETS`, unsorted, with `occ` bit `b & MASK`
///   set iff the slot is non-empty;
/// * `overflow` holds everything at `>= cur + NUM_BUCKETS`, with
///   `overflow_min` caching its minimum bucket.
#[derive(Debug, Clone)]
pub struct TimingWheel<T> {
    slots: Vec<Vec<Entry<T>>>,
    occ: [u64; OCC_WORDS],
    /// Bucket of the most recently popped key; owner of `drain`.
    cur: u64,
    drain: Vec<Entry<T>>,
    overflow: Vec<Entry<T>>,
    overflow_min: u64,
    len: usize,
    stats: WheelStats,
}

/// Lifetime operation counters of a [`TimingWheel`] (all zero and
/// zero-sized under `obs-off`). Survives [`TimingWheel::clear`], so a
/// recycled per-worker wheel accumulates whole-campaign totals.
#[derive(Debug, Clone, Default)]
pub struct WheelStats {
    /// Pushes landing in the sorted drain (current bucket).
    pub pushes_drain: Counter,
    /// Pushes landing in an unsorted ring slot.
    pub pushes_ring: Counter,
    /// Pushes beyond the ring horizon (overflow list).
    pub pushes_overflow: Counter,
    /// Overflow entries repatriated into the ring/drain as the cursor
    /// approached ("spills" folded back in).
    pub spills: Counter,
    /// Cursor advances (bucket drains started).
    pub advances: Counter,
    /// Drain occupancy (events sorted per advanced bucket).
    pub occupancy: LogHist,
}

impl WheelStats {
    /// Export all counters under `prefix` (e.g. `"wheel"`).
    pub fn report_into(&self, prefix: &str, r: &mut Report) {
        r.set_nonzero(&format!("{prefix}.push_drain"), self.pushes_drain.get());
        r.set_nonzero(&format!("{prefix}.push_ring"), self.pushes_ring.get());
        r.set_nonzero(&format!("{prefix}.push_overflow"), self.pushes_overflow.get());
        r.set_nonzero(&format!("{prefix}.spills"), self.spills.get());
        r.set_nonzero(&format!("{prefix}.advances"), self.advances.get());
        r.set_hist(&format!("{prefix}.occupancy"), &self.occupancy);
    }
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

impl<T> TimingWheel<T> {
    /// An empty wheel positioned at time 0.
    pub fn new() -> Self {
        TimingWheel {
            slots: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occ: [0; OCC_WORDS],
            cur: 0,
            drain: Vec::new(),
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            len: 0,
            stats: WheelStats::default(),
        }
    }

    /// Lifetime operation counters (zeros under `obs-off`).
    pub fn stats(&self) -> &WheelStats {
        &self.stats
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue an event. `seq` values must be unique, and `time` must be at
    /// or after the last popped key (the engine never schedules into the
    /// past). Pushes in between are free to arrive in any order.
    pub fn push(&mut self, time: u64, seq: u64, payload: T) {
        let b = time >> BUCKET_SHIFT;
        if self.len == 0 && b < self.cur {
            // Idle wheel rewound (fresh trace on a recycled core).
            self.cur = b;
            self.drain.clear();
        }
        debug_assert!(b >= self.cur, "event precedes the last popped bucket");
        let entry = Entry { time, seq, payload };
        if b == self.cur {
            // Insert into the sorted (descending) drain. New events land
            // at or after the last popped key, so the whole drain is a
            // valid insertion range.
            self.stats.pushes_drain.inc();
            let pos = self.drain.partition_point(|e| (e.time, e.seq) > (time, seq));
            self.drain.insert(pos, entry);
        } else if b < self.cur + NUM_BUCKETS as u64 {
            self.stats.pushes_ring.inc();
            let slot = (b & BUCKET_MASK) as usize;
            self.slots[slot].push(entry);
            self.occ[slot / 64] |= 1 << (slot % 64);
        } else {
            self.stats.pushes_overflow.inc();
            self.overflow.push(entry);
            self.overflow_min = self.overflow_min.min(b);
        }
        self.len += 1;
    }

    /// Timestamp of the earliest queued event. Read-only: the cursor does
    /// not move, so earlier (but post-`cur`) pushes remain legal after a
    /// peek — `run_until` peeks past its horizon, then the caller
    /// schedules the next cycle's stimuli before those events pop.
    pub fn peek_time(&self) -> Option<u64> {
        if let Some(e) = self.drain.last() {
            return Some(e.time);
        }
        if self.len == 0 {
            return None;
        }
        let (bucket, from_overflow) = self.front_bucket();
        let entries = if from_overflow {
            return self
                .overflow
                .iter()
                .filter(|e| e.time >> BUCKET_SHIFT == bucket)
                .map(|e| e.time)
                .min();
        } else {
            &self.slots[(bucket & BUCKET_MASK) as usize]
        };
        entries.iter().map(|e| e.time).min()
    }

    /// Remove and return the earliest event as `(time, seq, payload)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.drain.is_empty() {
            if self.len == 0 {
                return None;
            }
            let (target, _) = self.front_bucket();
            self.advance_to(target);
        }
        let e = self.drain.pop()?;
        self.len -= 1;
        Some((e.time, e.seq, e.payload))
    }

    /// Remove and return the earliest event iff its time is at most
    /// `t_max`. Equivalent to [`TimingWheel::peek_time`] followed by
    /// [`TimingWheel::pop`], but with a single front-bucket scan — and,
    /// like a bare peek, it does *not* commit the cursor when the front
    /// event lies beyond the horizon, so earlier (post-`cur`) pushes
    /// remain legal afterwards.
    pub fn pop_at_most(&mut self, t_max: u64) -> Option<(u64, u64, T)> {
        if let Some(e) = self.drain.last() {
            if e.time > t_max {
                return None;
            }
            let e = self.drain.pop().expect("drain non-empty");
            self.len -= 1;
            return Some((e.time, e.seq, e.payload));
        }
        if self.len == 0 {
            return None;
        }
        let (bucket, from_overflow) = self.front_bucket();
        let min = if from_overflow {
            self.overflow.iter().filter(|e| e.time >> BUCKET_SHIFT == bucket).map(|e| e.time).min()
        } else {
            self.slots[(bucket & BUCKET_MASK) as usize].iter().map(|e| e.time).min()
        };
        if min.is_none_or(|m| m > t_max) {
            return None;
        }
        self.advance_to(bucket);
        let e = self.drain.pop()?;
        self.len -= 1;
        Some((e.time, e.seq, e.payload))
    }

    /// Drop all queued events and rewind to time 0.
    pub fn clear(&mut self) {
        if self.len != 0 {
            for w in 0..OCC_WORDS {
                let mut bits = self.occ[w];
                while bits != 0 {
                    let slot = w * 64 + bits.trailing_zeros() as usize;
                    self.slots[slot].clear();
                    bits &= bits - 1;
                }
            }
        }
        self.occ = [0; OCC_WORDS];
        self.drain.clear();
        self.overflow.clear();
        self.overflow_min = u64::MAX;
        self.cur = 0;
        self.len = 0;
    }

    /// The next non-empty bucket after `cur` and whether it lives in the
    /// overflow list. Caller guarantees `len > 0` and an empty drain.
    fn front_bucket(&self) -> (u64, bool) {
        match self.next_ring_bucket() {
            Some(b) if b < self.overflow_min => (b, false),
            _ => (self.overflow_min, true),
        }
    }

    /// Commit the cursor to `target` (the next non-empty bucket, found by
    /// [`TimingWheel::front_bucket`]) and sort it into `drain`. Only
    /// called on the way to a pop, so the advanced `cur` is the bucket of
    /// the key about to be popped.
    fn advance_to(&mut self, target: u64) {
        debug_assert_ne!(target, u64::MAX, "len > 0 but no bucket found");
        self.stats.advances.inc();
        self.cur = target;
        // Fold overflow events that now fit the ring (or the new current
        // bucket) back in.
        if self.overflow_min < self.cur + NUM_BUCKETS as u64 {
            let mut new_min = u64::MAX;
            let mut i = 0;
            while i < self.overflow.len() {
                let b = self.overflow[i].time >> BUCKET_SHIFT;
                if b < self.cur + NUM_BUCKETS as u64 {
                    self.stats.spills.inc();
                    let entry = self.overflow.swap_remove(i);
                    if b == self.cur {
                        self.drain.push(entry);
                    } else {
                        let slot = (b & BUCKET_MASK) as usize;
                        self.slots[slot].push(entry);
                        self.occ[slot / 64] |= 1 << (slot % 64);
                    }
                } else {
                    new_min = new_min.min(b);
                    i += 1;
                }
            }
            self.overflow_min = new_min;
        }
        let slot = (self.cur & BUCKET_MASK) as usize;
        if self.drain.is_empty() {
            std::mem::swap(&mut self.drain, &mut self.slots[slot]);
        } else {
            self.drain.append(&mut self.slots[slot]);
        }
        self.occ[slot / 64] &= !(1 << (slot % 64));
        if self.drain.len() > 1 {
            self.drain.sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
        }
        self.stats.occupancy.record(self.drain.len() as u64);
    }

    /// Absolute index of the first occupied ring bucket after `cur`, if
    /// any (scans the occupancy bitmap one word at a time).
    fn next_ring_bucket(&self) -> Option<u64> {
        let start = ((self.cur + 1) & BUCKET_MASK) as usize;
        let bits = self.occ[start / 64] >> (start % 64);
        if bits != 0 {
            let slot = start + bits.trailing_zeros() as usize;
            return Some(self.abs_bucket(slot));
        }
        for step in 1..=OCC_WORDS {
            let word = (start / 64 + step) % OCC_WORDS;
            let bits = self.occ[word];
            if bits != 0 {
                let slot = word * 64 + bits.trailing_zeros() as usize;
                return Some(self.abs_bucket(slot));
            }
        }
        None
    }

    /// Map a ring slot back to its absolute bucket index, given that all
    /// live buckets lie in `(cur, cur + NUM_BUCKETS)`.
    fn abs_bucket(&self, slot: usize) -> u64 {
        let cur_slot = (self.cur & BUCKET_MASK) as usize;
        let dist = (slot + NUM_BUCKETS - cur_slot) as u64 & BUCKET_MASK;
        debug_assert_ne!(dist, 0, "current slot cannot be occupied");
        self.cur + dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(w: &mut TimingWheel<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn pops_in_time_seq_order() {
        let mut w = TimingWheel::new();
        for (i, t) in [500u64, 100, 100, 90_000, 3, 700, 100].iter().enumerate() {
            w.push(*t, i as u64, i as u32);
        }
        let popped = drain_all(&mut w);
        let times: Vec<u64> = popped.iter().map(|e| e.0).collect();
        assert_eq!(times, vec![3, 100, 100, 100, 500, 700, 90_000]);
        // Equal times pop in seq order.
        let seqs: Vec<u64> = popped.iter().filter(|e| e.0 == 100).map(|e| e.1).collect();
        assert_eq!(seqs, vec![1, 2, 6]);
    }

    #[test]
    fn far_future_via_overflow() {
        let mut w = TimingWheel::new();
        let horizon = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        w.push(5 * horizon, 0, 0);
        w.push(10, 1, 1);
        w.push(2 * horizon + 3, 2, 2);
        assert_eq!(w.peek_time(), Some(10));
        let times: Vec<u64> = drain_all(&mut w).iter().map(|e| e.0).collect();
        assert_eq!(times, vec![10, 2 * horizon + 3, 5 * horizon]);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut w = TimingWheel::new();
        w.push(1_000, 0, 0);
        assert_eq!(w.pop().unwrap().0, 1_000);
        // Push into the same (current) bucket after popping.
        w.push(1_001, 1, 1);
        w.push(1_005, 2, 2);
        w.push(1_003, 3, 3);
        assert_eq!(w.pop().unwrap().0, 1_001);
        w.push(1_004, 4, 4);
        let times: Vec<u64> = drain_all(&mut w).iter().map(|e| e.0).collect();
        assert_eq!(times, vec![1_003, 1_004, 1_005]);
        assert!(w.is_empty());
    }

    /// A peek must not commit the cursor: after peeking a far-future
    /// event, pushes at earlier (still post-pop) times stay legal and pop
    /// first. This is `run_until`'s horizon pattern.
    #[test]
    fn peek_then_earlier_push() {
        let mut w = TimingWheel::new();
        w.push(200_000, 0, 0);
        assert_eq!(w.peek_time(), Some(200_000));
        w.push(1_500, 1, 1);
        w.push(300, 2, 2);
        assert_eq!(w.peek_time(), Some(300));
        let times: Vec<u64> = drain_all(&mut w).iter().map(|e| e.0).collect();
        assert_eq!(times, vec![300, 1_500, 200_000]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut w = TimingWheel::new();
        let horizon = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        for i in 0..100u64 {
            w.push(i * 997, i, i as u32);
        }
        w.push(3 * horizon, 100, 100);
        w.pop();
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.peek_time(), None);
        w.push(42, 0, 7);
        assert_eq!(w.pop(), Some((42, 0, 7)));
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn stats_census_all_three_push_routes() {
        let mut w = TimingWheel::new();
        let horizon = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        w.push(3, 0, 0); // current bucket -> drain
        w.push(1_000, 1, 1); // ring slot
        w.push(2 * horizon, 2, 2); // beyond horizon -> overflow
        drain_all(&mut w);
        let s = w.stats();
        assert_eq!(s.pushes_drain.get(), 1);
        assert_eq!(s.pushes_ring.get(), 1);
        assert_eq!(s.pushes_overflow.get(), 1);
        assert_eq!(s.spills.get(), 1, "overflow entry folded back on approach");
        assert_eq!(s.advances.get(), 2);
        assert_eq!(s.occupancy.count(), 2);
        w.clear();
        assert_eq!(w.stats().pushes_ring.get(), 1, "stats survive clear");

        let mut r = Report::new();
        w.stats().report_into("wheel", &mut r);
        assert_eq!(r.get("wheel.spills"), Some(1));
    }

    #[test]
    fn idle_wheel_repositions_backwards() {
        // After draining, an idle wheel may legally receive an event in an
        // earlier bucket than `cur` (sim time rebased / new trace).
        let mut w = TimingWheel::new();
        w.push(1_000_000, 0, 0);
        w.pop();
        w.push(5, 1, 1);
        assert_eq!(w.pop(), Some((5, 1, 1)));
    }
}
