//! Property tests for the compiled-schedule lane backend: on random
//! combinational cones with random stimulus plans and jittered delay
//! models, every non-divergent lane of [`SchedRunner::run_pass`] must
//! reproduce the dynamic wheel's timed-transition multiset and final
//! net values bit-for-bit under the same per-trace seed (the wheel is
//! itself pinned against the reference heap in `prop.rs`, so the chain
//! closes transitively). Divergent lanes are the documented fallback:
//! the caller re-runs them on the wheel, which is trivially identical.

use gm_netlist::{NetId, Netlist};
use gm_sim::{
    CompiledSchedule, DelayModel, LaneSink, PowerSink, RepairQueue, SchedRunner, SimCore, SimGraph,
};
use proptest::prelude::*;

/// Lanes per property case: enough to exercise the lane-word paths
/// (including bits past 32) while keeping the scalar reference cheap.
const TEST_LANES: usize = 40;

/// One sorted (time, net, value, weight-bits) transition stream.
type Stream = Vec<(u64, u32, bool, u64)>;

#[derive(Default)]
struct RecordingSink(Stream);

impl PowerSink for RecordingSink {
    fn transition(&mut self, time_ps: u64, net: NetId, new_value: bool, weight: f64) {
        self.0.push((time_ps, net.0, new_value, weight.to_bits()));
    }
}

struct LaneRecording(Vec<Stream>);

impl LaneSink for LaneRecording {
    fn transitions(&mut self, net: NetId, weight: f64, applied: u64, values: u64, times: &[u64]) {
        let mut m = applied;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            self.0[l].push((times[l], net.0, values >> l & 1 != 0, weight.to_bits()));
        }
    }
}

/// Same generator as `prop.rs`: a random combinational cone over 4
/// primary inputs, acyclic by construction, reconvergence included.
fn random_cone(gates: &[(u8, u8, u8)]) -> (Netlist, [NetId; 4]) {
    let mut n = Netlist::new("cone");
    let inputs = [n.input("i0"), n.input("i1"), n.input("i2"), n.input("i3")];
    let mut nets: Vec<NetId> = inputs.to_vec();
    for &(kind, a, b) in gates {
        let x = nets[a as usize % nets.len()];
        let y = nets[b as usize % nets.len()];
        let out = match kind % 8 {
            0 => n.and2(x, y),
            1 => n.or2(x, y),
            2 => n.xor2(x, y),
            3 => n.nand2(x, y),
            4 => n.nor2(x, y),
            5 => n.xnor2(x, y),
            6 => n.inv(x),
            _ => n.buf(x),
        };
        nets.push(out);
    }
    let z = *nets.last().expect("at least the inputs");
    n.output("z", z);
    n.validate().expect("random cone validates");
    (n, inputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Compiled lanes ≡ scalar wheel: per-lane sorted transition
    /// multiset and final values, across jitter-free and jittered delay
    /// models, arbitrary stimulus plans (narrow pulses included — that
    /// exercises inertial annihilation under compilation), and a
    /// mid-cascade window cut.
    #[test]
    fn compiled_lanes_match_wheel(
        gates in prop::collection::vec((0u8..8, 0u8..32, 0u8..32), 3..20),
        slots in prop::collection::vec((0u8..4, 0u64..60_000), 1..12),
        lane_vals in prop::collection::vec(any::<u64>(), 12..13),
        jitter_idx in 0usize..3,
        seed in any::<u64>(),
        t_end in 2_000u64..120_000,
    ) {
        let (n, inputs) = random_cone(&gates);
        let jitter = [0.0f64, 60.0, 250.0][jitter_idx];
        let delays = DelayModel::with_variation(&n, 0.3, jitter, seed);
        let graph = SimGraph::new(&n);
        let stims: Vec<(NetId, u64)> =
            slots.iter().map(|&(i, t)| (inputs[i as usize % 4], t)).collect();
        let sched = CompiledSchedule::compile(&graph, &delays, &stims)
            .expect("combinational input-driven cone compiles");
        prop_assert_eq!(sched.num_stims(), stims.len());

        let seeds: Vec<u64> = (0..TEST_LANES as u64)
            .map(|l| seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(l * 1729 + 5))
            .collect();
        let stim_values: Vec<u64> = lane_vals[..stims.len()].to_vec();

        let mut runner = SchedRunner::new();
        let mut rec = LaneRecording(vec![Vec::new(); gm_sim::LANES]);
        let div = runner.run_pass(
            &sched, &graph, &delays, graph.weights(), &seeds, &stim_values, t_end, &mut rec,
        );
        prop_assert_eq!(div >> TEST_LANES, 0, "divergence outside the lane mask");

        let mut scalar = SimCore::new(&graph, 0);
        for (l, &lane_seed) in seeds.iter().enumerate().take(TEST_LANES) {
            if div >> l & 1 != 0 {
                continue; // documented fallback: caller reruns on the wheel
            }
            scalar.reset(&graph, lane_seed);
            for (s, &(net, t)) in stims.iter().enumerate() {
                scalar.schedule(net, t, stim_values[s] >> l & 1 != 0);
            }
            let mut want = RecordingSink::default();
            scalar.run_until(&graph, &delays, t_end, &mut want);
            want.0.sort_unstable();
            let mut got = rec.0[l].clone();
            got.sort_unstable();
            prop_assert_eq!(&got, &want.0, "lane {} transition multiset", l);
            for net in 0..graph.num_nets() as u32 {
                prop_assert_eq!(
                    runner.value(NetId(net)) >> l & 1 != 0,
                    scalar.value(NetId(net)),
                    "lane {} final value of net {}", l, net
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// High-sigma campaign composition: with jitter far above the
    /// process spread the base order lies often, so lanes diverge —
    /// and the campaign recipe (sweep for the clean lanes, a *reused*
    /// scalar core re-run per divergent lane, exactly like the bench
    /// trace sources) must reproduce a fresh-core wheel reference
    /// bit-for-bit on **every** lane, divergent or not.
    #[test]
    fn high_sigma_fallback_composes_exactly(
        gates in prop::collection::vec((0u8..8, 0u8..32, 0u8..32), 8..24),
        slots in prop::collection::vec((0u8..4, 0u64..8_000), 2..10),
        lane_vals in prop::collection::vec(any::<u64>(), 10..11),
        seed in any::<u64>(),
    ) {
        let (n, inputs) = random_cone(&gates);
        // Sigma of 500 ps against ~350-1200 ps base delays: adjacent
        // arrivals swap routinely, which is what forces divergence.
        let delays = DelayModel::with_variation(&n, 0.3, 500.0, seed);
        let graph = SimGraph::new(&n);
        let stims: Vec<(NetId, u64)> =
            slots.iter().map(|&(i, t)| (inputs[i as usize % 4], t)).collect();
        let sched = CompiledSchedule::compile(&graph, &delays, &stims)
            .expect("combinational input-driven cone compiles");
        let t_end = 400_000u64;

        let seeds: Vec<u64> = (0..TEST_LANES as u64)
            .map(|l| seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(l * 1729 + 5))
            .collect();
        let stim_values: Vec<u64> = lane_vals[..stims.len()].to_vec();

        let mut runner = SchedRunner::new();
        let mut rec = LaneRecording(vec![Vec::new(); gm_sim::LANES]);
        let div = runner.run_pass(
            &sched, &graph, &delays, graph.weights(), &seeds, &stim_values, t_end, &mut rec,
        );

        // One recycled fallback core for all divergent lanes, as in the
        // bench trace sources — reset-reuse must not leak state between
        // lanes. Inline repair (the legacy `GM_REPAIR_BATCH=0` path) is
        // computed per lane; the deferred batch goes through a
        // [`RepairQueue`] exactly like the trace sources and must land
        // the same bytes in the same label slots.
        let mut fallback = SimCore::new(&graph, 0);
        let mut composed: Vec<Stream> = Vec::new();
        let mut repairs = RepairQueue::new();
        for (l, &lane_seed) in seeds.iter().enumerate().take(TEST_LANES) {
            if div >> l & 1 != 0 {
                fallback.reset(&graph, lane_seed);
                for (s, &(net, t)) in stims.iter().enumerate() {
                    fallback.schedule(net, t, stim_values[s] >> l & 1 != 0);
                }
                let mut sink = RecordingSink::default();
                fallback.run_until(&graph, &delays, t_end, &mut sink);
                sink.0.sort_unstable();
                composed.push(sink.0);
                let mut sb = 0u32;
                for (s, v) in stim_values.iter().enumerate() {
                    sb |= ((v >> l & 1) as u32) << s;
                }
                repairs.push(lane_seed, sb, l as u32);
            } else {
                let mut lane = rec.0[l].clone();
                lane.sort_unstable();
                composed.push(lane);
            }
        }

        // Deferred drain: every queued lane repaired in one batch, into
        // its original label slot, bit-identical to the inline repair.
        let queued = repairs.len();
        let mut batched: Vec<Option<Stream>> = vec![None; TEST_LANES];
        let drained = repairs.drain(&mut runner.stats, |ticket| {
            fallback.reset(&graph, ticket.seed);
            for (s, &(net, t)) in stims.iter().enumerate() {
                fallback.schedule(net, t, ticket.stim_bits >> s & 1 != 0);
            }
            let mut sink = RecordingSink::default();
            fallback.run_until(&graph, &delays, t_end, &mut sink);
            sink.0.sort_unstable();
            batched[ticket.slot as usize] = Some(sink.0);
        });
        prop_assert_eq!(drained, queued, "drain must repair every queued ticket");
        prop_assert!(repairs.is_empty(), "drain must leave the queue empty");
        for l in 0..TEST_LANES {
            if div >> l & 1 != 0 {
                prop_assert_eq!(
                    batched[l].as_ref().expect("divergent lane was queued"),
                    &composed[l],
                    "lane {} batched repair != inline fallback", l
                );
            } else {
                prop_assert!(batched[l].is_none(), "clean lane {} must not be repaired", l);
            }
        }

        for (l, &lane_seed) in seeds.iter().enumerate().take(TEST_LANES) {
            let mut fresh = SimCore::new(&graph, lane_seed);
            for (s, &(net, t)) in stims.iter().enumerate() {
                fresh.schedule(net, t, stim_values[s] >> l & 1 != 0);
            }
            let mut want = RecordingSink::default();
            fresh.run_until(&graph, &delays, t_end, &mut want);
            want.0.sort_unstable();
            prop_assert_eq!(&composed[l], &want.0, "lane {} composed transition multiset", l);
        }
    }
}

/// High jitter must *actually* force divergence — otherwise the
/// composition property above would pass vacuously. A deterministic
/// seed sweep over a reconvergent cone: some pass within the budget has
/// to report a non-empty divergent mask.
#[test]
fn high_sigma_actually_diverges() {
    let gates: Vec<(u8, u8, u8)> = (0..18u8).map(|k| (k % 6, k % 7, (k * 5 + 2) % 11)).collect();
    let (n, inputs) = random_cone(&gates);
    let graph = SimGraph::new(&n);
    let stims: Vec<(NetId, u64)> = (0..4).map(|i| (inputs[i], 1_000 + 40 * i as u64)).collect();
    let mut total_div = 0u64;
    for device in 0..20u64 {
        let delays = DelayModel::with_variation(&n, 0.3, 600.0, device);
        let sched = CompiledSchedule::compile(&graph, &delays, &stims).expect("cone compiles");
        let mut runner = SchedRunner::new();
        let seeds: Vec<u64> = (0..TEST_LANES as u64)
            .map(|l| device.wrapping_mul(0x243f_6a88_85a3_08d3) ^ (l * 977 + 13))
            .collect();
        let stim_values = vec![!0u64, 0x5555_5555_5555_5555, 0x0f0f_0f0f_0f0f_0f0f, !0u64];
        let mut rec = LaneRecording(vec![Vec::new(); gm_sim::LANES]);
        let div = runner.run_pass(
            &sched,
            &graph,
            &delays,
            graph.weights(),
            &seeds,
            &stim_values,
            400_000,
            &mut rec,
        );
        total_div += div.count_ones() as u64;
    }
    assert!(
        total_div > 0,
        "600 ps sigma over 20 devices x {TEST_LANES} lanes never diverged — \
         the fallback path is untested dead code"
    );
}

/// Deferred repair must actually amortise: at least one per-pass drain
/// has to carry more than one lane, or the batched path degenerates to
/// the inline fallback with extra bookkeeping and the hoisted-span
/// accounting measures nothing. Same deterministic sweep as
/// [`high_sigma_actually_diverges`], with every pass's divergent lanes
/// queued and drained; the drained results must match a per-lane wheel
/// rerun bit-for-bit.
#[test]
fn repair_drain_batches_multiple_lanes() {
    let gates: Vec<(u8, u8, u8)> = (0..18u8).map(|k| (k % 6, k % 7, (k * 5 + 2) % 11)).collect();
    let (n, inputs) = random_cone(&gates);
    let graph = SimGraph::new(&n);
    let stims: Vec<(NetId, u64)> = (0..4).map(|i| (inputs[i], 1_000 + 40 * i as u64)).collect();
    let stim_values = vec![!0u64, 0x5555_5555_5555_5555, 0x0f0f_0f0f_0f0f_0f0f, !0u64];
    let mut max_batch = 0usize;
    for device in 0..20u64 {
        let delays = DelayModel::with_variation(&n, 0.3, 600.0, device);
        let sched = CompiledSchedule::compile(&graph, &delays, &stims).expect("cone compiles");
        let mut runner = SchedRunner::new();
        let seeds: Vec<u64> = (0..TEST_LANES as u64)
            .map(|l| device.wrapping_mul(0x243f_6a88_85a3_08d3) ^ (l * 977 + 13))
            .collect();
        let mut rec = LaneRecording(vec![Vec::new(); gm_sim::LANES]);
        let div = runner.run_pass(
            &sched,
            &graph,
            &delays,
            graph.weights(),
            &seeds,
            &stim_values,
            400_000,
            &mut rec,
        );
        let mut repairs = RepairQueue::new();
        for (l, &seed) in seeds.iter().enumerate().take(TEST_LANES) {
            if div >> l & 1 != 0 {
                let mut sb = 0u32;
                for (s, v) in stim_values.iter().enumerate() {
                    sb |= ((v >> l & 1) as u32) << s;
                }
                repairs.push(seed, sb, l as u32);
            }
        }
        let mut fallback = SimCore::new(&graph, 0);
        let batch = repairs.drain(&mut runner.stats, |ticket| {
            fallback.reset(&graph, ticket.seed);
            for (s, &(net, t)) in stims.iter().enumerate() {
                fallback.schedule(net, t, ticket.stim_bits >> s & 1 != 0);
            }
            let mut got = RecordingSink::default();
            fallback.run_until(&graph, &delays, 400_000, &mut got);
            got.0.sort_unstable();

            let l = ticket.slot as usize;
            let mut fresh = SimCore::new(&graph, seeds[l]);
            for (s, &(net, t)) in stims.iter().enumerate() {
                fresh.schedule(net, t, stim_values[s] >> l & 1 != 0);
            }
            let mut want = RecordingSink::default();
            fresh.run_until(&graph, &delays, 400_000, &mut want);
            want.0.sort_unstable();
            assert_eq!(got.0, want.0, "device {device} lane {l} drained repair");
        });
        assert_eq!(batch, (div & ((1u64 << TEST_LANES) - 1)).count_ones() as usize);
        max_batch = max_batch.max(batch);
    }
    assert!(
        max_batch > 1,
        "no drain ever carried more than one lane — deferred repair \
         never amortises over this sweep and the batching is untested"
    );
}

/// Clocked netlists must refuse to compile — flip-flop sequencing
/// belongs to the clocked harness, and the caller falls back to the
/// dynamic engine wholesale.
#[test]
fn clocked_netlist_refuses_compilation() {
    let mut n = Netlist::new("clk");
    let d = n.input("d");
    let q = n.dff(d);
    let y = n.xor2(d, q);
    n.output("y", y);
    n.validate().unwrap();
    let graph = SimGraph::new(&n);
    let delays = DelayModel::nominal(&n);
    assert!(CompiledSchedule::compile(&graph, &delays, &[(d, 1_000)]).is_none());
}
