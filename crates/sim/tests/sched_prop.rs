//! Property tests for the compiled-schedule lane backend: on random
//! combinational cones with random stimulus plans and jittered delay
//! models, every non-divergent lane of [`SchedRunner::run_pass`] must
//! reproduce the dynamic wheel's timed-transition multiset and final
//! net values bit-for-bit under the same per-trace seed (the wheel is
//! itself pinned against the reference heap in `prop.rs`, so the chain
//! closes transitively). Divergent lanes are the documented fallback:
//! the caller re-runs them on the wheel, which is trivially identical.

use gm_netlist::{NetId, Netlist};
use gm_sim::{CompiledSchedule, DelayModel, LaneSink, PowerSink, SchedRunner, SimCore, SimGraph};
use proptest::prelude::*;

/// Lanes per property case: enough to exercise the lane-word paths
/// (including bits past 32) while keeping the scalar reference cheap.
const TEST_LANES: usize = 40;

#[derive(Default)]
struct RecordingSink(Vec<(u64, u32, bool, u64)>);

impl PowerSink for RecordingSink {
    fn transition(&mut self, time_ps: u64, net: NetId, new_value: bool, weight: f64) {
        self.0.push((time_ps, net.0, new_value, weight.to_bits()));
    }
}

struct LaneRecording(Vec<Vec<(u64, u32, bool, u64)>>);

impl LaneSink for LaneRecording {
    fn transitions(&mut self, net: NetId, weight: f64, applied: u64, values: u64, times: &[u64]) {
        let mut m = applied;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            self.0[l].push((times[l], net.0, values >> l & 1 != 0, weight.to_bits()));
        }
    }
}

/// Same generator as `prop.rs`: a random combinational cone over 4
/// primary inputs, acyclic by construction, reconvergence included.
fn random_cone(gates: &[(u8, u8, u8)]) -> (Netlist, [NetId; 4]) {
    let mut n = Netlist::new("cone");
    let inputs = [n.input("i0"), n.input("i1"), n.input("i2"), n.input("i3")];
    let mut nets: Vec<NetId> = inputs.to_vec();
    for &(kind, a, b) in gates {
        let x = nets[a as usize % nets.len()];
        let y = nets[b as usize % nets.len()];
        let out = match kind % 8 {
            0 => n.and2(x, y),
            1 => n.or2(x, y),
            2 => n.xor2(x, y),
            3 => n.nand2(x, y),
            4 => n.nor2(x, y),
            5 => n.xnor2(x, y),
            6 => n.inv(x),
            _ => n.buf(x),
        };
        nets.push(out);
    }
    let z = *nets.last().expect("at least the inputs");
    n.output("z", z);
    n.validate().expect("random cone validates");
    (n, inputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Compiled lanes ≡ scalar wheel: per-lane sorted transition
    /// multiset and final values, across jitter-free and jittered delay
    /// models, arbitrary stimulus plans (narrow pulses included — that
    /// exercises inertial annihilation under compilation), and a
    /// mid-cascade window cut.
    #[test]
    fn compiled_lanes_match_wheel(
        gates in prop::collection::vec((0u8..8, 0u8..32, 0u8..32), 3..20),
        slots in prop::collection::vec((0u8..4, 0u64..60_000), 1..12),
        lane_vals in prop::collection::vec(any::<u64>(), 12..13),
        jitter_idx in 0usize..3,
        seed in any::<u64>(),
        t_end in 2_000u64..120_000,
    ) {
        let (n, inputs) = random_cone(&gates);
        let jitter = [0.0f64, 60.0, 250.0][jitter_idx];
        let delays = DelayModel::with_variation(&n, 0.3, jitter, seed);
        let graph = SimGraph::new(&n);
        let stims: Vec<(NetId, u64)> =
            slots.iter().map(|&(i, t)| (inputs[i as usize % 4], t)).collect();
        let sched = CompiledSchedule::compile(&graph, &delays, &stims)
            .expect("combinational input-driven cone compiles");
        prop_assert_eq!(sched.num_stims(), stims.len());

        let seeds: Vec<u64> = (0..TEST_LANES as u64)
            .map(|l| seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(l * 1729 + 5))
            .collect();
        let stim_values: Vec<u64> = lane_vals[..stims.len()].to_vec();

        let mut runner = SchedRunner::new();
        let mut rec = LaneRecording(vec![Vec::new(); gm_sim::LANES]);
        let div = runner.run_pass(
            &sched, &graph, &delays, graph_weights(&graph), &seeds, &stim_values, t_end, &mut rec,
        );
        prop_assert_eq!(div >> TEST_LANES, 0, "divergence outside the lane mask");

        let mut scalar = SimCore::new(&graph, 0);
        for (l, &lane_seed) in seeds.iter().enumerate().take(TEST_LANES) {
            if div >> l & 1 != 0 {
                continue; // documented fallback: caller reruns on the wheel
            }
            scalar.reset(&graph, lane_seed);
            for (s, &(net, t)) in stims.iter().enumerate() {
                scalar.schedule(net, t, stim_values[s] >> l & 1 != 0);
            }
            let mut want = RecordingSink::default();
            scalar.run_until(&graph, &delays, t_end, &mut want);
            want.0.sort_unstable();
            let mut got = rec.0[l].clone();
            got.sort_unstable();
            prop_assert_eq!(&got, &want.0, "lane {} transition multiset", l);
            for net in 0..graph.num_nets() as u32 {
                prop_assert_eq!(
                    runner.value(NetId(net)) >> l & 1 != 0,
                    scalar.value(NetId(net)),
                    "lane {} final value of net {}", l, net
                );
            }
        }
    }
}

/// The runner only sees the graph's own weight table here; campaigns
/// pass their overridden copy.
fn graph_weights(graph: &SimGraph) -> &[f64] {
    graph.weights()
}

/// Clocked netlists must refuse to compile — flip-flop sequencing
/// belongs to the clocked harness, and the caller falls back to the
/// dynamic engine wholesale.
#[test]
fn clocked_netlist_refuses_compilation() {
    let mut n = Netlist::new("clk");
    let d = n.input("d");
    let q = n.dff(d);
    let y = n.xor2(d, q);
    n.output("y", y);
    n.validate().unwrap();
    let graph = SimGraph::new(&n);
    let delays = DelayModel::nominal(&n);
    assert!(CompiledSchedule::compile(&graph, &delays, &[(d, 1_000)]).is_none());
}
