//! Golden transition streams: pin the event engine's observable output
//! (time, net, value per applied transition) across refactors of the
//! queue, fanout, and delay-table internals. The nominal train was
//! recorded from the original `BinaryHeap` + `Vec<Vec<u32>>` engine and
//! must never move; the jittered train additionally pins the
//! order-invariant per-event jitter sampler (counter hash + quantile
//! table, see `DelayModel::sample_event_ps`). Any change to them means
//! glitch trains moved.

use gm_netlist::{NetId, Netlist};
use gm_sim::{DelayModel, PowerSink, Simulator};

#[derive(Default)]
struct Recorder {
    events: Vec<(u64, u32, bool)>,
}

impl PowerSink for Recorder {
    fn transition(&mut self, time_ps: u64, net: NetId, new_value: bool, _weight: f64) {
        self.events.push((time_ps, net.0, new_value));
    }
}

/// Static-1-hazard circuit: y = (a & b) ^ buf(buf(a | b)).
fn hazard_netlist() -> (Netlist, NetId, NetId) {
    let mut n = Netlist::new("golden");
    let a = n.input("a");
    let b = n.input("b");
    let p = n.and2(a, b);
    let q0 = n.or2(a, b);
    let q1 = n.buf(q0);
    let q = n.buf(q1);
    let y = n.xor2(p, q);
    n.output("y", y);
    n.validate().unwrap();
    (n, a, b)
}

fn run(delays: &DelayModel, n: &Netlist, a: NetId, b: NetId, seed: u64) -> Vec<(u64, u32, bool)> {
    let mut sim = Simulator::new(n, delays, seed);
    sim.init_all_zero();
    // Narrow skew (rejected pulse on y), then wide skew (surviving glitch).
    sim.schedule(a, 1_000, true);
    sim.schedule(b, 1_200, true);
    sim.schedule(a, 20_000, false);
    sim.schedule(b, 28_000, false);
    let mut rec = Recorder::default();
    sim.run_until(100_000, &mut rec);
    rec.events
}

#[test]
fn nominal_glitch_train_pinned() {
    let (n, a, b) = hazard_netlist();
    let delays = DelayModel::nominal(&n);
    let got = run(&delays, &n, a, b, 0);
    let want = vec![
        (1000, 0, true),
        (1200, 1, true),
        (1350, 3, true),
        (1525, 4, true),
        (1550, 2, true),
        (1700, 5, true),
        (20000, 0, false),
        (20350, 2, false),
        (20800, 6, true),
        (28000, 1, false),
        (28350, 3, false),
        (28525, 4, false),
        (28700, 5, false),
        (29150, 6, false),
    ];
    assert_eq!(got, want, "nominal glitch train moved");
}

#[test]
fn varied_jittered_glitch_train_pinned() {
    let (n, a, b) = hazard_netlist();
    let delays = DelayModel::with_variation(&n, 0.3, 40.0, 5);
    let got = run(&delays, &n, a, b, 7);
    let want = vec![
        (1000, 0, true),
        (1200, 1, true),
        (1281, 3, true),
        (1436, 4, true),
        (1490, 2, true),
        (1605, 5, true),
        (20000, 0, false),
        (20274, 2, false),
        (20767, 6, true),
        (28000, 1, false),
        (28361, 3, false),
        (28528, 4, false),
        (28754, 5, false),
        (29258, 6, false),
    ];
    assert_eq!(got, want, "jittered glitch train moved");
}

#[test]
#[ignore = "generator: prints golden vectors"]
fn print_golden() {
    let (n, a, b) = hazard_netlist();
    for (name, delays, seed) in [
        ("GOLDEN_NOMINAL", DelayModel::nominal(&n), 0),
        ("GOLDEN_JITTER", DelayModel::with_variation(&n, 0.3, 40.0, 5), 7),
    ] {
        println!("// {name}");
        for (t, net, v) in run(&delays, &n, a, b, seed) {
            println!("({t}, {net}, {v}),");
        }
    }
}
