//! Property tests for the timing-wheel event queue and the reusable
//! simulator core, differential against the reference `BinaryHeap`
//! implementation (kept behind `use_reference_heap_queue`).
//!
//! These pin the two contracts PR 2 optimises around:
//!
//! 1. the wheel is a drop-in priority queue — identical `(time, seq)`
//!    pop order for any push/pop interleaving the engine can produce
//!    (pushes never precede the last popped time);
//! 2. the wheel-backed simulator emits a bit-identical transition
//!    stream to the heap-backed one on random logic cones, and
//!    `reset()` + rerun is bit-identical to a freshly constructed core.

use gm_netlist::{NetId, Netlist};
use gm_sim::{DelayModel, PowerSink, SimGraph, Simulator, TimingWheel};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Records every applied transition exactly (weight compared by bits).
#[derive(Default)]
struct RecordingSink(Vec<(u64, u32, bool, u64)>);

impl PowerSink for RecordingSink {
    fn transition(&mut self, time_ps: u64, net: NetId, new_value: bool, weight: f64) {
        self.0.push((time_ps, net.0, new_value, weight.to_bits()));
    }
}

/// Build a random combinational cone over 4 primary inputs: each gate
/// draws its operands from any earlier net, so the graph is acyclic by
/// construction and fans out freely (reconvergence included).
fn random_cone(gates: &[(u8, u8, u8)]) -> (Netlist, [NetId; 4]) {
    let mut n = Netlist::new("cone");
    let inputs = [n.input("i0"), n.input("i1"), n.input("i2"), n.input("i3")];
    let mut nets: Vec<NetId> = inputs.to_vec();
    for &(kind, a, b) in gates {
        let x = nets[a as usize % nets.len()];
        let y = nets[b as usize % nets.len()];
        let out = match kind % 8 {
            0 => n.and2(x, y),
            1 => n.or2(x, y),
            2 => n.xor2(x, y),
            3 => n.nand2(x, y),
            4 => n.nor2(x, y),
            5 => n.xnor2(x, y),
            6 => n.inv(x),
            _ => n.buf(x),
        };
        nets.push(out);
    }
    let z = *nets.last().expect("at least the inputs");
    n.output("z", z);
    n.validate().expect("random cone validates");
    (n, inputs)
}

/// Schedule the stimulus list on `sim` (input index, time, value).
fn apply_stimuli(sim: &mut Simulator<'_>, inputs: &[NetId; 4], stims: &[(u8, u64, bool)]) {
    for &(i, t, v) in stims {
        sim.schedule(inputs[i as usize % 4], t, v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wheel ≡ heap pop order under the engine's push contract: every
    /// push is at or after the most recently popped time, pops and
    /// pushes interleave arbitrarily, and times span multiple buckets
    /// plus the overflow region (bucket span is 512 ps × 256).
    #[test]
    fn wheel_matches_heap_order(ops in prop::collection::vec((0u64..300_000, 0u8..4), 1..300)) {
        let mut wheel = TimingWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut floor = 0u64; // last popped time
        for (seq, (dt, pops)) in ops.into_iter().enumerate() {
            let seq = seq as u64;
            let t = floor + dt;
            wheel.push(t, seq, seq);
            heap.push(Reverse((t, seq)));
            for _ in 0..pops {
                prop_assert_eq!(wheel.peek_time(), heap.peek().map(|r| r.0 .0));
                let Some(Reverse(want)) = heap.pop() else { break };
                let (wt, ws, payload) = wheel.pop().expect("wheel matches heap length");
                prop_assert_eq!((wt, ws), want);
                prop_assert_eq!(payload, ws);
                floor = wt;
            }
        }
        while let Some(Reverse(want)) = heap.pop() {
            let (wt, ws, _) = wheel.pop().expect("wheel matches heap length");
            prop_assert_eq!((wt, ws), want);
        }
        prop_assert!(wheel.pop().is_none());
        prop_assert!(wheel.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The wheel-backed simulator and the reference heap-backed one emit
    /// identical transition streams (time, net, value, weight) on random
    /// cones with jittered delays — pulse rejection and tie-breaking
    /// included.
    #[test]
    fn wheel_sim_matches_heap_sim(
        gates in prop::collection::vec((0u8..8, 0u8..32, 0u8..32), 3..24),
        stims in prop::collection::vec((0u8..4, 0u64..60_000, any::<bool>()), 1..24),
        seed in any::<u64>(),
    ) {
        let (n, inputs) = random_cone(&gates);
        let delays = DelayModel::with_variation(&n, 0.3, 60.0, seed);

        let mut wheel_sim = Simulator::new(&n, &delays, seed);
        wheel_sim.init_all_zero();
        let mut heap_sim = Simulator::new(&n, &delays, seed);
        heap_sim.use_reference_heap_queue();
        heap_sim.init_all_zero();

        apply_stimuli(&mut wheel_sim, &inputs, &stims);
        apply_stimuli(&mut heap_sim, &inputs, &stims);

        let (mut rw, mut rh) = (RecordingSink::default(), RecordingSink::default());
        wheel_sim.run_until(500_000, &mut rw);
        heap_sim.run_until(500_000, &mut rh);
        prop_assert_eq!(rw.0, rh.0);
        for net in 0..n.num_nets() as u32 {
            prop_assert_eq!(wheel_sim.value(NetId(net)), heap_sim.value(NetId(net)));
        }
    }

    /// `reset()` + rerun on a recycled core is bit-identical to a fresh
    /// construction: same transitions, same final values — even after a
    /// first run with unrelated stimuli and a different seed.
    #[test]
    fn reset_rerun_matches_fresh(
        gates in prop::collection::vec((0u8..8, 0u8..32, 0u8..32), 3..24),
        warmup in prop::collection::vec((0u8..4, 0u64..60_000, any::<bool>()), 1..12),
        stims in prop::collection::vec((0u8..4, 0u64..60_000, any::<bool>()), 1..24),
        seed in any::<u64>(),
    ) {
        let (n, inputs) = random_cone(&gates);
        let delays = DelayModel::with_variation(&n, 0.3, 60.0, seed ^ 0x5eed);
        let graph = SimGraph::new(&n);

        let mut fresh = Simulator::with_graph(&graph, &delays, seed);
        fresh.init_all_zero();
        apply_stimuli(&mut fresh, &inputs, &stims);
        let mut want = RecordingSink::default();
        fresh.run_until(500_000, &mut want);

        let mut reused = Simulator::with_graph(&graph, &delays, seed ^ 0xbad);
        reused.init_all_zero();
        apply_stimuli(&mut reused, &inputs, &warmup);
        reused.run_until(500_000, &mut RecordingSink::default());

        reused.reset(seed);
        apply_stimuli(&mut reused, &inputs, &stims);
        let mut got = RecordingSink::default();
        reused.run_until(500_000, &mut got);

        prop_assert_eq!(got.0, want.0);
        for net in 0..n.num_nets() as u32 {
            prop_assert_eq!(reused.value(NetId(net)), fresh.value(NetId(net)));
        }
    }
}
