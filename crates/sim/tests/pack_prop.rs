//! Property tests for the lane-major word-level packing sinks: on
//! random transition streams (random nets, lane masks, and per-lane
//! times, windows cut mid-stream), [`LaneEnergy`] and [`LaneBinTrace`]
//! must agree with the obvious scalar references — a per-lane weighted
//! sum and a per-lane [`PowerTrace`] — to 1e-9, well inside the
//! campaign's compiled-vs-scalar agreement band. The bit-plane ripple
//! counters and the per-(weight-class × bin) popcount conversion are
//! exactly the machinery the trace sources lean on for per-pass energy
//! packing, so any drift here is a campaign-level wrong answer.

use gm_netlist::NetId;
use gm_sim::{LaneBinTrace, LaneEnergy, LaneSink, PowerTrace};
use proptest::prelude::*;

const LANES: usize = gm_sim::LANES;

/// One random sink call: which net toggles, in which lanes, and when.
#[derive(Debug, Clone)]
struct Tx {
    net: usize,
    applied: u64,
    values: u64,
    times: Vec<u64>,
}

fn tx_strategy(num_nets: usize) -> impl Strategy<Value = Tx> {
    (
        0..num_nets,
        any::<u64>(),
        any::<u64>(),
        // Times straddle the 1 000..3 000 ps window used below so both
        // in-window and dropped transitions occur.
        prop::collection::vec(0u64..4_000, LANES..LANES + 1),
    )
        .prop_map(|(net, applied, values, times)| Tx { net, applied, values, times })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Word-level energy totals ≡ per-lane scalar weighted sums. Heavy
    /// repetition on few nets drives the ripple counters past plane 1,
    /// so carry chains are exercised, not just the low bit.
    #[test]
    fn lane_energy_matches_scalar_sum(
        weights in prop::collection::vec(0.05f64..25.0, 1..6),
        txs in prop::collection::vec(tx_strategy(6), 1..220),
    ) {
        let mut word = LaneEnergy::new(&weights);
        let mut want = [0.0f64; LANES];
        for tx in &txs {
            let net = tx.net % weights.len();
            word.transitions(NetId(net as u32), weights[net], tx.applied, tx.values, &tx.times);
            let mut m = tx.applied;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                want[l] += weights[net];
            }
        }
        let mut got = [0.0f64; LANES];
        word.energies_into(&mut got);
        for (l, (&g, &w)) in got.iter().zip(&want).enumerate() {
            prop_assert!(
                (g - w).abs() <= 1e-9 * w.abs().max(1.0),
                "lane {} energy: got {} want {}", l, g, w
            );
        }
    }

    /// Word-level time-binned packing ≡ one scalar [`PowerTrace`] per
    /// lane, including the window cut and multiple clear/finish passes
    /// over a reused sink.
    #[test]
    fn lane_bin_trace_matches_scalar_power_trace(
        weights in prop::collection::vec(0.05f64..25.0, 1..6),
        passes in prop::collection::vec(
            prop::collection::vec(tx_strategy(6), 1..60), 1..4),
    ) {
        const BINS: usize = 4;
        let mut word = LaneBinTrace::new(1_000, 500, BINS, &weights);
        for txs in &passes {
            word.clear();
            let mut want: Vec<PowerTrace> =
                (0..LANES).map(|_| PowerTrace::new(1_000, 500, BINS)).collect();
            for tx in txs {
                let net = tx.net % weights.len();
                word.transitions(NetId(net as u32), weights[net], tx.applied, tx.values, &tx.times);
                let mut m = tx.applied;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    want[l].add(tx.times[l], weights[net]);
                }
            }
            word.finish_pass();
            let mut got = [0.0f64; BINS];
            for (l, want_l) in want.iter().enumerate() {
                word.lane_into(l, &mut got);
                for (b, (&g, &w)) in got.iter().zip(want_l.samples()).enumerate() {
                    prop_assert!(
                        (g - w).abs() <= 1e-9 * w.abs().max(1.0),
                        "lane {} bin {}: got {} want {}", l, b, g, w
                    );
                }
            }
        }
    }
}
