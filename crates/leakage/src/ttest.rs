//! Welch t-tests of orders one to three over [`TraceMoments`] pairs.
//!
//! Following Schneider & Moradi ("Leakage Assessment Methodology", CHES
//! 2015), the order-`d` univariate t-test is a first-order Welch test on
//! preprocessed traces:
//!
//! * order 1 — the raw traces;
//! * order 2 — centred squares `(x − μ)²`, whose per-class mean is the
//!   central moment `CM₂` and variance `CM₄ − CM₂²`;
//! * order 3 — standardised cubes `((x − μ)/σ)³`, with mean `CM₃/CM₂^{3/2}`
//!   and variance `(CM₆ − CM₃²/CM₂)/CM₂³`.
//!
//! All quantities come from the streaming accumulator, so arbitrary-length
//! campaigns need constant memory.

use crate::moments::TraceMoments;

fn welch(mean_a: f64, var_a: f64, na: f64, mean_b: f64, var_b: f64, nb: f64) -> f64 {
    let denom = (var_a / na + var_b / nb).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (mean_a - mean_b) / denom
}

/// First-order Welch t-statistic at one sample point.
///
/// Used by [`t_first_order`] and by non-allocating scans such as
/// `TvlaResult::max_abs_t`; callers must have checked the accumulators
/// via the whole-curve entry points (same length, ≥ 2 traces each).
pub fn t_first_order_at(a: &TraceMoments, b: &TraceMoments, i: usize) -> f64 {
    welch(
        a.mean()[i],
        a.variance(i),
        a.count() as f64,
        b.mean()[i],
        b.variance(i),
        b.count() as f64,
    )
}

/// Second-order univariate t-statistic at one sample point.
pub fn t_second_order_at(a: &TraceMoments, b: &TraceMoments, i: usize) -> f64 {
    let (ma, va) = centered_square_stats(a, i);
    let (mb, vb) = centered_square_stats(b, i);
    welch(ma, va, a.count() as f64, mb, vb, b.count() as f64)
}

/// Third-order univariate t-statistic at one sample point.
pub fn t_third_order_at(a: &TraceMoments, b: &TraceMoments, i: usize) -> f64 {
    let (ma, va) = standardized_cube_stats(a, i);
    let (mb, vb) = standardized_cube_stats(b, i);
    welch(ma, va, a.count() as f64, mb, vb, b.count() as f64)
}

/// First-order Welch t-statistic per sample point.
///
/// # Panics
///
/// Panics when the accumulators have different lengths or fewer than two
/// traces each.
pub fn t_first_order(a: &TraceMoments, b: &TraceMoments) -> Vec<f64> {
    check(a, b);
    (0..a.len()).map(|i| t_first_order_at(a, b, i)).collect()
}

/// Second-order univariate t-statistic (centred squares) per sample point.
pub fn t_second_order(a: &TraceMoments, b: &TraceMoments) -> Vec<f64> {
    check(a, b);
    (0..a.len()).map(|i| t_second_order_at(a, b, i)).collect()
}

/// Third-order univariate t-statistic (standardised cubes) per sample point.
pub fn t_third_order(a: &TraceMoments, b: &TraceMoments) -> Vec<f64> {
    check(a, b);
    (0..a.len()).map(|i| t_third_order_at(a, b, i)).collect()
}

pub(crate) fn check_pair(a: &TraceMoments, b: &TraceMoments) {
    check(a, b);
}

/// Mean and variance of the preprocessed trace `(x − μ)²` at sample `i`.
fn centered_square_stats(m: &TraceMoments, i: usize) -> (f64, f64) {
    let cm2 = m.central_moment(2, i);
    let cm4 = m.central_moment(4, i);
    (cm2, (cm4 - cm2 * cm2).max(0.0))
}

/// Mean and variance of the preprocessed trace `((x − μ)/σ)³` at sample `i`.
fn standardized_cube_stats(m: &TraceMoments, i: usize) -> (f64, f64) {
    let cm2 = m.central_moment(2, i);
    if cm2 <= 0.0 {
        return (0.0, 0.0);
    }
    let cm3 = m.central_moment(3, i);
    let cm6 = m.central_moment(6, i);
    let mean = cm3 / cm2.powf(1.5);
    let var = ((cm6 - cm3 * cm3 / cm2) / (cm2 * cm2 * cm2)).max(0.0);
    (mean, var)
}

fn check(a: &TraceMoments, b: &TraceMoments) {
    assert_eq!(a.len(), b.len(), "trace length mismatch");
    assert!(a.count() >= 2 && b.count() >= 2, "need at least two traces per class");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn gauss(rng: &mut SmallRng) -> f64 {
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn acc(samples: impl Iterator<Item = f64>) -> TraceMoments {
        let mut m = TraceMoments::new(1);
        for s in samples {
            m.add(&[s]);
        }
        m
    }

    #[test]
    fn same_distribution_small_t() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = acc((0..20_000).map(|_| gauss(&mut rng)));
        let b = acc((0..20_000).map(|_| gauss(&mut rng)));
        assert!(t_first_order(&a, &b)[0].abs() < 4.5);
        assert!(t_second_order(&a, &b)[0].abs() < 4.5);
        assert!(t_third_order(&a, &b)[0].abs() < 4.5);
    }

    #[test]
    fn mean_shift_detected_first_order_only() {
        let mut rng = SmallRng::seed_from_u64(2);
        let a = acc((0..20_000).map(|_| gauss(&mut rng) + 0.2));
        let b = acc((0..20_000).map(|_| gauss(&mut rng)));
        assert!(t_first_order(&a, &b)[0].abs() > 4.5, "shifted mean must flag");
        assert!(t_second_order(&a, &b)[0].abs() < 4.5, "variance unchanged");
    }

    #[test]
    fn variance_shift_detected_second_order() {
        let mut rng = SmallRng::seed_from_u64(3);
        // Same mean, different variance: classic 2-share masked leakage shape.
        let a = acc((0..40_000).map(|_| gauss(&mut rng) * 1.3));
        let b = acc((0..40_000).map(|_| gauss(&mut rng)));
        assert!(t_first_order(&a, &b)[0].abs() < 4.5, "means equal");
        assert!(t_second_order(&a, &b)[0].abs() > 4.5, "variances differ");
    }

    #[test]
    fn skew_shift_detected_third_order() {
        let mut rng = SmallRng::seed_from_u64(4);
        // Class A: skewed (exponential-ish, standardised); class B: symmetric.
        let a = acc((0..60_000).map(|_| {
            let e: f64 = -rng.random::<f64>().max(f64::MIN_POSITIVE).ln();
            e - 1.0 // mean 0, var 1, skew 2
        }));
        let b = acc((0..60_000).map(|_| gauss(&mut rng)));
        assert!(
            t_third_order(&a, &b)[0].abs() > 4.5,
            "skewness difference must flag at third order: {}",
            t_third_order(&a, &b)[0]
        );
        assert!(t_first_order(&a, &b)[0].abs() < 4.5);
    }

    #[test]
    fn zero_variance_yields_zero_t() {
        let a = acc([5.0, 5.0, 5.0].into_iter());
        let b = acc([5.0, 5.0, 5.0].into_iter());
        assert_eq!(t_first_order(&a, &b)[0], 0.0);
    }
}
