//! Textual rendering of t-statistic curves and CSV dumps.
//!
//! The paper's figures are oscilloscope-style plots; in a terminal we show
//! the same information as a coarse ASCII profile plus summary statistics,
//! and write the full-resolution series to CSV for external plotting.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Render a t curve as a fixed-width ASCII profile with the ±4.5 band.
///
/// Each output column aggregates a window of samples by the value of
/// largest magnitude, so narrow leakage spikes stay visible.
pub fn ascii_curve(t: &[f64], width: usize) -> String {
    const ROWS: i64 = 9; // odd: one centre row
    if t.is_empty() || width == 0 {
        return String::new();
    }
    let cols = width.min(t.len()).max(1);
    let window = t.len().div_ceil(cols);
    let peaks: Vec<f64> = t
        .chunks(window)
        .map(|c| c.iter().copied().fold(0.0f64, |m, v| if v.abs() > m.abs() { v } else { m }))
        .collect();
    let max_abs = peaks.iter().fold(4.5f64, |m, v| m.max(v.abs()));
    let scale = (ROWS / 2) as f64 / max_abs;

    let mut out = String::new();
    for row in (-(ROWS / 2)..=ROWS / 2).rev() {
        let row_t = row as f64 / scale;
        let is_threshold_row = (row_t.abs() - 4.5).abs() < 0.5 / scale && row != 0;
        let _ = write!(out, "{:>8.1} |", row_t);
        for &p in &peaks {
            let bucket = (p * scale).round() as i64;
            let ch = if row == 0 {
                '-'
            } else if (row > 0 && bucket >= row) || (row < 0 && bucket <= row) {
                '#'
            } else if is_threshold_row {
                '·'
            } else {
                ' '
            };
            out.push(ch);
        }
        out.push('\n');
    }
    let max = peaks.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let _ = writeln!(out, "max |t| = {max:.2} over {} samples", t.len());
    out
}

/// Write `(sample_index, series...)` rows to a CSV file, creating parent
/// directories as needed.
pub fn write_csv(path: impl AsRef<Path>, headers: &[&str], series: &[&[f64]]) -> io::Result<()> {
    assert_eq!(headers.len(), series.len() + 1, "one header per column incl. index");
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let len = series.first().map_or(0, |s| s.len());
    assert!(series.iter().all(|s| s.len() == len), "ragged series");
    let mut body = String::with_capacity(len * 16);
    let _ = writeln!(body, "{}", headers.join(","));
    for i in 0..len {
        let _ = write!(body, "{i}");
        for s in series {
            let _ = write!(body, ",{}", s[i]);
        }
        body.push('\n');
    }
    std::fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_curve_shows_peak() {
        let mut t = vec![0.0; 100];
        t[50] = 60.0;
        let s = ascii_curve(&t, 50);
        assert!(s.contains('#'), "peak rendered");
        assert!(s.contains("max |t| = 60.00"));
    }

    #[test]
    fn ascii_curve_flat_is_clean() {
        let t = vec![0.3; 64];
        let s = ascii_curve(&t, 32);
        assert!(!s.contains('#'), "no spurious marks: {s}");
    }

    #[test]
    fn empty_inputs() {
        assert!(ascii_curve(&[], 10).is_empty());
        assert!(ascii_curve(&[1.0], 0).is_empty());
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("gm_leakage_csv_test");
        let path = dir.join("t.csv");
        write_csv(&path, &["i", "t1", "t2"], &[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "i,t1,t2\n0,1,3\n1,2,4\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
