//! Trace import/export, so the analysis pipeline also serves traces
//! captured outside this workspace (a real oscilloscope, another
//! simulator).
//!
//! Two formats:
//!
//! * **CSV** — one trace per row, optional class label in the first
//!   column (`fixed`/`random` or `0`/`1`); human-inspectable.
//! * **GMT binary** — a minimal length-prefixed little-endian format
//!   (`GMT1` magic, u32 trace length, then per trace: u8 class +
//!   f64 samples); compact enough for multi-million-trace archives.

use crate::tvla::Class;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// A set of labelled traces in memory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSet {
    /// Trace length (all traces equal).
    pub num_samples: usize,
    /// Per-trace class labels.
    pub classes: Vec<Class>,
    /// Row-major samples, `traces.len() == classes.len() * num_samples`.
    pub samples: Vec<f64>,
}

impl TraceSet {
    /// An empty set for traces of `num_samples` points.
    pub fn new(num_samples: usize) -> Self {
        TraceSet { num_samples, classes: Vec::new(), samples: Vec::new() }
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when no traces are stored.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Append one trace.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn push(&mut self, class: Class, trace: &[f64]) {
        assert_eq!(trace.len(), self.num_samples, "trace length mismatch");
        self.classes.push(class);
        self.samples.extend_from_slice(trace);
    }

    /// Borrow trace `i`.
    pub fn trace(&self, i: usize) -> (&Class, &[f64]) {
        (&self.classes[i], &self.samples[i * self.num_samples..(i + 1) * self.num_samples])
    }

    /// Feed every trace into a [`crate::TvlaResult`].
    pub fn accumulate(&self) -> crate::TvlaResult {
        let mut r = crate::TvlaResult::new(self.num_samples);
        for i in 0..self.len() {
            let (class, t) = self.trace(i);
            match class {
                Class::Fixed => r.fixed.add(t),
                Class::Random => r.random.add(t),
            }
        }
        r
    }

    // ---- CSV ------------------------------------------------------------

    /// Write as CSV: `class,sample0,sample1,…`.
    pub fn write_csv<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = BufWriter::new(w);
        for i in 0..self.len() {
            let (class, t) = self.trace(i);
            let label = match class {
                Class::Fixed => "fixed",
                Class::Random => "random",
            };
            write!(w, "{label}")?;
            for s in t {
                write!(w, ",{s}")?;
            }
            writeln!(w)?;
        }
        w.flush()
    }

    /// Parse CSV written by [`TraceSet::write_csv`] (labels may also be
    /// `0`/`1`). Returns `InvalidData` on ragged rows or bad labels.
    pub fn read_csv<R: Read>(r: R) -> io::Result<Self> {
        let mut set: Option<TraceSet> = None;
        for line in BufReader::new(r).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let label = parts.next().unwrap_or_default().trim();
            let class = match label {
                "fixed" | "0" => Class::Fixed,
                "random" | "1" => Class::Random,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad class label {other:?}"),
                    ))
                }
            };
            let samples: Result<Vec<f64>, _> = parts.map(|p| p.trim().parse::<f64>()).collect();
            let samples = samples.map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let set = set.get_or_insert_with(|| TraceSet::new(samples.len()));
            if samples.len() != set.num_samples {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "ragged row"));
            }
            set.push(class, &samples);
        }
        Ok(set.unwrap_or_default())
    }

    // ---- binary ----------------------------------------------------------

    /// Write the compact `GMT1` binary format.
    pub fn write_binary<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = BufWriter::new(w);
        w.write_all(b"GMT1")?;
        w.write_all(&(self.num_samples as u32).to_le_bytes())?;
        for i in 0..self.len() {
            let (class, t) = self.trace(i);
            w.write_all(&[matches!(class, Class::Random) as u8])?;
            for s in t {
                w.write_all(&s.to_le_bytes())?;
            }
        }
        w.flush()
    }

    /// Read the `GMT1` binary format.
    pub fn read_binary<R: Read>(r: R) -> io::Result<Self> {
        let mut r = BufReader::new(r);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"GMT1" {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let mut len = [0u8; 4];
        r.read_exact(&mut len)?;
        let num_samples = u32::from_le_bytes(len) as usize;
        let mut set = TraceSet::new(num_samples);
        let mut buf = vec![0u8; 1 + 8 * num_samples];
        loop {
            match r.read_exact(&mut buf) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e),
            }
            let class = if buf[0] == 0 { Class::Fixed } else { Class::Random };
            let samples: Vec<f64> = buf[1..]
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunks")))
                .collect();
            set.push(class, &samples);
        }
        Ok(set)
    }

    /// Convenience: save to a path, format chosen by extension
    /// (`.csv` vs anything else = binary).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let f = std::fs::File::create(path)?;
        if path.extension().is_some_and(|e| e == "csv") {
            self.write_csv(f)
        } else {
            self.write_binary(f)
        }
    }

    /// Convenience: load from a path, format by extension.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        let f = std::fs::File::open(path)?;
        if path.extension().is_some_and(|e| e == "csv") {
            Self::read_csv(f)
        } else {
            Self::read_binary(f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> TraceSet {
        let mut s = TraceSet::new(3);
        s.push(Class::Fixed, &[1.0, 2.5, -3.0]);
        s.push(Class::Random, &[0.0, 1e-9, 4.25]);
        s.push(Class::Fixed, &[9.0, -2.0, 0.5]);
        s
    }

    #[test]
    fn csv_roundtrip() {
        let s = sample_set();
        let mut buf = Vec::new();
        s.write_csv(&mut buf).unwrap();
        let back = TraceSet::read_csv(&buf[..]).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn binary_roundtrip() {
        let s = sample_set();
        let mut buf = Vec::new();
        s.write_binary(&mut buf).unwrap();
        let back = TraceSet::read_binary(&buf[..]).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn csv_numeric_labels_accepted() {
        let text = "0,1.0,2.0\n1,3.0,4.0\n";
        let s = TraceSet::read_csv(text.as_bytes()).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.classes, vec![Class::Fixed, Class::Random]);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(TraceSet::read_csv("weird,1.0\n".as_bytes()).is_err());
        assert!(TraceSet::read_csv("fixed,1.0\nrandom,1.0,2.0\n".as_bytes()).is_err());
        assert!(TraceSet::read_binary(&b"NOPE"[..]).is_err());
    }

    #[test]
    fn accumulate_feeds_tvla() {
        let mut s = TraceSet::new(1);
        for i in 0..2_000 {
            let class = if i % 2 == 0 { Class::Fixed } else { Class::Random };
            let v = f64::from(i % 7) + if class == Class::Fixed { 3.0 } else { 0.0 };
            s.push(class, &[v]);
        }
        let r = s.accumulate();
        assert_eq!(r.total_traces(), 2_000);
        assert!(r.max_abs_t1() > 4.5, "mean shift must flag");
    }

    #[test]
    fn save_load_by_extension() {
        let dir = std::env::temp_dir().join("gm_trace_io_test");
        let s = sample_set();
        for name in ["t.csv", "t.gmt"] {
            let path = dir.join(name);
            s.save(&path).unwrap();
            assert_eq!(TraceSet::load(&path).unwrap(), s);
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}
