//! χ²-based leakage detection (Moradi–Richter–Schneider–Standaert).
//!
//! Welch's t-test compares class *means* (and, preprocessed, higher
//! moments one at a time); the χ² test compares the whole per-sample
//! *histograms* of the two classes, catching distributional differences
//! a fixed-order moment test can miss — e.g. multimodal leakage where
//! means and variances coincide. Each sample point gets a contingency
//! table over binned amplitudes; the statistic is reported as the
//! log₁₀(p)-style score used in the leakage-detection literature
//! (−log₁₀ p > 5 ⇔ roughly the ±4.5 t-test bar).

use std::collections::BTreeMap;

/// Per-sample histograms of both TVLA classes.
#[derive(Debug, Clone)]
pub struct Chi2 {
    bin_width: f64,
    /// `hist[class][sample][bin] -> count`.
    hist: [Vec<BTreeMap<i64, u64>>; 2],
    counts: [u64; 2],
}

impl Chi2 {
    /// Accumulator for traces of `len` samples, binning amplitudes at
    /// `bin_width` resolution.
    pub fn new(len: usize, bin_width: f64) -> Self {
        assert!(bin_width > 0.0, "bin width must be positive");
        Chi2 {
            bin_width,
            hist: [vec![BTreeMap::new(); len], vec![BTreeMap::new(); len]],
            counts: [0; 2],
        }
    }

    /// Trace length.
    pub fn len(&self) -> usize {
        self.hist[0].len()
    }

    /// True when no traces have been added.
    pub fn is_empty(&self) -> bool {
        self.counts[0] + self.counts[1] == 0
    }

    /// Add one trace under class 0 (fixed) or 1 (random).
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch or a class index > 1.
    pub fn add(&mut self, class: usize, trace: &[f64]) {
        assert!(class < 2, "two classes");
        assert_eq!(trace.len(), self.len(), "trace length mismatch");
        self.counts[class] += 1;
        for (h, &v) in self.hist[class].iter_mut().zip(trace) {
            let bin = (v / self.bin_width).floor() as i64;
            *h.entry(bin).or_default() += 1;
        }
    }

    /// The χ² statistic and degrees of freedom at sample `i`, after
    /// merging bins with expected count < 5 into their neighbours
    /// (the standard validity rule).
    pub fn statistic(&self, i: usize) -> (f64, usize) {
        // Union of bins.
        let mut bins: Vec<i64> =
            self.hist[0][i].keys().chain(self.hist[1][i].keys()).copied().collect();
        bins.sort_unstable();
        bins.dedup();
        let n0 = self.counts[0] as f64;
        let n1 = self.counts[1] as f64;
        let n = n0 + n1;
        if n0 < 1.0 || n1 < 1.0 || bins.len() < 2 {
            return (0.0, 0);
        }
        // Column totals per (possibly merged) bin.
        let mut cells: Vec<(f64, f64)> = Vec::new();
        let mut acc = (0.0, 0.0);
        for b in bins {
            acc.0 += self.hist[0][i].get(&b).copied().unwrap_or(0) as f64;
            acc.1 += self.hist[1][i].get(&b).copied().unwrap_or(0) as f64;
            let col = acc.0 + acc.1;
            // Expected count in the smaller class for this column.
            if col * n0.min(n1) / n >= 5.0 {
                cells.push(acc);
                acc = (0.0, 0.0);
            }
        }
        if acc != (0.0, 0.0) {
            match cells.last_mut() {
                Some(last) => {
                    last.0 += acc.0;
                    last.1 += acc.1;
                }
                None => cells.push(acc),
            }
        }
        if cells.len() < 2 {
            return (0.0, 0);
        }
        let mut chi2 = 0.0;
        for &(c0, c1) in &cells {
            let col = c0 + c1;
            let e0 = col * n0 / n;
            let e1 = col * n1 / n;
            chi2 += (c0 - e0) * (c0 - e0) / e0 + (c1 - e1) * (c1 - e1) / e1;
        }
        (chi2, cells.len() - 1)
    }

    /// −log₁₀ of the χ² upper-tail p-value at sample `i`.
    pub fn neg_log10_p(&self, i: usize) -> f64 {
        let (x, dof) = self.statistic(i);
        if dof == 0 {
            return 0.0;
        }
        -chi2_sf(x, dof).max(1e-300).log10()
    }

    /// The full −log₁₀(p) curve.
    pub fn curve(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.neg_log10_p(i)).collect()
    }
}

/// Survival function of the χ² distribution with `dof` degrees of
/// freedom: `P(X > x) = Γ(dof/2, x/2) / Γ(dof/2)` (upper regularised
/// incomplete gamma), via the series / continued-fraction split of
/// Numerical Recipes.
pub fn chi2_sf(x: f64, dof: usize) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    let a = dof as f64 / 2.0;
    let x = x / 2.0;
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

// The coefficients are the published Lanczos (g = 7) values verbatim;
// keep them exactly as tabulated rather than to clippy's taste.
#[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
fn ln_gamma(z: f64) -> f64 {
    // Lanczos, g = 7.
    const C: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if z < 0.5 {
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * z).sin().ln()
            - ln_gamma(1.0 - z);
    }
    let z = z - 1.0;
    let mut a = C[0];
    for (i, &c) in C.iter().enumerate().skip(1) {
        a += c / (z + i as f64);
    }
    let t = z + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + a.ln()
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut sum = 1.0 / a;
    let mut term = sum;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn sf_reference_values() {
        // χ²(1): P(X > 3.841) ≈ 0.05; χ²(4): P(X > 9.488) ≈ 0.05.
        assert!((chi2_sf(3.841, 1) - 0.05).abs() < 2e-3);
        assert!((chi2_sf(9.488, 4) - 0.05).abs() < 2e-3);
        assert!((chi2_sf(0.0, 3) - 1.0).abs() < 1e-12);
        assert!(chi2_sf(100.0, 2) < 1e-20);
    }

    #[test]
    fn identical_distributions_stay_quiet() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut c = Chi2::new(1, 0.5);
        for i in 0..20_000 {
            let v = (rng.random::<f64>() * 8.0).round();
            c.add(i % 2, &[v]);
        }
        assert!(c.neg_log10_p(0) < 5.0, "score {}", c.neg_log10_p(0));
    }

    #[test]
    fn mean_shift_detected() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut c = Chi2::new(1, 0.5);
        for i in 0..20_000 {
            let shift = if i % 2 == 0 { 0.6 } else { 0.0 };
            let v = (rng.random::<f64>() * 8.0 + shift).round();
            c.add(i % 2, &[v]);
        }
        assert!(c.neg_log10_p(0) > 5.0, "score {}", c.neg_log10_p(0));
    }

    /// χ²'s selling point: a symmetric *bimodal* difference with matched
    /// mean and variance that a 1st/2nd-order t-test cannot see.
    #[test]
    fn shape_difference_detected_where_t_test_is_blind() {
        use crate::moments::TraceMoments;
        use crate::ttest::{t_first_order, t_second_order};
        let mut rng = SmallRng::seed_from_u64(3);
        let mut chi = Chi2::new(1, 0.5);
        let mut m0 = TraceMoments::new(1);
        let mut m1 = TraceMoments::new(1);
        for i in 0..30_000 {
            let v = if i % 2 == 0 {
                // Class 0: ±1 coin flip (mean 0, var 1).
                if rng.random::<bool>() {
                    1.0
                } else {
                    -1.0
                }
            } else {
                // Class 1: {-sqrt2, 0, +sqrt2} with probs ¼,½,¼
                // (mean 0, var 1, same skew 0 — different shape).
                match rng.random::<u8>() % 4 {
                    0 => -(2.0f64).sqrt(),
                    1 => (2.0f64).sqrt(),
                    _ => 0.0,
                }
            };
            chi.add(i % 2, &[v]);
            if i % 2 == 0 {
                m0.add(&[v]);
            } else {
                m1.add(&[v]);
            }
        }
        assert!(t_first_order(&m0, &m1)[0].abs() < 4.5, "t1 blind");
        assert!(t_second_order(&m0, &m1)[0].abs() < 4.5, "t2 blind");
        assert!(chi.neg_log10_p(0) > 10.0, "chi2 sees it: {}", chi.neg_log10_p(0));
    }

    #[test]
    fn degenerate_inputs() {
        let c = Chi2::new(2, 1.0);
        assert!(c.is_empty());
        assert_eq!(c.statistic(0), (0.0, 0));
        let mut one_sided = Chi2::new(1, 1.0);
        one_sided.add(0, &[1.0]);
        assert_eq!(one_sided.neg_log10_p(0), 0.0);
    }
}
