//! Signal-to-noise ratio over labelled trace partitions.
//!
//! `SNR = Var_label( E[trace | label] ) / E_label( Var[trace | label] )`,
//! the standard metric for how strongly an intermediate value modulates
//! the power consumption. The paper uses replicated parallel gadget
//! instances to raise SNR in its Table I experiments; we use this module
//! to quantify the same effect in simulation.

use crate::moments::TraceMoments;
use std::collections::BTreeMap;

/// Streaming SNR accumulator over an arbitrary label set.
#[derive(Debug, Clone, Default)]
pub struct Snr {
    groups: BTreeMap<u64, TraceMoments>,
    len: Option<usize>,
}

impl Snr {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one trace under `label`.
    pub fn add(&mut self, label: u64, trace: &[f64]) {
        let len = *self.len.get_or_insert(trace.len());
        assert_eq!(trace.len(), len, "trace length mismatch");
        self.groups.entry(label).or_insert_with(|| TraceMoments::new(len)).add(trace);
    }

    /// Number of distinct labels seen.
    pub fn num_labels(&self) -> usize {
        self.groups.len()
    }

    /// Per-sample SNR. Labels with fewer than 2 traces are ignored.
    ///
    /// Returns an empty vector when fewer than two labels qualify.
    pub fn snr(&self) -> Vec<f64> {
        let Some(len) = self.len else {
            return Vec::new();
        };
        let qualified: Vec<&TraceMoments> =
            self.groups.values().filter(|g| g.count() >= 2).collect();
        if qualified.len() < 2 {
            return Vec::new();
        }
        let g = qualified.len() as f64;
        (0..len)
            .map(|i| {
                let mean_of_means = qualified.iter().map(|m| m.mean()[i]).sum::<f64>() / g;
                let var_of_means = qualified
                    .iter()
                    .map(|m| {
                        let d = m.mean()[i] - mean_of_means;
                        d * d
                    })
                    .sum::<f64>()
                    / g;
                let mean_of_vars = qualified.iter().map(|m| m.variance(i)).sum::<f64>() / g;
                if mean_of_vars == 0.0 {
                    if var_of_means == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    var_of_means / mean_of_vars
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn informative_sample_has_higher_snr() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut snr = Snr::new();
        for _ in 0..4_000 {
            let label = rng.random::<u64>() % 2;
            let noise0 = rng.random::<f64>() - 0.5;
            let noise1 = rng.random::<f64>() - 0.5;
            // Sample 0 carries the label, sample 1 is pure noise.
            snr.add(label, &[label as f64 + noise0, noise1]);
        }
        let s = snr.snr();
        assert!(s[0] > 1.0, "signal sample SNR {}", s[0]);
        assert!(s[1] < 0.05, "noise sample SNR {}", s[1]);
    }

    #[test]
    fn replication_raises_snr() {
        // K parallel replicated instances: signal scales with K, noise
        // with sqrt(K) -> SNR scales with K (the paper's Table I trick).
        let mut rng = SmallRng::seed_from_u64(6);
        let gauss = |r: &mut SmallRng| {
            let u1: f64 = r.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = r.random();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let run = |k: usize, rng: &mut SmallRng| {
            let mut snr = Snr::new();
            for _ in 0..4_000 {
                let label = rng.random::<u64>() % 2;
                let mut v = 0.0;
                for _ in 0..k {
                    v += label as f64 * 0.3 + gauss(rng);
                }
                snr.add(label, &[v]);
            }
            snr.snr()[0]
        };
        let s1 = run(1, &mut rng);
        let s8 = run(8, &mut rng);
        assert!(s8 > 3.0 * s1, "8x replication should raise SNR: {s1} -> {s8}");
    }

    #[test]
    fn degenerate_cases() {
        let snr = Snr::new();
        assert!(snr.snr().is_empty(), "no data");
        let mut one = Snr::new();
        one.add(0, &[1.0]);
        one.add(0, &[2.0]);
        assert!(one.snr().is_empty(), "single label");
    }
}
