//! One-pass central-moment accumulation per trace sample point.
//!
//! Higher-order univariate t-tests need central moments up to order `2d`;
//! we track orders 2–6, which covers third-order tests. Updates and merges
//! use Pébay's numerically-stable formulas, so campaigns can stream
//! millions of traces across many threads without a second pass.
//!
//! Two block kernels share the same math: [`TraceMoments::add_block`]
//! consumes row-major trace blocks, [`TraceMoments::add_block64`] consumes
//! the sample-major (lane-major) tiles the bitsliced cycle-model sources
//! produce. Both reduce to one Pébay two-set fold and are bit-identical to
//! each other (see DESIGN.md §2.13).

use std::sync::atomic::{AtomicU8, Ordering};

/// Cached `GM_MOMENTS_WIDE` decision: 0 = undecided, 1 = wide, 2 = scalar.
static MOMENTS_WIDE: AtomicU8 = AtomicU8::new(0);

/// Whether the lane-major statistics kernel is enabled.
///
/// Reads `GM_MOMENTS_WIDE` once: `0`/`off` selects the scalar per-lane
/// demux chain (the pinned reference), anything else — including an unset
/// variable — selects the wide path. The kernel is portable scalar Rust
/// (no SIMD feature gate), so the default is unconditionally on. Both
/// paths are bit-identical by construction; the knob exists so benches and
/// CI can pin either side.
pub fn moments_wide_enabled() -> bool {
    match MOMENTS_WIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = !matches!(
                std::env::var("GM_MOMENTS_WIDE").as_deref(),
                Ok("0") | Ok("off") | Ok("OFF")
            );
            MOMENTS_WIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Force the lane-major kernel on or off, overriding `GM_MOMENTS_WIDE`.
/// Benches use this to time both paths in one process.
pub fn set_moments_wide(enabled: bool) {
    MOMENTS_WIDE.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
}

/// Binomial coefficients C(p, k) for p ≤ 6.
const BINOM: [[f64; 7]; 7] = [
    [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [1.0, 2.0, 1.0, 0.0, 0.0, 0.0, 0.0],
    [1.0, 3.0, 3.0, 1.0, 0.0, 0.0, 0.0],
    [1.0, 4.0, 6.0, 4.0, 1.0, 0.0, 0.0],
    [1.0, 5.0, 10.0, 10.0, 5.0, 1.0, 0.0],
    [1.0, 6.0, 15.0, 20.0, 15.0, 6.0, 1.0],
];

/// Streaming central moments (orders 1–6) for every sample point of a
/// fixed-length trace.
///
/// `central_sum(p)[i]` holds `Σ_j (x_j[i] - mean[i])^p`.
///
/// # Examples
///
/// ```
/// use gm_leakage::TraceMoments;
///
/// let mut m = TraceMoments::new(1);
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     m.add(&[x]);
/// }
/// assert_eq!(m.count(), 4);
/// assert!((m.mean()[0] - 2.5).abs() < 1e-12);
/// assert!((m.variance(0) - 1.25).abs() < 1e-12); // population variance
/// ```
#[derive(Debug, Clone)]
pub struct TraceMoments {
    n: u64,
    mean: Vec<f64>,
    /// m[p-2][i] = central sum of order p at sample i, for p = 2..=6.
    m: [Vec<f64>; 5],
}

impl TraceMoments {
    /// Accumulator for traces of `len` samples.
    pub fn new(len: usize) -> Self {
        TraceMoments { n: 0, mean: vec![0.0; len], m: std::array::from_fn(|_| vec![0.0; len]) }
    }

    /// Number of traces accumulated.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Trace length.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// True when no traces have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Per-sample means.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Central sum `Σ (x - mean)^p` at sample `i`, for `p` in `2..=6`.
    pub fn central_sum(&self, p: usize, i: usize) -> f64 {
        assert!((2..=6).contains(&p), "central sums tracked for p in 2..=6");
        self.m[p - 2][i]
    }

    /// Central moment `CM_p = central_sum(p) / n` at sample `i`.
    pub fn central_moment(&self, p: usize, i: usize) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.central_sum(p, i) / self.n as f64
    }

    /// Population variance at sample `i`.
    pub fn variance(&self, i: usize) -> f64 {
        self.central_moment(2, i)
    }

    /// Accumulate one trace.
    ///
    /// # Panics
    ///
    /// Panics when `trace.len() != self.len()`.
    // Index loops: `i` strides four parallel arrays and `k` walks a
    // triangular slice of BINOM — iterator chains obscure the recurrence.
    #[allow(clippy::needless_range_loop)]
    pub fn add(&mut self, trace: &[f64]) {
        assert_eq!(trace.len(), self.len(), "trace length mismatch");
        self.n += 1;
        let n = self.n as f64;
        if self.n == 1 {
            self.mean.copy_from_slice(trace);
            return;
        }
        let nm1 = n - 1.0;
        for i in 0..trace.len() {
            let delta = trace[i] - self.mean[i];
            let dn = delta / n;
            // A = delta * (n-1)/n ; A^p terms use the "single new point"
            // specialisation of Pébay's formula.
            let a = delta * nm1 / n;
            // Update from highest order down so lower-order sums are still
            // the "old" values when used.
            let neg_inv_nm1 = -1.0 / nm1;
            for p in (2..=6usize).rev() {
                let mut acc = 0.0;
                // Σ_{k=1}^{p-2} C(p,k) · M_{p-k} · (-dn)^k
                let mut ndk = 1.0; // (-dn)^k
                for k in 1..=(p - 2) {
                    ndk *= -dn;
                    acc += BINOM[p][k] * self.m[p - k - 2][i] * ndk;
                }
                // + A^p · (1 - (-1/(n-1))^{p-1})
                let tail = a.powi(p as i32) * (1.0 - neg_inv_nm1.powi(p as i32 - 1));
                self.m[p - 2][i] += acc + tail;
            }
            self.mean[i] += dn;
        }
    }

    /// Merge another accumulator (e.g. from a worker thread).
    ///
    /// # Panics
    ///
    /// Panics on trace-length mismatch.
    pub fn merge(&mut self, other: &TraceMoments) {
        assert_eq!(self.len(), other.len(), "trace length mismatch");
        self.merge_parts(other.n, &other.mean, &other.m);
    }

    /// Overwrite `self` with `src`, reusing existing allocations. The
    /// streaming snapshot publish path calls this once per acquisition
    /// block, so it must not allocate in steady state.
    pub fn copy_from(&mut self, src: &TraceMoments) {
        self.n = src.n;
        self.mean.clone_from(&src.mean);
        for (dst, s) in self.m.iter_mut().zip(src.m.iter()) {
            dst.clone_from(s);
        }
    }

    /// The Pébay two-set combination over raw parts: fold a set of `nb`
    /// traces with per-sample means `mean_b` and central sums `m_b` into
    /// `self`. Shared by [`Self::merge`] and [`Self::add_block`].
    fn merge_parts(&mut self, nb_traces: u64, mean_b: &[f64], m_b: &[Vec<f64>; 5]) {
        if nb_traces == 0 {
            return;
        }
        if self.n == 0 {
            self.n = nb_traces;
            self.mean.copy_from_slice(mean_b);
            for (dst, src) in self.m.iter_mut().zip(m_b) {
                dst.copy_from_slice(src);
            }
            return;
        }
        let na = self.n as f64;
        let nb = nb_traces as f64;
        let n = na + nb;
        for i in 0..self.len() {
            let delta = mean_b[i] - self.mean[i];
            // General two-set combination, orders high to low.
            let mut new_m = [0.0f64; 5];
            for p in 2..=6usize {
                let mut acc = self.m[p - 2][i] + m_b[p - 2][i];
                let mut term_a = 1.0; // (-nb*delta/n)^k
                let mut term_b = 1.0; // ( na*delta/n)^k
                for k in 1..=(p - 2) {
                    term_a *= -nb * delta / n;
                    term_b *= na * delta / n;
                    acc +=
                        BINOM[p][k] * (term_a * self.m[p - k - 2][i] + term_b * m_b[p - k - 2][i]);
                }
                let lead = (na * nb * delta / n).powi(p as i32);
                let tail = lead * (1.0 / nb.powi(p as i32 - 1) - (-1.0 / na).powi(p as i32 - 1));
                new_m[p - 2] = acc + tail;
            }
            self.m.iter_mut().zip(new_m).for_each(|(m, v)| m[i] = v);
            self.mean[i] += nb * delta / n;
        }
        self.n += nb_traces;
    }

    /// Accumulate a block of traces stored contiguously (`block.len()`
    /// must be a multiple of [`Self::len`]).
    ///
    /// Two plain passes over the block — per-sample means, then central
    /// power sums around the block mean — followed by one Pébay two-set
    /// fold ([`Self::merge`]'s math). Unlike per-trace [`Self::add`],
    /// whose order-2–6 update chains through every trace, the block
    /// passes carry no loop dependency across samples and auto-vectorise;
    /// `scratch` makes the path allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when `block.len()` is not a multiple of the trace length or
    /// the scratch was built for a different trace length.
    pub fn add_block(&mut self, block: &[f64], scratch: &mut BlockScratch) {
        let len = self.len();
        assert_eq!(scratch.mean.len(), len, "scratch length mismatch");
        assert_eq!(block.len() % len.max(1), 0, "block is not whole traces");
        if len == 0 || block.is_empty() {
            return;
        }
        let k = block.len() / len;
        if k == 1 {
            // A single trace has zero central sums around its own mean.
            scratch.mean.copy_from_slice(block);
            for m in &mut scratch.m {
                m.fill(0.0);
            }
            self.merge_parts(1, &scratch.mean, &scratch.m);
            return;
        }

        // Pass 1: per-sample block means.
        scratch.mean.fill(0.0);
        for row in block.chunks_exact(len) {
            for (acc, &x) in scratch.mean.iter_mut().zip(row) {
                *acc += x;
            }
        }
        let inv_k = 1.0 / k as f64;
        for acc in &mut scratch.mean {
            *acc *= inv_k;
        }

        // Pass 2: plain central power sums around the block mean.
        for m in &mut scratch.m {
            m.fill(0.0);
        }
        let [m2, m3, m4, m5, m6] = &mut scratch.m;
        for row in block.chunks_exact(len) {
            for i in 0..len {
                let d = row[i] - scratch.mean[i];
                let d2 = d * d;
                let d3 = d2 * d;
                m2[i] += d2;
                m3[i] += d3;
                m4[i] += d2 * d2;
                m5[i] += d2 * d3;
                m6[i] += d3 * d3;
            }
        }
        self.merge_parts(k as u64, &scratch.mean, &scratch.m);
    }

    /// Accumulate a sample-major tile of `rows` traces: sample `i` of
    /// trace `r` lives at `tile[i * stride + r]`. This is the layout the
    /// 64-wide bitsliced sources scatter into directly (`stride` = the
    /// acquisition block's label count), so no per-lane demux or
    /// row-major transpose ever happens.
    ///
    /// Bit-identical to [`Self::add_block`] on the row-major transpose of
    /// the same tile: every per-sample accumulator receives exactly the
    /// same additions in the same (trace-ascending) order, only the loop
    /// nest is interchanged. The inner loops walk contiguous per-sample
    /// runs of the tile; samples are processed four (pass 1) or two
    /// (pass 2) at a time so the serial per-accumulator dependency chains
    /// overlap instead of bounding throughput.
    ///
    /// # Panics
    ///
    /// Panics when `rows > stride`, the tile is too short for
    /// `self.len()` samples at that stride, or the scratch was built for
    /// a different trace length.
    pub fn add_block64(
        &mut self,
        tile: &[f64],
        rows: usize,
        stride: usize,
        scratch: &mut BlockScratch,
    ) {
        let len = self.len();
        assert_eq!(scratch.mean.len(), len, "scratch length mismatch");
        assert!(rows <= stride, "tile rows exceed stride");
        if len == 0 || rows == 0 {
            return;
        }
        assert!(tile.len() >= (len - 1) * stride + rows, "tile too short for {rows}x{len} traces");
        let k = rows;
        if k == 1 {
            // A single trace has zero central sums around its own mean.
            for (i, m) in scratch.mean.iter_mut().enumerate() {
                *m = tile[i * stride];
            }
            for m in &mut scratch.m {
                m.fill(0.0);
            }
            self.merge_parts(1, &scratch.mean, &scratch.m);
            return;
        }

        // Pass 1: per-sample block means, four samples jammed per sweep.
        let inv_k = 1.0 / k as f64;
        let mut i = 0;
        while i + 4 <= len {
            let s0 = &tile[i * stride..][..k];
            let s1 = &tile[(i + 1) * stride..][..k];
            let s2 = &tile[(i + 2) * stride..][..k];
            let s3 = &tile[(i + 3) * stride..][..k];
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for r in 0..k {
                a0 += s0[r];
                a1 += s1[r];
                a2 += s2[r];
                a3 += s3[r];
            }
            scratch.mean[i] = a0 * inv_k;
            scratch.mean[i + 1] = a1 * inv_k;
            scratch.mean[i + 2] = a2 * inv_k;
            scratch.mean[i + 3] = a3 * inv_k;
            i += 4;
        }
        while i < len {
            let s = &tile[i * stride..][..k];
            let mut a = 0.0f64;
            for &x in s {
                a += x;
            }
            scratch.mean[i] = a * inv_k;
            i += 1;
        }

        // Pass 2: central power sums around the block mean, two samples
        // jammed per sweep (ten independent accumulator chains).
        let [m2, m3, m4, m5, m6] = &mut scratch.m;
        let mut i = 0;
        while i + 2 <= len {
            let s0 = &tile[i * stride..][..k];
            let s1 = &tile[(i + 1) * stride..][..k];
            let (mu0, mu1) = (scratch.mean[i], scratch.mean[i + 1]);
            let (mut a2, mut a3, mut a4, mut a5, mut a6) = (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
            let (mut b2, mut b3, mut b4, mut b5, mut b6) = (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for r in 0..k {
                let da = s0[r] - mu0;
                let da2 = da * da;
                let da3 = da2 * da;
                a2 += da2;
                a3 += da3;
                a4 += da2 * da2;
                a5 += da2 * da3;
                a6 += da3 * da3;
                let db = s1[r] - mu1;
                let db2 = db * db;
                let db3 = db2 * db;
                b2 += db2;
                b3 += db3;
                b4 += db2 * db2;
                b5 += db2 * db3;
                b6 += db3 * db3;
            }
            m2[i] = a2;
            m3[i] = a3;
            m4[i] = a4;
            m5[i] = a5;
            m6[i] = a6;
            m2[i + 1] = b2;
            m3[i + 1] = b3;
            m4[i + 1] = b4;
            m5[i + 1] = b5;
            m6[i + 1] = b6;
            i += 2;
        }
        if i < len {
            let s = &tile[i * stride..][..k];
            let mu = scratch.mean[i];
            let (mut a2, mut a3, mut a4, mut a5, mut a6) = (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for &x in s {
                let d = x - mu;
                let d2 = d * d;
                let d3 = d2 * d;
                a2 += d2;
                a3 += d3;
                a4 += d2 * d2;
                a5 += d2 * d3;
                a6 += d3 * d3;
            }
            m2[i] = a2;
            m3[i] = a3;
            m4[i] = a4;
            m5[i] = a5;
            m6[i] = a6;
        }
        self.merge_parts(k as u64, &scratch.mean, &scratch.m);
    }
}

/// Reusable per-block workspace for [`TraceMoments::add_block`]: the
/// block's per-sample means and central power sums.
#[derive(Debug, Clone)]
pub struct BlockScratch {
    mean: Vec<f64>,
    m: [Vec<f64>; 5],
}

impl BlockScratch {
    /// Workspace for traces of `len` samples.
    pub fn new(len: usize) -> Self {
        BlockScratch { mean: vec![0.0; len], m: std::array::from_fn(|_| vec![0.0; len]) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(xs: &[f64]) -> (f64, [f64; 5]) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let mut sums = [0.0; 5];
        for p in 2..=6usize {
            sums[p - 2] = xs.iter().map(|x| (x - mean).powi(p as i32)).sum();
        }
        (mean, sums)
    }

    fn check_against_naive(xs: &[f64], m: &TraceMoments, tol: f64) {
        let (mean, sums) = naive(xs);
        assert!((m.mean()[0] - mean).abs() < tol, "mean {} vs {}", m.mean()[0], mean);
        for p in 2..=6 {
            let got = m.central_sum(p, 0);
            let want = sums[p - 2];
            let scale = want.abs().max(1.0);
            assert!((got - want).abs() / scale < tol, "order {p}: streaming {got} vs naive {want}");
        }
    }

    #[test]
    fn streaming_matches_naive() {
        let xs: Vec<f64> = (0..200).map(|i| ((i * 37 + 11) % 97) as f64 * 0.31 - 7.0).collect();
        let mut m = TraceMoments::new(1);
        for &x in &xs {
            m.add(&[x]);
        }
        check_against_naive(&xs, &m, 1e-9);
    }

    #[test]
    fn merge_matches_single_stream() {
        let xs: Vec<f64> = (0..301).map(|i| ((i * 53 + 5) % 101) as f64 - 50.0).collect();
        let (left, right) = xs.split_at(120);
        let mut a = TraceMoments::new(1);
        let mut b = TraceMoments::new(1);
        left.iter().for_each(|&x| a.add(&[x]));
        right.iter().for_each(|&x| b.add(&[x]));
        a.merge(&b);
        assert_eq!(a.count(), 301);
        check_against_naive(&xs, &a, 1e-9);
    }

    #[test]
    fn merge_into_empty() {
        let mut a = TraceMoments::new(2);
        let mut b = TraceMoments::new(2);
        b.add(&[1.0, 2.0]);
        b.add(&[3.0, 4.0]);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), &[2.0, 3.0]);
    }

    #[test]
    fn multi_sample_points_independent() {
        let mut m = TraceMoments::new(3);
        m.add(&[1.0, 10.0, 100.0]);
        m.add(&[3.0, 10.0, 200.0]);
        assert_eq!(m.mean(), &[2.0, 10.0, 150.0]);
        assert!(m.variance(1).abs() < 1e-12);
        assert!((m.variance(0) - 1.0).abs() < 1e-12);
        assert!((m.variance(2) - 2500.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut m = TraceMoments::new(2);
        m.add(&[1.0]);
    }

    /// Deterministic pseudo-random trace block (no RNG dependency).
    fn toy_block(traces: usize, len: usize, salt: u64) -> Vec<f64> {
        (0..traces * len)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(salt);
                (x >> 11) as f64 / (1u64 << 53) as f64 * 20.0 - 10.0
            })
            .collect()
    }

    #[test]
    fn add_block_matches_scalar_adds() {
        let len = 7;
        for traces in [1usize, 2, 5, 64, 257] {
            let block = toy_block(traces, len, 3);
            let mut scalar = TraceMoments::new(len);
            for row in block.chunks_exact(len) {
                scalar.add(row);
            }
            let mut blocked = TraceMoments::new(len);
            let mut scratch = BlockScratch::new(len);
            blocked.add_block(&block, &mut scratch);
            assert_eq!(blocked.count(), scalar.count());
            for i in 0..len {
                assert!((blocked.mean()[i] - scalar.mean()[i]).abs() < 1e-9);
                for p in 2..=6 {
                    let (a, b) = (blocked.central_sum(p, i), scalar.central_sum(p, i));
                    let scale = b.abs().max(1.0);
                    assert!(
                        ((a - b) / scale).abs() < 1e-9,
                        "{traces} traces, order {p}, sample {i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn add_block_folds_into_running_state() {
        let len = 3;
        let block = toy_block(40, len, 9);
        let (head, tail) = block.split_at(15 * len);
        let mut scalar = TraceMoments::new(len);
        for row in block.chunks_exact(len) {
            scalar.add(row);
        }
        // Mixed scalar + blocked accumulation over the same traces.
        let mut mixed = TraceMoments::new(len);
        let mut scratch = BlockScratch::new(len);
        for row in head.chunks_exact(len) {
            mixed.add(row);
        }
        mixed.add_block(tail, &mut scratch);
        for i in 0..len {
            for p in 2..=6 {
                let (a, b) = (mixed.central_sum(p, i), scalar.central_sum(p, i));
                assert!(((a - b) / b.abs().max(1.0)).abs() < 1e-9, "order {p} sample {i}");
            }
        }
    }

    #[test]
    fn add_block_empty_is_noop() {
        let mut m = TraceMoments::new(4);
        let mut scratch = BlockScratch::new(4);
        m.add_block(&[], &mut scratch);
        assert_eq!(m.count(), 0);
    }

    #[test]
    #[should_panic(expected = "whole traces")]
    fn add_block_partial_trace_panics() {
        let mut m = TraceMoments::new(4);
        let mut scratch = BlockScratch::new(4);
        m.add_block(&[1.0; 6], &mut scratch);
    }

    /// Sample-major transpose of a row-major block, laid out at `stride`
    /// (≥ rows) with poison in the slack so kernels that overread fail.
    fn transpose_tile(block: &[f64], traces: usize, len: usize, stride: usize) -> Vec<f64> {
        let mut tile = vec![f64::NAN; len * stride];
        for (r, row) in block.chunks_exact(len).enumerate() {
            for (i, &x) in row.iter().enumerate() {
                tile[i * stride + r] = x;
            }
        }
        assert_eq!(traces, block.len() / len);
        tile
    }

    /// The lane-major kernel must be BIT-identical to `add_block` on the
    /// transposed data — the acquisition dispatch switches between them at
    /// runtime and campaign results must not depend on the layout.
    #[test]
    fn add_block64_bit_identical_to_add_block() {
        let len = 7;
        for traces in [1usize, 2, 3, 5, 64, 127, 256] {
            for extra in [0usize, 3] {
                let stride = traces + extra;
                let block = toy_block(traces, len, 41);
                let tile = transpose_tile(&block, traces, len, stride);

                let mut rowwise = TraceMoments::new(len);
                let mut srow = BlockScratch::new(len);
                rowwise.add_block(&block, &mut srow);

                let mut lanewise = TraceMoments::new(len);
                let mut slane = BlockScratch::new(len);
                lanewise.add_block64(&tile, traces, stride, &mut slane);

                assert_eq!(lanewise.count(), rowwise.count());
                for i in 0..len {
                    assert_eq!(
                        lanewise.mean()[i].to_bits(),
                        rowwise.mean()[i].to_bits(),
                        "{traces} traces stride {stride}: mean diverges at sample {i}"
                    );
                    for p in 2..=6 {
                        assert_eq!(
                            lanewise.central_sum(p, i).to_bits(),
                            rowwise.central_sum(p, i).to_bits(),
                            "{traces} traces stride {stride}: order {p} diverges at sample {i}"
                        );
                    }
                }
            }
        }
    }

    /// Property-style sweep over random streams: `add_block64` agrees with
    /// per-trace scalar `add` to 1e-9 across shapes and salts (the same
    /// pinning `add_block` gets, one layer removed).
    #[test]
    fn add_block64_matches_scalar_adds() {
        for (traces, len, salt) in [
            (1usize, 1usize, 1u64),
            (2, 1, 2),
            (5, 3, 7),
            (17, 4, 11),
            (64, 7, 13),
            (256, 9, 17),
            (300, 2, 19),
        ] {
            let stride = traces + (salt as usize % 5);
            let block = toy_block(traces, len, salt);
            let tile = transpose_tile(&block, traces, len, stride);
            let mut scalar = TraceMoments::new(len);
            for row in block.chunks_exact(len) {
                scalar.add(row);
            }
            let mut wide = TraceMoments::new(len);
            let mut scratch = BlockScratch::new(len);
            wide.add_block64(&tile, traces, stride, &mut scratch);
            assert_eq!(wide.count(), scalar.count());
            for i in 0..len {
                assert!((wide.mean()[i] - scalar.mean()[i]).abs() < 1e-9);
                for p in 2..=6 {
                    let (a, b) = (wide.central_sum(p, i), scalar.central_sum(p, i));
                    let scale = b.abs().max(1.0);
                    assert!(
                        ((a - b) / scale).abs() < 1e-9,
                        "{traces}x{len} salt {salt}, order {p}, sample {i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn add_block64_folds_into_running_state() {
        let len = 3;
        let block = toy_block(40, len, 9);
        let (head, tail) = block.split_at(15 * len);
        let mut scalar = TraceMoments::new(len);
        for row in block.chunks_exact(len) {
            scalar.add(row);
        }
        let mut mixed = TraceMoments::new(len);
        let mut scratch = BlockScratch::new(len);
        for row in head.chunks_exact(len) {
            mixed.add(row);
        }
        let tile = transpose_tile(tail, 25, len, 25);
        mixed.add_block64(&tile, 25, 25, &mut scratch);
        for i in 0..len {
            for p in 2..=6 {
                let (a, b) = (mixed.central_sum(p, i), scalar.central_sum(p, i));
                assert!(((a - b) / b.abs().max(1.0)).abs() < 1e-9, "order {p} sample {i}");
            }
        }
    }

    #[test]
    fn add_block64_zero_rows_is_noop() {
        let mut m = TraceMoments::new(4);
        let mut scratch = BlockScratch::new(4);
        m.add_block64(&[], 0, 0, &mut scratch);
        assert_eq!(m.count(), 0);
    }

    #[test]
    #[should_panic(expected = "exceed stride")]
    fn add_block64_rows_over_stride_panics() {
        let mut m = TraceMoments::new(2);
        let mut scratch = BlockScratch::new(2);
        m.add_block64(&[1.0; 8], 5, 4, &mut scratch);
    }

    #[test]
    #[should_panic(expected = "tile too short")]
    fn add_block64_short_tile_panics() {
        let mut m = TraceMoments::new(3);
        let mut scratch = BlockScratch::new(3);
        m.add_block64(&[1.0; 7], 4, 4, &mut scratch);
    }

    #[test]
    fn moments_wide_knob_round_trips() {
        let initial = moments_wide_enabled();
        set_moments_wide(false);
        assert!(!moments_wide_enabled());
        set_moments_wide(true);
        assert!(moments_wide_enabled());
        set_moments_wide(initial);
    }
}
