//! Correlation Power Analysis (CPA).
//!
//! TVLA tells you *that* an implementation leaks; CPA shows the leak is
//! *exploitable*: for every key hypothesis, correlate a predicted
//! leakage value (e.g. the Hamming weight of a hypothesised S-box
//! output) against the measured traces — the right hypothesis produces
//! the highest correlation. The workspace uses it to demonstrate key
//! recovery from the PRNG-off DES cores, and its failure against the
//! properly masked ones.
//!
//! The accumulator is one-pass: per trace it ingests the vector of
//! per-hypothesis predictions plus the trace, maintaining the sums
//! needed for Pearson correlation at every (hypothesis, sample) pair.

/// Streaming CPA accumulator.
#[derive(Debug, Clone)]
pub struct Cpa {
    num_hypotheses: usize,
    num_samples: usize,
    n: u64,
    sum_h: Vec<f64>,
    sum_h2: Vec<f64>,
    sum_t: Vec<f64>,
    sum_t2: Vec<f64>,
    /// Row-major `[hypothesis][sample]`.
    sum_ht: Vec<f64>,
}

impl Cpa {
    /// An accumulator for `num_hypotheses` key guesses over traces of
    /// `num_samples` points.
    pub fn new(num_hypotheses: usize, num_samples: usize) -> Self {
        Cpa {
            num_hypotheses,
            num_samples,
            n: 0,
            sum_h: vec![0.0; num_hypotheses],
            sum_h2: vec![0.0; num_hypotheses],
            sum_t: vec![0.0; num_samples],
            sum_t2: vec![0.0; num_samples],
            sum_ht: vec![0.0; num_hypotheses * num_samples],
        }
    }

    /// Number of traces ingested.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Ingest one trace with its per-hypothesis leakage predictions.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn add(&mut self, predictions: &[f64], trace: &[f64]) {
        assert_eq!(predictions.len(), self.num_hypotheses, "prediction count");
        assert_eq!(trace.len(), self.num_samples, "trace length");
        self.n += 1;
        for (k, &h) in predictions.iter().enumerate() {
            self.sum_h[k] += h;
            self.sum_h2[k] += h * h;
            let row = &mut self.sum_ht[k * self.num_samples..(k + 1) * self.num_samples];
            for (acc, &t) in row.iter_mut().zip(trace) {
                *acc += h * t;
            }
        }
        for (i, &t) in trace.iter().enumerate() {
            self.sum_t[i] += t;
            self.sum_t2[i] += t * t;
        }
    }

    /// Pearson correlation for hypothesis `k` at sample `i`.
    pub fn correlation(&self, k: usize, i: usize) -> f64 {
        let n = self.n as f64;
        if self.n < 2 {
            return 0.0;
        }
        let cov = self.sum_ht[k * self.num_samples + i] - self.sum_h[k] * self.sum_t[i] / n;
        let var_h = self.sum_h2[k] - self.sum_h[k] * self.sum_h[k] / n;
        let var_t = self.sum_t2[i] - self.sum_t[i] * self.sum_t[i] / n;
        let denom = (var_h * var_t).sqrt();
        if denom <= 0.0 {
            0.0
        } else {
            cov / denom
        }
    }

    /// Peak *signed* correlation over all samples, per hypothesis.
    ///
    /// Signed, because under a Hamming-weight model the bitwise
    /// *complement* of the right key predicts `b − HW` and is perfectly
    /// anti-correlated: ranking by |ρ| would tie it with the true key.
    /// When the leakage polarity is genuinely unknown, use
    /// [`Cpa::peak_abs_per_hypothesis`] and expect that ambiguity.
    pub fn peak_per_hypothesis(&self) -> Vec<f64> {
        (0..self.num_hypotheses)
            .map(|k| (0..self.num_samples).map(|i| self.correlation(k, i)).fold(f64::MIN, f64::max))
            .collect()
    }

    /// Peak |correlation| over all samples, per hypothesis.
    pub fn peak_abs_per_hypothesis(&self) -> Vec<f64> {
        (0..self.num_hypotheses)
            .map(|k| {
                (0..self.num_samples).map(|i| self.correlation(k, i).abs()).fold(0.0, f64::max)
            })
            .collect()
    }

    /// The winning hypothesis and its peak |correlation|.
    pub fn best(&self) -> (usize, f64) {
        self.peak_per_hypothesis()
            .into_iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one hypothesis")
    }

    /// Ratio between the best and second-best peak — a confidence
    /// measure. Under a Hamming-weight model neighbouring keys correlate
    /// strongly (flipping one of b bits keeps ~1−2/b of the prediction),
    /// so even a decisive win may only reach ~1.1–1.3.
    pub fn distinguishing_ratio(&self) -> f64 {
        let mut peaks = self.peak_per_hypothesis();
        peaks.sort_by(|a, b| b.total_cmp(a));
        if peaks.len() < 2 || peaks[1] == 0.0 {
            f64::INFINITY
        } else {
            peaks[0] / peaks[1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    /// A device leaking HW(x ^ k*) at sample 1; CPA over all k must
    /// recover k*.
    #[test]
    fn recovers_the_key() {
        let k_star = 0x2Au8;
        let mut rng = SmallRng::seed_from_u64(1);
        let mut cpa = Cpa::new(64, 3);
        for _ in 0..2_000 {
            let x: u8 = (rng.random::<u8>()) & 0x3F;
            let leak = f64::from((x ^ k_star).count_ones());
            let noise = rng.random::<f64>() * 2.0;
            let trace = [rng.random::<f64>(), leak + noise, rng.random::<f64>()];
            let preds: Vec<f64> = (0..64).map(|k| f64::from((x ^ k as u8).count_ones())).collect();
            cpa.add(&preds, &trace);
        }
        let (best, peak) = cpa.best();
        assert_eq!(best, usize::from(k_star));
        assert!(peak > 0.8, "peak {peak}");
        assert!(cpa.distinguishing_ratio() > 1.2, "ratio {}", cpa.distinguishing_ratio());
        // The complement key is the |rho| runner-up (anti-correlated).
        let abs = cpa.peak_abs_per_hypothesis();
        assert!((abs[usize::from(!k_star & 0x3F)] - peak).abs() < 0.05);
    }

    /// Pure noise: no hypothesis stands out.
    #[test]
    fn noise_gives_no_winner() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut cpa = Cpa::new(16, 2);
        for _ in 0..4_000 {
            let x: u8 = rng.random::<u8>() & 0xF;
            let trace = [rng.random::<f64>(), rng.random::<f64>()];
            let preds: Vec<f64> = (0..16).map(|k| f64::from((x ^ k as u8).count_ones())).collect();
            cpa.add(&preds, &trace);
        }
        let (_, peak) = cpa.best();
        assert!(peak < 0.1, "no correlation expected: {peak}");
    }

    #[test]
    fn constant_inputs_are_degenerate_not_nan() {
        let mut cpa = Cpa::new(2, 1);
        for _ in 0..10 {
            cpa.add(&[1.0, 2.0], &[5.0]);
        }
        assert_eq!(cpa.correlation(0, 0), 0.0);
        assert_eq!(cpa.correlation(1, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "trace length")]
    fn length_mismatch_panics() {
        let mut cpa = Cpa::new(2, 3);
        cpa.add(&[0.0, 1.0], &[0.0]);
    }
}
