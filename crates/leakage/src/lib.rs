//! # gm-leakage
//!
//! Streaming side-channel leakage assessment: the software equivalent of
//! the paper's measurement-and-analysis pipeline (Section VII).
//!
//! * [`moments`] — numerically-stable one-pass central moments up to order
//!   six (Pébay update/merge formulas), per sample point, mergeable across
//!   threads.
//! * [`ttest`] — Welch's t-test and the univariate higher-order variants of
//!   Schneider & Moradi: order 1 (raw), order 2 (centred squares), order 3
//!   (standardised cubes). The paper reports all three per figure.
//! * [`tvla`] — the non-specific fixed-vs-random TVLA campaign harness:
//!   random class interleaving, multi-threaded acquisition (crossbeam),
//!   checkpointed detection.
//! * [`detect`] — the ±4.5 threshold, the cross-plaintext consistency rule
//!   the paper applies in §VII-A, and a traces-to-detection estimator
//!   (how the paper arrives at "~15 M traces" style statements).
//! * [`snr`] — signal-to-noise ratio over labelled partitions.
//! * [`cpa`] — correlation power analysis, to demonstrate that detected
//!   leaks are *exploitable* (key recovery on the PRNG-off cores).
//! * [`chi2`] — χ² leakage detection: whole-histogram comparison that
//!   catches shape differences fixed-order t-tests are blind to.
//! * [`trace_io`] — CSV / compact-binary trace import & export, so the
//!   pipeline also serves traces captured on real hardware.
//! * [`report`] — ASCII rendering of t-statistic curves and CSV dumps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chi2;
pub mod cpa;
pub mod detect;
pub mod moments;
pub mod report;
pub mod snr;
pub mod trace_io;
pub mod ttest;
pub mod tvla;

pub use chi2::Chi2;
pub use cpa::Cpa;
pub use detect::{first_detection, leaks, THRESHOLD};
pub use moments::{moments_wide_enabled, set_moments_wide, BlockScratch, TraceMoments};
pub use snr::Snr;
pub use trace_io::TraceSet;
pub use ttest::{t_first_order, t_second_order, t_third_order};
pub use tvla::{BlockLayout, Campaign, CampaignObs, Class, TraceSource, TvlaResult, WorkerObs};
