//! Non-specific (fixed-vs-random) TVLA campaign harness.
//!
//! Mirrors the paper's methodology (§VII): per acquisition the device gets
//! either the fixed or a random plaintext, chosen uniformly at random, and
//! per-class trace statistics are accumulated. Acquisition parallelises
//! across threads; every worker owns an independently-forked
//! [`TraceSource`] (its own simulated "device" RNG streams) and the
//! per-class moment accumulators merge at synchronisation points.

use crate::moments::TraceMoments;
use crate::ttest::{t_first_order, t_second_order, t_third_order};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// TVLA trace class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// The fixed plaintext.
    Fixed,
    /// A fresh random plaintext.
    Random,
}

/// A source of power traces for a TVLA campaign.
///
/// Implementors wrap a simulated device (gadget test-bench, masked DES
/// core, …). A source is *stateful*: consecutive calls may share device
/// state, exactly like consecutive acquisitions on a real target.
pub trait TraceSource: Send {
    /// Create an independent copy for worker `stream` (distinct RNG
    /// streams, same circuit).
    fn fork(&self, stream: u64) -> Self
    where
        Self: Sized;

    /// Number of samples per trace.
    fn num_samples(&self) -> usize;

    /// Acquire one trace of the given class into `out`
    /// (`out.len() == self.num_samples()`).
    fn trace(&mut self, class: Class, out: &mut [f64]);
}

/// Accumulated result of a TVLA campaign.
#[derive(Debug, Clone)]
pub struct TvlaResult {
    /// Moments of the fixed class.
    pub fixed: TraceMoments,
    /// Moments of the random class.
    pub random: TraceMoments,
}

impl TvlaResult {
    /// Empty result for traces of `len` samples.
    pub fn new(len: usize) -> Self {
        TvlaResult { fixed: TraceMoments::new(len), random: TraceMoments::new(len) }
    }

    /// Total traces over both classes.
    pub fn total_traces(&self) -> u64 {
        self.fixed.count() + self.random.count()
    }

    /// First-order t curve.
    pub fn t1(&self) -> Vec<f64> {
        t_first_order(&self.fixed, &self.random)
    }

    /// Second-order t curve.
    pub fn t2(&self) -> Vec<f64> {
        t_second_order(&self.fixed, &self.random)
    }

    /// Third-order t curve.
    pub fn t3(&self) -> Vec<f64> {
        t_third_order(&self.fixed, &self.random)
    }

    /// Largest |t| of the first-order curve.
    pub fn max_abs_t1(&self) -> f64 {
        self.t1().iter().fold(0.0, |m, t| m.max(t.abs()))
    }

    /// Merge a partial result (from a worker).
    pub fn merge(&mut self, other: &TvlaResult) {
        self.fixed.merge(&other.fixed);
        self.random.merge(&other.random);
    }
}

/// Campaign configuration.
///
/// # Examples
///
/// ```
/// use gm_leakage::{Campaign, Class, TraceSource};
///
/// // A device that leaks nothing: one flat noisy sample.
/// #[derive(Clone)]
/// struct Quiet(u64);
/// impl TraceSource for Quiet {
///     fn fork(&self, stream: u64) -> Self { Quiet(self.0 ^ stream) }
///     fn num_samples(&self) -> usize { 1 }
///     fn trace(&mut self, _class: Class, out: &mut [f64]) {
///         self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
///         out[0] = (self.0 >> 33) as f64 / 1e9;
///     }
/// }
///
/// let result = Campaign::sequential(2_000, 42).run(&Quiet(7));
/// assert!(result.max_abs_t1() < 4.5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Campaign {
    /// Total number of traces to acquire.
    pub traces: u64,
    /// Worker threads (1 = fully sequential and deterministic).
    pub threads: usize,
    /// Master seed for class selection and source forking.
    pub seed: u64,
}

impl Campaign {
    /// A single-threaded campaign (deterministic trace order).
    pub fn sequential(traces: u64, seed: u64) -> Self {
        Campaign { traces, threads: 1, seed }
    }

    /// A campaign using all available parallelism.
    pub fn parallel(traces: u64, seed: u64) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Campaign { traces, threads, seed }
    }

    /// Run the whole campaign and return the accumulated result.
    pub fn run<S: TraceSource>(&self, source: &S) -> TvlaResult {
        self.run_chunked(source, &[self.traces], |_, _| true)
            .expect("single checkpoint provided")
    }

    /// Run the campaign in chunks, invoking `checkpoint` after every chunk
    /// with the cumulative trace count and result. Returning `false` stops
    /// the campaign early (used by traces-to-detection estimation).
    ///
    /// `chunk_ends` are cumulative trace counts, strictly increasing; the
    /// last entry is the campaign total.
    ///
    /// Returns `None` when `chunk_ends` is empty.
    pub fn run_chunked<S: TraceSource>(
        &self,
        source: &S,
        chunk_ends: &[u64],
        mut checkpoint: impl FnMut(u64, &TvlaResult) -> bool,
    ) -> Option<TvlaResult> {
        if chunk_ends.is_empty() {
            return None;
        }
        let threads = self.threads.max(1);
        let mut workers: Vec<S> = (0..threads).map(|w| source.fork(w as u64)).collect();
        let mut rngs: Vec<SmallRng> = (0..threads)
            .map(|w| SmallRng::seed_from_u64(self.seed ^ 0xa076_1d64_78bd_642fu64.wrapping_mul(w as u64 + 1)))
            .collect();
        let mut result = TvlaResult::new(source.num_samples());
        let mut done = 0u64;

        for &end in chunk_ends {
            assert!(end >= done, "chunk ends must be non-decreasing");
            let todo = end - done;
            if todo > 0 {
                let per = todo / threads as u64;
                let extra = (todo % threads as u64) as usize;
                let num_samples = source.num_samples();

                let partials: Vec<TvlaResult> = crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = workers
                        .iter_mut()
                        .zip(rngs.iter_mut())
                        .enumerate()
                        .map(|(w, (src, rng))| {
                            let quota = per + u64::from(w < extra);
                            scope.spawn(move |_| {
                                let mut local = TvlaResult::new(num_samples);
                                let mut buf = vec![0.0f64; num_samples];
                                for _ in 0..quota {
                                    let class =
                                        if rng.random::<bool>() { Class::Fixed } else { Class::Random };
                                    src.trace(class, &mut buf);
                                    match class {
                                        Class::Fixed => local.fixed.add(&buf),
                                        Class::Random => local.random.add(&buf),
                                    }
                                }
                                local
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
                })
                .expect("scope panicked");

                for p in &partials {
                    result.merge(p);
                }
                done = end;
            }
            if !checkpoint(done, &result) {
                break;
            }
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic device leaking `class` into sample 1 only.
    #[derive(Clone)]
    struct LeakyToy {
        rng: SmallRng,
        leak: f64,
    }

    impl LeakyToy {
        fn new(leak: f64) -> Self {
            LeakyToy { rng: SmallRng::seed_from_u64(99), leak }
        }
    }

    impl TraceSource for LeakyToy {
        fn fork(&self, stream: u64) -> Self {
            LeakyToy { rng: SmallRng::seed_from_u64(stream.wrapping_mul(0x9e37) ^ 7), leak: self.leak }
        }
        fn num_samples(&self) -> usize {
            3
        }
        fn trace(&mut self, class: Class, out: &mut [f64]) {
            let noise = |r: &mut SmallRng| r.random::<f64>() - 0.5;
            out[0] = noise(&mut self.rng);
            out[1] = noise(&mut self.rng)
                + if class == Class::Fixed { self.leak } else { 0.0 };
            out[2] = noise(&mut self.rng);
        }
    }

    #[test]
    fn leak_detected_at_leaky_sample_only() {
        let c = Campaign::sequential(8_000, 1);
        let r = c.run(&LeakyToy::new(0.2));
        let t = r.t1();
        assert!(t[1].abs() > 4.5, "t at leaky sample: {}", t[1]);
        assert!(t[0].abs() < 4.5 && t[2].abs() < 4.5, "clean samples stay clean");
    }

    #[test]
    fn clean_device_passes() {
        let c = Campaign::sequential(8_000, 2);
        let r = c.run(&LeakyToy::new(0.0));
        assert!(r.max_abs_t1() < 4.5);
    }

    #[test]
    fn classes_roughly_balanced() {
        let c = Campaign::sequential(10_000, 3);
        let r = c.run(&LeakyToy::new(0.0));
        let f = r.fixed.count() as f64;
        let n = r.total_traces() as f64;
        assert_eq!(r.total_traces(), 10_000);
        assert!((f / n - 0.5).abs() < 0.05, "fixed fraction {}", f / n);
    }

    #[test]
    fn parallel_equals_more_threads() {
        let seq = Campaign { traces: 6_000, threads: 1, seed: 4 }.run(&LeakyToy::new(0.3));
        let par = Campaign { traces: 6_000, threads: 4, seed: 4 }.run(&LeakyToy::new(0.3));
        // Different trace partitioning, same statistics up to sampling noise.
        assert!(seq.t1()[1].abs() > 4.5);
        assert!(par.t1()[1].abs() > 4.5);
        assert_eq!(par.total_traces(), 6_000);
    }

    #[test]
    fn chunked_checkpoints_cumulative_and_stoppable() {
        let c = Campaign::sequential(10_000, 5);
        let mut seen = Vec::new();
        let r = c
            .run_chunked(&LeakyToy::new(0.5), &[1_000, 2_000, 10_000], |n, res| {
                seen.push((n, res.total_traces()));
                n < 2_000 // stop after the second checkpoint
            })
            .unwrap();
        assert_eq!(seen, vec![(1_000, 1_000), (2_000, 2_000)]);
        assert_eq!(r.total_traces(), 2_000);
    }
}
