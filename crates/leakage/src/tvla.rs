//! Non-specific (fixed-vs-random) TVLA campaign harness.
//!
//! Mirrors the paper's methodology (§VII): per acquisition the device gets
//! either the fixed or a random plaintext, chosen uniformly at random, and
//! per-class trace statistics are accumulated. Acquisition parallelises
//! across threads; every worker owns an independently-forked
//! [`TraceSource`] (its own simulated "device" RNG streams) and the
//! per-class moment accumulators merge at synchronisation points.

use crate::moments::{BlockScratch, TraceMoments};
use crate::ttest::{t_first_order, t_second_order, t_third_order};
use gm_obs::{Counter, LogHist, Report, Stopwatch, Timer, HIST_BUCKETS};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};

/// TVLA trace class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// The fixed plaintext.
    Fixed,
    /// A fresh random plaintext.
    Random,
}

/// Memory layout a [`TraceSource::trace_block`] override fills the class
/// buffers in. The acquisition loop dispatches on this to pick the
/// matching blocked-moments kernel, so lane-major sources never transpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockLayout {
    /// `buf[row * num_samples + sample]` — one contiguous trace per row.
    /// Folded with [`TraceMoments::add_block`].
    RowMajor,
    /// `buf[sample * stride + row]` with `stride = labels.len()` of the
    /// `trace_block` call — sample-major tiles as produced by the
    /// 64-wide bitsliced sources. Folded with
    /// [`TraceMoments::add_block64`]. Buffers sized `labels.len() ×
    /// num_samples` hold either layout, so the capacity contract is
    /// unchanged.
    SampleMajor,
}

/// A source of power traces for a TVLA campaign.
///
/// Implementors wrap a simulated device (gadget test-bench, masked DES
/// core, …). A source is *stateful*: consecutive calls may share device
/// state, exactly like consecutive acquisitions on a real target.
pub trait TraceSource: Send {
    /// Create an independent copy for worker `stream` (distinct RNG
    /// streams, same circuit).
    fn fork(&self, stream: u64) -> Self
    where
        Self: Sized;

    /// Number of samples per trace.
    fn num_samples(&self) -> usize;

    /// Acquire one trace of the given class into `out`
    /// (`out.len() == self.num_samples()`).
    fn trace(&mut self, class: Class, out: &mut [f64]);

    /// Acquire one block of traces: for each label, in order, fill the
    /// next row of that class's buffer (`labels.len() × num_samples`
    /// capacity each). Returns the `(fixed, random)` row counts.
    ///
    /// The default forwards to [`TraceSource::trace`] per label. Sources
    /// that amortise work across many traces (the 64-way bitsliced cycle
    /// model in `gm-des`) override this; an override must consume its
    /// per-trace RNG streams in label order so campaign results stay
    /// bit-identical with the per-trace path.
    fn trace_block(
        &mut self,
        labels: &[Class],
        fixed: &mut [f64],
        random: &mut [f64],
    ) -> (usize, usize) {
        let num_samples = self.num_samples();
        let (mut nf, mut nr) = (0usize, 0usize);
        for &class in labels {
            let (buf, row) = match class {
                Class::Fixed => (&mut *fixed, &mut nf),
                Class::Random => (&mut *random, &mut nr),
            };
            let start = *row * num_samples;
            self.trace(class, &mut buf[start..start + num_samples]);
            *row += 1;
        }
        (nf, nr)
    }

    /// Layout of the buffers [`TraceSource::trace_block`] fills. The
    /// default (and the default `trace_block`) is row-major; a source
    /// returning [`BlockLayout::SampleMajor`] must override `trace_block`
    /// to scatter `buf[sample * labels.len() + row]`.
    fn block_layout(&self) -> BlockLayout {
        BlockLayout::RowMajor
    }

    /// Export source-internal counters (simulator event census, wheel
    /// stats, RNG draw counts, lane utilisation, …) accumulated since the
    /// source was forked. Called once per worker at campaign end; entries
    /// with the same name are *summed* across workers. The default
    /// exports nothing.
    fn obs_report(&self, report: &mut Report) {
        let _ = report;
    }
}

/// Accumulated result of a TVLA campaign.
#[derive(Debug, Clone)]
pub struct TvlaResult {
    /// Moments of the fixed class.
    pub fixed: TraceMoments,
    /// Moments of the random class.
    pub random: TraceMoments,
}

impl TvlaResult {
    /// Empty result for traces of `len` samples.
    pub fn new(len: usize) -> Self {
        TvlaResult { fixed: TraceMoments::new(len), random: TraceMoments::new(len) }
    }

    /// Total traces over both classes.
    pub fn total_traces(&self) -> u64 {
        self.fixed.count() + self.random.count()
    }

    /// First-order t curve.
    pub fn t1(&self) -> Vec<f64> {
        t_first_order(&self.fixed, &self.random)
    }

    /// Second-order t curve.
    pub fn t2(&self) -> Vec<f64> {
        t_second_order(&self.fixed, &self.random)
    }

    /// Third-order t curve.
    pub fn t3(&self) -> Vec<f64> {
        t_third_order(&self.fixed, &self.random)
    }

    /// Largest |t| of the order-`order` curve (1, 2, or 3), computed
    /// sample-by-sample without materialising the curve. Detection
    /// checkpoints call this on every chunk, so it must not allocate.
    ///
    /// # Panics
    ///
    /// Panics when `order` is not 1–3 or either class has < 2 traces.
    pub fn max_abs_t(&self, order: usize) -> f64 {
        crate::ttest::check_pair(&self.fixed, &self.random);
        let t_at = match order {
            1 => crate::ttest::t_first_order_at,
            2 => crate::ttest::t_second_order_at,
            3 => crate::ttest::t_third_order_at,
            _ => panic!("t-test orders 1-3 supported, got {order}"),
        };
        (0..self.fixed.len()).fold(0.0f64, |m, i| m.max(t_at(&self.fixed, &self.random, i).abs()))
    }

    /// Largest |t| of the first-order curve.
    pub fn max_abs_t1(&self) -> f64 {
        self.max_abs_t(1)
    }

    /// Merge a partial result (from a worker).
    pub fn merge(&mut self, other: &TvlaResult) {
        self.fixed.merge(&other.fixed);
        self.random.merge(&other.random);
    }

    /// Overwrite `self` with `other`, reusing allocations. The streaming
    /// snapshot publish path runs this once per acquisition block.
    pub fn copy_from(&mut self, other: &TvlaResult) {
        self.fixed.copy_from(&other.fixed);
        self.random.copy_from(&other.random);
    }
}

/// Campaign configuration.
///
/// # Examples
///
/// ```
/// use gm_leakage::{Campaign, Class, TraceSource};
///
/// // A device that leaks nothing: one flat noisy sample.
/// #[derive(Clone)]
/// struct Quiet(u64);
/// impl TraceSource for Quiet {
///     fn fork(&self, stream: u64) -> Self { Quiet(self.0 ^ stream) }
///     fn num_samples(&self) -> usize { 1 }
///     fn trace(&mut self, _class: Class, out: &mut [f64]) {
///         self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
///         out[0] = (self.0 >> 33) as f64 / 1e9;
///     }
/// }
///
/// let result = Campaign::sequential(2_000, 42).run(&Quiet(7));
/// assert!(result.max_abs_t1() < 4.5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Campaign {
    /// Total number of traces to acquire.
    pub traces: u64,
    /// Worker threads (1 = fully sequential and deterministic).
    pub threads: usize,
    /// Master seed for class selection and source forking.
    pub seed: u64,
}

/// Traces acquired per accumulation block: large enough that the blocked
/// moment passes amortise and auto-vectorise, small enough that the two
/// per-class block buffers stay cache-resident for typical trace lengths.
const BLOCK_TRACES: usize = 256;

/// Seeded per-worker campaign RNG (class labels), stream `w`.
fn worker_rng(seed: u64, w: usize) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ 0xa076_1d64_78bd_642fu64.wrapping_mul(w as u64 + 1))
}

/// What one campaign worker observed about its own acquisition loop.
///
/// Plain data (no live counters): a snapshot taken when the worker
/// retires. Under `obs-off` every field is zero except `worker`.
#[derive(Debug, Clone, Default)]
pub struct WorkerObs {
    /// Worker index (= the source's fork stream).
    pub worker: usize,
    /// Acquisition blocks processed.
    pub blocks: u64,
    /// Traces acquired (fixed + random).
    pub traces: u64,
    /// Fixed-class traces acquired.
    pub traces_fixed: u64,
    /// Random-class traces acquired.
    pub traces_random: u64,
    /// Wall nanoseconds spent acquiring (trace blocks + moment folds).
    pub acquire_ns: u64,
    /// Wall nanoseconds spent waiting for a quota (0 in sequential mode;
    /// the terminal wait before shutdown is not counted).
    pub idle_ns: u64,
    /// Chunks for which this worker received no quota (quota exhausted
    /// by the chunk size before reaching it).
    pub zero_quota_chunks: u64,
    /// Log2 histogram of per-block acquire nanoseconds
    /// ([`gm_obs::bucket_lo`] gives each bucket's lower bound).
    pub block_ns_hist: [u64; HIST_BUCKETS],
}

/// Aggregate observations of one campaign run.
#[derive(Debug, Clone, Default)]
pub struct CampaignObs {
    /// Wall nanoseconds of the whole campaign (0 under `obs-off`).
    pub wall_ns: u64,
    /// Worker pool size (1 = sequential).
    pub threads: usize,
    /// Per-worker snapshots, in worker order.
    pub workers: Vec<WorkerObs>,
    /// Source-internal counters ([`TraceSource::obs_report`]), summed
    /// across workers.
    pub source: Report,
}

impl CampaignObs {
    /// Total acquisition blocks over all workers.
    pub fn total_blocks(&self) -> u64 {
        self.workers.iter().map(|w| w.blocks).sum()
    }

    /// Total traces over all workers.
    pub fn total_traces(&self) -> u64 {
        self.workers.iter().map(|w| w.traces).sum()
    }

    /// Worker balance: min/max acquired traces over workers that were
    /// scheduled at all (1.0 for a perfectly even split, 1.0 when at
    /// most one worker ran, 0.0 with no observations).
    pub fn worker_balance(&self) -> f64 {
        let scheduled: Vec<u64> =
            self.workers.iter().map(|w| w.traces).filter(|&t| t > 0).collect();
        match (scheduled.iter().min(), scheduled.iter().max()) {
            (Some(&min), Some(&max)) if max > 0 => min as f64 / max as f64,
            _ if self.workers.is_empty() => 0.0,
            _ => 1.0,
        }
    }

    /// Flatten the pool aggregates into `pool.*` entries and fold in the
    /// merged source counters.
    pub fn report(&self) -> Report {
        let mut r = Report::new();
        r.set_nonzero("pool.wall_ns", self.wall_ns);
        r.set("pool.workers", self.threads as u64);
        r.set_nonzero("pool.blocks", self.total_blocks());
        r.set_nonzero("pool.traces", self.total_traces());
        r.set_nonzero("pool.acquire_ns", self.workers.iter().map(|w| w.acquire_ns).sum());
        r.set_nonzero("pool.idle_ns", self.workers.iter().map(|w| w.idle_ns).sum());
        r.set_nonzero("pool.zero_quota", self.workers.iter().map(|w| w.zero_quota_chunks).sum());
        r.set_nonzero("pool.balance_pct", (self.worker_balance() * 100.0).round() as u64);
        let mut buckets = [0u64; HIST_BUCKETS];
        for w in &self.workers {
            for (b, &v) in buckets.iter_mut().zip(w.block_ns_hist.iter()) {
                *b += v;
            }
        }
        for (i, &n) in buckets.iter().enumerate() {
            if n != 0 {
                r.set(&format!("pool.block_ns.ge{}", gm_obs::bucket_lo(i)), n);
            }
        }
        r.merge(&self.source);
        r
    }
}

/// Live per-worker counters behind [`WorkerObs`]; compile to ZSTs under
/// `obs-off`.
#[derive(Debug, Default)]
struct WorkerTally {
    blocks: Counter,
    traces: Counter,
    fixed: Counter,
    random: Counter,
    acquire: Stopwatch,
    idle: Stopwatch,
    block_hist: LogHist,
}

impl WorkerTally {
    fn snapshot(&self, worker: usize) -> WorkerObs {
        WorkerObs {
            worker,
            blocks: self.blocks.get(),
            traces: self.traces.get(),
            traces_fixed: self.fixed.get(),
            traces_random: self.random.get(),
            acquire_ns: self.acquire.ns(),
            idle_ns: self.idle.ns(),
            zero_quota_chunks: 0, // tracked by the coordinator
            block_ns_hist: self.block_hist.buckets(),
        }
    }
}

/// Shared state for live convergence streaming: one snapshot slot per
/// worker plus a published-trace watermark and the next cadence target.
///
/// The ordering contract (DESIGN.md §2.12): workers only ever *publish*
/// — a block boundary copies the worker's cumulative accumulator into
/// its slot under `try_lock` (never blocking the hot path; a contended
/// publish is simply skipped and the next block retries) and bumps the
/// watermark. The coordinator *merges on read*: when a publish crosses
/// the cadence target it is notified and folds the slots together in
/// worker-index order. Snapshots are therefore monotone in trace count
/// but may lag the watermark by up to one block per worker; the final
/// emission always comes from the authoritative chunk-merged result, so
/// the last snapshot of a campaign equals the one-shot result exactly.
///
/// Slots hold per-worker *cumulative* results, which is why streaming
/// campaigns run as a single chunk (`run_streamed_observed`).
struct StreamShared {
    slots: Vec<Mutex<TvlaResult>>,
    published: AtomicU64,
    next_target: AtomicU64,
    every: u64,
}

impl StreamShared {
    fn new(threads: usize, num_samples: usize, every: u64) -> Self {
        StreamShared {
            slots: (0..threads).map(|_| Mutex::new(TvlaResult::new(num_samples))).collect(),
            published: AtomicU64::new(0),
            next_target: AtomicU64::new(every),
            every,
        }
    }

    /// Worker-side block-boundary publish of `worker`'s cumulative
    /// result after acquiring `block` more traces. Returns `true` when
    /// this publish crossed the cadence target and the coordinator
    /// should be notified.
    fn publish(&self, worker: usize, block: u64, cumulative: &TvlaResult) -> bool {
        if let Ok(mut slot) = self.slots[worker].try_lock() {
            slot.copy_from(cumulative);
        }
        let total = self.published.fetch_add(block, Ordering::AcqRel) + block;
        let mut target = self.next_target.load(Ordering::Relaxed);
        while target <= total {
            let next = (total / self.every + 1) * self.every;
            match self.next_target.compare_exchange(
                target,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(current) => target = current,
            }
        }
        false
    }

    /// Coordinator-side merge-on-read: fold every worker slot together
    /// in worker-index order.
    fn merged(&self, num_samples: usize) -> TvlaResult {
        let _span = gm_obs::trace::span("tvla.snapshot");
        let mut merged = TvlaResult::new(num_samples);
        for slot in &self.slots {
            merged.merge(&slot.lock().unwrap());
        }
        merged
    }
}

/// Cadence (traces) + sink for live convergence streaming.
type StreamSink<'a> = (u64, &'a mut dyn FnMut(&TvlaResult));

/// Messages workers send the coordinator.
// Partial dwarfs Progress, but one Partial per worker per chunk makes
// the indirection of boxing pure overhead.
#[allow(clippy::large_enum_variant)]
enum WorkerMsg {
    /// A finished quota's partial result.
    Partial(usize, TvlaResult),
    /// A block-boundary publish crossed the progress cadence target.
    Progress,
}

/// Per-worker acquisition workspace: the class-label block, the two
/// contiguous per-class `BLOCK_TRACES × num_samples` buffers, and the
/// blocked-moments scratch. Allocated once per worker; the steady-state
/// acquisition loop allocates nothing.
struct AcquireBufs {
    labels: Vec<Class>,
    fixed: Vec<f64>,
    random: Vec<f64>,
    scratch: BlockScratch,
}

impl AcquireBufs {
    fn new(num_samples: usize) -> Self {
        AcquireBufs {
            labels: Vec::with_capacity(BLOCK_TRACES),
            fixed: vec![0.0; BLOCK_TRACES * num_samples],
            random: vec![0.0; BLOCK_TRACES * num_samples],
            scratch: BlockScratch::new(num_samples),
        }
    }
}

/// Draw `n` class labels, one PRNG word per 64 labels.
fn draw_labels(rng: &mut SmallRng, n: usize, labels: &mut Vec<Class>) {
    labels.clear();
    while labels.len() < n {
        let mut word: u64 = rng.random();
        for _ in 0..(n - labels.len()).min(64) {
            labels.push(if word & 1 == 1 { Class::Fixed } else { Class::Random });
            word >>= 1;
        }
    }
}

/// Acquire `quota` traces block-wise: draw a block of labels, acquire the
/// traces in label order into the per-class buffers, then fold each class
/// buffer into `local` with one blocked-moments update per class. Each
/// block is timed into `tally` (one clock pair per 256 traces; zero cost
/// under `obs-off`) and reported to `on_block` with the cumulative state
/// of `local` — the streaming publish hook (a no-op closure on the
/// non-streaming paths).
#[allow(clippy::too_many_arguments)]
fn acquire_quota<S: TraceSource>(
    src: &mut S,
    rng: &mut SmallRng,
    quota: u64,
    num_samples: usize,
    bufs: &mut AcquireBufs,
    local: &mut TvlaResult,
    tally: &mut WorkerTally,
    mut on_block: impl FnMut(u64, &TvlaResult),
) {
    let _quota_span = gm_obs::trace::span("tvla.quota");
    let mut remaining = quota;
    while remaining > 0 {
        let _block_span = gm_obs::trace::span("tvla.block");
        let n = remaining.min(BLOCK_TRACES as u64) as usize;
        draw_labels(rng, n, &mut bufs.labels);
        let block_timer = Timer::start();
        let (nf, nr) = src.trace_block(&bufs.labels, &mut bufs.fixed, &mut bufs.random);
        match src.block_layout() {
            BlockLayout::RowMajor => {
                local.fixed.add_block(&bufs.fixed[..nf * num_samples], &mut bufs.scratch);
                local.random.add_block(&bufs.random[..nr * num_samples], &mut bufs.scratch);
            }
            BlockLayout::SampleMajor => {
                local.fixed.add_block64(&bufs.fixed, nf, n, &mut bufs.scratch);
                local.random.add_block64(&bufs.random, nr, n, &mut bufs.scratch);
            }
        }
        if gm_obs::ENABLED {
            let ns = block_timer.elapsed_ns();
            tally.acquire.add_ns(ns);
            tally.block_hist.record(ns);
            tally.blocks.inc();
            tally.traces.add(n as u64);
            tally.fixed.add(nf as u64);
            tally.random.add(nr as u64);
        }
        remaining -= n as u64;
        on_block(n as u64, local);
    }
}

impl Campaign {
    /// A single-threaded campaign (deterministic trace order).
    pub fn sequential(traces: u64, seed: u64) -> Self {
        Campaign { traces, threads: 1, seed }
    }

    /// A campaign using all available parallelism.
    pub fn parallel(traces: u64, seed: u64) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Campaign { traces, threads, seed }
    }

    /// Run the whole campaign and return the accumulated result.
    pub fn run<S: TraceSource>(&self, source: &S) -> TvlaResult {
        self.run_observed(source).0
    }

    /// Like [`Campaign::run`], additionally returning what the worker
    /// pool observed about itself ([`CampaignObs`]).
    pub fn run_observed<S: TraceSource>(&self, source: &S) -> (TvlaResult, CampaignObs) {
        self.run_chunked_observed(source, &[self.traces], |_, _| true)
            .expect("single checkpoint provided")
    }

    /// Run the campaign in chunks, invoking `checkpoint` after every chunk
    /// with the cumulative trace count and result. Returning `false` stops
    /// the campaign early (used by traces-to-detection estimation).
    ///
    /// `chunk_ends` are cumulative trace counts, strictly increasing; the
    /// last entry is the campaign total.
    ///
    /// With `threads == 1` the whole campaign runs inline on the caller
    /// thread (deterministic trace order, bit-identical across runs).
    /// Otherwise a pool of persistent workers is spawned once and fed a
    /// quota per chunk over channels — no thread respawn per chunk — and
    /// workers whose quota would be zero are simply not scheduled.
    ///
    /// Returns `None` when `chunk_ends` is empty.
    ///
    /// # Panics
    ///
    /// Panics when `chunk_ends` is not strictly increasing.
    pub fn run_chunked<S: TraceSource>(
        &self,
        source: &S,
        chunk_ends: &[u64],
        checkpoint: impl FnMut(u64, &TvlaResult) -> bool,
    ) -> Option<TvlaResult> {
        self.run_chunked_observed(source, chunk_ends, checkpoint).map(|(result, _)| result)
    }

    /// Like [`Campaign::run_chunked`], additionally returning a
    /// [`CampaignObs`] with per-worker acquisition counts, acquire/idle
    /// wall time, and the merged [`TraceSource::obs_report`] counters.
    ///
    /// The observability is passive: trace order, RNG streams, and the
    /// statistical result are bit-identical with the unobserved entry
    /// points. Under `obs-off` the pool's own observations are all zero
    /// (the source report still carries whatever the source exports
    /// unconditionally).
    pub fn run_chunked_observed<S: TraceSource>(
        &self,
        source: &S,
        chunk_ends: &[u64],
        mut checkpoint: impl FnMut(u64, &TvlaResult) -> bool,
    ) -> Option<(TvlaResult, CampaignObs)> {
        self.run_engine(source, chunk_ends, &mut checkpoint, None)
    }

    /// Run the whole campaign while streaming live convergence
    /// snapshots: `on_progress` is invoked with a merged block-boundary
    /// snapshot roughly every `every` acquired traces, and once more
    /// with the final result.
    pub fn run_streamed<S: TraceSource>(
        &self,
        source: &S,
        every: u64,
        on_progress: impl FnMut(&TvlaResult),
    ) -> TvlaResult {
        self.run_streamed_observed(source, every, on_progress).0
    }

    /// Like [`Campaign::run_streamed`], additionally returning the
    /// [`CampaignObs`] of the run.
    ///
    /// Workers publish their cumulative per-class moments into lock-free
    /// (`try_lock`, never blocking) per-worker slots at block boundaries;
    /// the coordinator merges the slots on read whenever the published
    /// trace count crosses a multiple of `every` — see [`StreamShared`]
    /// for the ordering contract. Snapshot trace counts are monotone
    /// non-decreasing across callbacks, and the final callback receives
    /// the campaign result itself, so the last snapshot is always
    /// *bit-identical* to what [`Campaign::run_observed`] returns for the
    /// same configuration. The statistical result is unaffected by
    /// streaming: trace order and RNG streams are exactly those of the
    /// non-streamed entry points.
    ///
    /// # Panics
    ///
    /// Panics when `every` is 0.
    pub fn run_streamed_observed<S: TraceSource>(
        &self,
        source: &S,
        every: u64,
        mut on_progress: impl FnMut(&TvlaResult),
    ) -> (TvlaResult, CampaignObs) {
        assert!(every > 0, "progress cadence must be positive");
        self.run_engine(source, &[self.traces], &mut |_, _| true, Some((every, &mut on_progress)))
            .expect("single chunk provided")
    }

    /// The shared campaign engine behind the chunked and streamed entry
    /// points. `stream` carries the progress cadence and sink when live
    /// convergence streaming is on (single-chunk campaigns only).
    fn run_engine<S: TraceSource>(
        &self,
        source: &S,
        chunk_ends: &[u64],
        checkpoint: &mut dyn FnMut(u64, &TvlaResult) -> bool,
        mut stream: Option<StreamSink<'_>>,
    ) -> Option<(TvlaResult, CampaignObs)> {
        if chunk_ends.is_empty() {
            return None;
        }
        debug_assert!(
            stream.is_none() || chunk_ends.len() == 1,
            "streaming campaigns run as a single chunk"
        );
        let wall = Timer::start();
        let threads = self.threads.max(1);
        let num_samples = source.num_samples();
        let mut result = TvlaResult::new(num_samples);
        let mut done = 0u64;

        if threads == 1 {
            let mut src = source.fork(0);
            let mut rng = worker_rng(self.seed, 0);
            let mut bufs = AcquireBufs::new(num_samples);
            let mut tally = WorkerTally::default();
            // Inline streaming: the caller-thread accumulator *is* the
            // campaign state, so snapshots come straight from it at
            // cadence-crossing block boundaries.
            let mut next_target = stream.as_ref().map(|&(every, _)| every);
            let mut last_emitted = u64::MAX;
            for &end in chunk_ends {
                assert!(end > done, "chunk ends must be strictly increasing");
                acquire_quota(
                    &mut src,
                    &mut rng,
                    end - done,
                    num_samples,
                    &mut bufs,
                    &mut result,
                    &mut tally,
                    |_, cumulative| {
                        if let (Some(target), Some((every, on_progress))) =
                            (next_target.as_mut(), stream.as_mut())
                        {
                            let total = cumulative.total_traces();
                            if total >= *target {
                                *target = (total / *every + 1) * *every;
                                last_emitted = total;
                                on_progress(cumulative);
                            }
                        }
                    },
                );
                done = end;
                if !checkpoint(done, &result) {
                    break;
                }
            }
            if let Some((_, on_progress)) = stream.as_mut() {
                if last_emitted != result.total_traces() {
                    on_progress(&result);
                }
            }
            let mut obs = CampaignObs {
                wall_ns: wall.elapsed_ns(),
                threads: 1,
                workers: vec![tally.snapshot(0)],
                source: Report::new(),
            };
            src.obs_report(&mut obs.source);
            return Some((result, obs));
        }

        let stream_shared =
            stream.as_ref().map(|&(every, _)| StreamShared::new(threads, num_samples, every));

        std::thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::channel::<WorkerMsg>();
            let (obs_tx, obs_rx) = mpsc::channel::<(usize, WorkerObs, Report)>();
            // One persistent worker per thread, fed per-chunk quotas over
            // its own order channel; partial results come back on the
            // shared result channel, and each worker's observations on the
            // obs channel when its order channel closes.
            let order_txs: Vec<mpsc::Sender<u64>> = (0..threads)
                .map(|w| {
                    let (order_tx, order_rx) = mpsc::channel::<u64>();
                    let mut src = source.fork(w as u64);
                    let mut rng = worker_rng(self.seed, w);
                    let res_tx = res_tx.clone();
                    let obs_tx = obs_tx.clone();
                    let shared = stream_shared.as_ref();
                    scope.spawn(move || {
                        let mut bufs = AcquireBufs::new(num_samples);
                        let mut tally = WorkerTally::default();
                        loop {
                            // Time the quota wait as idle; the terminal
                            // wait (channel closed) is not counted.
                            let wait = Timer::start();
                            let Ok(quota) = order_rx.recv() else { break };
                            tally.idle.add_ns(wait.elapsed_ns());
                            let mut local = TvlaResult::new(num_samples);
                            acquire_quota(
                                &mut src,
                                &mut rng,
                                quota,
                                num_samples,
                                &mut bufs,
                                &mut local,
                                &mut tally,
                                |block, cumulative| {
                                    if let Some(shared) = shared {
                                        if shared.publish(w, block, cumulative) {
                                            let _ = res_tx.send(WorkerMsg::Progress);
                                        }
                                    }
                                },
                            );
                            if res_tx.send(WorkerMsg::Partial(w, local)).is_err() {
                                break;
                            }
                        }
                        let mut src_report = Report::new();
                        src.obs_report(&mut src_report);
                        let _ = obs_tx.send((w, tally.snapshot(w), src_report));
                    });
                    order_tx
                })
                .collect();
            drop(res_tx);
            drop(obs_tx);

            let mut zero_quota = vec![0u64; threads];
            let mut last_emitted = u64::MAX;
            for &end in chunk_ends {
                assert!(end > done, "chunk ends must be strictly increasing");
                let todo = end - done;
                let per = todo / threads as u64;
                let extra = (todo % threads as u64) as usize;
                let mut outstanding = 0usize;
                for (w, order_tx) in order_txs.iter().enumerate() {
                    let quota = per + u64::from(w < extra);
                    if quota > 0 {
                        order_tx.send(quota).expect("worker alive");
                        outstanding += 1;
                    } else if gm_obs::ENABLED {
                        zero_quota[w] += 1;
                    }
                }
                // Partials arrive in scheduler-dependent completion
                // order; merging them as they land would reorder the
                // floating-point moment sums and move the campaign
                // result by a few ULPs between identical runs. Sorting
                // by worker index first makes the whole parallel
                // campaign a pure function of (seed, traces, threads) —
                // the reproducibility `bench_gate` asserts at scale.
                // Progress notifications interleave with the partials on
                // the same channel and are handled here, on the
                // coordinator thread, by merging the published slots on
                // read — the acquisition hot path never waits for them.
                let mut partials: Vec<(usize, TvlaResult)> = Vec::with_capacity(outstanding);
                while partials.len() < outstanding {
                    match res_rx.recv().expect("worker panicked") {
                        WorkerMsg::Partial(w, local) => partials.push((w, local)),
                        WorkerMsg::Progress => {
                            if let (Some(shared), Some((_, on_progress))) =
                                (stream_shared.as_ref(), stream.as_mut())
                            {
                                let snapshot = shared.merged(num_samples);
                                last_emitted = snapshot.total_traces();
                                on_progress(&snapshot);
                            }
                        }
                    }
                }
                partials.sort_by_key(|&(w, _)| w);
                {
                    let _span = gm_obs::trace::span("tvla.merge");
                    for (_, partial) in &partials {
                        result.merge(partial);
                    }
                }
                done = end;
                if !checkpoint(done, &result) {
                    break;
                }
            }
            // Final emission from the authoritative chunk-merged result:
            // the last snapshot a streaming campaign delivers is exactly
            // the result the campaign returns.
            if let Some((_, on_progress)) = stream.as_mut() {
                if last_emitted != result.total_traces() {
                    on_progress(&result);
                }
            }
            // Dropping the order channels ends the workers' receive loops;
            // each worker then reports its observations and the scope
            // joins them on exit.
            drop(order_txs);
            let mut workers: Vec<WorkerObs> = Vec::with_capacity(threads);
            let mut source_report = Report::new();
            for _ in 0..threads {
                let (w, mut wobs, src_report) = obs_rx.recv().expect("worker observations");
                wobs.zero_quota_chunks = zero_quota[w];
                source_report.merge(&src_report);
                workers.push(wobs);
            }
            workers.sort_by_key(|w| w.worker);
            let obs =
                CampaignObs { wall_ns: wall.elapsed_ns(), threads, workers, source: source_report };
            Some((result, obs))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic device leaking `class` into sample 1 only.
    #[derive(Clone)]
    struct LeakyToy {
        rng: SmallRng,
        leak: f64,
    }

    impl LeakyToy {
        fn new(leak: f64) -> Self {
            LeakyToy { rng: SmallRng::seed_from_u64(99), leak }
        }
    }

    impl TraceSource for LeakyToy {
        fn fork(&self, stream: u64) -> Self {
            LeakyToy {
                rng: SmallRng::seed_from_u64(stream.wrapping_mul(0x9e37) ^ 7),
                leak: self.leak,
            }
        }
        fn num_samples(&self) -> usize {
            3
        }
        fn trace(&mut self, class: Class, out: &mut [f64]) {
            let noise = |r: &mut SmallRng| r.random::<f64>() - 0.5;
            out[0] = noise(&mut self.rng);
            out[1] = noise(&mut self.rng) + if class == Class::Fixed { self.leak } else { 0.0 };
            out[2] = noise(&mut self.rng);
        }
    }

    #[test]
    fn leak_detected_at_leaky_sample_only() {
        let c = Campaign::sequential(8_000, 1);
        let r = c.run(&LeakyToy::new(0.2));
        let t = r.t1();
        assert!(t[1].abs() > 4.5, "t at leaky sample: {}", t[1]);
        assert!(t[0].abs() < 4.5 && t[2].abs() < 4.5, "clean samples stay clean");
    }

    #[test]
    fn clean_device_passes() {
        let c = Campaign::sequential(8_000, 2);
        let r = c.run(&LeakyToy::new(0.0));
        assert!(r.max_abs_t1() < 4.5);
    }

    #[test]
    fn classes_roughly_balanced() {
        let c = Campaign::sequential(10_000, 3);
        let r = c.run(&LeakyToy::new(0.0));
        let f = r.fixed.count() as f64;
        let n = r.total_traces() as f64;
        assert_eq!(r.total_traces(), 10_000);
        assert!((f / n - 0.5).abs() < 0.05, "fixed fraction {}", f / n);
    }

    #[test]
    fn parallel_equals_more_threads() {
        let seq = Campaign { traces: 6_000, threads: 1, seed: 4 }.run(&LeakyToy::new(0.3));
        let par = Campaign { traces: 6_000, threads: 4, seed: 4 }.run(&LeakyToy::new(0.3));
        // Different trace partitioning, same statistics up to sampling noise.
        assert!(seq.t1()[1].abs() > 4.5);
        assert!(par.t1()[1].abs() > 4.5);
        assert_eq!(par.total_traces(), 6_000);
    }

    /// `Campaign { threads: 1 }` must be bit-identical across runs.
    #[test]
    fn sequential_campaign_deterministic_across_runs() {
        let c = Campaign::sequential(4_000, 11);
        let a = c.run(&LeakyToy::new(0.1));
        let b = c.run(&LeakyToy::new(0.1));
        assert_eq!(a.fixed.count(), b.fixed.count());
        assert_eq!(a.t1(), b.t1());
        assert_eq!(a.t2(), b.t2());
        assert_eq!(a.t3(), b.t3());
    }

    /// The blocked accumulation path must agree with a per-trace scalar
    /// reference (same acquisition order, `TraceMoments::add`) to 1e-9
    /// relative on all order-1..3 t-statistics.
    #[test]
    fn blocked_accumulation_matches_scalar_reference() {
        let traces = 10_000u64;
        let seed = 21u64;
        let blocked = Campaign::sequential(traces, seed).run(&LeakyToy::new(0.15));

        // Reconstruct the sequential path's acquisition order exactly,
        // accumulating one trace at a time.
        let mut src = LeakyToy::new(0.15).fork(0);
        let mut rng = worker_rng(seed, 0);
        let mut labels = Vec::new();
        let mut scalar = TvlaResult::new(3);
        let mut buf = vec![0.0f64; 3];
        let mut remaining = traces;
        while remaining > 0 {
            let n = remaining.min(BLOCK_TRACES as u64) as usize;
            draw_labels(&mut rng, n, &mut labels);
            for &class in &labels {
                src.trace(class, &mut buf);
                match class {
                    Class::Fixed => scalar.fixed.add(&buf),
                    Class::Random => scalar.random.add(&buf),
                }
            }
            remaining -= n as u64;
        }

        assert_eq!(blocked.fixed.count(), scalar.fixed.count());
        assert_eq!(blocked.random.count(), scalar.random.count());
        for order in 1..=3usize {
            for i in 0..3 {
                let (a, b) = match order {
                    1 => (
                        t_first_order(&blocked.fixed, &blocked.random)[i],
                        t_first_order(&scalar.fixed, &scalar.random)[i],
                    ),
                    2 => (
                        t_second_order(&blocked.fixed, &blocked.random)[i],
                        t_second_order(&scalar.fixed, &scalar.random)[i],
                    ),
                    _ => (
                        t_third_order(&blocked.fixed, &blocked.random)[i],
                        t_third_order(&scalar.fixed, &scalar.random)[i],
                    ),
                };
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                    "order {order} sample {i}: blocked {a} vs scalar {b}"
                );
            }
        }
    }

    /// More workers than traces: zero-quota workers are not scheduled and
    /// the campaign still delivers every trace.
    #[test]
    fn more_threads_than_traces() {
        let c = Campaign { traces: 3, threads: 8, seed: 13 };
        let r = c.run(&LeakyToy::new(0.0));
        assert_eq!(r.total_traces(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn equal_chunk_ends_panic() {
        let c = Campaign::sequential(100, 1);
        let _ = c.run_chunked(&LeakyToy::new(0.0), &[50, 50, 100], |_, _| true);
    }

    /// A toy that also exports a source-side counter (plain `u64`, so it
    /// reports in every configuration — like a real source would with
    /// `gm_obs::Counter` it would read zero under `obs-off`).
    #[derive(Clone)]
    struct CountingToy {
        inner: LeakyToy,
        acquired: u64,
    }

    impl TraceSource for CountingToy {
        fn fork(&self, stream: u64) -> Self {
            CountingToy { inner: self.inner.fork(stream), acquired: 0 }
        }
        fn num_samples(&self) -> usize {
            self.inner.num_samples()
        }
        fn trace(&mut self, class: Class, out: &mut [f64]) {
            self.acquired += 1;
            self.inner.trace(class, out);
        }
        fn obs_report(&self, report: &mut Report) {
            report.add("toy.traces", self.acquired);
        }
    }

    #[test]
    fn observed_sequential_counts_reconcile() {
        let c = Campaign::sequential(1_000, 6);
        let (r, obs) = c.run_observed(&LeakyToy::new(0.0));
        assert_eq!(r.total_traces(), 1_000);
        assert_eq!(obs.threads, 1);
        assert_eq!(obs.workers.len(), 1);
        if gm_obs::ENABLED {
            assert_eq!(obs.total_traces(), 1_000);
            assert_eq!(obs.workers[0].traces_fixed, r.fixed.count());
            assert_eq!(obs.workers[0].traces_random, r.random.count());
            assert_eq!(obs.total_blocks(), 1_000u64.div_ceil(BLOCK_TRACES as u64));
            assert!(obs.wall_ns > 0);
            assert!(obs.workers[0].acquire_ns <= obs.wall_ns);
            assert_eq!(obs.workers[0].idle_ns, 0, "sequential mode never waits");
            assert_eq!(obs.workers[0].block_ns_hist.iter().sum::<u64>(), obs.total_blocks());
            assert!((obs.worker_balance() - 1.0).abs() < 1e-12);
        } else {
            assert_eq!(obs.total_traces(), 0);
            assert_eq!(obs.wall_ns, 0);
        }
    }

    #[test]
    fn observed_result_identical_to_unobserved() {
        let c = Campaign::sequential(2_000, 17);
        let plain = c.run(&LeakyToy::new(0.2));
        let (observed, _) = c.run_observed(&LeakyToy::new(0.2));
        assert_eq!(plain.fixed.count(), observed.fixed.count());
        assert_eq!(plain.t1(), observed.t1());
    }

    #[test]
    fn observed_parallel_merges_worker_and_source_reports() {
        let c = Campaign { traces: 5_000, threads: 4, seed: 8 };
        let toy = CountingToy { inner: LeakyToy::new(0.0), acquired: 0 };
        let (r, obs) = c.run_observed(&toy);
        assert_eq!(r.total_traces(), 5_000);
        assert_eq!(obs.threads, 4);
        let ids: Vec<usize> = obs.workers.iter().map(|w| w.worker).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "snapshots in worker order");
        assert_eq!(obs.source.get("toy.traces"), Some(5_000), "source counters sum over workers");
        if gm_obs::ENABLED {
            assert_eq!(obs.total_traces(), 5_000);
            assert_eq!(obs.workers.iter().map(|w| w.traces_fixed).sum::<u64>(), r.fixed.count());
            assert!(obs.worker_balance() > 0.9, "even split expected: {}", obs.worker_balance());
            let report = obs.report();
            assert_eq!(report.get("pool.traces"), Some(5_000));
            assert_eq!(report.get("pool.workers"), Some(4));
            assert_eq!(report.get("toy.traces"), Some(5_000));
            assert!(report.get("pool.wall_ns").is_some());
        }
    }

    #[test]
    fn observed_zero_quota_chunks_counted() {
        // 3 traces over 8 workers: workers 3..8 receive no quota.
        let c = Campaign { traces: 3, threads: 8, seed: 13 };
        let (r, obs) = c.run_observed(&LeakyToy::new(0.0));
        assert_eq!(r.total_traces(), 3);
        assert_eq!(obs.workers.len(), 8);
        if gm_obs::ENABLED {
            let zero: u64 = obs.workers.iter().map(|w| w.zero_quota_chunks).sum();
            assert_eq!(zero, 5);
            assert_eq!(obs.worker_balance(), 1.0, "unscheduled workers don't count");
        }
    }

    /// Sequential streaming: snapshot counts are monotone, cross every
    /// cadence multiple, and the final snapshot is bit-identical to the
    /// one-shot campaign result.
    #[test]
    fn streamed_sequential_matches_one_shot() {
        let c = Campaign::sequential(4_000, 23);
        let mut counts = Vec::new();
        let mut final_t1 = Vec::new();
        let r = c.run_streamed(&LeakyToy::new(0.2), 200, |snap| {
            counts.push(snap.total_traces());
            if snap.fixed.count() >= 2 && snap.random.count() >= 2 {
                final_t1 = snap.t1();
            }
        });
        let one_shot = c.run(&LeakyToy::new(0.2));
        assert!(counts.len() >= 10, "4000 traces / 256-blocks at cadence 200: {counts:?}");
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "monotone counts: {counts:?}");
        assert_eq!(*counts.last().unwrap(), 4_000);
        assert_eq!(final_t1, one_shot.t1(), "final snapshot bit-equal to one-shot");
        assert_eq!(r.t1(), one_shot.t1(), "streaming does not perturb the result");
    }

    /// Parallel streaming: same contract with merge-on-read snapshots.
    #[test]
    fn streamed_parallel_matches_one_shot() {
        let c = Campaign { traces: 6_000, threads: 4, seed: 29 };
        let mut counts = Vec::new();
        let r = c.run_streamed(&LeakyToy::new(0.2), 500, |snap| {
            counts.push(snap.total_traces());
        });
        let one_shot = c.run(&LeakyToy::new(0.2));
        assert!(!counts.is_empty());
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "monotone counts: {counts:?}");
        assert_eq!(*counts.last().unwrap(), 6_000, "final snapshot covers every trace");
        assert_eq!(r.t1(), one_shot.t1(), "streaming does not perturb the result");
        assert_eq!(r.fixed.count(), one_shot.fixed.count());
    }

    #[test]
    #[should_panic(expected = "progress cadence must be positive")]
    fn zero_cadence_panics() {
        let c = Campaign::sequential(100, 1);
        let _ = c.run_streamed(&LeakyToy::new(0.0), 0, |_| {});
    }

    #[test]
    fn chunked_checkpoints_cumulative_and_stoppable() {
        let c = Campaign::sequential(10_000, 5);
        let mut seen = Vec::new();
        let r = c
            .run_chunked(&LeakyToy::new(0.5), &[1_000, 2_000, 10_000], |n, res| {
                seen.push((n, res.total_traces()));
                n < 2_000 // stop after the second checkpoint
            })
            .unwrap();
        assert_eq!(seen, vec![(1_000, 1_000), (2_000, 2_000)]);
        assert_eq!(r.total_traces(), 2_000);
    }
}
