//! Non-specific (fixed-vs-random) TVLA campaign harness.
//!
//! Mirrors the paper's methodology (§VII): per acquisition the device gets
//! either the fixed or a random plaintext, chosen uniformly at random, and
//! per-class trace statistics are accumulated. Acquisition parallelises
//! across threads; every worker owns an independently-forked
//! [`TraceSource`] (its own simulated "device" RNG streams) and the
//! per-class moment accumulators merge at synchronisation points.

use crate::moments::{BlockScratch, TraceMoments};
use crate::ttest::{t_first_order, t_second_order, t_third_order};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::mpsc;

/// TVLA trace class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// The fixed plaintext.
    Fixed,
    /// A fresh random plaintext.
    Random,
}

/// A source of power traces for a TVLA campaign.
///
/// Implementors wrap a simulated device (gadget test-bench, masked DES
/// core, …). A source is *stateful*: consecutive calls may share device
/// state, exactly like consecutive acquisitions on a real target.
pub trait TraceSource: Send {
    /// Create an independent copy for worker `stream` (distinct RNG
    /// streams, same circuit).
    fn fork(&self, stream: u64) -> Self
    where
        Self: Sized;

    /// Number of samples per trace.
    fn num_samples(&self) -> usize;

    /// Acquire one trace of the given class into `out`
    /// (`out.len() == self.num_samples()`).
    fn trace(&mut self, class: Class, out: &mut [f64]);

    /// Acquire one block of traces: for each label, in order, fill the
    /// next row of that class's buffer (`labels.len() × num_samples`
    /// capacity each). Returns the `(fixed, random)` row counts.
    ///
    /// The default forwards to [`TraceSource::trace`] per label. Sources
    /// that amortise work across many traces (the 64-way bitsliced cycle
    /// model in `gm-des`) override this; an override must consume its
    /// per-trace RNG streams in label order so campaign results stay
    /// bit-identical with the per-trace path.
    fn trace_block(
        &mut self,
        labels: &[Class],
        fixed: &mut [f64],
        random: &mut [f64],
    ) -> (usize, usize) {
        let num_samples = self.num_samples();
        let (mut nf, mut nr) = (0usize, 0usize);
        for &class in labels {
            let (buf, row) = match class {
                Class::Fixed => (&mut *fixed, &mut nf),
                Class::Random => (&mut *random, &mut nr),
            };
            let start = *row * num_samples;
            self.trace(class, &mut buf[start..start + num_samples]);
            *row += 1;
        }
        (nf, nr)
    }
}

/// Accumulated result of a TVLA campaign.
#[derive(Debug, Clone)]
pub struct TvlaResult {
    /// Moments of the fixed class.
    pub fixed: TraceMoments,
    /// Moments of the random class.
    pub random: TraceMoments,
}

impl TvlaResult {
    /// Empty result for traces of `len` samples.
    pub fn new(len: usize) -> Self {
        TvlaResult { fixed: TraceMoments::new(len), random: TraceMoments::new(len) }
    }

    /// Total traces over both classes.
    pub fn total_traces(&self) -> u64 {
        self.fixed.count() + self.random.count()
    }

    /// First-order t curve.
    pub fn t1(&self) -> Vec<f64> {
        t_first_order(&self.fixed, &self.random)
    }

    /// Second-order t curve.
    pub fn t2(&self) -> Vec<f64> {
        t_second_order(&self.fixed, &self.random)
    }

    /// Third-order t curve.
    pub fn t3(&self) -> Vec<f64> {
        t_third_order(&self.fixed, &self.random)
    }

    /// Largest |t| of the order-`order` curve (1, 2, or 3), computed
    /// sample-by-sample without materialising the curve. Detection
    /// checkpoints call this on every chunk, so it must not allocate.
    ///
    /// # Panics
    ///
    /// Panics when `order` is not 1–3 or either class has < 2 traces.
    pub fn max_abs_t(&self, order: usize) -> f64 {
        crate::ttest::check_pair(&self.fixed, &self.random);
        let t_at = match order {
            1 => crate::ttest::t_first_order_at,
            2 => crate::ttest::t_second_order_at,
            3 => crate::ttest::t_third_order_at,
            _ => panic!("t-test orders 1-3 supported, got {order}"),
        };
        (0..self.fixed.len()).fold(0.0f64, |m, i| m.max(t_at(&self.fixed, &self.random, i).abs()))
    }

    /// Largest |t| of the first-order curve.
    pub fn max_abs_t1(&self) -> f64 {
        self.max_abs_t(1)
    }

    /// Merge a partial result (from a worker).
    pub fn merge(&mut self, other: &TvlaResult) {
        self.fixed.merge(&other.fixed);
        self.random.merge(&other.random);
    }
}

/// Campaign configuration.
///
/// # Examples
///
/// ```
/// use gm_leakage::{Campaign, Class, TraceSource};
///
/// // A device that leaks nothing: one flat noisy sample.
/// #[derive(Clone)]
/// struct Quiet(u64);
/// impl TraceSource for Quiet {
///     fn fork(&self, stream: u64) -> Self { Quiet(self.0 ^ stream) }
///     fn num_samples(&self) -> usize { 1 }
///     fn trace(&mut self, _class: Class, out: &mut [f64]) {
///         self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
///         out[0] = (self.0 >> 33) as f64 / 1e9;
///     }
/// }
///
/// let result = Campaign::sequential(2_000, 42).run(&Quiet(7));
/// assert!(result.max_abs_t1() < 4.5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Campaign {
    /// Total number of traces to acquire.
    pub traces: u64,
    /// Worker threads (1 = fully sequential and deterministic).
    pub threads: usize,
    /// Master seed for class selection and source forking.
    pub seed: u64,
}

/// Traces acquired per accumulation block: large enough that the blocked
/// moment passes amortise and auto-vectorise, small enough that the two
/// per-class block buffers stay cache-resident for typical trace lengths.
const BLOCK_TRACES: usize = 256;

/// Seeded per-worker campaign RNG (class labels), stream `w`.
fn worker_rng(seed: u64, w: usize) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ 0xa076_1d64_78bd_642fu64.wrapping_mul(w as u64 + 1))
}

/// Per-worker acquisition workspace: the class-label block, the two
/// contiguous per-class `BLOCK_TRACES × num_samples` buffers, and the
/// blocked-moments scratch. Allocated once per worker; the steady-state
/// acquisition loop allocates nothing.
struct AcquireBufs {
    labels: Vec<Class>,
    fixed: Vec<f64>,
    random: Vec<f64>,
    scratch: BlockScratch,
}

impl AcquireBufs {
    fn new(num_samples: usize) -> Self {
        AcquireBufs {
            labels: Vec::with_capacity(BLOCK_TRACES),
            fixed: vec![0.0; BLOCK_TRACES * num_samples],
            random: vec![0.0; BLOCK_TRACES * num_samples],
            scratch: BlockScratch::new(num_samples),
        }
    }
}

/// Draw `n` class labels, one PRNG word per 64 labels.
fn draw_labels(rng: &mut SmallRng, n: usize, labels: &mut Vec<Class>) {
    labels.clear();
    while labels.len() < n {
        let mut word: u64 = rng.random();
        for _ in 0..(n - labels.len()).min(64) {
            labels.push(if word & 1 == 1 { Class::Fixed } else { Class::Random });
            word >>= 1;
        }
    }
}

/// Acquire `quota` traces block-wise: draw a block of labels, acquire the
/// traces in label order into the per-class buffers, then fold each class
/// buffer into `local` with one blocked-moments update per class.
fn acquire_quota<S: TraceSource>(
    src: &mut S,
    rng: &mut SmallRng,
    quota: u64,
    num_samples: usize,
    bufs: &mut AcquireBufs,
    local: &mut TvlaResult,
) {
    let mut remaining = quota;
    while remaining > 0 {
        let n = remaining.min(BLOCK_TRACES as u64) as usize;
        draw_labels(rng, n, &mut bufs.labels);
        let (nf, nr) = src.trace_block(&bufs.labels, &mut bufs.fixed, &mut bufs.random);
        local.fixed.add_block(&bufs.fixed[..nf * num_samples], &mut bufs.scratch);
        local.random.add_block(&bufs.random[..nr * num_samples], &mut bufs.scratch);
        remaining -= n as u64;
    }
}

impl Campaign {
    /// A single-threaded campaign (deterministic trace order).
    pub fn sequential(traces: u64, seed: u64) -> Self {
        Campaign { traces, threads: 1, seed }
    }

    /// A campaign using all available parallelism.
    pub fn parallel(traces: u64, seed: u64) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Campaign { traces, threads, seed }
    }

    /// Run the whole campaign and return the accumulated result.
    pub fn run<S: TraceSource>(&self, source: &S) -> TvlaResult {
        self.run_chunked(source, &[self.traces], |_, _| true).expect("single checkpoint provided")
    }

    /// Run the campaign in chunks, invoking `checkpoint` after every chunk
    /// with the cumulative trace count and result. Returning `false` stops
    /// the campaign early (used by traces-to-detection estimation).
    ///
    /// `chunk_ends` are cumulative trace counts, strictly increasing; the
    /// last entry is the campaign total.
    ///
    /// With `threads == 1` the whole campaign runs inline on the caller
    /// thread (deterministic trace order, bit-identical across runs).
    /// Otherwise a pool of persistent workers is spawned once and fed a
    /// quota per chunk over channels — no thread respawn per chunk — and
    /// workers whose quota would be zero are simply not scheduled.
    ///
    /// Returns `None` when `chunk_ends` is empty.
    ///
    /// # Panics
    ///
    /// Panics when `chunk_ends` is not strictly increasing.
    pub fn run_chunked<S: TraceSource>(
        &self,
        source: &S,
        chunk_ends: &[u64],
        mut checkpoint: impl FnMut(u64, &TvlaResult) -> bool,
    ) -> Option<TvlaResult> {
        if chunk_ends.is_empty() {
            return None;
        }
        let threads = self.threads.max(1);
        let num_samples = source.num_samples();
        let mut result = TvlaResult::new(num_samples);
        let mut done = 0u64;

        if threads == 1 {
            let mut src = source.fork(0);
            let mut rng = worker_rng(self.seed, 0);
            let mut bufs = AcquireBufs::new(num_samples);
            for &end in chunk_ends {
                assert!(end > done, "chunk ends must be strictly increasing");
                acquire_quota(&mut src, &mut rng, end - done, num_samples, &mut bufs, &mut result);
                done = end;
                if !checkpoint(done, &result) {
                    break;
                }
            }
            return Some(result);
        }

        std::thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::channel::<TvlaResult>();
            // One persistent worker per thread, fed per-chunk quotas over
            // its own order channel; partial results come back on the
            // shared result channel.
            let order_txs: Vec<mpsc::Sender<u64>> = (0..threads)
                .map(|w| {
                    let (order_tx, order_rx) = mpsc::channel::<u64>();
                    let mut src = source.fork(w as u64);
                    let mut rng = worker_rng(self.seed, w);
                    let res_tx = res_tx.clone();
                    scope.spawn(move || {
                        let mut bufs = AcquireBufs::new(num_samples);
                        while let Ok(quota) = order_rx.recv() {
                            let mut local = TvlaResult::new(num_samples);
                            acquire_quota(
                                &mut src,
                                &mut rng,
                                quota,
                                num_samples,
                                &mut bufs,
                                &mut local,
                            );
                            if res_tx.send(local).is_err() {
                                break;
                            }
                        }
                    });
                    order_tx
                })
                .collect();
            drop(res_tx);

            for &end in chunk_ends {
                assert!(end > done, "chunk ends must be strictly increasing");
                let todo = end - done;
                let per = todo / threads as u64;
                let extra = (todo % threads as u64) as usize;
                let mut outstanding = 0usize;
                for (w, order_tx) in order_txs.iter().enumerate() {
                    let quota = per + u64::from(w < extra);
                    if quota > 0 {
                        order_tx.send(quota).expect("worker alive");
                        outstanding += 1;
                    }
                }
                for _ in 0..outstanding {
                    let partial = res_rx.recv().expect("worker panicked");
                    result.merge(&partial);
                }
                done = end;
                if !checkpoint(done, &result) {
                    break;
                }
            }
            // Dropping the order channels ends the workers' receive loops;
            // the scope joins them on exit.
            drop(order_txs);
            Some(result)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic device leaking `class` into sample 1 only.
    #[derive(Clone)]
    struct LeakyToy {
        rng: SmallRng,
        leak: f64,
    }

    impl LeakyToy {
        fn new(leak: f64) -> Self {
            LeakyToy { rng: SmallRng::seed_from_u64(99), leak }
        }
    }

    impl TraceSource for LeakyToy {
        fn fork(&self, stream: u64) -> Self {
            LeakyToy {
                rng: SmallRng::seed_from_u64(stream.wrapping_mul(0x9e37) ^ 7),
                leak: self.leak,
            }
        }
        fn num_samples(&self) -> usize {
            3
        }
        fn trace(&mut self, class: Class, out: &mut [f64]) {
            let noise = |r: &mut SmallRng| r.random::<f64>() - 0.5;
            out[0] = noise(&mut self.rng);
            out[1] = noise(&mut self.rng) + if class == Class::Fixed { self.leak } else { 0.0 };
            out[2] = noise(&mut self.rng);
        }
    }

    #[test]
    fn leak_detected_at_leaky_sample_only() {
        let c = Campaign::sequential(8_000, 1);
        let r = c.run(&LeakyToy::new(0.2));
        let t = r.t1();
        assert!(t[1].abs() > 4.5, "t at leaky sample: {}", t[1]);
        assert!(t[0].abs() < 4.5 && t[2].abs() < 4.5, "clean samples stay clean");
    }

    #[test]
    fn clean_device_passes() {
        let c = Campaign::sequential(8_000, 2);
        let r = c.run(&LeakyToy::new(0.0));
        assert!(r.max_abs_t1() < 4.5);
    }

    #[test]
    fn classes_roughly_balanced() {
        let c = Campaign::sequential(10_000, 3);
        let r = c.run(&LeakyToy::new(0.0));
        let f = r.fixed.count() as f64;
        let n = r.total_traces() as f64;
        assert_eq!(r.total_traces(), 10_000);
        assert!((f / n - 0.5).abs() < 0.05, "fixed fraction {}", f / n);
    }

    #[test]
    fn parallel_equals_more_threads() {
        let seq = Campaign { traces: 6_000, threads: 1, seed: 4 }.run(&LeakyToy::new(0.3));
        let par = Campaign { traces: 6_000, threads: 4, seed: 4 }.run(&LeakyToy::new(0.3));
        // Different trace partitioning, same statistics up to sampling noise.
        assert!(seq.t1()[1].abs() > 4.5);
        assert!(par.t1()[1].abs() > 4.5);
        assert_eq!(par.total_traces(), 6_000);
    }

    /// `Campaign { threads: 1 }` must be bit-identical across runs.
    #[test]
    fn sequential_campaign_deterministic_across_runs() {
        let c = Campaign::sequential(4_000, 11);
        let a = c.run(&LeakyToy::new(0.1));
        let b = c.run(&LeakyToy::new(0.1));
        assert_eq!(a.fixed.count(), b.fixed.count());
        assert_eq!(a.t1(), b.t1());
        assert_eq!(a.t2(), b.t2());
        assert_eq!(a.t3(), b.t3());
    }

    /// The blocked accumulation path must agree with a per-trace scalar
    /// reference (same acquisition order, `TraceMoments::add`) to 1e-9
    /// relative on all order-1..3 t-statistics.
    #[test]
    fn blocked_accumulation_matches_scalar_reference() {
        let traces = 10_000u64;
        let seed = 21u64;
        let blocked = Campaign::sequential(traces, seed).run(&LeakyToy::new(0.15));

        // Reconstruct the sequential path's acquisition order exactly,
        // accumulating one trace at a time.
        let mut src = LeakyToy::new(0.15).fork(0);
        let mut rng = worker_rng(seed, 0);
        let mut labels = Vec::new();
        let mut scalar = TvlaResult::new(3);
        let mut buf = vec![0.0f64; 3];
        let mut remaining = traces;
        while remaining > 0 {
            let n = remaining.min(BLOCK_TRACES as u64) as usize;
            draw_labels(&mut rng, n, &mut labels);
            for &class in &labels {
                src.trace(class, &mut buf);
                match class {
                    Class::Fixed => scalar.fixed.add(&buf),
                    Class::Random => scalar.random.add(&buf),
                }
            }
            remaining -= n as u64;
        }

        assert_eq!(blocked.fixed.count(), scalar.fixed.count());
        assert_eq!(blocked.random.count(), scalar.random.count());
        for order in 1..=3usize {
            for i in 0..3 {
                let (a, b) = match order {
                    1 => (
                        t_first_order(&blocked.fixed, &blocked.random)[i],
                        t_first_order(&scalar.fixed, &scalar.random)[i],
                    ),
                    2 => (
                        t_second_order(&blocked.fixed, &blocked.random)[i],
                        t_second_order(&scalar.fixed, &scalar.random)[i],
                    ),
                    _ => (
                        t_third_order(&blocked.fixed, &blocked.random)[i],
                        t_third_order(&scalar.fixed, &scalar.random)[i],
                    ),
                };
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                    "order {order} sample {i}: blocked {a} vs scalar {b}"
                );
            }
        }
    }

    /// More workers than traces: zero-quota workers are not scheduled and
    /// the campaign still delivers every trace.
    #[test]
    fn more_threads_than_traces() {
        let c = Campaign { traces: 3, threads: 8, seed: 13 };
        let r = c.run(&LeakyToy::new(0.0));
        assert_eq!(r.total_traces(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn equal_chunk_ends_panic() {
        let c = Campaign::sequential(100, 1);
        let _ = c.run_chunked(&LeakyToy::new(0.0), &[50, 50, 100], |_, _| true);
    }

    #[test]
    fn chunked_checkpoints_cumulative_and_stoppable() {
        let c = Campaign::sequential(10_000, 5);
        let mut seen = Vec::new();
        let r = c
            .run_chunked(&LeakyToy::new(0.5), &[1_000, 2_000, 10_000], |n, res| {
                seen.push((n, res.total_traces()));
                n < 2_000 // stop after the second checkpoint
            })
            .unwrap();
        assert_eq!(seen, vec![(1_000, 1_000), (2_000, 2_000)]);
        assert_eq!(r.total_traces(), 2_000);
    }
}
