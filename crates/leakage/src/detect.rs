//! Leak decision rules and traces-to-detection estimation.

use crate::tvla::{Campaign, TraceSource, TvlaResult};

/// The commonly applied TVLA threshold, ±4.5 (the red lines in the
/// paper's figures).
pub const THRESHOLD: f64 = 4.5;

/// Sample indices whose |t| exceeds the threshold.
pub fn exceeding(t: &[f64]) -> Vec<usize> {
    t.iter().enumerate().filter(|(_, v)| v.abs() > THRESHOLD).map(|(i, _)| i).collect()
}

/// Simple leak decision: any sample beyond the threshold.
pub fn leaks(t: &[f64]) -> bool {
    t.iter().any(|v| v.abs() > THRESHOLD)
}

/// The paper's consistency rule (§VII-A): an implementation is deemed
/// leaking only when the threshold is exceeded **at the same time indexes**
/// across repetitions with different fixed plaintexts. Returns those
/// consistently-leaking sample indices.
pub fn consistent_leaks(t_curves: &[Vec<f64>]) -> Vec<usize> {
    let Some(first) = t_curves.first() else {
        return Vec::new();
    };
    (0..first.len()).filter(|&i| t_curves.iter().all(|t| t[i].abs() > THRESHOLD)).collect()
}

/// Outcome of a traces-to-detection estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Cumulative traces at the first checkpoint that flagged, when any.
    pub traces: Option<u64>,
    /// max |t| (first order) at each checkpoint, for reporting.
    pub history: Vec<(u64, f64)>,
}

/// Run `campaign` with geometric checkpoints (factor ~2 starting at
/// `first_checkpoint`) and report the first cumulative trace count at
/// which the first-order t-test exceeds the threshold.
///
/// This is how statements like "signs of first-order leakage only after
/// approximately 15 M traces" are produced.
pub fn first_detection<S: TraceSource>(
    campaign: &Campaign,
    source: &S,
    first_checkpoint: u64,
) -> Detection {
    let mut ends = Vec::new();
    let mut c = first_checkpoint.max(16);
    while c < campaign.traces {
        ends.push(c);
        c = c.saturating_mul(2);
    }
    ends.push(campaign.traces);

    let mut history = Vec::new();
    let mut detected = None;
    campaign.run_chunked(source, &ends, |n, r: &TvlaResult| {
        let max_t = r.max_abs_t1();
        history.push((n, max_t));
        if max_t > THRESHOLD && detected.is_none() {
            detected = Some(n);
            return false;
        }
        true
    });
    Detection { traces: detected, history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tvla::Class;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn exceeding_and_leaks() {
        let t = vec![0.0, 5.0, -4.6, 4.4];
        assert_eq!(exceeding(&t), vec![1, 2]);
        assert!(leaks(&t));
        assert!(!leaks(&[1.0, -2.0]));
    }

    #[test]
    fn consistency_rule_requires_same_indices() {
        let a = vec![5.0, 0.0, 5.0];
        let b = vec![5.0, 5.0, 0.0];
        assert_eq!(consistent_leaks(std::slice::from_ref(&a)), vec![0, 2]);
        assert_eq!(consistent_leaks(&[a, b]), vec![0]);
        assert!(consistent_leaks(&[]).is_empty());
    }

    #[derive(Clone)]
    struct Toy {
        rng: SmallRng,
        leak: f64,
    }
    impl TraceSource for Toy {
        fn fork(&self, stream: u64) -> Self {
            Toy { rng: SmallRng::seed_from_u64(stream ^ 0xabc), leak: self.leak }
        }
        fn num_samples(&self) -> usize {
            1
        }
        fn trace(&mut self, class: Class, out: &mut [f64]) {
            out[0] = self.rng.random::<f64>() - 0.5
                + if class == Class::Fixed { self.leak } else { 0.0 };
        }
    }

    #[test]
    fn weaker_leaks_need_more_traces() {
        let campaign = Campaign::sequential(200_000, 7);
        let strong =
            first_detection(&campaign, &Toy { rng: SmallRng::seed_from_u64(0), leak: 0.3 }, 64);
        let weak =
            first_detection(&campaign, &Toy { rng: SmallRng::seed_from_u64(0), leak: 0.03 }, 64);
        let s = strong.traces.expect("strong leak detected");
        let w = weak.traces.expect("weak leak detected");
        assert!(s < w, "strong {s} should detect before weak {w}");
    }

    #[test]
    fn clean_source_never_detects() {
        let campaign = Campaign::sequential(20_000, 9);
        let d = first_detection(&campaign, &Toy { rng: SmallRng::seed_from_u64(0), leak: 0.0 }, 64);
        assert_eq!(d.traces, None);
        assert_eq!(d.history.last().unwrap().0, 20_000);
    }
}
