//! Property tests for live convergence streaming: over random campaign
//! shapes (trace counts, cadences, seeds, thread counts) the merged
//! block-boundary snapshot sequence must be monotone in trace count and
//! end in a snapshot whose t-values agree with the one-shot
//! `run_observed` result to 1e-9 — the contract `gm-bench`'s `progress`
//! records are built on. For `threads == 1` the final snapshot is
//! additionally pinned bit-equal (the inline path streams from the
//! actual campaign accumulator).

use gm_leakage::{Campaign, Class, TraceSource};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A synthetic device leaking `leak` into sample 1 of 3.
#[derive(Clone)]
struct LeakyToy {
    rng: SmallRng,
    leak: f64,
}

impl TraceSource for LeakyToy {
    fn fork(&self, stream: u64) -> Self {
        LeakyToy { rng: SmallRng::seed_from_u64(stream.wrapping_mul(0x9e37) ^ 7), leak: self.leak }
    }
    fn num_samples(&self) -> usize {
        3
    }
    fn trace(&mut self, class: Class, out: &mut [f64]) {
        let noise = |r: &mut SmallRng| r.random::<f64>() - 0.5;
        out[0] = noise(&mut self.rng);
        out[1] = noise(&mut self.rng) + if class == Class::Fixed { self.leak } else { 0.0 };
        out[2] = noise(&mut self.rng);
    }
}

fn check_streamed(threads: usize, traces: u64, every: u64, seed: u64) {
    let campaign = Campaign { traces, threads, seed };
    let src = LeakyToy { rng: SmallRng::seed_from_u64(0), leak: 0.15 };

    let mut snapshots: Vec<(u64, Option<Vec<f64>>)> = Vec::new();
    let (streamed, _obs) = campaign.run_streamed_observed(&src, every, |snap| {
        let t1 = (snap.fixed.count() >= 2 && snap.random.count() >= 2).then(|| snap.t1());
        snapshots.push((snap.total_traces(), t1));
    });
    let (one_shot, _obs) = campaign.run_observed(&src);

    assert!(!snapshots.is_empty(), "at least the final snapshot streams");
    assert!(
        snapshots.windows(2).all(|w| w[0].0 <= w[1].0),
        "snapshot counts monotone: {:?}",
        snapshots.iter().map(|s| s.0).collect::<Vec<_>>()
    );
    let (last_count, last_t1) = snapshots.last().unwrap();
    assert_eq!(*last_count, traces, "final snapshot covers the whole campaign");

    // Streaming never perturbs the campaign result itself.
    assert_eq!(streamed.t1(), one_shot.t1());
    assert_eq!(streamed.fixed.count(), one_shot.fixed.count());
    assert_eq!(streamed.random.count(), one_shot.random.count());

    // The final snapshot agrees with the one-shot result to 1e-9
    // (bit-equal on the inline threads=1 path).
    let last_t1 = last_t1.as_ref().expect("final snapshot has both classes populated");
    if threads == 1 {
        assert_eq!(last_t1.clone(), one_shot.t1());
    }
    let max_rel = last_t1
        .iter()
        .zip(one_shot.t1().iter())
        .map(|(x, y)| (x - y).abs() / y.abs().max(1.0))
        .fold(0.0f64, f64::max);
    assert!(max_rel <= 1e-9, "final snapshot vs one-shot t1: rel diff {max_rel}");

    // Intermediate snapshots are statistically sane: finite t-values.
    for (count, t1) in &snapshots {
        if let Some(t1) = t1 {
            assert!(
                t1.iter().all(|t| t.is_finite()),
                "snapshot at {count} traces has non-finite t"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Inline (threads = 1) streaming.
    #[test]
    fn streamed_sequential_ends_at_one_shot(
        traces in 600u64..3_000,
        every in 50u64..400,
        seed in 0u64..1_000,
    ) {
        check_streamed(1, traces, every, seed);
    }

    /// Pooled (threads > 1) merge-on-read streaming.
    #[test]
    fn streamed_parallel_ends_at_one_shot(
        traces in 600u64..3_000,
        every in 50u64..400,
        seed in 0u64..1_000,
        threads in 2usize..5,
    ) {
        check_streamed(threads, traces, every, seed);
    }
}
