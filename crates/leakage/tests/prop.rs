//! Property-based tests for the streaming statistics: the one-pass
//! central moments and their merges must match naive two-pass
//! computation on arbitrary data, and the t-tests must respect their
//! symmetries.

use gm_leakage::moments::{BlockScratch, TraceMoments};
use gm_leakage::ttest::{t_first_order, t_second_order, t_third_order};
use proptest::prelude::*;

fn finite_samples(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 4..len)
}

fn naive_central_sum(xs: &[f64], p: i32) -> f64 {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    xs.iter().map(|x| (x - mean).powi(p)).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Streaming central sums match the two-pass computation for every
    /// order we track.
    #[test]
    fn streaming_matches_two_pass(xs in finite_samples(120)) {
        let mut m = TraceMoments::new(1);
        for &x in &xs {
            m.add(&[x]);
        }
        prop_assert_eq!(m.count(), xs.len() as u64);
        for p in 2..=6usize {
            let got = m.central_sum(p, 0);
            let want = naive_central_sum(&xs, p as i32);
            let scale = want.abs().max(1.0);
            prop_assert!(
                (got - want).abs() / scale < 1e-6,
                "order {}: {} vs {}", p, got, want
            );
        }
    }

    /// Merging split accumulators equals one accumulator over the
    /// concatenation, for any split point.
    #[test]
    fn merge_equals_concat(xs in finite_samples(120), split_frac in 0.0f64..1.0) {
        let split = ((xs.len() as f64) * split_frac) as usize;
        let (l, r) = xs.split_at(split.min(xs.len()));
        let mut a = TraceMoments::new(1);
        l.iter().for_each(|&x| a.add(&[x]));
        let mut b = TraceMoments::new(1);
        r.iter().for_each(|&x| b.add(&[x]));
        a.merge(&b);

        let mut whole = TraceMoments::new(1);
        xs.iter().for_each(|&x| whole.add(&[x]));

        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean()[0] - whole.mean()[0]).abs() < 1e-9);
        for p in 2..=6usize {
            let (g, w) = (a.central_sum(p, 0), whole.central_sum(p, 0));
            let scale = w.abs().max(1.0);
            prop_assert!((g - w).abs() / scale < 1e-6, "order {}: {} vs {}", p, g, w);
        }
    }

    /// Blocked accumulation (`add_block`, any block split) agrees with
    /// per-trace scalar `add` on arbitrary data for every tracked order.
    #[test]
    fn add_block_matches_scalar(
        rows in prop::collection::vec(prop::collection::vec(-1e3f64..1e3, 3..4), 1..40),
        split_frac in 0.0f64..1.0,
    ) {
        let len = 3;
        let mut scalar = TraceMoments::new(len);
        for r in &rows {
            scalar.add(r);
        }

        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let split = (((rows.len() as f64) * split_frac) as usize).min(rows.len()) * len;
        let mut blocked = TraceMoments::new(len);
        let mut scratch = BlockScratch::new(len);
        blocked.add_block(&flat[..split], &mut scratch);
        blocked.add_block(&flat[split..], &mut scratch);

        prop_assert_eq!(blocked.count(), scalar.count());
        for i in 0..len {
            prop_assert!((blocked.mean()[i] - scalar.mean()[i]).abs() < 1e-9);
            for p in 2..=6usize {
                let (g, w) = (blocked.central_sum(p, i), scalar.central_sum(p, i));
                let scale = w.abs().max(1.0);
                prop_assert!((g - w).abs() / scale < 1e-6, "order {}: {} vs {}", p, g, w);
            }
        }
    }

    /// Welch t-tests are antisymmetric in their arguments.
    #[test]
    fn t_tests_antisymmetric(xs in finite_samples(60), ys in finite_samples(60)) {
        let mut a = TraceMoments::new(1);
        xs.iter().for_each(|&x| a.add(&[x]));
        let mut b = TraceMoments::new(1);
        ys.iter().for_each(|&y| b.add(&[y]));
        for f in [t_first_order, t_second_order, t_third_order] {
            let ab = f(&a, &b)[0];
            let ba = f(&b, &a)[0];
            prop_assert!((ab + ba).abs() < 1e-9, "{} vs {}", ab, ba);
        }
    }

    /// A common shift leaves every central moment unchanged, so the
    /// higher-order t-tests are translation invariant.
    #[test]
    fn moments_translation_invariant(xs in finite_samples(80), shift in -1e3f64..1e3) {
        let mut m = TraceMoments::new(1);
        xs.iter().for_each(|&x| m.add(&[x]));
        let mut ms = TraceMoments::new(1);
        xs.iter().for_each(|&x| ms.add(&[x + shift]));
        for p in 2..=6usize {
            let (a, b) = (m.central_sum(p, 0), ms.central_sum(p, 0));
            let scale = a.abs().max(1.0);
            prop_assert!((a - b).abs() / scale < 1e-5, "order {}: {} vs {}", p, a, b);
        }
    }

    /// Identical classes never flag, at any order.
    #[test]
    fn identical_classes_never_flag(xs in finite_samples(100)) {
        let mut a = TraceMoments::new(1);
        let mut b = TraceMoments::new(1);
        xs.iter().for_each(|&x| { a.add(&[x]); b.add(&[x]); });
        prop_assert!(t_first_order(&a, &b)[0].abs() < 1e-9);
        prop_assert!(t_second_order(&a, &b)[0].abs() < 1e-9);
        prop_assert!(t_third_order(&a, &b)[0].abs() < 1e-9);
    }
}
