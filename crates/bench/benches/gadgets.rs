//! Throughput of the masked AND gadget software models — the cost
//! comparison underlying the paper's §II claim that `secAND2` needs
//! fewer elementary operations than Trichina's gadget (and no fresh
//! randomness at all, unlike every baseline).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gm_core::compose::product;
use gm_core::gadgets::dom::{dom_dep_and, DomIndep};
use gm_core::gadgets::sec_and2::sec_and2;
use gm_core::gadgets::ti::{ti_and, Shared3};
use gm_core::gadgets::trichina::trichina_and;
use gm_core::{MaskRng, MaskedBit};

fn bench_and_gadgets(c: &mut Criterion) {
    let mut rng = MaskRng::new(1);
    let x = MaskedBit::mask(true, &mut rng);
    let y = MaskedBit::mask(false, &mut rng);
    let x3 = Shared3::mask(true, &mut rng);
    let y3 = Shared3::mask(false, &mut rng);

    let mut g = c.benchmark_group("and_gadgets");
    g.bench_function("sec_and2", |b| b.iter(|| sec_and2(black_box(x), black_box(y))));
    g.bench_function("trichina", |b| b.iter(|| trichina_and(black_box(x), black_box(y), &mut rng)));
    g.bench_function("dom_indep", |b| {
        b.iter(|| DomIndep::and(black_box(x), black_box(y), &mut rng))
    });
    g.bench_function("dom_dep", |b| b.iter(|| dom_dep_and(black_box(x), black_box(y), &mut rng)));
    g.bench_function("ti_3share", |b| b.iter(|| ti_and(black_box(x3), black_box(y3))));
    g.finish();
}

fn bench_products(c: &mut Criterion) {
    let mut rng = MaskRng::new(2);
    let mut g = c.benchmark_group("products");
    for k in [2usize, 3, 4, 8] {
        let bits: Vec<MaskedBit> = (0..k).map(|_| MaskedBit::mask(true, &mut rng)).collect();
        g.bench_function(format!("product_{k}"), |b| b.iter(|| product(black_box(&bits))));
    }
    g.finish();
}

fn bench_masking(c: &mut Criterion) {
    let mut rng = MaskRng::new(3);
    let mut g = c.benchmark_group("masking");
    g.bench_function("mask_bit", |b| b.iter(|| MaskedBit::mask(black_box(true), &mut rng)));
    g.bench_function("mask_word64", |b| {
        b.iter(|| gm_core::MaskedWord::mask(black_box(0xDEADBEEF), 64, &mut rng))
    });
    g.finish();
}

criterion_group!(benches, bench_and_gadgets, bench_products, bench_masking);
criterion_main!(benches);
