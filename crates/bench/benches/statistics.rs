//! Throughput of the streaming statistics pipeline: per-trace moment
//! updates dominate TVLA campaign cost after the trace itself, so the
//! accumulator must sustain millions of samples per second.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gm_leakage::moments::{BlockScratch, TraceMoments};
use gm_leakage::ttest::{t_first_order, t_second_order, t_third_order};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn traces(len: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| (0..len).map(|_| rng.random::<f64>() * 100.0).collect()).collect()
}

fn bench_accumulate(c: &mut Criterion) {
    let data = traces(115, 256, 1);
    let mut g = c.benchmark_group("moments");
    g.bench_function("add_115_samples", |b| {
        let mut m = TraceMoments::new(115);
        let mut i = 0;
        b.iter(|| {
            m.add(black_box(&data[i % data.len()]));
            i += 1;
        })
    });
    // Same 256 traces accumulated through the blocked path: one
    // `add_block` call replaces 256 scalar `add` calls, so divide the
    // reported time by 256 to compare per-trace cost with the entry above.
    g.bench_function("add_block_115x256", |b| {
        let flat: Vec<f64> = data.iter().flatten().copied().collect();
        let mut m = TraceMoments::new(115);
        let mut scratch = BlockScratch::new(115);
        b.iter(|| m.add_block(black_box(&flat), &mut scratch))
    });
    g.bench_function("merge_115_samples", |b| {
        let mut a = TraceMoments::new(115);
        let mut mb = TraceMoments::new(115);
        for t in &data[..128] {
            a.add(t);
        }
        for t in &data[128..] {
            mb.add(t);
        }
        b.iter(|| {
            let mut x = a.clone();
            x.merge(black_box(&mb));
            x
        })
    });
    g.finish();
}

fn bench_ttests(c: &mut Criterion) {
    let data = traces(115, 512, 2);
    let mut a = TraceMoments::new(115);
    let mut b2 = TraceMoments::new(115);
    for (i, t) in data.iter().enumerate() {
        if i % 2 == 0 {
            a.add(t);
        } else {
            b2.add(t);
        }
    }
    let mut g = c.benchmark_group("ttests");
    g.bench_function("t1_115", |b| b.iter(|| t_first_order(black_box(&a), black_box(&b2))));
    g.bench_function("t2_115", |b| b.iter(|| t_second_order(black_box(&a), black_box(&b2))));
    g.bench_function("t3_115", |b| b.iter(|| t_third_order(black_box(&a), black_box(&b2))));
    g.finish();
}

fn bench_trace_source(c: &mut Criterion) {
    use gm_des::tvla_src::{CoreVariant, CycleModelSource, SourceConfig};
    use gm_leakage::{Class, TraceSource};
    let mut src = CycleModelSource::new(SourceConfig::new(CoreVariant::Ff));
    let mut buf = vec![0.0; src.num_samples()];
    c.bench_function("cycle_model_trace_ff", |b| {
        b.iter(|| src.trace(black_box(Class::Random), &mut buf))
    });
}

criterion_group!(benches, bench_accumulate, bench_ttests, bench_trace_source);
criterion_main!(benches);
