//! Throughput of the DES implementations: reference vs the two masked
//! cycle-accurate cores vs the gate-level functional path. The masked
//! cores pay for share tracking and per-cycle activity records; the
//! gate-level path pays for full structural fidelity.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gm_core::MaskRng;
use gm_des::masked::{MaskedDes, MaskedDesFf, MaskedDesPd};
use gm_des::netlist_gen::driver::{encrypt_functional, EncryptionInputs};
use gm_des::netlist_gen::{build_des_core, SboxStyle};
use gm_des::Des;

fn bench_reference(c: &mut Criterion) {
    let des = Des::new(0x133457799BBCDFF1);
    c.bench_function("des_reference_block", |b| {
        b.iter(|| des.encrypt_block(black_box(0x0123456789ABCDEF)))
    });
}

fn bench_masked_cores(c: &mut Criterion) {
    let mut rng = MaskRng::new(7);
    let mut g = c.benchmark_group("masked_des");
    let plain = MaskedDes::new(0x133457799BBCDFF1);
    g.bench_function("value_model", |b| {
        b.iter(|| plain.encrypt_block(black_box(0x0123456789ABCDEF), &mut rng))
    });
    let ff = MaskedDesFf::new(0x133457799BBCDFF1);
    g.bench_function("ff_core_with_cycles", |b| {
        b.iter(|| ff.encrypt_with_cycles(black_box(0x0123456789ABCDEF), &mut rng))
    });
    let pd = MaskedDesPd::new(0x133457799BBCDFF1);
    g.bench_function("pd_core_with_cycles", |b| {
        b.iter(|| pd.encrypt_with_cycles(black_box(0x0123456789ABCDEF), &mut rng))
    });
    g.finish();
}

fn bench_gate_level(c: &mut Criterion) {
    let core = build_des_core(SboxStyle::Ff);
    let mut rng = MaskRng::new(8);
    let mut g = c.benchmark_group("gate_level");
    g.sample_size(10);
    g.bench_function("ff_core_functional", |b| {
        b.iter(|| {
            let inputs =
                EncryptionInputs::draw(black_box(0x0123456789ABCDEF), 0x133457799BBCDFF1, &mut rng);
            encrypt_functional(&core, &inputs)
        })
    });
    g.bench_function("build_ff_core_netlist", |b| b.iter(|| build_des_core(SboxStyle::Ff)));
    g.finish();
}

criterion_group!(benches, bench_reference, bench_masked_cores, bench_gate_level);
criterion_main!(benches);
