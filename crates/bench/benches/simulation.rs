//! Throughput of the EDA substrate: event-driven simulation, static
//! timing analysis, and area reporting over the generated DES cores.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gm_core::gadgets::sec_and2::build_sec_and2;
use gm_core::gadgets::AndInputs;
use gm_core::MaskRng;
use gm_des::netlist_gen::driver::EncryptionInputs;
use gm_des::netlist_gen::{build_des_core, DesCoreDriver, SboxStyle};
use gm_netlist::{timing, Netlist};
use gm_sim::power::NullSink;
use gm_sim::{DelayModel, PowerTrace, Simulator};

fn bench_gadget_sim(c: &mut Criterion) {
    let mut n = Netlist::new("g");
    let io =
        AndInputs { x0: n.input("x0"), x1: n.input("x1"), y0: n.input("y0"), y1: n.input("y1") };
    let out = build_sec_and2(&mut n, io);
    n.output("z0", out.z0);
    n.output("z1", out.z1);
    let delays = DelayModel::with_variation(&n, 0.15, 40.0, 1);
    c.bench_function("event_sim_secand2_4edges", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut sim = Simulator::new(&n, &delays, seed);
            sim.init_all_zero();
            sim.schedule(io.y0, 1_000, true);
            sim.schedule(io.x0, 2_000, true);
            sim.schedule(io.x1, 3_000, true);
            sim.schedule(io.y1, 4_000, true);
            sim.run_until(black_box(50_000), &mut NullSink)
        })
    });
}

fn bench_full_core_trace(c: &mut Criterion) {
    let core = build_des_core(SboxStyle::Ff);
    let delays = DelayModel::with_variation(&core.netlist, 0.15, 40.0, 2);
    let t = timing::analyze(&core.netlist).unwrap();
    let period = t.critical_path_ps * 6 / 5;
    let mut rng = MaskRng::new(3);
    let mut g = c.benchmark_group("full_core");
    g.sample_size(10);
    g.bench_function("gate_level_trace_ff", |b| {
        let mut drv = DesCoreDriver::new(&core, &delays, period, 4);
        let cycles = drv.total_cycles();
        let mut trace = PowerTrace::new(0, period, cycles);
        b.iter(|| {
            let inputs = EncryptionInputs::draw(black_box(1), 0x133457799BBCDFF1, &mut rng);
            trace.clear();
            drv.encrypt(&inputs, &mut trace)
        })
    });
    g.bench_function("sta_ff_core", |b| b.iter(|| timing::analyze(black_box(&core.netlist))));
    g.bench_function("area_report_ff_core", |b| {
        b.iter(|| gm_netlist::area::report(black_box(&core.netlist)))
    });
    g.finish();
}

fn bench_glitch_sampling(c: &mut Criterion) {
    use gm_des::power::binomial;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(7);
    let mut g = c.benchmark_group("binomial");
    // Exact-inversion regime (n·q ≤ 10): typical per-cycle glitch draw.
    g.bench_function("inversion_n40_p005", |b| {
        b.iter(|| binomial(&mut rng, black_box(40), black_box(0.05)))
    });
    // Gaussian regime: the worst-case busy cycle.
    g.bench_function("gaussian_n400_p03", |b| {
        b.iter(|| binomial(&mut rng, black_box(400), black_box(0.3)))
    });
    g.finish();
}

criterion_group!(benches, bench_gadget_sim, bench_full_core_trace, bench_glitch_sampling);
criterion_main!(benches);
