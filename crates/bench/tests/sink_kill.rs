//! Satellite: the `--metrics` JSONL stream survives a mid-run kill with
//! every newline-terminated line a whole record.
//!
//! Every record goes out as one `write_all` + flush of line-plus-`\n`,
//! so a SIGKILL between records loses nothing. A kill *during* the
//! write can still truncate it — a single `write(2)` spanning a page
//! boundary commits page by page and Linux checks fatal signals in
//! between — so the contract is: at most the final, unterminated line
//! is partial, and a line-oriented reader skips it naturally. This test
//! proves it end to end: it re-spawns the test binary as a child
//! (`GM_SINK_KILL_CHILD` selects the writer role) that streams records
//! in a tight loop, kills it once enough lines exist, and validates
//! every newline-terminated line of the survivor file parses as a
//! complete JSON record.

use gm_bench::{Args, MetricsSink};
use gm_obs::Report;
use std::time::{Duration, Instant};

const CHILD_ENV: &str = "GM_SINK_KILL_CHILD";

/// Writer role: stream phase records forever (until killed). Runs inside
/// the child process only; as a test in the parent it is a no-op.
#[test]
fn child_writer_loop() {
    let Ok(path) = std::env::var(CHILD_ENV) else { return };
    let args = Args { metrics: Some(path), ..Args::default() };
    let mut sink = MetricsSink::from_args("sink_kill_child", &args);
    for i in 0u64.. {
        let mut counters = Report::new();
        counters.set("kill.iteration", i);
        sink.record_phase(&format!("spin-{i}"), 0.001, 10, counters);
    }
}

#[test]
fn kill_mid_run_leaves_only_whole_lines() {
    let dir = std::env::temp_dir().join("gm_bench_sink_kill_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("victim-{}.jsonl", std::process::id()));
    let path = path.to_str().unwrap().to_owned();
    let _ = std::fs::remove_file(&path);

    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args(["--exact", "child_writer_loop", "--nocapture"])
        .env(CHILD_ENV, &path)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn writer child");

    // Wait until the stream is clearly mid-flight, then kill without
    // warning — the harshest interruption the sink can get.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let lines = std::fs::read_to_string(&path).map(|t| t.lines().count()).unwrap_or(0);
        if lines >= 50 {
            break;
        }
        assert!(Instant::now() < deadline, "child produced {lines} lines in 30 s");
        if let Some(status) = child.try_wait().expect("poll child") {
            panic!("writer child exited early: {status}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("kill child");
    let _ = child.wait();

    let text = std::fs::read_to_string(&path).expect("survivor file");
    // The kill may land mid-`write(2)` and truncate the record being
    // written; only the final line may be partial, and only when the
    // file does not end at a record boundary.
    let whole = match text.rfind('\n') {
        Some(pos) => &text[..=pos],
        None => panic!("no complete record survived the kill"),
    };
    let mut n = 0;
    for (i, line) in whole.lines().enumerate() {
        let v = gm_bench::json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: torn record: {e}\n{line}", i + 1));
        assert_eq!(
            v.get("kind").and_then(gm_bench::json::Json::as_str),
            Some("phase"),
            "line {}",
            i + 1
        );
        assert_eq!(v.get("bin").and_then(gm_bench::json::Json::as_str), Some("sink_kill_child"));
        n += 1;
    }
    assert!(n >= 50, "all observed lines survive the kill, got {n}");
    let _ = std::fs::remove_file(&path);
}
