//! Minimal JSON value parser (no external crates; see DESIGN.md §4.6).
//!
//! Exists so the metrics/record emitters can be *round-tripped* in tests
//! and validated by `validate_metrics` without pulling in serde. It
//! accepts exactly the JSON this workspace emits (objects, arrays,
//! strings with the escapes `gm_obs::report::escape_into` produces plus
//! `\/`, `\b`, `\f` and `\uXXXX`, numbers, booleans, null) and rejects
//! everything else with a byte-offset error message.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in source order (duplicate keys are kept as-is).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Unpaired surrogates are rejected; this
                            // workspace only escapes control characters.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_owned())?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{text}' at {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".to_owned()));
    }

    #[test]
    fn parses_nested_and_escapes() {
        let v = parse(r#"{"a": [1, {"b": "x\nyA"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x\nyA"));
    }

    #[test]
    fn u64_conversion_guards() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn round_trips_report_json() {
        let mut r = gm_obs::Report::new();
        r.set("sim.events", 123);
        r.set("pool.wall_ns", 456);
        r.set("weird\"key", 1);
        let parsed = parse(&r.to_json()).unwrap();
        assert_eq!(parsed.get("sim.events").unwrap().as_u64(), Some(123));
        assert_eq!(parsed.get("weird\"key").unwrap().as_u64(), Some(1));
        assert_eq!(parsed.as_obj().unwrap().len(), 3);
    }
}
