//! Validate a `--metrics` JSONL file (CI gate).
//!
//! Usage: `validate_metrics <metrics.jsonl> [more.jsonl ...]`
//!
//! Each line must parse as a JSON object carrying the shared envelope
//! (`bin`, `phase`, `git_rev`, `seed`, `traces`, `threads`, `seconds`,
//! `traces_per_sec`, `balance_pct`, `counters`), with `counters` a flat
//! object of non-negative integers. Exits non-zero naming the first
//! offending file/line so CI fails loudly on schema drift.

use gm_bench::json::{self, Json};

fn validate_line(line: &str) -> Result<(), String> {
    let v = json::parse(line)?;
    if v.as_obj().is_none() {
        return Err("record is not an object".to_owned());
    }
    for name in ["bin", "phase", "git_rev"] {
        v.get(name)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing string member '{name}'"))?;
    }
    for name in ["seed", "traces", "threads", "balance_pct"] {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing integer member '{name}'"))?;
    }
    for name in ["seconds", "traces_per_sec"] {
        let n = v
            .get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing number member '{name}'"))?;
        if !n.is_finite() || n < 0.0 {
            return Err(format!("member '{name}' is not a finite non-negative number"));
        }
    }
    let counters =
        v.get("counters").and_then(Json::as_obj).ok_or("missing object member 'counters'")?;
    for (key, val) in counters {
        if val.as_u64().is_none() {
            return Err(format!("counter '{key}' is not a non-negative integer"));
        }
    }
    Ok(())
}

fn validate_file(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let mut records = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        records += 1;
    }
    if records == 0 {
        return Err(format!("{path}: no records"));
    }
    Ok(records)
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_metrics <metrics.jsonl> [more.jsonl ...]");
        std::process::exit(2);
    }
    let mut total = 0usize;
    for path in &paths {
        match validate_file(path) {
            Ok(n) => {
                println!("{path}: {n} valid record(s)");
                total += n;
            }
            Err(e) => {
                eprintln!("validate_metrics: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("validate_metrics: {total} record(s) across {} file(s): OK", paths.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_real_record_line() {
        let line = "{\"bin\":\"t\",\"phase\":\"p\",\"git_rev\":\"abc\",\"seed\":1,\
                    \"traces\":10,\"threads\":2,\"seconds\":0.5,\"traces_per_sec\":20.0,\
                    \"balance_pct\":100,\"counters\":{\"pool.traces\":10}}";
        validate_line(line).unwrap();
    }

    #[test]
    fn rejects_missing_and_mistyped_members() {
        assert!(validate_line("{}").is_err());
        assert!(validate_line("[1]").is_err());
        let bad_counter = "{\"bin\":\"t\",\"phase\":\"p\",\"git_rev\":\"a\",\"seed\":1,\
                           \"traces\":1,\"threads\":1,\"seconds\":0.1,\"traces_per_sec\":10.0,\
                           \"balance_pct\":100,\"counters\":{\"x\":-3}}";
        assert!(validate_line(bad_counter).is_err());
    }
}
