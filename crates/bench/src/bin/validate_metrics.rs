//! Validate `--metrics` JSONL files and `--trace-out` Chrome trace
//! exports (CI gate).
//!
//! Usage: `validate_metrics <file> [more ...]`
//!
//! Each file is sniffed: a whole-file JSON object carrying `traceEvents`
//! is validated as a Chrome trace-event export (event envelope plus
//! per-thread begin/end stack discipline; an empty event array is valid —
//! that is what an `obs-off` build exports). Anything else is validated
//! line-by-line as campaign-metrics JSONL, dispatching on the record's
//! `kind`: `phase` records carry the `traces`/`threads`/`counters`
//! envelope, `progress` records the live-convergence snapshot members.
//! Exits non-zero naming the first offending file/line so CI fails
//! loudly on schema drift.

use gm_bench::json::{self, Json};

fn str_member(v: &Json, name: &str) -> Result<String, String> {
    v.get(name)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string member '{name}'"))
}

fn u64_member(v: &Json, name: &str) -> Result<u64, String> {
    v.get(name).and_then(Json::as_u64).ok_or_else(|| format!("missing integer member '{name}'"))
}

fn finite_member(v: &Json, name: &str) -> Result<f64, String> {
    let n = v
        .get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number member '{name}'"))?;
    if !n.is_finite() || n < 0.0 {
        return Err(format!("member '{name}' is not a finite non-negative number"));
    }
    Ok(n)
}

fn validate_envelope(v: &Json) -> Result<(), String> {
    for name in ["bin", "phase", "git_rev"] {
        str_member(v, name)?;
    }
    u64_member(v, "seed")?;
    Ok(())
}

fn validate_phase(v: &Json) -> Result<(), String> {
    validate_envelope(v)?;
    for name in ["traces", "threads", "balance_pct"] {
        u64_member(v, name)?;
    }
    for name in ["seconds", "traces_per_sec"] {
        finite_member(v, name)?;
    }
    let counters =
        v.get("counters").and_then(Json::as_obj).ok_or("missing object member 'counters'")?;
    for (key, val) in counters {
        if val.as_u64().is_none() {
            return Err(format!("counter '{key}' is not a non-negative integer"));
        }
    }
    Ok(())
}

fn validate_progress(v: &Json) -> Result<(), String> {
    validate_envelope(v)?;
    let done = u64_member(v, "traces_done")?;
    let total = u64_member(v, "traces_total")?;
    if done > total {
        return Err(format!("traces_done {done} exceeds traces_total {total}"));
    }
    u64_member(v, "threads")?;
    for name in ["seconds", "traces_per_sec", "max_abs_t1", "max_abs_t2"] {
        finite_member(v, name)?;
    }
    Ok(())
}

fn validate_line(line: &str) -> Result<(), String> {
    let v = json::parse(line)?;
    if v.as_obj().is_none() {
        return Err("record is not an object".to_owned());
    }
    // Records before the `kind` member existed are phase records.
    match v.get("kind").and_then(Json::as_str).unwrap_or("phase") {
        "phase" => validate_phase(&v),
        "progress" => validate_progress(&v),
        other => Err(format!("unknown record kind '{other}'")),
    }
}

/// Validate a Chrome trace-event export: the envelope of every event,
/// and begin/end balance per thread (an `E` must close the most recent
/// open `B` of its thread, and nothing may stay open at the end).
fn validate_trace(v: &Json) -> Result<usize, String> {
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("member 'traceEvents' is not an array")?;
    let mut stacks: Vec<(u64, Vec<String>)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let fail = |e: String| format!("traceEvents[{i}]: {e}");
        ev.as_obj().ok_or_else(|| fail("event is not an object".to_owned()))?;
        let name = str_member(ev, "name").map_err(fail)?;
        let ph = str_member(ev, "ph").map_err(fail)?;
        let tid = u64_member(ev, "tid").map_err(fail)?;
        u64_member(ev, "pid").map_err(fail)?;
        finite_member(ev, "ts").map_err(fail)?;
        let stack = match stacks.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, s)) => s,
            None => {
                stacks.push((tid, Vec::new()));
                &mut stacks.last_mut().expect("just pushed").1
            }
        };
        match ph.as_str() {
            "B" => stack.push(name),
            "E" => {
                let open = stack
                    .pop()
                    .ok_or_else(|| fail(format!("end of '{name}' with no open span")))?;
                if open != name {
                    return Err(fail(format!("end of '{name}' while '{open}' is open")));
                }
            }
            // Complete and metadata events carry no stack obligations.
            "X" | "M" => {}
            other => return Err(fail(format!("unknown phase type '{other}'"))),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("thread {tid}: span '{open}' never ends"));
        }
    }
    Ok(events.len())
}

enum Validated {
    Trace(usize),
    Records(usize),
}

fn validate_file(path: &str) -> Result<Validated, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    if let Ok(v) = json::parse(&text) {
        if v.get("traceEvents").is_some() {
            return validate_trace(&v).map(Validated::Trace).map_err(|e| format!("{path}: {e}"));
        }
    }
    let mut records = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        records += 1;
    }
    if records == 0 {
        return Err(format!("{path}: no records"));
    }
    Ok(Validated::Records(records))
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_metrics <metrics.jsonl|trace.json> [more ...]");
        std::process::exit(2);
    }
    let mut total = 0usize;
    for path in &paths {
        match validate_file(path) {
            Ok(Validated::Trace(n)) => {
                println!("{path}: valid Chrome trace ({n} event(s))");
                total += n;
            }
            Ok(Validated::Records(n)) => {
                println!("{path}: {n} valid record(s)");
                total += n;
            }
            Err(e) => {
                eprintln!("validate_metrics: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("validate_metrics: {total} record(s) across {} file(s): OK", paths.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_real_phase_line() {
        let line = "{\"bin\":\"t\",\"kind\":\"phase\",\"phase\":\"p\",\"git_rev\":\"abc\",\
                    \"seed\":1,\"traces\":10,\"threads\":2,\"seconds\":0.5,\
                    \"traces_per_sec\":20.0,\"balance_pct\":100,\"counters\":{\"pool.traces\":10}}";
        validate_line(line).unwrap();
        // Pre-`kind` records from older runs still validate as phases.
        let legacy = line.replace("\"kind\":\"phase\",", "");
        validate_line(&legacy).unwrap();
    }

    #[test]
    fn accepts_a_progress_line() {
        let line = "{\"bin\":\"fig14\",\"kind\":\"progress\",\"phase\":\"fig14b-pt0\",\
                    \"git_rev\":\"abc\",\"seed\":1,\"traces_done\":512,\"traces_total\":4000,\
                    \"threads\":4,\"seconds\":0.25,\"traces_per_sec\":2048.0,\
                    \"max_abs_t1\":1.25,\"max_abs_t2\":3.5}";
        validate_line(line).unwrap();
    }

    #[test]
    fn rejects_missing_and_mistyped_members() {
        assert!(validate_line("{}").is_err());
        assert!(validate_line("[1]").is_err());
        let bad_counter = "{\"bin\":\"t\",\"phase\":\"p\",\"git_rev\":\"a\",\"seed\":1,\
                           \"traces\":1,\"threads\":1,\"seconds\":0.1,\"traces_per_sec\":10.0,\
                           \"balance_pct\":100,\"counters\":{\"x\":-3}}";
        assert!(validate_line(bad_counter).is_err());
        let bad_kind = "{\"bin\":\"t\",\"kind\":\"mystery\",\"phase\":\"p\",\"git_rev\":\"a\",\
                        \"seed\":1}";
        assert!(validate_line(bad_kind).is_err());
        let done_past_total = "{\"bin\":\"t\",\"kind\":\"progress\",\"phase\":\"p\",\
                               \"git_rev\":\"a\",\"seed\":1,\"traces_done\":10,\
                               \"traces_total\":5,\"threads\":1,\"seconds\":0.1,\
                               \"traces_per_sec\":10.0,\"max_abs_t1\":1.0,\"max_abs_t2\":1.0}";
        assert!(validate_line(done_past_total).is_err());
    }

    fn ev(name: &str, ph: &str, tid: u64, ts: f64) -> String {
        format!("{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts}}}")
    }

    #[test]
    fn accepts_balanced_trace() {
        let body = format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{},{},{},{}]}}",
            ev("a", "B", 1, 0.0),
            ev("b", "B", 1, 1.0),
            ev("b", "E", 1, 2.0),
            ev("a", "E", 1, 3.0),
        );
        assert_eq!(validate_trace(&json::parse(&body).unwrap()).unwrap(), 4);
        // Empty capture (obs-off build) is a valid trace.
        let empty = json::parse("{\"traceEvents\":[]}").unwrap();
        assert_eq!(validate_trace(&empty).unwrap(), 0);
    }

    #[test]
    fn rejects_unbalanced_traces() {
        for events in [
            // E with nothing open.
            vec![ev("a", "E", 1, 0.0)],
            // Mismatched nesting on one thread.
            vec![ev("a", "B", 1, 0.0), ev("b", "B", 1, 1.0), ev("a", "E", 1, 2.0)],
            // Span left open at the end.
            vec![ev("a", "B", 1, 0.0)],
            // Threads do not share stacks.
            vec![ev("a", "B", 1, 0.0), ev("a", "E", 2, 1.0)],
        ] {
            let body = format!("{{\"traceEvents\":[{}]}}", events.join(","));
            assert!(validate_trace(&json::parse(&body).unwrap()).is_err(), "{body}");
        }
    }
}
