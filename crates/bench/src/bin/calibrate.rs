//! Calibration tool: sweeps the leak-model constants against the TVLA
//! pipeline so the trace-scaling story in EXPERIMENTS.md stays honest.
//! Usage: `calibrate [N] [sigma] [--metrics PATH --progress ...]`.
use gm_bench::MetricsSink;
use gm_des::tvla_src::{CoreVariant, CycleModelSource, SourceConfig};
use gm_leakage::Campaign;
use std::time::Instant;

fn main() {
    // Positional [N] [sigma] first, then the shared flags.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = raw.iter().take_while(|a| !a.starts_with("--")).collect();
    let args = gm_bench::Args::parse_from(raw.iter().skip(positional.len()).cloned());
    let mut metrics = MetricsSink::from_args("calibrate", &args);
    let n: u64 = positional.first().map(|s| s.parse().unwrap()).unwrap_or(20_000);
    let sigma: f64 = positional.get(1).map(|s| s.parse().unwrap()).unwrap_or(60.0);

    // Speed.
    let mut cfg = SourceConfig::new(CoreVariant::Ff);
    cfg.noise_sigma = sigma;
    let src = CycleModelSource::new(cfg.clone());
    let t0 = Instant::now();
    let r = metrics.run("ff-prng-on", &Campaign::parallel(n, 1), &src);
    let dt = t0.elapsed();
    let t1m = r.max_abs_t1();
    let t2m = r.t2().iter().fold(0.0f64, |m, t| m.max(t.abs()));
    let t3m = r.t3().iter().fold(0.0f64, |m, t| m.max(t.abs()));
    println!(
        "FF prng-on  n={n} sigma={sigma}: t1={t1m:.2} t2={t2m:.2} t3={t3m:.2} ({:.0} traces/s)",
        n as f64 / dt.as_secs_f64()
    );
    let t1 = r.t1();
    let mut idx: Vec<usize> = (0..t1.len()).collect();
    idx.sort_by(|&a, &b| t1[b].abs().partial_cmp(&t1[a].abs()).unwrap());
    for &i in idx.iter().take(6) {
        let phase = if i < 3 {
            format!("lead-in {i}")
        } else {
            format!("round {} cyc {}", (i - 3) / 7, (i - 3) % 7)
        };
        println!("   sample {i} ({phase}): t1={:.2}", t1[i]);
    }

    let mut cfg_off = cfg.clone();
    cfg_off.prng_on = false;
    let d =
        gm_leakage::first_detection(&Campaign::parallel(n, 2), &CycleModelSource::new(cfg_off), 32);
    println!(
        "FF prng-off detection at {:?} (history {:?})",
        d.traces,
        &d.history[..d.history.len().min(6)]
    );

    {
        // PD(10) with coupling disabled must stay clean (fig17 ablation).
        use gm_des::power::PdLeakModel;
        let mut c = SourceConfig::new(CoreVariant::Pd { unit_luts: 10 });
        c.noise_sigma = sigma;
        let mut leak = PdLeakModel::optimal();
        leak.coupling_eps = 0.0;
        let src = CycleModelSource::with_pd_leak(c, leak);
        let r = metrics.run("pd10-coupling-off", &Campaign::parallel(n, 77), &src);
        println!("PD(10) coupling-off: max|t1|={:.2} at n={n}", r.max_abs_t1());
    }
    for unit in [1usize, 2, 3, 5, 7, 10] {
        let mut c = SourceConfig::new(CoreVariant::Pd { unit_luts: unit });
        c.noise_sigma = sigma;
        let src = CycleModelSource::new(c);
        let d = gm_leakage::first_detection(&Campaign::parallel(n, 3), &src, 256);
        let last = d.history.last().unwrap();
        println!(
            "PD unit={unit:2}: detect={:?} final max|t1|={:.2} at n={}",
            d.traces, last.1, last.0
        );
    }
    metrics.finish().expect("write metrics");
}
