//! The paper's SNR instrumentation trick, quantified (§II-B):
//! "To improve the signal-to-noise ratio (SNR), we replicated multiple
//! parallel instances of secAND2 on the FPGA, each receiving identical
//! inputs."
//!
//! This experiment sweeps the replica count and reports the measured
//! SNR of the leaky arrival sequence: SNR grows with the replica count
//! while the instrument noise dominates, then saturates at the intrinsic
//! share-activity noise floor (which replicates coherently too).

use gm_bench::Args;
use gm_core::gadgets::sec_and2::build_sec_and2;
use gm_core::gadgets::AndInputs;
use gm_core::{MaskRng, MaskedBit};
use gm_leakage::Snr;
use gm_netlist::{NetId, Netlist};
use gm_sim::power::PowerTrace;
use gm_sim::{DelayModel, MeasurementModel, Simulator};

fn build_bank(replicas: usize) -> (Netlist, [NetId; 4]) {
    let mut n = Netlist::new("bank");
    let x0 = n.input("x0");
    let x1 = n.input("x1");
    let y0 = n.input("y0");
    let y1 = n.input("y1");
    for r in 0..replicas {
        n.in_module(format!("g{r}"), |n| {
            let out = build_sec_and2(n, AndInputs { x0, x1, y0, y1 });
            n.output(format!("z0_{r}"), out.z0);
            n.output(format!("z1_{r}"), out.z1);
        });
    }
    n.validate().unwrap();
    (n, [x0, x1, y0, y1])
}

fn main() {
    let args = Args::parse();
    let traces = args.trace_count(3_000, 20_000);
    println!("SNR vs. replica count — the paper's §II-B instrumentation trick");
    println!("(leaky sequence y1 y0 x1 x0; {traces} traces per point; noise σ = 3.0)\n");
    println!("  replicas   SNR(worst cycle)   gain vs 1x");
    println!("  --------   ----------------   ----------");

    let mut base = None;
    for replicas in [1usize, 2, 4, 8, 16] {
        let (n, [x0, x1, y0, y1]) = build_bank(replicas);
        let delays = DelayModel::with_variation(&n, 0.15, 40.0, args.seed);
        let mut mask_rng = MaskRng::new(args.seed ^ replicas as u64);
        let mut meas = MeasurementModel::new(1.0, 3.0, 18, args.seed ^ 0x77);
        let mut snr = Snr::new();
        for t in 0..traces {
            let xv = mask_rng.bit();
            let yv = mask_rng.bit();
            let mx = MaskedBit::mask(xv, &mut mask_rng);
            let my = MaskedBit::mask(yv, &mut mask_rng);
            let mut sim = Simulator::new(&n, &delays, args.seed ^ t ^ 0x51);
            sim.init_all_zero();
            // The leaky order: x0 last.
            sim.schedule(y1, 1_000, my.s1);
            sim.schedule(y0, 51_000, my.s0);
            sim.schedule(x1, 101_000, mx.s1);
            sim.schedule(x0, 151_000, mx.s0);
            let mut trace = PowerTrace::new(0, 50_000, 4);
            sim.run_until(200_000, &mut trace);
            let mut samples = trace.into_samples();
            meas.apply(&mut samples);
            // Label = the unshared y (what the final cycle exposes).
            snr.add(u64::from(yv), &samples);
        }
        let s = snr.snr();
        let worst = s.iter().cloned().fold(0.0f64, f64::max);
        let gain = base.map_or(1.0, |b: f64| worst / b);
        if base.is_none() {
            base = Some(worst);
        }
        println!("  {replicas:>8}   {worst:>16.4}   {gain:>9.1}x");
    }
    println!();
    println!("SNR grows with the replica count while measurement noise dominates");
    println!("(replicas add signal coherently, instrument noise incoherently) and");
    println!("saturates once the masked shares' own switching randomness — which");
    println!("also replicates coherently — becomes the noise floor. This is why the");
    println!("paper could resolve Table I with half a million traces per sequence.");
}
