//! The paper's SNR instrumentation trick, quantified (§II-B):
//! "To improve the signal-to-noise ratio (SNR), we replicated multiple
//! parallel instances of secAND2 on the FPGA, each receiving identical
//! inputs."
//!
//! This experiment sweeps the replica count and reports the measured
//! SNR of the leaky arrival sequence: SNR grows with the replica count
//! while the instrument noise dominates, then saturates at the intrinsic
//! share-activity noise floor (which replicates coherently too).

use gm_bench::gate::{bank_share_net, build_sec_and2_bank, CYCLE_PS};
use gm_bench::{Args, MetricsSink};
use gm_core::schedule::InputShare;
use gm_core::{MaskRng, MaskedBit};
use gm_leakage::Snr;
use gm_sim::power::PowerTrace;
use gm_sim::{DelayModel, MeasurementModel, SimCore};

/// The leaky arrival order of Table I: an `x` share last.
const LEAKY_ORDER: [InputShare; 4] =
    [InputShare::Y1, InputShare::Y0, InputShare::X1, InputShare::X0];

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("snr_replication", &args);
    let traces = args.trace_count(3_000, 20_000);
    println!("SNR vs. replica count — the paper's §II-B instrumentation trick");
    println!("(leaky sequence y1 y0 x1 x0; {traces} traces per point; noise σ = 3.0)\n");
    println!("  replicas   SNR(worst cycle)   gain vs 1x");
    println!("  --------   ----------------   ----------");

    let mut base = None;
    for replicas in [1usize, 2, 4, 8, 16] {
        let t0 = std::time::Instant::now();
        // Shared bank + persistent event core (reset per trace), the
        // same plumbing the Table I campaign sources ride.
        let bank = build_sec_and2_bank(replicas);
        let delays = DelayModel::with_variation(&bank.netlist, 0.15, 40.0, args.seed);
        let mut sim = SimCore::new(&bank.graph, args.seed ^ 0x51);
        let mut trace = PowerTrace::new(0, CYCLE_PS, 4);
        let mut mask_rng = MaskRng::new(args.seed ^ replicas as u64);
        let mut meas = MeasurementModel::new(1.0, 3.0, 18, args.seed ^ 0x77);
        let mut snr = Snr::new();
        let mut samples = vec![0.0f64; 4];
        for t in 0..traces {
            let xv = mask_rng.bit();
            let yv = mask_rng.bit();
            let mx = MaskedBit::mask(xv, &mut mask_rng);
            let my = MaskedBit::mask(yv, &mut mask_rng);
            sim.reset(&bank.graph, args.seed ^ t ^ 0x51);
            trace.clear();
            let value = |s: InputShare| match s {
                InputShare::X0 => mx.s0,
                InputShare::X1 => mx.s1,
                InputShare::Y0 => my.s0,
                InputShare::Y1 => my.s1,
            };
            for (cycle, &share) in LEAKY_ORDER.iter().enumerate() {
                sim.schedule(
                    bank_share_net(&bank, share),
                    cycle as u64 * CYCLE_PS + 1_000,
                    value(share),
                );
            }
            sim.run_until(&bank.graph, &delays, 4 * CYCLE_PS, &mut trace);
            samples.copy_from_slice(trace.samples());
            meas.apply(&mut samples);
            // Label = the unshared y (what the final cycle exposes).
            snr.add(u64::from(yv), &samples);
        }
        let s = snr.snr();
        let worst = s.iter().cloned().fold(0.0f64, f64::max);
        let gain = base.map_or(1.0, |b: f64| worst / b);
        if base.is_none() {
            base = Some(worst);
        }
        println!("  {replicas:>8}   {worst:>16.4}   {gain:>9.1}x");
        let mut counters = gm_obs::Report::new();
        sim.obs_report("sim", &mut counters);
        counters.set_nonzero("rng.mask_words", mask_rng.obs_words_drawn());
        metrics.record_phase(
            &format!("replicas{replicas}"),
            t0.elapsed().as_secs_f64(),
            traces,
            counters,
        );
    }
    println!();
    println!("SNR grows with the replica count while measurement noise dominates");
    println!("(replicas add signal coherently, instrument noise incoherently) and");
    println!("saturates once the masked shares' own switching randomness — which");
    println!("also replicates coherently — becomes the noise floor. This is why the");
    println!("paper could resolve Table I with half a million traces per sequence.");
    metrics.finish().expect("write metrics");
}
