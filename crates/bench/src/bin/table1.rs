//! **Table I** — leakage behaviour of `secAND2` for all 24 input-arrival
//! sequences.
//!
//! Reproduces the paper's §II-B experiment: the four shares of the two
//! operands are driven into a bank of parallel `secAND2` instances one
//! per clock cycle (from an all-zero reset), in every possible order; a
//! fixed-vs-random TVLA over the four cycles decides which sequences
//! leak. The paper's finding: exactly the 12 sequences in which `x₀` or
//! `x₁` arrives **last** leak.
//!
//! Power comes from the event-driven gate-level simulation — glitch
//! energy arises from timing alone. The analytic rule
//! (`gm_core::schedule::predicted_leaky`) and a Monte-Carlo
//! glitch-extended probe cross-check every row.

use gm_bench::Args;
use gm_core::analysis::glitch_probe;
use gm_core::gadgets::sec_and2::build_sec_and2;
use gm_core::gadgets::AndInputs;
use gm_core::schedule::{all_sequences, predicted_leaky, ArrivalSequence, InputShare};
use gm_core::{MaskRng, MaskedBit};
use gm_leakage::{leaks, report, Campaign, Class, TraceSource, THRESHOLD};
use gm_netlist::{NetId, Netlist};
use gm_sim::{DelayModel, MeasurementModel, PowerTrace, Simulator};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Parallel replicated gadget instances (the paper's SNR trick).
const REPLICAS: usize = 8;
const CYCLE_PS: u64 = 50_000;

struct Bank {
    netlist: Netlist,
    // Input nets per share, fanning to all replicas.
    x0: NetId,
    x1: NetId,
    y0: NetId,
    y1: NetId,
}

fn build_bank() -> Bank {
    let mut n = Netlist::new("secand2_bank");
    let x0 = n.input("x0");
    let x1 = n.input("x1");
    let y0 = n.input("y0");
    let y1 = n.input("y1");
    for r in 0..REPLICAS {
        n.in_module(format!("g{r}"), |n| {
            let out = build_sec_and2(n, AndInputs { x0, x1, y0, y1 });
            n.output(format!("z0_{r}"), out.z0);
            n.output(format!("z1_{r}"), out.z1);
        });
    }
    n.validate().expect("bank validates");
    Bank { netlist: n, x0, x1, y0, y1 }
}

struct SequenceSource {
    bank: Arc<Bank>,
    delays: Arc<DelayModel>,
    seq: ArrivalSequence,
    mask_rng: MaskRng,
    val_rng: SmallRng,
    measurement: MeasurementModel,
    sim_seed: u64,
}

impl SequenceSource {
    fn new(bank: Arc<Bank>, delays: Arc<DelayModel>, seq: ArrivalSequence, seed: u64) -> Self {
        SequenceSource {
            bank,
            delays,
            seq,
            mask_rng: MaskRng::new(seed),
            val_rng: SmallRng::seed_from_u64(seed ^ 0xf00d),
            measurement: MeasurementModel::new(1.0, 0.8, 16, seed ^ 0xabc),
            sim_seed: seed,
        }
    }

    fn share_net(&self, s: InputShare) -> NetId {
        match s {
            InputShare::X0 => self.bank.x0,
            InputShare::X1 => self.bank.x1,
            InputShare::Y0 => self.bank.y0,
            InputShare::Y1 => self.bank.y1,
        }
    }
}

impl TraceSource for SequenceSource {
    fn fork(&self, stream: u64) -> Self {
        SequenceSource::new(
            Arc::clone(&self.bank),
            Arc::clone(&self.delays),
            self.seq,
            self.sim_seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        )
    }

    fn num_samples(&self) -> usize {
        4
    }

    fn trace(&mut self, class: Class, out: &mut [f64]) {
        // Fixed class: x = 1, y = 1 (any fixed pair works); random class:
        // fresh random x, y. Shares always fresh-random.
        let (x, y) = match class {
            Class::Fixed => (true, true),
            Class::Random => (self.val_rng.random(), self.val_rng.random()),
        };
        let mx = MaskedBit::mask(x, &mut self.mask_rng);
        let my = MaskedBit::mask(y, &mut self.mask_rng);
        let value = |s: InputShare| match s {
            InputShare::X0 => mx.s0,
            InputShare::X1 => mx.s1,
            InputShare::Y0 => my.s0,
            InputShare::Y1 => my.s1,
        };

        self.sim_seed = self.sim_seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(11);
        let mut sim = Simulator::new(&self.bank.netlist, &self.delays, self.sim_seed);
        sim.init_all_zero();
        let mut trace = PowerTrace::new(0, CYCLE_PS, 4);
        for (cycle, &share) in self.seq.iter().enumerate() {
            sim.schedule(self.share_net(share), cycle as u64 * CYCLE_PS + 1_000, value(share));
        }
        sim.run_until(4 * CYCLE_PS, &mut trace);
        for (o, s) in out.iter_mut().zip(trace.into_samples()) {
            *o = self.measurement.sample(s);
        }
    }
}

fn seq_string(seq: &ArrivalSequence) -> String {
    seq.iter().map(|s| format!("{s:>3}")).collect::<Vec<_>>().join(" ")
}

fn main() {
    let args = Args::parse();
    let traces = args.trace_count(4_000, 60_000);
    let bank = Arc::new(build_bank());
    let delays =
        Arc::new(DelayModel::with_variation(&bank.netlist, 0.15, 40.0, args.seed ^ 0x7a51));

    println!("TABLE I — secAND2 arrival-sequence leakage ({traces} traces/sequence, {REPLICAS} replicas)");
    println!();
    println!("  #  sequence (cycle 1..4)   max|t1|  leaks  glitch-bias  predicted  agree");
    println!("  -- ----------------------  -------  -----  -----------  ---------  -----");

    let mut agreements = 0;
    let mut rows = Vec::new();
    for (i, seq) in all_sequences().into_iter().enumerate() {
        let src = SequenceSource::new(Arc::clone(&bank), Arc::clone(&delays), seq, args.seed);
        let result = Campaign::parallel(traces, args.seed ^ i as u64).run(&src);
        let t1 = result.t1();
        let measured_leak = leaks(&t1);
        let max_t = t1.iter().fold(0.0f64, |m, t| m.max(t.abs()));

        // Independent cross-check: Monte-Carlo glitch-extended probing.
        let arrivals: Vec<(NetId, u64)> = seq
            .iter()
            .enumerate()
            .map(|(c, &s)| (src.share_net(s), c as u64 * CYCLE_PS + 1_000))
            .collect();
        let probe = glitch_probe(
            &bank.netlist,
            &[(bank.x0, bank.x1), (bank.y0, bank.y1)],
            &arrivals,
            2_000,
            40.0,
            args.seed ^ 0x51eb,
        );

        let predicted = predicted_leaky(&seq);
        let agree = measured_leak == predicted;
        agreements += usize::from(agree);
        println!(
            "  {:>2}  {}  {:>7.2}  {:>5}  {:>11.3}  {:>9}  {}",
            i + 1,
            seq_string(&seq),
            max_t,
            if measured_leak { "YES" } else { "no" },
            probe.max_bias,
            if predicted { "YES" } else { "no" },
            if agree { "  ok" } else { "  ** MISMATCH **" },
        );
        rows.push((seq, max_t, measured_leak, predicted));
    }

    println!();
    println!("Agreement with the paper's rule (leaks ⇔ x0/x1 last): {agreements}/24");
    println!("Paper's Table I: sequences ending in x0/x1 leak; ending in y0/y1 do not.");
    println!("TVLA threshold ±{THRESHOLD}.");

    // CSV dump.
    let path = format!("{}/table1.csv", args.out_dir);
    let max_ts: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let measured: Vec<f64> = rows.iter().map(|r| f64::from(r.2 as u8)).collect();
    let predicted: Vec<f64> = rows.iter().map(|r| f64::from(r.3 as u8)).collect();
    report::write_csv(
        &path,
        &["seq", "max_t1", "leaks", "predicted"],
        &[&max_ts, &measured, &predicted],
    )
    .expect("write CSV");
    println!("CSV written to {path}");
}
