//! **Table I** — leakage behaviour of `secAND2` for all 24 input-arrival
//! sequences.
//!
//! Reproduces the paper's §II-B experiment: the four shares of the two
//! operands are driven into a bank of parallel `secAND2` instances one
//! per clock cycle (from an all-zero reset), in every possible order; a
//! fixed-vs-random TVLA over the four cycles decides which sequences
//! leak. The paper's finding: exactly the 12 sequences in which `x₀` or
//! `x₁` arrives **last** leak.
//!
//! Power comes from the event-driven gate-level simulation — glitch
//! energy arises from timing alone; acquisition goes through the shared
//! [`gm_bench::gate`] sources and the persistent-worker campaign pool.
//! The analytic rule (`gm_core::schedule::predicted_leaky`) and a
//! Monte-Carlo glitch-extended probe cross-check every row.

use gm_bench::gate::{build_sec_and2_bank, SequenceSource, CYCLE_PS};
use gm_bench::{Args, MetricsSink};
use gm_core::analysis::glitch_probe;
use gm_core::schedule::{all_sequences, predicted_leaky, ArrivalSequence};
use gm_leakage::{leaks, report, Campaign, THRESHOLD};
use gm_netlist::NetId;
use gm_sim::DelayModel;
use std::sync::Arc;

/// Parallel replicated gadget instances (the paper's SNR trick).
const REPLICAS: usize = 8;

fn seq_string(seq: &ArrivalSequence) -> String {
    seq.iter().map(|s| format!("{s:>3}")).collect::<Vec<_>>().join(" ")
}

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("table1", &args);
    let traces = args.trace_count(4_000, 60_000);
    let bank = Arc::new(build_sec_and2_bank(REPLICAS));
    let delays =
        Arc::new(DelayModel::with_variation(&bank.netlist, 0.15, 40.0, args.seed ^ 0x7a51));

    let backend = if args.scalar { "scalar event wheel" } else { "compiled schedule" };
    println!("TABLE I — secAND2 arrival-sequence leakage ({traces} traces/sequence, {REPLICAS} replicas, {backend})");
    println!();
    println!("  #  sequence (cycle 1..4)   max|t1|  leaks  glitch-bias  predicted  agree");
    println!("  -- ----------------------  -------  -----  -----------  ---------  -----");

    let mut agreements = 0;
    let mut rows = Vec::new();
    for (i, seq) in all_sequences().into_iter().enumerate() {
        let src = if args.scalar {
            SequenceSource::scalar(Arc::clone(&bank), Arc::clone(&delays), seq, args.seed)
        } else {
            SequenceSource::new(Arc::clone(&bank), Arc::clone(&delays), seq, args.seed)
        };
        let result = metrics.run(
            &format!("seq{:02}", i + 1),
            &Campaign::parallel(traces, args.seed ^ i as u64),
            &src,
        );
        let t1 = result.t1();
        let measured_leak = leaks(&t1);
        let max_t = t1.iter().fold(0.0f64, |m, t| m.max(t.abs()));

        // Independent cross-check: Monte-Carlo glitch-extended probing.
        let arrivals: Vec<(NetId, u64)> = seq
            .iter()
            .enumerate()
            .map(|(c, &s)| (src.share_net(s), c as u64 * CYCLE_PS + 1_000))
            .collect();
        let probe = glitch_probe(
            &bank.netlist,
            &[(bank.x0, bank.x1), (bank.y0, bank.y1)],
            &arrivals,
            2_000,
            40.0,
            args.seed ^ 0x51eb,
        );

        let predicted = predicted_leaky(&seq);
        let agree = measured_leak == predicted;
        agreements += usize::from(agree);
        println!(
            "  {:>2}  {}  {:>7.2}  {:>5}  {:>11.3}  {:>9}  {}",
            i + 1,
            seq_string(&seq),
            max_t,
            if measured_leak { "YES" } else { "no" },
            probe.max_bias,
            if predicted { "YES" } else { "no" },
            if agree { "  ok" } else { "  ** MISMATCH **" },
        );
        rows.push((seq, max_t, measured_leak, predicted));
    }

    println!();
    println!("Agreement with the paper's rule (leaks ⇔ x0/x1 last): {agreements}/24");
    println!("Paper's Table I: sequences ending in x0/x1 leak; ending in y0/y1 do not.");
    println!("TVLA threshold ±{THRESHOLD}.");

    // CSV dump.
    let path = format!("{}/table1.csv", args.out_dir);
    let max_ts: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let measured: Vec<f64> = rows.iter().map(|r| f64::from(r.2 as u8)).collect();
    let predicted: Vec<f64> = rows.iter().map(|r| f64::from(r.3 as u8)).collect();
    report::write_csv(
        &path,
        &["seq", "max_t1", "leaks", "predicted"],
        &[&max_ts, &measured, &predicted],
    )
    .expect("write CSV");
    println!("CSV written to {path}");
    metrics.finish().expect("write metrics");
}
