//! Microbenchmark for the compiled-schedule sweep: times
//! [`SchedRunner::run_pass`] on the fig15-gate PD gadget in isolation,
//! outside the campaign stack, and splits the cost into the sweep,
//! divergent-lane `fallback`, and energy `pack` phases — the two
//! post-sweep floors are measured per-run, not estimated by subtraction.
//!
//! ```text
//! cargo run --release -p gm-bench --bin sched_micro -- \
//!     [--traces PASSES] [--scalar] [--metrics PATH] [--progress]
//! ```
//!
//! `--traces` counts *passes* here (64 lanes each; default 20 000).
//! `--scalar` forces the in-loop scalar jitter draw instead of the
//! batched tile sampler (bit-identical output either way).
//! `GM_REPAIR_BATCH=0` forces the legacy inline per-lane fallback in
//! place of the deferred batched drain (bit-identical output either
//! way — the checksum printed below must not move under either knob).
//! The draw-count and repair/pack breakdowns come from the runner's own
//! `sim.sched.*` / `sim.pack.*` counters and land in the `--metrics`
//! JSONL, not just stdout.

use gm_bench::{Args, MetricsSink};
use gm_core::gadgets::sec_and2_pd::{build_sec_and2_pd, PdConfig};
use gm_core::gadgets::AndInputs;
use gm_netlist::{NetId, Netlist};
use gm_obs::Report;
use gm_sim::{
    repair_batch_enabled, set_wide_jitter, CompiledSchedule, DelayModel, LaneEnergy, RepairQueue,
    SchedRunner, SimCore, SimGraph, LANES,
};
use std::time::Instant;

/// Scalar-wheel rerun of one divergent lane: bit-identical to the lane
/// it replaces (same seed, same order-invariant jitter stream).
fn scalar_energy(
    sim: &mut SimCore,
    graph: &SimGraph,
    delays: &DelayModel,
    stim_nets: [NetId; 4],
    window_ps: u64,
    stim_bits: u32,
    seed: u64,
) -> f64 {
    sim.reset(graph, seed);
    for (s, net) in stim_nets.into_iter().enumerate() {
        if stim_bits >> s & 1 != 0 {
            sim.schedule(net, 1_000, true);
        }
    }
    let mut sink = gm_sim::CountingSink::default();
    sim.run_until(graph, delays, window_ps, &mut sink);
    sink.weighted
}

fn main() {
    let args = Args::parse();
    let passes: u64 = args.trace_count(2_000, 20_000);
    set_wide_jitter(!args.scalar);
    let batch = repair_batch_enabled();
    let mut sink = MetricsSink::from_args("sched_micro", &args);

    let mut n = Netlist::new("pd");
    let io =
        AndInputs { x0: n.input("x0"), x1: n.input("x1"), y0: n.input("y0"), y1: n.input("y1") };
    let out = build_sec_and2_pd(&mut n, io, PdConfig { unit_luts: 3 });
    n.output("z0", out.z0);
    n.output("z1", out.z1);
    n.validate().unwrap();
    let window_ps = (2 * 3u64 * 1_150) * 3 + 30_000;
    let graph = SimGraph::new(&n);
    let delays = DelayModel::with_variation(&n, 0.85, 400.0, 0x5eed ^ (3u64) << 8);
    let stims = [(io.x0, 1_000), (io.x1, 1_000), (io.y0, 1_000), (io.y1, 1_000)];
    let stim_nets = [io.x0, io.x1, io.y0, io.y1];
    let sched = CompiledSchedule::compile(&graph, &delays, &stims).expect("compiles");
    println!(
        "schedule: {} nodes, {} stims, {} jitter slots ({} jitter, {} repair)",
        sched.num_nodes(),
        sched.num_stims(),
        sched.num_jitter_slots(),
        if args.scalar { "scalar" } else { "wide" },
        if batch { "batched" } else { "inline" },
    );

    let mut runner = SchedRunner::new();
    let mut energy_sink = LaneEnergy::new(graph.weights());
    let mut sim = SimCore::new(&graph, 0);
    let mut repairs = RepairQueue::new();
    let mut seeds = [0u64; LANES];
    let mut stim_values = [0u64; 4];
    // Per-pass varying seeds, like a campaign draws them — fixed seeds
    // would pin the jitter streams and show 0% divergence, leaving the
    // fallback phase unexercised.
    let lane_seed = |p: u64, l: u64| {
        (p ^ l.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_mul(0x5851_f42d_4c95_7f2d)
            .wrapping_add(7)
    };
    let mut run = |runner: &mut SchedRunner,
                   energy_sink: &mut LaneEnergy,
                   sim: &mut SimCore,
                   repairs: &mut RepairQueue,
                   passes: u64,
                   measure: bool| {
        let mut energy = 0.0f64;
        let mut divergent_total = 0u64;
        let mut fallback_dt = 0.0f64;
        let mut pack_dt = 0.0f64;
        for p in 0..passes {
            for (l, s) in seeds.iter_mut().enumerate() {
                *s = lane_seed(p, l as u64);
            }
            for (s, v) in stim_values.iter_mut().enumerate() {
                *v = (p ^ s as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
            energy_sink.clear();
            let div = runner.run_pass(
                &sched,
                &graph,
                &delays,
                graph.weights(),
                &seeds,
                &stim_values,
                window_ps,
                energy_sink,
            );
            divergent_total += div.count_ones() as u64;
            // Pack phase: one word→f64 conversion per pass.
            let t_pack = measure.then(Instant::now);
            let mut energies = [0.0f64; LANES];
            energy_sink.energies_into(&mut energies);
            for (l, e) in energies.iter().enumerate() {
                if div >> l & 1 == 0 {
                    energy += e;
                }
            }
            if let Some(t) = t_pack {
                pack_dt += t.elapsed().as_secs_f64();
            }
            // Fallback phase: repair the divergent lanes, batched or
            // inline, and fold their scalar energies into the checksum.
            if div != 0 {
                let t_fb = measure.then(Instant::now);
                if batch {
                    for (l, &seed) in seeds.iter().enumerate() {
                        if div >> l & 1 != 0 {
                            let mut sb = 0u32;
                            for (s, &v) in stim_values.iter().enumerate() {
                                sb |= ((v >> l as u64 & 1) as u32) << s;
                            }
                            repairs.push(seed, sb, l as u32);
                        }
                    }
                    let mut repaired = 0.0f64;
                    repairs.drain(&mut runner.stats, |t| {
                        repaired += scalar_energy(
                            sim,
                            &graph,
                            &delays,
                            stim_nets,
                            window_ps,
                            t.stim_bits,
                            t.seed,
                        );
                    });
                    energy += repaired;
                } else {
                    for (l, &seed) in seeds.iter().enumerate() {
                        if div >> l & 1 != 0 {
                            let _fb = runner.stats.fallback_ns.span();
                            let mut sb = 0u32;
                            for (s, &v) in stim_values.iter().enumerate() {
                                sb |= ((v >> l as u64 & 1) as u32) << s;
                            }
                            energy +=
                                scalar_energy(sim, &graph, &delays, stim_nets, window_ps, sb, seed);
                        }
                    }
                }
                if let Some(t) = t_fb {
                    fallback_dt += t.elapsed().as_secs_f64();
                }
            }
        }
        (energy, divergent_total, fallback_dt, pack_dt)
    };
    // Warm-up.
    run(&mut runner, &mut energy_sink, &mut sim, &mut repairs, passes / 10 + 1, false);
    runner.stats = Default::default();
    energy_sink.stats = Default::default();
    let start = Instant::now();
    let (energy, divergent_total, fallback_dt, pack_dt) =
        run(&mut runner, &mut energy_sink, &mut sim, &mut repairs, passes, true);
    let dt = start.elapsed().as_secs_f64();
    let traces = passes * LANES as u64;
    println!(
        "{passes} passes ({traces} lanes) in {dt:.3} s: {:.0} ns/pass, {:.1} ns/lane, \
         divergent {:.2}% (checksum {energy:.1})",
        dt * 1e9 / passes as f64,
        dt * 1e9 / traces as f64,
        100.0 * divergent_total as f64 / traces as f64,
    );
    println!(
        "floors: fallback {:.1} ns/lane ({} lanes repaired), pack {:.1} ns/lane",
        fallback_dt * 1e9 / traces as f64,
        divergent_total,
        pack_dt * 1e9 / traces as f64,
    );
    // Jitter-vs-sweep split from the runner's own counters (all zero
    // under obs-off; the wall-clock numbers above still stand).
    let mut counters = Report::new();
    runner.obs_report("sim.sched", &mut counters);
    energy_sink.stats.report_into("sim.pack", &mut counters);
    let pass_ns = counters.get("sim.sched.pass_ns").unwrap_or(0);
    if pass_ns > 0 {
        let batched = counters.get("sim.sched.jitter.batched").unwrap_or(0);
        let scalar = counters.get("sim.sched.jitter.scalar").unwrap_or(0);
        println!(
            "breakdown: pass {:.1} ns/lane, {:.2} batched + {:.2} scalar draws/lane",
            pass_ns as f64 / traces as f64,
            batched as f64 / traces as f64,
            scalar as f64 / traces as f64,
        );
    }
    sink.record_phase("sched-micro", dt, traces, counters);
    sink.record_phase("fallback", fallback_dt, divergent_total.max(1), Report::new());
    sink.record_phase("pack", pack_dt, traces, Report::new());
    sink.finish().expect("metrics written");
}
