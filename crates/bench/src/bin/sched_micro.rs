//! Microbenchmark for the compiled-schedule sweep: times
//! [`SchedRunner::run_pass`] on the fig15-gate PD gadget in isolation,
//! outside the campaign stack, and splits the cost into the jitter-draw
//! and sweep-bookkeeping phases.
//!
//! ```text
//! cargo run --release -p gm-bench --bin sched_micro -- \
//!     [--traces PASSES] [--scalar] [--metrics PATH] [--progress]
//! ```
//!
//! `--traces` counts *passes* here (64 lanes each; default 20 000).
//! `--scalar` forces the in-loop scalar jitter draw instead of the
//! batched tile sampler (bit-identical output either way).
//! The draw-count breakdown — batched vs scalar — comes from the
//! runner's own `sim.sched.*` counters and lands in the `--metrics`
//! JSONL, not just stdout; A/B the two paths by running once plain and
//! once with `--scalar` to split jitter cost from sweep bookkeeping.

use gm_bench::{Args, MetricsSink};
use gm_core::gadgets::sec_and2_pd::{build_sec_and2_pd, PdConfig};
use gm_core::gadgets::AndInputs;
use gm_netlist::Netlist;
use gm_obs::Report;
use gm_sim::{
    set_wide_jitter, CompiledSchedule, DelayModel, LaneCounting, SchedRunner, SimGraph, LANES,
};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let passes: u64 = args.trace_count(2_000, 20_000);
    set_wide_jitter(!args.scalar);
    let mut sink = MetricsSink::from_args("sched_micro", &args);

    let mut n = Netlist::new("pd");
    let io =
        AndInputs { x0: n.input("x0"), x1: n.input("x1"), y0: n.input("y0"), y1: n.input("y1") };
    let out = build_sec_and2_pd(&mut n, io, PdConfig { unit_luts: 3 });
    n.output("z0", out.z0);
    n.output("z1", out.z1);
    n.validate().unwrap();
    let window_ps = (2 * 3u64 * 1_150) * 3 + 30_000;
    let graph = SimGraph::new(&n);
    let delays = DelayModel::with_variation(&n, 0.85, 400.0, 0x5eed ^ (3u64) << 8);
    let stims = [(io.x0, 1_000), (io.x1, 1_000), (io.y0, 1_000), (io.y1, 1_000)];
    let sched = CompiledSchedule::compile(&graph, &delays, &stims).expect("compiles");
    println!(
        "schedule: {} nodes, {} stims, {} jitter slots ({} path)",
        sched.num_nodes(),
        sched.num_stims(),
        sched.num_jitter_slots(),
        if args.scalar { "scalar" } else { "wide" },
    );

    let mut runner = SchedRunner::new();
    let mut counting = LaneCounting::default();
    let seeds: Vec<u64> = (0..LANES as u64).collect();
    let mut stim_values = [0u64; 4];
    let mut energy = 0.0f64;
    let mut divergent_total = 0u64;
    // Warm-up.
    for p in 0..passes / 10 + 1 {
        for (s, v) in stim_values.iter_mut().enumerate() {
            *v = (p ^ s as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        runner.run_pass(
            &sched,
            &graph,
            &delays,
            graph.weights(),
            &seeds,
            &stim_values,
            window_ps,
            &mut counting,
        );
    }
    runner.stats = Default::default();
    let start = Instant::now();
    for p in 0..passes {
        for (s, v) in stim_values.iter_mut().enumerate() {
            *v = (p ^ s as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        let div = runner.run_pass(
            &sched,
            &graph,
            &delays,
            graph.weights(),
            &seeds,
            &stim_values,
            window_ps,
            &mut counting,
        );
        divergent_total += div.count_ones() as u64;
        energy += counting.weighted.iter().sum::<f64>();
    }
    let dt = start.elapsed().as_secs_f64();
    let traces = passes * LANES as u64;
    println!(
        "{passes} passes ({traces} lanes) in {dt:.3} s: {:.0} ns/pass, {:.1} ns/lane, \
         divergent {:.2}% (checksum {energy:.1})",
        dt * 1e9 / passes as f64,
        dt * 1e9 / traces as f64,
        100.0 * divergent_total as f64 / traces as f64,
    );
    // Jitter-vs-sweep split from the runner's own counters (all zero
    // under obs-off; the wall-clock numbers above still stand).
    let mut counters = Report::new();
    runner.obs_report("sim.sched", &mut counters);
    let pass_ns = counters.get("sim.sched.pass_ns").unwrap_or(0);
    if pass_ns > 0 {
        let batched = counters.get("sim.sched.jitter.batched").unwrap_or(0);
        let scalar = counters.get("sim.sched.jitter.scalar").unwrap_or(0);
        println!(
            "breakdown: pass {:.1} ns/lane, {:.2} batched + {:.2} scalar draws/lane",
            pass_ns as f64 / traces as f64,
            batched as f64 / traces as f64,
            scalar as f64 / traces as f64,
        );
    }
    sink.record_phase("sched-micro", dt, traces, counters);
    sink.finish().expect("metrics written");
}
