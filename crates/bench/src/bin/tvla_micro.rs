//! Phase-attribution microbenchmark for the cycle-model TVLA pipeline:
//! drives the 64-way bitsliced FF engine through both statistics tails
//! outside the campaign stack and times each phase separately, so the
//! throughput floor is measured, not estimated by subtraction.
//!
//! ```text
//! cargo run --release -p gm-bench --bin tvla_micro -- \
//!     [--traces N] [--quick] [--metrics PATH]
//! ```
//!
//! Phases, per 64-lane group (fig14 FF configuration, σ = 12):
//!
//! * **narrow** (scalar tail, `GM_MOMENTS_WIDE=0` equivalent): `eval`
//!   (bitsliced encrypt incl. the lane-major record transpose), `demux`
//!   ([`CycleLaneCounters::lane_into`] per lane), `power` (scalar
//!   [`PowerModel::trace_into`] per lane), `moments`
//!   ([`TraceMoments::add_block`] per 256-trace block);
//! * **wide** (lane-major tail, the default): `eval` (records skipped),
//!   `widen` ([`PowerModel::trace_group_into`] + one row copy per lane),
//!   `moments` ([`TraceMoments::add_block`] per row-major block);
//! * **noise-fill**: the bulk ziggurat tile alone — the irreducible
//!   measurement-noise floor at σ > 0.
//!
//! The two chains run identical seeds; their final moment states must be
//! bit-identical (asserted), so the comparison times equal work.

use gm_bench::{Args, MetricsSink};
use gm_core::MaskRng;
use gm_des::masked::{BitslicedDes, MaskedDesFf};
use gm_des::power::{CycleLaneCounters, GroupScratch, PowerModel};
use gm_leakage::{BlockScratch, TraceMoments};
use gm_obs::Report;
use gm_sim::MeasurementModel;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

const KEY: u64 = 0x133457799BBCDFF1;
const SIGMA: f64 = 12.0;
const NS: usize = MaskedDesFf::TOTAL_CYCLES;
const LANES: usize = 64;
/// Traces per moments fold — the campaign's acquisition block size.
const BLOCK: usize = 256;

#[derive(Default)]
struct Phases {
    eval: f64,
    demux: f64,
    power: f64,
    widen: f64,
    moments: f64,
}

impl Phases {
    fn total(&self) -> f64 {
        self.eval + self.demux + self.power + self.widen + self.moments
    }
}

fn draw_group(pt_rng: &mut SmallRng, pts: &mut [u64; LANES]) {
    for p in pts.iter_mut() {
        *p = pt_rng.random();
    }
}

/// Scalar tail: record transpose → per-lane demux → scalar power chain →
/// row-major block fold.
fn run_narrow(groups: usize, seed: u64, timed: bool) -> (Phases, TraceMoments) {
    let engine = BitslicedDes::new(KEY);
    let mut counters = CycleLaneCounters::new();
    let mut power = PowerModel::ff(SIGMA, seed);
    let mut mask_rng = MaskRng::new(seed ^ 0x9e37_79b9);
    let mut pt_rng = SmallRng::seed_from_u64(seed ^ 0x60be_e2be);
    let mut pts = [0u64; LANES];
    let mut records: Vec<Vec<_>> = vec![Vec::new(); LANES];
    let mut block = vec![0.0f64; BLOCK * NS];
    let mut rows = 0usize;
    let mut m = TraceMoments::new(NS);
    let mut scratch = BlockScratch::new(NS);
    let mut ph = Phases::default();
    let clock = |on: bool| if on { Some(Instant::now()) } else { None };
    let lap = |t: Option<Instant>, acc: &mut f64| {
        if let Some(t) = t {
            *acc += t.elapsed().as_secs_f64();
        }
    };
    for _ in 0..groups {
        draw_group(&mut pt_rng, &mut pts);
        let t = clock(timed);
        counters.skip_records = false;
        engine.encrypt_ff_group(&pts, &mut mask_rng, &mut counters);
        lap(t, &mut ph.eval);
        let t = clock(timed);
        for (lane, rec) in records.iter_mut().enumerate() {
            counters.lane_into(lane, rec);
        }
        lap(t, &mut ph.demux);
        let t = clock(timed);
        for rec in &records {
            power.trace_into(rec, &mut block[rows * NS..][..NS]);
            rows += 1;
        }
        lap(t, &mut ph.power);
        if rows == BLOCK {
            let t = clock(timed);
            m.add_block(&block, &mut scratch);
            lap(t, &mut ph.moments);
            rows = 0;
        }
    }
    if rows > 0 {
        let t = clock(timed);
        m.add_block(&block[..rows * NS], &mut scratch);
        lap(t, &mut ph.moments);
    }
    (ph, m)
}

/// Lane-major tail: no records, group-wide power conversion, one row
/// copy per lane, row-major `add_block` fold.
fn run_wide(groups: usize, seed: u64, timed: bool) -> (Phases, TraceMoments) {
    let engine = BitslicedDes::new(KEY);
    let mut counters = CycleLaneCounters::new();
    let mut power = PowerModel::ff(SIGMA, seed);
    let mut mask_rng = MaskRng::new(seed ^ 0x9e37_79b9);
    let mut pt_rng = SmallRng::seed_from_u64(seed ^ 0x60be_e2be);
    let mut pts = [0u64; LANES];
    let mut gscratch = GroupScratch::new();
    let mut block = vec![0.0f64; BLOCK * NS];
    let mut rows = 0usize;
    let mut m = TraceMoments::new(NS);
    let mut scratch = BlockScratch::new(NS);
    let mut ph = Phases::default();
    let clock = |on: bool| if on { Some(Instant::now()) } else { None };
    let lap = |t: Option<Instant>, acc: &mut f64| {
        if let Some(t) = t {
            *acc += t.elapsed().as_secs_f64();
        }
    };
    for _ in 0..groups {
        draw_group(&mut pt_rng, &mut pts);
        let t = clock(timed);
        counters.skip_records = true;
        engine.encrypt_ff_group(&pts, &mut mask_rng, &mut counters);
        lap(t, &mut ph.eval);
        let t = clock(timed);
        power.trace_group_into(&mut counters, LANES, &mut gscratch, |_, trace| {
            block[rows * NS..][..NS].copy_from_slice(trace);
            rows += 1;
        });
        lap(t, &mut ph.widen);
        if rows == BLOCK {
            let t = clock(timed);
            m.add_block(&block, &mut scratch);
            lap(t, &mut ph.moments);
            rows = 0;
        }
    }
    if rows > 0 {
        let t = clock(timed);
        m.add_block(&block[..rows * NS], &mut scratch);
        lap(t, &mut ph.moments);
    }
    (ph, m)
}

fn assert_bit_identical(a: &TraceMoments, b: &TraceMoments) {
    assert_eq!(a.count(), b.count());
    for i in 0..a.len() {
        assert_eq!(a.mean()[i].to_bits(), b.mean()[i].to_bits(), "mean sample {i}");
        for p in 2..=6 {
            assert_eq!(
                a.central_sum(p, i).to_bits(),
                b.central_sum(p, i).to_bits(),
                "order {p} sample {i}"
            );
        }
    }
}

fn main() {
    let args = Args::parse();
    let mut sink = MetricsSink::from_args("tvla_micro", &args);
    let traces = args.trace_count(12_800, 102_400);
    let groups = (traces as usize).div_ceil(LANES);
    let traces = (groups * LANES) as u64;
    println!("tvla_micro: fig14 FF pipeline, {traces} traces ({groups} groups of {LANES})");

    // Warm-up + bit-identity check at a reduced size.
    let warm = (groups / 8).max(4);
    let (_, mn) = run_narrow(warm, args.seed, false);
    let (_, mw) = run_wide(warm, args.seed, false);
    assert_bit_identical(&mn, &mw);

    let t0 = Instant::now();
    let (narrow, mn) = run_narrow(groups, args.seed, true);
    let narrow_wall = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let (wide, mw) = run_wide(groups, args.seed, true);
    let wide_wall = t0.elapsed().as_secs_f64();
    assert_bit_identical(&mn, &mw);

    // Standalone noise floor: the bulk ziggurat tile alone.
    let mut meas = MeasurementModel::new(1.0, SIGMA, 16, args.seed ^ 0x5f35);
    let mut noise = vec![0.0f64; LANES * NS];
    let t0 = Instant::now();
    for _ in 0..groups {
        meas.fill_gauss(&mut noise);
    }
    let noise_dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(&noise);

    let per = |dt: f64| dt * 1e9 / traces as f64;
    println!("\nphase breakdown (ns/trace):");
    println!("  {:<22} {:>8} {:>8}", "phase", "narrow", "wide");
    println!("  {:<22} {:>8.1} {:>8.1}", "eval (bitsliced DES)", per(narrow.eval), per(wide.eval));
    println!("  {:<22} {:>8.1} {:>8}", "demux (lane_into)", per(narrow.demux), "-");
    println!("  {:<22} {:>8.1} {:>8}", "power (trace_into)", per(narrow.power), "-");
    println!("  {:<22} {:>8} {:>8.1}", "widen (group power)", "-", per(wide.widen));
    println!(
        "  {:<22} {:>8.1} {:>8.1}",
        "moments (block fold)",
        per(narrow.moments),
        per(wide.moments)
    );
    println!(
        "  {:<22} {:>8.1} {:>8.1}",
        "TOTAL (sum | wall)",
        per(narrow.total()),
        per(wide.total())
    );
    println!("  {:<22} {:>8.1} {:>8.1}", "", per(narrow_wall), per(wide_wall));
    println!(
        "  noise-fill floor alone: {:.1} ns/trace ({} ziggurat draws/trace)",
        per(noise_dt),
        NS
    );
    println!(
        "\nthroughput: narrow {:.0} traces/s, wide {:.0} traces/s ({:.2}x), single thread",
        traces as f64 / narrow_wall,
        traces as f64 / wide_wall,
        narrow_wall / wide_wall
    );
    println!("moment states bit-identical across both chains.");

    for (name, dt) in [
        ("narrow/eval", narrow.eval),
        ("narrow/demux", narrow.demux),
        ("narrow/power", narrow.power),
        ("narrow/moments", narrow.moments),
        ("wide/eval", wide.eval),
        ("wide/widen", wide.widen),
        ("wide/moments", wide.moments),
        ("noise-fill", noise_dt),
    ] {
        sink.record_phase(name, dt, traces, Report::new());
    }
    sink.finish().expect("metrics written");
}
