//! Key recovery by Correlation Power Analysis — the attack the masking
//! exists to stop, and the attack it cannot.
//!
//! 1. Against the **PRNG-off** FF core (the paper's sanity-check mode) a
//!    first-order exact-model CPA on the round-1 S-box outputs recovers
//!    all eight 6-bit chunks of round key K1.
//! 2. Against the **masked** core the same first-order attack finds
//!    nothing at many times the budget.
//! 3. A **second-order** CPA — correlating centred-squared traces with a
//!    share-variance model — recovers key chunks from the masked core
//!    anyway, which is precisely the paper's §VII-A point: first-order
//!    masking moves the attack to order two, where the trace cost grows
//!    with the noise.

use gm_bench::{Args, MetricsSink};
use gm_core::{MaskRng, MaskedBit};
use gm_des::masked::core_ff::CycleRecord;
use gm_des::masked::{BitslicedDes, MaskedDesFf};
use gm_des::power::{CycleLaneCounters, PowerModel};
use gm_des::reference::round_keys;
use gm_des::sbox::{masked_sbox, SboxRandomness};
use gm_des::tables::{permute, E, IP};
use gm_leakage::Cpa;
use gm_netlist::bitslice::LANES;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Acquisition-order trace generator for the attacks: draws plaintexts,
/// runs the masked FF core, and yields `(plaintext, trace)` pairs. The
/// default backend packs 64 encryptions per pass through the bitsliced
/// engine; `--scalar` replays them one at a time through the reference
/// core. Both consume the plaintext/mask/noise RNG streams identically,
/// so the attack statistics are bit-for-bit the same either way.
struct TraceGen {
    scalar: Option<MaskedDesFf>,
    engine: BitslicedDes,
    mask_rng: MaskRng,
    pt_rng: SmallRng,
    power: PowerModel,
    counters: CycleLaneCounters,
    pts: Vec<u64>,
    cycles: Vec<CycleRecord>,
    lane: usize,
    /// Traces not yet yielded (sizes the final partial lane group so the
    /// plaintext RNG consumption matches the scalar path exactly).
    remaining: u64,
}

impl TraceGen {
    fn new(
        key: u64,
        mask_rng: MaskRng,
        pt_rng: SmallRng,
        power: PowerModel,
        total: u64,
        scalar: bool,
    ) -> Self {
        TraceGen {
            scalar: scalar.then(|| MaskedDesFf::new(key)),
            engine: BitslicedDes::new(key),
            mask_rng,
            pt_rng,
            power,
            counters: CycleLaneCounters::new(),
            pts: Vec::with_capacity(LANES),
            cycles: Vec::with_capacity(MaskedDesFf::TOTAL_CYCLES),
            lane: 0,
            remaining: total,
        }
    }

    /// Fill `out` with the next power trace; returns its plaintext.
    fn next_into(&mut self, out: &mut [f64]) -> u64 {
        self.remaining -= 1;
        if let Some(core) = &self.scalar {
            let pt: u64 = self.pt_rng.random();
            let (_, cycles) = core.encrypt_with_cycles(pt, &mut self.mask_rng);
            self.power.trace_into(&cycles, out);
            return pt;
        }
        if self.lane == self.pts.len() {
            let group = (self.remaining + 1).min(LANES as u64) as usize;
            self.pts.clear();
            for _ in 0..group {
                self.pts.push(self.pt_rng.random());
            }
            self.engine.encrypt_ff_group(&self.pts, &mut self.mask_rng, &mut self.counters);
            self.lane = 0;
        }
        self.counters.lane_into(self.lane, &mut self.cycles);
        self.power.trace_into(&self.cycles, out);
        let pt = self.pts[self.lane];
        self.lane += 1;
        pt
    }
}

/// Predicted leakage for S-box `s` under subkey guess `k`.
///
/// With the PRNG off the device's sharing is fully deterministic, so the
/// attacker — who knows the circuit — predicts the *exact share values*
/// of the round-1 S-box output (an exact-model/profiled CPA): share 0 of
/// every wire is the public zero-mask evaluation, share 1 completes the
/// value. A plain `HW(S(x ⊕ k))` model fails here precisely because the
/// masked circuit's share 0 is a non-linear function of the data — the
/// implementation changes the leakage function, not just its magnitude.
fn prediction(pt: u64, s: usize, k: u8) -> f64 {
    let ip = permute(pt, 64, &IP);
    let r0 = ip & 0xFFFF_FFFF;
    let expanded = permute(r0, 32, &E);
    let six = ((expanded >> (42 - 6 * s)) & 0x3F) as u8 ^ k;
    // Replay the masked S-box with the degenerate (PRNG-off) sharing.
    let bits: [MaskedBit; 6] =
        std::array::from_fn(|i| MaskedBit { s0: false, s1: (six >> (5 - i)) & 1 == 1 });
    let out = masked_sbox(s, &bits, &SboxRandomness::default());
    out.iter().map(|b| f64::from(u8::from(b.s0) + u8::from(b.s1))).sum()
}

fn attack(
    key: u64,
    prng_on: bool,
    traces: u64,
    noise: f64,
    seed: u64,
    scalar: bool,
) -> (Vec<u8>, Vec<f64>) {
    let mask_rng = if prng_on { MaskRng::new(seed) } else { MaskRng::disabled() };
    let pt_rng = SmallRng::seed_from_u64(seed ^ 0xccaa);
    let power = PowerModel::ff(noise, seed ^ 0x90);
    let mut gen = TraceGen::new(key, mask_rng, pt_rng, power, traces, scalar);

    let mut cpas: Vec<Cpa> = (0..8).map(|_| Cpa::new(64, MaskedDesFf::TOTAL_CYCLES)).collect();
    let mut preds = vec![0.0f64; 64];
    let mut trace = vec![0.0f64; MaskedDesFf::TOTAL_CYCLES];
    for _ in 0..traces {
        let pt = gen.next_into(&mut trace);
        for (s, cpa) in cpas.iter_mut().enumerate() {
            for (k, p) in preds.iter_mut().enumerate() {
                *p = prediction(pt, s, k as u8);
            }
            cpa.add(&preds, &trace);
        }
    }
    let mut guesses = Vec::new();
    let mut peaks = Vec::new();
    for cpa in &cpas {
        let (k, rho) = cpa.best();
        guesses.push(k as u8);
        peaks.push(rho);
    }
    (guesses, peaks)
}

/// Second-order prediction for S-box `s` under guess `k`: the variance
/// of the share-wise register toggles at the S-box-output load depends on
/// the unshared bits — a bit whose value toggles deterministically
/// (HD = 1) contributes no variance, a quiet bit (HD = 0) contributes a
/// full unit. Round 1 loads over a zeroed register, so HD = the S-box
/// output bits: prediction = 4 − HW(S(x ⊕ k)).
fn prediction2(pt: u64, s: usize, k: u8) -> f64 {
    let ip = permute(pt, 64, &IP);
    let r0 = ip & 0xFFFF_FFFF;
    let expanded = permute(r0, 32, &E);
    let six = ((expanded >> (42 - 6 * s)) & 0x3F) as u8 ^ k;
    4.0 - f64::from(gm_des::reference::sbox_lookup(&gm_des::tables::SBOXES[s], six).count_ones())
}

/// Second-order CPA against the fully masked core: centre and square the
/// traces, then correlate with the variance model.
fn attack_second_order(
    key: u64,
    traces: u64,
    noise: f64,
    seed: u64,
    scalar: bool,
) -> (Vec<u8>, Vec<f64>) {
    let mask_rng = MaskRng::new(seed);
    let pt_rng = SmallRng::seed_from_u64(seed ^ 0x2ccaa);
    let power = PowerModel::ff(noise, seed ^ 0x290);
    // Pass 1 (calibration) and pass 2 share one generator, continuing
    // the same RNG streams — as the scalar loops did.
    let calib = (traces / 4).max(500);
    let mut gen = TraceGen::new(key, mask_rng, pt_rng, power, calib + traces, scalar);
    let mut trace = vec![0.0f64; MaskedDesFf::TOTAL_CYCLES];

    // Pass 1: per-sample means (streaming, over a prefix).
    let mut mean = vec![0.0f64; MaskedDesFf::TOTAL_CYCLES];
    for _ in 0..calib {
        gen.next_into(&mut trace);
        for (m, t) in mean.iter_mut().zip(&trace) {
            *m += t;
        }
    }
    mean.iter_mut().for_each(|m| *m /= calib as f64);

    // Pass 2: CPA on centred squares.
    let mut cpas: Vec<Cpa> = (0..8).map(|_| Cpa::new(64, MaskedDesFf::TOTAL_CYCLES)).collect();
    let mut preds = vec![0.0f64; 64];
    let mut sq = vec![0.0f64; MaskedDesFf::TOTAL_CYCLES];
    for _ in 0..traces {
        let pt = gen.next_into(&mut trace);
        for ((q, t), m) in sq.iter_mut().zip(&trace).zip(&mean) {
            let c = t - m;
            *q = c * c;
        }
        for (s, cpa) in cpas.iter_mut().enumerate() {
            for (k, p) in preds.iter_mut().enumerate() {
                *p = prediction2(pt, s, k as u8);
            }
            cpa.add(&preds, &sq);
        }
    }
    let mut guesses = Vec::new();
    let mut peaks = Vec::new();
    for cpa in &cpas {
        let (k, rho) = cpa.best();
        guesses.push(k as u8);
        peaks.push(rho);
    }
    (guesses, peaks)
}

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("cpa_attack", &args);
    let key = 0x133457799BBCDFF1u64;
    let k1 = round_keys(key)[0];
    let true_chunks: Vec<u8> = (0..8).map(|s| ((k1 >> (42 - 6 * s)) & 0x3F) as u8).collect();
    println!("CPA key recovery against the masked DES cores");
    println!(
        "target: round key K1 = {k1:012x} (8 × 6-bit chunks; {} trace backend)\n",
        if args.scalar { "scalar" } else { "bitsliced" }
    );

    // Attack 1: PRNG off.
    let n_off = args.trace_count(2_000, 6_000);
    let t0 = std::time::Instant::now();
    let (guesses, peaks) = attack(key, false, n_off, 6.0, args.seed, args.scalar);
    metrics.record_phase("cpa1-prng-off", t0.elapsed().as_secs_f64(), n_off, gm_obs::Report::new());
    println!("--- PRNG OFF, {n_off} traces ---");
    println!("  sbox  guess  true  peak-rho  correct");
    let mut correct = 0;
    for s in 0..8 {
        let ok = guesses[s] == true_chunks[s];
        correct += usize::from(ok);
        println!(
            "  S{}    {:02x}     {:02x}    {:+.3}    {}",
            s + 1,
            guesses[s],
            true_chunks[s],
            peaks[s],
            if ok { "yes" } else { "NO" }
        );
    }
    println!("recovered {correct}/8 subkey chunks\n");

    // Attack 2: PRNG on, many more traces.
    let n_on = 4 * n_off;
    let t0 = std::time::Instant::now();
    let (guesses_on, peaks_on) = attack(key, true, n_on, 6.0, args.seed ^ 1, args.scalar);
    metrics.record_phase("cpa1-masked", t0.elapsed().as_secs_f64(), n_on, gm_obs::Report::new());
    let correct_on = (0..8).filter(|&s| guesses_on[s] == true_chunks[s]).count();
    let max_peak = peaks_on.iter().cloned().fold(0.0f64, f64::max);
    println!("--- PRNG ON (masked), {n_on} traces ---");
    println!("recovered {correct_on}/8 subkey chunks; best peak rho = {max_peak:+.3}");
    println!(
        "{}\n",
        if correct_on <= 2 && max_peak < 0.1 {
            "first-order CPA fails against the masked core, as it must."
        } else {
            "WARNING: unexpected first-order CPA success against the masked core!"
        }
    );

    // Attack 3: SECOND-order CPA against the masked core — the paper's
    // §VII-A "an adversary would likely be better off using a
    // second-order attack".
    let n_2nd = 8 * n_off;
    let t0 = std::time::Instant::now();
    let (g2, p2) = attack_second_order(key, n_2nd, 6.0, args.seed ^ 2, args.scalar);
    metrics.record_phase("cpa2-masked", t0.elapsed().as_secs_f64(), n_2nd, gm_obs::Report::new());
    let correct_2nd = (0..8).filter(|&s| g2[s] == true_chunks[s]).count();
    println!("--- PRNG ON (masked), SECOND-order CPA, {n_2nd} traces ---");
    println!("  sbox  guess  true  peak-rho  correct");
    for s in 0..8 {
        println!(
            "  S{}    {:02x}     {:02x}    {:+.3}    {}",
            s + 1,
            g2[s],
            true_chunks[s],
            p2[s],
            if g2[s] == true_chunks[s] { "yes" } else { "no" }
        );
    }
    println!("recovered {correct_2nd}/8 subkey chunks at order two");
    println!(
        "{}",
        if correct_2nd >= 6 {
            "⇒ the masked core falls to a second-order attack — exactly the \
             residual risk the paper accepts and prices via noise (§I, §VII-A)."
        } else {
            "second-order attack inconclusive at this budget; raise --traces."
        }
    );
    metrics.finish().expect("write metrics");
}
