//! **Fig. 16** — power trace covering one full DES operation on the
//! secAND2-PD core (two cycles per round).
//!
//! Compare with Fig. 13: far fewer, denser bursts — the whole S-box
//! evaluates combinationally inside each cycle, and the delay lines add
//! a long activity tail within the cycle.

use gm_bench::panel::{ascii_power, single_trace};
use gm_bench::Args;
use gm_des::tvla_src::{CoreVariant, GateLevelSource, SourceConfig};
use gm_leakage::report;

fn main() {
    let args = Args::parse();
    let mut cfg = SourceConfig::new(CoreVariant::Pd { unit_luts: 10 });
    cfg.seed = args.seed;
    cfg.noise_sigma = 4.0;
    let bins_per_cycle = 8;
    let mut src = GateLevelSource::new(cfg, bins_per_cycle, 0.4);
    let trace = single_trace(&mut src);

    println!("FIG. 16 — power trace of the protected DES (secAND2-PD, 2 cycles/round)");
    println!(
        "{} samples ({} per clock cycle), clock period {} ps",
        trace.len(),
        bins_per_cycle,
        src.period_ps()
    );
    println!();
    println!("{}", ascii_power(&trace, 110));

    let path = format!("{}/fig16_power_trace.csv", args.out_dir);
    report::write_csv(&path, &["sample", "power"], &[&trace]).expect("write CSV");
    println!("CSV written to {path}");
}
