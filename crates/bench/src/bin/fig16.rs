//! **Fig. 16** — power trace covering one full DES operation on the
//! secAND2-PD core (two cycles per round).
//!
//! Compare with Fig. 13: far fewer, denser bursts — the whole S-box
//! evaluates combinationally inside each cycle, and the delay lines add
//! a long activity tail within the cycle.

use gm_bench::panel::{ascii_power, single_trace};
use gm_bench::{Args, MetricsSink};
use gm_des::tvla_src::{CoreVariant, GateLevelSource, SourceConfig};
use gm_leakage::{report, TraceSource};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("fig16", &args);
    let mut cfg = SourceConfig::new(CoreVariant::Pd { unit_luts: 10 });
    cfg.seed = args.seed;
    cfg.noise_sigma = 4.0;
    let bins_per_cycle = 8;
    let mut src = GateLevelSource::new(cfg, bins_per_cycle, 0.4);
    let t0 = Instant::now();
    let trace = single_trace(&mut src);
    let mut counters = gm_obs::Report::new();
    src.obs_report(&mut counters);
    metrics.record_phase("single-trace", t0.elapsed().as_secs_f64(), 1, counters);

    println!("FIG. 16 — power trace of the protected DES (secAND2-PD, 2 cycles/round)");
    println!(
        "{} samples ({} per clock cycle), clock period {} ps",
        trace.len(),
        bins_per_cycle,
        src.period_ps()
    );
    println!();
    println!("{}", ascii_power(&trace, 110));

    let path = format!("{}/fig16_power_trace.csv", args.out_dir);
    report::write_csv(&path, &["sample", "power"], &[&trace]).expect("write CSV");
    println!("CSV written to {path}");
    metrics.finish().expect("write metrics");
}
