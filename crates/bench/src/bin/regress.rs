//! Bench regression gate over the `BENCH_*.json` trajectories (CI).
//!
//! Usage:
//!
//! ```text
//! regress [--file PATH ...] [--max-drop PCT]
//! regress --inject slow|flip --file PATH
//! ```
//!
//! Gate mode (the default) checks the newest row of each trajectory
//! against its baseline — the most recent earlier row of the same
//! campaign, thread count, trace count, and backend (rows measured under
//! different conditions are not comparable and never gate each other).
//! The gate fails when:
//!
//! * throughput dropped by more than `--max-drop` percent (default 30,
//!   sized to catch real regressions over CI machine noise), or
//! * a leakage conclusion flipped: any `max_abs_t1` /
//!   `table1_leaky_max_t1` / `table1_safe_max_t1` member present in both
//!   rows moved across the ±4.5 decision threshold.
//!
//! With no `--file`, both standard trajectories (`BENCH_tvla.json`,
//! `BENCH_gate.json`) are gated. A trajectory with no comparable
//! baseline passes vacuously (first row after a harness change).
//!
//! Inject mode appends a synthetic defective row (label
//! `synthetic-regression`) cloned from the newest: `slow` multiplies the
//! wall time by 20, `flip` moves every t-conclusion member across the
//! threshold. CI uses it to prove the gate actually fails — offline, no
//! slow re-run needed.
//!
//! Exit codes: 0 pass, 1 regression detected, 2 usage or read error.

use gm_bench::record::append_record;
use gm_bench::{read_records, BenchRecord};
use gm_leakage::THRESHOLD;

const DEFAULT_FILES: [&str; 2] = ["BENCH_tvla.json", "BENCH_gate.json"];
const DEFAULT_MAX_DROP: f64 = 30.0;

/// The extras whose above/below-±4.5 state is a campaign conclusion.
const CONCLUSION_KEYS: [&str; 3] = ["max_abs_t1", "table1_leaky_max_t1", "table1_safe_max_t1"];

fn extra_f64(rec: &BenchRecord, key: &str) -> Option<f64> {
    rec.extra.iter().find(|(k, _)| k == key).and_then(|(_, raw)| raw.trim().parse().ok())
}

fn extra_raw<'a>(rec: &'a BenchRecord, key: &str) -> Option<&'a str> {
    rec.extra.iter().find(|(k, _)| k == key).map(|(_, raw)| raw.as_str())
}

/// Whether `cand` was measured under the same conditions as `newest`.
fn comparable(cand: &BenchRecord, newest: &BenchRecord) -> bool {
    cand.campaign == newest.campaign
        && cand.threads == newest.threads
        && cand.traces == newest.traces
        && extra_raw(cand, "backend") == extra_raw(newest, "backend")
}

/// Gate one trajectory. `Ok` carries the human-readable verdict lines;
/// `Err` carries the regression message(s).
fn gate(rows: &[BenchRecord], max_drop: f64) -> Result<String, String> {
    let Some(newest) = rows.last() else {
        return Ok("empty trajectory — nothing to gate".to_owned());
    };
    let Some(baseline) = rows[..rows.len() - 1].iter().rev().find(|r| comparable(r, newest)) else {
        return Ok(format!(
            "newest row \"{}\" has no comparable baseline ({} @ {} traces, {} threads) — \
             pass (vacuous)",
            newest.label, newest.campaign, newest.traces, newest.threads
        ));
    };

    let mut failures = Vec::new();
    let (new_tps, base_tps) = (newest.traces_per_sec(), baseline.traces_per_sec());
    let drop_pct = 100.0 * (1.0 - new_tps / base_tps.max(f64::MIN_POSITIVE));
    if drop_pct > max_drop {
        failures.push(format!(
            "throughput regression: \"{}\" runs {:.0} traces/s vs baseline \"{}\" at {:.0} \
             ({:.1}% drop, bound {max_drop}%)",
            newest.label, new_tps, baseline.label, base_tps, drop_pct
        ));
    }
    for key in CONCLUSION_KEYS {
        let (Some(new_t), Some(base_t)) = (extra_f64(newest, key), extra_f64(baseline, key)) else {
            continue;
        };
        if (new_t > THRESHOLD) != (base_t > THRESHOLD) {
            failures.push(format!(
                "conclusion flip: {key} moved across ±{THRESHOLD} \
                 (baseline \"{}\": {base_t:.3}, newest \"{}\": {new_t:.3})",
                baseline.label, newest.label
            ));
        }
    }
    if failures.is_empty() {
        Ok(format!(
            "\"{}\" vs baseline \"{}\": {:.0} vs {:.0} traces/s ({:+.1}%), conclusions stable",
            newest.label, baseline.label, new_tps, base_tps, -drop_pct
        ))
    } else {
        Err(failures.join("\n  "))
    }
}

/// Build the synthetic defective row for `--inject`.
fn injected(newest: &BenchRecord, mode: &str) -> BenchRecord {
    let mut row = newest.clone();
    row.label = "synthetic-regression".to_owned();
    match mode {
        "slow" => row.seconds *= 20.0,
        "flip" => {
            for (key, raw) in &mut row.extra {
                if !CONCLUSION_KEYS.contains(&key.as_str()) {
                    continue;
                }
                let Ok(v) = raw.trim().parse::<f64>() else { continue };
                let flipped = if v > THRESHOLD { THRESHOLD / 4.0 } else { THRESHOLD * 2.0 + 0.5 };
                *raw = format!("{flipped:.3}");
            }
        }
        other => usage(&format!("unknown --inject mode {other} (use slow|flip)")),
    }
    row
}

fn usage(msg: &str) -> ! {
    eprintln!("regress: {msg}");
    eprintln!("usage: regress [--file PATH ...] [--max-drop PCT] [--inject slow|flip]");
    std::process::exit(2);
}

fn main() {
    let mut files: Vec<String> = Vec::new();
    let mut max_drop = DEFAULT_MAX_DROP;
    let mut inject: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = || it.next().unwrap_or_else(|| usage(&format!("flag {flag} needs a value")));
        match flag.as_str() {
            "--file" => files.push(grab()),
            "--max-drop" => {
                max_drop = grab().parse().unwrap_or_else(|_| usage("--max-drop takes a percent"))
            }
            "--inject" => inject = Some(grab()),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    if let Some(mode) = inject {
        let [file] = files.as_slice() else {
            usage("--inject needs exactly one --file");
        };
        let rows = read_records(file).unwrap_or_else(|e| usage(&e));
        let Some(newest) = rows.last() else {
            usage(&format!("{file}: empty trajectory, nothing to clone"));
        };
        let row = injected(newest, &mode);
        append_record(file, &row.to_json()).unwrap_or_else(|e| usage(&format!("{file}: {e}")));
        println!("{file}: appended synthetic `{mode}` regression row (from \"{}\")", newest.label);
        return;
    }

    if files.is_empty() {
        files = DEFAULT_FILES.iter().map(|s| (*s).to_owned()).collect();
    }
    let mut failed = false;
    for file in &files {
        let rows = match read_records(file) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("regress: {e}");
                std::process::exit(2);
            }
        };
        match gate(&rows, max_drop) {
            Ok(verdict) => println!("{file}: {verdict}"),
            Err(msg) => {
                eprintln!("{file}: REGRESSION\n  {msg}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("regress: {} trajectory file(s): OK", files.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(label: &str, seconds: f64, safe_t: f64) -> BenchRecord {
        let mut r = BenchRecord::new(label, "fig15-gate-placement", 200_000, 8, seconds);
        r.git_rev = "test".to_owned();
        r.with("backend", "\"compiled-schedule\"".to_owned()).with_f64("table1_safe_max_t1", safe_t)
    }

    #[test]
    fn empty_and_single_row_trajectories_pass() {
        assert!(gate(&[], 30.0).is_ok());
        assert!(gate(&[row("only", 0.05, 1.5)], 30.0).is_ok());
    }

    #[test]
    fn stable_trajectory_passes() {
        let rows = vec![row("a", 0.050, 1.5), row("b", 0.052, 1.6)];
        gate(&rows, 30.0).unwrap();
    }

    #[test]
    fn throughput_drop_fails() {
        let rows = vec![row("a", 0.05, 1.5), row("slow", 0.05 * 20.0, 1.5)];
        let err = gate(&rows, 30.0).unwrap_err();
        assert!(err.contains("throughput regression"), "{err}");
    }

    #[test]
    fn conclusion_flip_fails_even_at_same_speed() {
        let rows = vec![row("a", 0.05, 1.5), row("flip", 0.05, 9.5)];
        let err = gate(&rows, 30.0).unwrap_err();
        assert!(err.contains("conclusion flip"), "{err}");
        assert!(err.contains("table1_safe_max_t1"), "{err}");
    }

    #[test]
    fn incomparable_rows_never_gate_each_other() {
        // Different thread count: a slower single-thread row is not a
        // regression against an 8-thread baseline.
        let mut single = row("one-thread", 1.0, 1.5);
        single.threads = 1;
        let rows = vec![row("a", 0.05, 1.5), single];
        let verdict = gate(&rows, 30.0).unwrap();
        assert!(verdict.contains("no comparable baseline"), "{verdict}");
        // Different backend: same condition.
        let mut scalar = row("scalar", 1.0, 1.5);
        scalar.extra[0] = ("backend".to_owned(), "\"scalar\"".to_owned());
        let rows = vec![row("a", 0.05, 1.5), scalar];
        assert!(gate(&rows, 30.0).unwrap().contains("no comparable baseline"));
    }

    #[test]
    fn baseline_skips_incomparable_middle_rows() {
        let mut single = row("one-thread", 1.0, 1.5);
        single.threads = 1;
        let rows = vec![row("a", 0.05, 1.5), single, row("c", 0.048, 1.4)];
        let verdict = gate(&rows, 30.0).unwrap();
        assert!(verdict.contains("baseline \"a\""), "{verdict}");
    }

    /// BENCH_tvla-shaped rows: the lane-major statistics kernel starts a
    /// new `bitsliced-wide` backend series. Its first row has no
    /// comparable baseline — the pinned-tail rows differ in backend and
    /// the historical rows in thread count — so it passes vacuously;
    /// from the second comparable row on, the series gates itself on
    /// both throughput and the max|t1| conclusion.
    #[test]
    fn tvla_new_backend_series_gates_itself_only() {
        let tvla = |label: &str, backend: &str, threads: usize, seconds: f64, t1: f64| {
            let mut r = BenchRecord::new(label, "fig14-ff-cycle-model", 100_000, threads, seconds);
            r.git_rev = "test".to_owned();
            r.with("backend", format!("\"{backend}\"")).with_f64("max_abs_t1", t1)
        };
        let rows = vec![
            tvla("bitsliced", "bitsliced", 8, 0.313, 2.587),
            tvla("lane-moments", "scalar", 1, 3.0, 2.587),
            tvla("lane-moments", "bitsliced", 1, 0.40, 2.587),
            tvla("lane-moments", "bitsliced-wide", 1, 0.30, 2.587),
        ];
        assert!(gate(&rows, 30.0).unwrap().contains("no comparable baseline"));

        let mut grown = rows.clone();
        grown.push(tvla("next", "bitsliced-wide", 1, 0.31, 2.6));
        gate(&grown, 30.0).expect("3% drift within bound");
        grown.push(tvla("slow", "bitsliced-wide", 1, 3.0, 2.6));
        let err = gate(&grown, 30.0).unwrap_err();
        assert!(err.contains("throughput regression"), "{err}");

        let mut flipped = rows;
        flipped.push(tvla("flip", "bitsliced-wide", 1, 0.30, 9.9));
        let err = gate(&flipped, 30.0).unwrap_err();
        assert!(err.contains("conclusion flip") && err.contains("max_abs_t1"), "{err}");
    }

    #[test]
    fn injected_rows_trip_the_gate() {
        let base = row("good", 0.05, 1.5);
        let slow = injected(&base, "slow");
        assert_eq!(slow.label, "synthetic-regression");
        assert!(gate(&[base.clone(), slow], 30.0).is_err());
        let flip = injected(&base, "flip");
        assert!(extra_f64(&flip, "table1_safe_max_t1").unwrap() > THRESHOLD);
        assert!(gate(&[base, flip], 30.0).is_err());
    }
}
