//! **Fig. 14** — leakage assessment of the protected DES design using
//! secAND2-FF.
//!
//! Four panels, as in the paper:
//!
//! * **a** — PRNG off: first-order leakage flags almost immediately
//!   (the paper: very significant peaks within 12 000 of 50 M traces);
//! * **b, c, d** — PRNG on, three different fixed plaintexts: no
//!   first-order leakage over the full campaign, second-order t-values
//!   up to ≈ 60, third-order weaker. The paper's cross-plaintext
//!   consistency rule is applied to the few spurious 1st-order
//!   crossings.
//!
//! Trace scale: the campaign default (400 k) is calibrated to correspond
//! to the paper's 50 M-trace assessment (see EXPERIMENTS.md).

use gm_bench::panel::{max_abs, print_panel};
use gm_bench::{Args, MetricsSink};
use gm_des::tvla_src::{AnyCycleSource, CoreVariant, SourceConfig};
use gm_leakage::detect::{consistent_leaks, first_detection};
use gm_leakage::Campaign;

const FIXED_PLAINTEXTS: [u64; 3] = [0x0123456789ABCDEF, 0xDA39A3EE5E6B4B0D, 0x0000000000000000];

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("fig14", &args);
    let traces = args.trace_count(40_000, 400_000);
    let run_all = args.panel.is_none();
    let backend = if args.scalar { "scalar reference" } else { "64-way bitsliced" };
    println!("FIG. 14 — leakage assessment, protected DES with secAND2-FF");
    println!("(campaign: {traces} traces ≙ the paper's 50M; threshold ±4.5; {backend} backend)\n");

    // Panel (a): PRNG off.
    if run_all || args.panel.as_deref() == Some("a") {
        let mut cfg = SourceConfig::new(CoreVariant::Ff);
        cfg.prng_on = false;
        cfg.seed = args.seed;
        let campaign = Campaign::parallel(traces.min(50_000), args.seed);
        let det = first_detection(&campaign, &AnyCycleSource::new(cfg.clone(), args.scalar), 16);
        println!("--- panel (a): PRNG off (sanity check) ---");
        match det.traces {
            Some(n) => println!(
                "first-order leakage detected after {n} traces (paper: 12k of 50M scale ⇒ ~{} here)",
                12_000 * traces / 50_000_000
            ),
            None => println!("NO DETECTION — setup broken!"),
        }
        let src = AnyCycleSource::new(cfg, args.scalar);
        let r = metrics.run_streamed(
            "fig14a-prng-off",
            &Campaign::parallel(12_000.min(traces), args.seed ^ 0xa),
            &src,
        );
        print_panel("panel (a) t-curves @12k traces", &r, &args.out_dir, "fig14a");
    }

    // Panels (b)-(d): PRNG on, three fixed plaintexts.
    let mut t1_curves = Vec::new();
    for (i, (panel, pt)) in ["b", "c", "d"].iter().zip(FIXED_PLAINTEXTS).enumerate() {
        if !(run_all || args.panel.as_deref() == Some(*panel)) {
            continue;
        }
        let mut cfg = SourceConfig::new(CoreVariant::Ff);
        cfg.fixed_pt = pt;
        cfg.seed = args.seed ^ (i as u64) << 8;
        let src = AnyCycleSource::new(cfg, args.scalar);
        let r = metrics.run_streamed(
            &format!("fig14{panel}-pt{i}"),
            &Campaign::parallel(traces, args.seed ^ (0xb + i as u64)),
            &src,
        );
        print_panel(
            &format!("panel ({panel}): PRNG on, fixed plaintext {pt:#018x}"),
            &r,
            &args.out_dir,
            &format!("fig14{panel}"),
        );
        let (m1, m2, m3) = gm_bench::panel::summary_line(&r);
        println!("summary: max|t1|={m1:.2} max|t2|={m2:.2} max|t3|={m3:.2}\n");
        t1_curves.push(r.t1());
    }

    if t1_curves.len() == 3 {
        let consistent = consistent_leaks(&t1_curves);
        println!("=== Fig. 14 verdict ===");
        println!(
            "first-order crossings consistent across all three plaintexts: {} \
             (paper: none — crossings are not at the same time indexes)",
            if consistent.is_empty() { "NONE".to_owned() } else { format!("{consistent:?}") }
        );
        let worst_t1 = t1_curves.iter().map(|t| max_abs(t)).fold(0.0f64, f64::max);
        println!("worst single-plaintext max|t1| = {worst_t1:.2}");
        println!("⇒ no evidence of first-order leakage; strong second-order leakage,");
        println!("   as the paper argues a second-order attack would be the better route.");
    }
    metrics.finish().expect("write metrics");
}
