//! Campaign-throughput harness: times a fig14-style TVLA campaign
//! (cycle-model backend, secAND2-FF core, PRNG on) and appends the
//! result to `BENCH_tvla.json`, so successive PRs accumulate a
//! performance trajectory instead of one-off numbers.
//!
//! ```text
//! cargo run --release -p gm-bench --bin bench_tvla -- \
//!     --traces 100000 --threads 8 --label blocked
//! ```
//!
//! The JSON file is a flat array of run records; this binary appends
//! without disturbing earlier entries.

use gm_bench::record::append_record;
use gm_bench::Args;
use gm_des::tvla_src::{CoreVariant, CycleModelSource, SourceConfig};
use gm_leakage::Campaign;
use std::time::Instant;

const BENCH_FILE: &str = "BENCH_tvla.json";

fn main() {
    let args = Args::parse();
    let traces = args.trace_count(10_000, 100_000);
    let threads = args.threads.unwrap_or(8);
    let label = args.label.clone().unwrap_or_else(|| "unlabelled".to_owned());

    let mut cfg = SourceConfig::new(CoreVariant::Ff);
    cfg.seed = args.seed;
    let src = CycleModelSource::new(cfg);

    println!("bench_tvla: fig14-style campaign, {traces} traces, {threads} threads");
    let campaign = Campaign { traces, threads, seed: args.seed };
    let start = Instant::now();
    let result = campaign.run(&src);
    let seconds = start.elapsed().as_secs_f64();
    let tps = traces as f64 / seconds;
    let max_t1 = result.max_abs_t(1);

    println!("  {seconds:.3} s -> {tps:.0} traces/s  (max|t1| = {max_t1:.2})");

    let record = format!(
        "  {{\"label\": \"{label}\", \"campaign\": \"fig14-ff-cycle-model\", \
         \"traces\": {traces}, \"threads\": {threads}, \
         \"seconds\": {seconds:.3}, \"traces_per_sec\": {tps:.1}, \
         \"max_abs_t1\": {max_t1:.3}}}"
    );
    append_record(BENCH_FILE, &record).expect("write BENCH_tvla.json");
    println!("  recorded as \"{label}\" in {BENCH_FILE}");
}
