//! Campaign-throughput harness: times a fig14-style TVLA campaign
//! (cycle-model backend, secAND2-FF core, PRNG on) on the scalar
//! reference, the 64-way bitsliced engine with the pinned scalar
//! statistics tail (`GM_MOMENTS_WIDE=0`), and the lane-major statistics
//! kernel (`GM_MOMENTS_WIDE=1`, the default) — appending one record per
//! configuration to `BENCH_tvla.json` and asserting all three agree on
//! `max|t1|` and `max|t2|` to 1e-9. The speedup trajectory and the
//! conclusions-unchanged evidence live in the same file.
//!
//! ```text
//! cargo run --release -p gm-bench --bin bench_tvla -- \
//!     --traces 100000 --threads 8 --label lane-moments
//! ```
//!
//! `--threads` defaults to every available core (the same default
//! `bench_gate` uses — see [`Args::thread_count`]); the count actually
//! used is recorded on every row.
//!
//! The JSON file is a flat array of run records; this binary appends
//! without disturbing earlier entries. A smoke-scale overhead check
//! guards the observability layer: enabling `--metrics` collection must
//! cost < 2% of campaign throughput.

use gm_bench::metrics::assert_metrics_overhead;
use gm_bench::record::{append_record, BenchRecord};
use gm_bench::{Args, MetricsSink};
use gm_des::tvla_src::{AnyCycleSource, CoreVariant, SourceConfig};
use gm_leakage::{set_moments_wide, Campaign};
use std::time::Instant;

const BENCH_FILE: &str = "BENCH_tvla.json";

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("bench_tvla", &args);
    let traces = args.trace_count(10_000, 100_000);
    let threads = args.thread_count();
    let label = args.label.clone().unwrap_or_else(|| "unlabelled".to_owned());

    let mut cfg = SourceConfig::new(CoreVariant::Ff);
    cfg.seed = args.seed;
    let campaign = Campaign { traces, threads, seed: args.seed };

    println!("bench_tvla: fig14-style campaign, {traces} traces, {threads} threads");
    // (backend row name, scalar engine?, lane-major moments tail?)
    let configs: [(&str, bool, bool); 3] =
        [("scalar", true, false), ("bitsliced", false, false), ("bitsliced-wide", false, true)];
    let mut measured: Vec<(&'static str, f64, f64, f64)> = Vec::new();
    for (backend, scalar, wide) in configs {
        set_moments_wide(wide);
        let src = AnyCycleSource::new(cfg.clone(), scalar);
        // Untimed warm-up, then best of three identical passes: the
        // campaign is deterministic, so passes differ only by scheduler
        // noise and the fastest is the cleanest throughput estimate.
        let _ = Campaign { traces: traces / 4, threads, seed: args.seed ^ 0xaaaa }.run(&src);
        let mut result = campaign.run(&src);
        let mut seconds = f64::INFINITY;
        for rep in 0..3u32 {
            let start = Instant::now();
            // Final pass goes through the sink so the JSONL carries the
            // campaign's pool/source counters per backend.
            result = if rep == 2 {
                metrics.run(&format!("{backend}-pass"), &campaign, &src)
            } else {
                campaign.run(&src)
            };
            seconds = seconds.min(start.elapsed().as_secs_f64());
        }
        let tps = traces as f64 / seconds;
        let max_t1 = result.max_abs_t(1);
        let max_t2 = result.max_abs_t(2);
        println!("  {backend:>14}: {seconds:.3} s -> {tps:.0} traces/s  (max|t1| = {max_t1:.2})");

        let record = BenchRecord::new(&label, "fig14-ff-cycle-model", traces, threads, seconds)
            .with("backend", format!("\"{backend}\""))
            .with_f64("max_abs_t1", max_t1)
            .with_f64("max_abs_t2", max_t2);
        append_record(BENCH_FILE, &record.to_json()).expect("write BENCH_tvla.json");
        measured.push((backend, tps, max_t1, max_t2));
    }
    set_moments_wide(true);

    let (_, tps_s, t1_s, t2_s) = measured[0];
    for &(backend, _, t1, t2) in &measured[1..] {
        assert!(
            (t1_s - t1).abs() < 1e-9,
            "backends disagree on max|t1|: scalar {t1_s} vs {backend} {t1}"
        );
        assert!(
            (t2_s - t2).abs() < 1e-9,
            "backends disagree on max|t2|: scalar {t2_s} vs {backend} {t2}"
        );
    }
    let (_, tps_b, ..) = measured[1];
    let (_, tps_w, ..) = measured[2];
    println!("  bitsliced/scalar speedup: {:.1}x  (max|t1|, max|t2| agree to 1e-9)", tps_b / tps_s);
    println!("  lane-major/bitsliced speedup: {:.1}x", tps_w / tps_b);
    println!("  recorded as \"{label}\" (all three configurations) in {BENCH_FILE}");

    // Observability guarantee: metrics collection on a smoke-scale
    // campaign stays under 2% of throughput.
    let smoke = Campaign { traces: traces / 10, threads, seed: args.seed ^ 0x0b5 };
    assert_metrics_overhead(&smoke, &AnyCycleSource::new(cfg, false), 2.0, 8);
    metrics.finish().expect("write metrics");
}
