//! **Fig. 15, gate-level mechanism check** — DelayUnit size vs the
//! probability that a *placement* of `secAND2-PD` is insecure, measured
//! on the event simulator with no parametric leak model anywhere.
//!
//! The paper motivates manual placement (§V) by noting that without it
//! "the amount of delay would vary depending on where the LUTs are
//! placed … an inconsistent outcome". This experiment quantifies that:
//! sample many placements (per-instance delay factors at a rough ±85 %
//! routing spread) and measure each placement's first-order exposure —
//! the y-dependence of its switching energy. Small DelayUnits lose the
//! safe ordering on a sizeable fraction of placements; by a few LUTs the
//! margin dwarfs the spread and every placement's exposure collapses to
//! the noise floor — the monotone mechanism behind Fig. 15, obtained
//! from pure event timing.

use gm_bench::Args;
use gm_core::gadgets::sec_and2_pd::{build_sec_and2_pd, PdConfig};
use gm_core::gadgets::AndInputs;
use gm_core::{MaskRng, MaskedBit};
use gm_netlist::{GateKind, Netlist};
use gm_sim::{DelayModel, Simulator};

struct Gadget {
    netlist: Netlist,
    io: AndInputs,
    window_ps: u64,
}

fn build_gadget(unit_luts: usize) -> Gadget {
    let mut n = Netlist::new("pd");
    let io =
        AndInputs { x0: n.input("x0"), x1: n.input("x1"), y0: n.input("y0"), y1: n.input("y1") };
    let out = build_sec_and2_pd(&mut n, io, PdConfig { unit_luts });
    n.output("z0", out.z0);
    n.output("z1", out.z1);
    n.validate().unwrap();
    let window_ps = (2 * unit_luts as u64 * 1_150) * 3 + 30_000;
    Gadget { netlist: n, io, window_ps }
}

/// Directly measured first-order exposure of one placement: the
/// difference in expected switching energy of the *gadget core* between
/// `y = 1` and `y = 0` evaluations (`x` held at 1, shares fresh every
/// trace) — the localized-probe view, which also sidesteps the delay
/// lines' value-independent (but heavily correlated, hence noisy)
/// common-mode toggling. Zero for a placement that preserves the safe
/// order; the Table I Hamming-distance leak otherwise.
fn placement_bias(gadget: &Gadget, delays: &DelayModel, trials: u64, seed: u64) -> f64 {
    let n = &gadget.netlist;
    // Weights: core cells by area, delay lines and inputs excluded.
    let weights: Vec<f64> = (0..n.num_nets() as u32)
        .map(|i| match n.driver(gm_netlist::NetId(i)) {
            gm_netlist::netlist::Driver::Gate(g) if n.gate(g).kind != GateKind::DelayBuf => {
                n.gate(g).kind.area_ge()
            }
            _ => 0.0,
        })
        .collect();
    let mut rng = MaskRng::new(seed ^ 0x77);
    let mut sums = [0.0f64; 2];
    let mut cnt = [0u64; 2];
    let io = gadget.io;
    let mut sink = gm_sim::power::NetToggleSink::new(n.num_nets());
    for t in 0..trials {
        let y = rng.bit();
        let mx = MaskedBit::mask(true, &mut rng);
        let my = MaskedBit::mask(y, &mut rng);
        let mut sim = Simulator::new(n, delays, t ^ seed);
        sim.init_all_zero();
        for (net, v) in [(io.x0, mx.s0), (io.x1, mx.s1), (io.y0, my.s0), (io.y1, my.s1)] {
            sim.schedule(net, 1_000, v);
        }
        sink.clear();
        sim.run_until(gadget.window_ps, &mut sink);
        let power: f64 = sink.counts.iter().zip(&weights).map(|(&c, w)| f64::from(c) * w).sum();
        sums[usize::from(y)] += power;
        cnt[usize::from(y)] += 1;
    }
    (sums[1] / cnt[1] as f64 - sums[0] / cnt[0] as f64).abs()
}

fn main() {
    let args = Args::parse();
    let trials = args.trace_count(8_000, 20_000);
    let placements = if args.quick { 15 } else { 30 };
    println!("FIG. 15 (gate level) — per-placement first-order exposure of secAND2-PD");
    println!(
        "(±85% routing spread, 400 ps jitter; {placements} placements × {trials} runs each)\n"
    );
    println!("  LUTs/unit  worst |bias|  mean |bias|   placements > 0.1");
    println!("  ---------  ------------  -----------   ----------------");

    let mut series = Vec::new();
    for unit in [1usize, 2, 3, 5, 7, 10] {
        let gadget = build_gadget(unit);
        let mut biases = Vec::new();
        for p in 0..placements {
            let device_seed = args.seed ^ (unit as u64) << 8 ^ p as u64;
            let delays = DelayModel::with_variation(&gadget.netlist, 0.85, 400.0, device_seed);
            biases.push(placement_bias(&gadget, &delays, trials, device_seed));
        }
        let worst = biases.iter().cloned().fold(0.0f64, f64::max);
        let mean = biases.iter().sum::<f64>() / biases.len() as f64;
        let over = biases.iter().filter(|&&b| b > 0.1).count();
        println!("  {unit:>9}  {worst:>12.3}  {mean:>11.3}   {over:>7} / {placements}");
        series.push((unit as f64, worst));
    }
    println!();
    println!("No leak model is involved: a placement's exposure is decided by its");
    println!("sampled gate delays alone. Undersized DelayUnits make the safe order");
    println!("a placement lottery — the paper's motivation for fixing LUT locations");
    println!("by constraint (§V) and for the 10-LUT margin (Fig. 15). The DES-scale");
    println!("sweep in `fig15` folds this lottery into a calibrated per-evaluation");
    println!("violation probability for trace throughput.");
    let units: Vec<f64> = series.iter().map(|s| s.0).collect();
    let ws: Vec<f64> = series.iter().map(|s| s.1).collect();
    gm_leakage::report::write_csv(
        format!("{}/fig15_gate.csv", args.out_dir),
        &["idx", "unit_luts", "worst_bias"],
        &[&units, &ws],
    )
    .expect("write CSV");
}
