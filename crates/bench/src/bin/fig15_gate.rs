//! **Fig. 15, gate-level mechanism check** — DelayUnit size vs the
//! probability that a *placement* of `secAND2-PD` is insecure, measured
//! on the event simulator with no parametric leak model anywhere.
//!
//! The paper motivates manual placement (§V) by noting that without it
//! "the amount of delay would vary depending on where the LUTs are
//! placed … an inconsistent outcome". This experiment quantifies that:
//! sample many placements (per-instance delay factors at a rough ±85 %
//! routing spread) and measure each placement's first-order exposure —
//! the y-dependence of its switching energy. Small DelayUnits lose the
//! safe ordering on a sizeable fraction of placements; by a few LUTs the
//! margin dwarfs the spread and every placement's exposure collapses to
//! the noise floor — the monotone mechanism behind Fig. 15, obtained
//! from pure event timing.
//!
//! Acquisition goes through the shared [`gm_bench::gate`] sources and
//! the persistent-worker campaign pool: one simulator per worker, reset
//! per trace.

use gm_bench::gate::{build_pd_gadget, placement_bias, PdPlacementSource};
use gm_bench::{Args, MetricsSink};
use gm_leakage::Campaign;
use gm_sim::DelayModel;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("fig15_gate", &args);
    let trials = args.trace_count(8_000, 20_000);
    let placements = if args.quick { 15 } else { 30 };
    let backend = if args.scalar { "scalar event wheel" } else { "compiled schedule" };
    println!("FIG. 15 (gate level) — per-placement first-order exposure of secAND2-PD");
    println!(
        "(±85% routing spread, 400 ps jitter; {placements} placements × {trials} runs each, {backend})\n"
    );
    println!("  LUTs/unit  worst |bias|  mean |bias|   placements > 0.1");
    println!("  ---------  ------------  -----------   ----------------");

    let mut series = Vec::new();
    for unit in [1usize, 2, 3, 5, 7, 10] {
        let gadget = Arc::new(build_pd_gadget(unit));
        let mut biases = Vec::new();
        // One metrics phase per unit size: the 30 per-placement campaigns
        // would drown the JSONL, so their counters are merged here.
        let t0 = Instant::now();
        let mut unit_counters = gm_obs::Report::new();
        for p in 0..placements {
            let device_seed = args.seed ^ (unit as u64) << 8 ^ p as u64;
            let delays =
                Arc::new(DelayModel::with_variation(&gadget.netlist, 0.85, 400.0, device_seed));
            let src = if args.scalar {
                PdPlacementSource::scalar(Arc::clone(&gadget), delays, device_seed)
            } else {
                PdPlacementSource::new(Arc::clone(&gadget), delays, device_seed)
            };
            let (result, obs) = Campaign::parallel(trials, device_seed).run_observed(&src);
            unit_counters.merge(&obs.report());
            biases.push(placement_bias(&result));
        }
        metrics.record_phase(
            &format!("unit{unit}"),
            t0.elapsed().as_secs_f64(),
            trials * placements as u64,
            unit_counters,
        );
        let worst = biases.iter().cloned().fold(0.0f64, f64::max);
        let mean = biases.iter().sum::<f64>() / biases.len() as f64;
        let over = biases.iter().filter(|&&b| b > 0.1).count();
        println!("  {unit:>9}  {worst:>12.3}  {mean:>11.3}   {over:>7} / {placements}");
        series.push((unit as f64, worst));
    }
    println!();
    println!("No leak model is involved: a placement's exposure is decided by its");
    println!("sampled gate delays alone. Undersized DelayUnits make the safe order");
    println!("a placement lottery — the paper's motivation for fixing LUT locations");
    println!("by constraint (§V) and for the 10-LUT margin (Fig. 15). The DES-scale");
    println!("sweep in `fig15` folds this lottery into a calibrated per-evaluation");
    println!("violation probability for trace throughput.");
    let units: Vec<f64> = series.iter().map(|s| s.0).collect();
    let ws: Vec<f64> = series.iter().map(|s| s.1).collect();
    gm_leakage::report::write_csv(
        format!("{}/fig15_gate.csv", args.out_dir),
        &["idx", "unit_luts", "worst_bias"],
        &[&units, &ws],
    )
    .expect("write CSV");
    println!("CSV written to {}/fig15_gate.csv", args.out_dir);
    metrics.finish().expect("write metrics");
}
