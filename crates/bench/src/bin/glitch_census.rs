//! Glitch census of the two masked DES cores.
//!
//! Records full waveforms of one encryption per core and counts narrow
//! pulses (glitches) per module. The census quantifies the paper's
//! qualitative picture: the FF core confines evaluation waves behind
//! enables, while the PD core's single-cycle S-box — with its
//! deliberately skewed arrivals — generates far more transient activity
//! per cycle, all of it (by construction) on safe wires.

use gm_bench::{Args, MetricsSink};
use gm_core::MaskRng;
use gm_des::netlist_gen::driver::EncryptionInputs;
use gm_des::netlist_gen::{build_des_core, DesCoreDriver, SboxStyle};
use gm_netlist::netlist::Driver;
use gm_netlist::timing::analyze;
use gm_sim::{DelayModel, WaveformRecorder};
use std::collections::BTreeMap;

fn census(style: SboxStyle, seed: u64) -> (usize, usize, BTreeMap<String, usize>) {
    let core = build_des_core(style);
    let timing = analyze(&core.netlist).expect("valid core");
    let period = timing.critical_path_ps * 6 / 5;
    let delays = DelayModel::with_variation(&core.netlist, 0.15, 40.0, seed);
    let mut drv = DesCoreDriver::new(&core, &delays, period, seed ^ 1);
    let mut rng = MaskRng::new(seed ^ 2);
    let inputs = EncryptionInputs::draw(0x0123456789ABCDEF, 0x133457799BBCDFF1, &mut rng);
    let mut rec = WaveformRecorder::all_zero(core.netlist.num_nets());
    let _ = drv.encrypt(&inputs, &mut rec);

    // A "glitch" is a pulse narrower than half a logic level (< 600 ps):
    // wide enough to have propagated, too narrow to be a data wave.
    let mut per_module: BTreeMap<String, usize> = BTreeMap::new();
    let mut total_glitches = 0;
    for (id, count) in rec.glitch_summary(600) {
        if let Driver::Gate(g) = core.netlist.driver(id) {
            let module = core.netlist.module_of(g);
            let top = module.split('/').next().unwrap_or("(top)").to_owned();
            *per_module.entry(top).or_default() += count;
            total_glitches += count;
        }
    }
    (total_glitches, rec.total_transitions(), per_module)
}

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("glitch_census", &args);
    println!("GLITCH CENSUS — one full encryption per core, gate-level waveforms\n");
    for (name, style, phase) in [
        ("secAND2-FF core", SboxStyle::Ff, "ff-core"),
        ("secAND2-PD core (10-LUT units)", SboxStyle::Pd { unit_luts: 10 }, "pd-core"),
    ] {
        let t0 = std::time::Instant::now();
        let (glitches, transitions, by_module) = census(style, args.seed);
        let mut counters = gm_obs::Report::new();
        counters.set("census.transitions", transitions as u64);
        counters.set("census.glitches", glitches as u64);
        for (module, &count) in by_module.iter().filter(|(_, &c)| c > 0) {
            let m = if module.is_empty() { "top" } else { module };
            counters.set(&format!("census.module.{m}"), count as u64);
        }
        metrics.record_phase(phase, t0.elapsed().as_secs_f64(), 1, counters);
        println!("{name}: {transitions} transitions, {glitches} glitch pulses (<600 ps)");
        for (module, count) in by_module.iter().filter(|(_, &c)| c > 0) {
            let m = if module.is_empty() { "(top)" } else { module };
            println!("    {m:<16} {count:>6}");
        }
        println!();
    }
    println!("Both cores glitch — masking that *survives* glitches, not masking");
    println!("without glitches, is the paper's contribution. What differs is where");
    println!("the energy lands: the PD core's transients ride on the delay-ordered");
    println!("wires whose arrival sequence keeps them data-independent.");
    metrics.finish().expect("write metrics");
}
