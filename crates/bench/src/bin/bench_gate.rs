//! Gate-level campaign-throughput harness: times a fig15-gate-style
//! placement campaign on **both** event-simulator backends — the
//! compiled-schedule lane engine (the recorded number) and the scalar
//! dynamic wheel (the reference) — and appends the result to
//! `BENCH_gate.json`, mirroring `bench_tvla` for the cycle model. The
//! two backends must agree on the campaign's placement bias to within
//! floating-point summation order, and a Table I leaky/safe pair rides
//! along so the record also pins that the *conclusions* of the event
//! engine are unchanged, not just its speed.
//!
//! ```text
//! cargo run --release -p gm-bench --bin bench_gate -- \
//!     --traces 200000 --threads 8 --label compiled-schedule
//! ```

use gm_bench::gate::{
    build_pd_gadget, build_sec_and2_bank, placement_bias, PdPlacementSource, SequenceSource,
};
use gm_bench::metrics::assert_metrics_overhead;
use gm_bench::record::{append_record, BenchRecord};
use gm_bench::{Args, MetricsSink};
use gm_core::schedule::{all_sequences, predicted_leaky};
use gm_leakage::{leaks, Campaign};
use std::sync::Arc;
use std::time::Instant;

const BENCH_FILE: &str = "BENCH_gate.json";
/// DelayUnit size of the benchmarked placement (mid-sweep value).
const UNIT_LUTS: usize = 3;

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("bench_gate", &args);
    let traces = args.trace_count(5_000, 200_000);
    // Default to the machine's actual parallelism (the shared campaign
    // bench default, same as bench_tvla): oversubscribing a small box
    // with idle workers only adds context-switch overhead.
    let threads = args.thread_count();
    let label = args.label.clone().unwrap_or_else(|| "unlabelled".to_owned());

    // --- fig15-gate placement campaign (the throughput number) ---------
    let gadget = Arc::new(build_pd_gadget(UNIT_LUTS));
    let delays = Arc::new(gm_sim::DelayModel::with_variation(
        &gadget.netlist,
        0.85,
        400.0,
        args.seed ^ (UNIT_LUTS as u64) << 8,
    ));
    let src = PdPlacementSource::new(Arc::clone(&gadget), Arc::clone(&delays), args.seed);
    println!(
        "bench_gate: fig15-gate placement campaign ({UNIT_LUTS}-LUT units, \
         {} gates), {traces} traces, {threads} threads",
        gadget.netlist.num_gates()
    );
    // Untimed warm-up so the timed runs measure the simulator, not cold
    // caches or CPU frequency ramp.
    let _ = Campaign { traces: traces / 4, threads, seed: args.seed ^ 0xaaaa }.run(&src);
    // Best of three identical passes: the campaign is deterministic, so
    // the passes differ only by scheduler/frequency noise and the fastest
    // one is the cleanest estimate of the simulator's throughput.
    let campaign = Campaign { traces, threads, seed: args.seed };
    let mut result = campaign.run(&src);
    let mut seconds = f64::INFINITY;
    for rep in 0..3u32 {
        let start = Instant::now();
        // Final pass goes through the sink so the JSONL carries the
        // event simulator's counters at benchmark scale.
        result = if rep == 2 {
            metrics.run("placement-pass", &campaign, &src)
        } else {
            campaign.run(&src)
        };
        seconds = seconds.min(start.elapsed().as_secs_f64());
    }
    let tps = traces as f64 / seconds;
    let bias = placement_bias(&result);
    println!(
        "  compiled schedule: {seconds:.3} s -> {tps:.0} traces/s  (placement bias {bias:.3})"
    );
    // The bias is a pure function of (seed, traces, threads): the quota
    // split is deterministic and each worker forks its device streams
    // from its index. Re-running the identical campaign must land on
    // the identical estimate — pinned here at benchmark scale so a
    // nondeterminism regression can't masquerade as estimator noise.
    {
        let again = placement_bias(&campaign.run(&src));
        assert!(
            bias.to_bits() == again.to_bits(),
            "placement bias not reproducible under a fixed campaign config: {bias} vs {again}"
        );
    }
    // Rows of BENCH_gate.json were recorded at different trace counts
    // and thread counts, and the bias estimate moves with both (1/√N
    // sampling noise; per-worker stream regrouping). The reference
    // field below is measured at one pinned configuration — 30k traces,
    // 1 thread, fixed seed — so it is comparable across rows and
    // machines; `placement_bias` keeps the value at the row's own
    // benchmark configuration.
    let ref_campaign = Campaign { traces: 30_000, threads: 1, seed: 0x5eed };
    let bias_ref = placement_bias(&ref_campaign.run(&src));
    println!("  reference bias (30k traces, 1 thread, seed 0x5eed): {bias_ref:.4}");

    // --- scalar-wheel reference: timed every run, and the campaign must
    // agree with the compiled backend (same traces up to floating-point
    // summation order inside a trace's energy). -----------------------
    let scalar_src = PdPlacementSource::scalar(Arc::clone(&gadget), Arc::clone(&delays), args.seed);
    let mut scalar_seconds = f64::INFINITY;
    let mut scalar_result = campaign.run(&scalar_src);
    for _ in 0..2u32 {
        let start = Instant::now();
        scalar_result = campaign.run(&scalar_src);
        scalar_seconds = scalar_seconds.min(start.elapsed().as_secs_f64());
    }
    let scalar_tps = traces as f64 / scalar_seconds;
    let scalar_bias = placement_bias(&scalar_result);
    println!(
        "  scalar wheel:      {scalar_seconds:.3} s -> {scalar_tps:.0} traces/s  \
         (placement bias {scalar_bias:.3}, speedup {:.1}x)",
        tps / scalar_tps
    );
    assert!(
        (bias - scalar_bias).abs() <= 1e-9 * scalar_bias.abs().max(1.0),
        "backends disagree on placement bias: compiled {bias} vs scalar {scalar_bias}"
    );

    // --- Table I leaky/safe conclusion check ---------------------------
    let check_traces = 4_000.min(traces);
    let bank = Arc::new(build_sec_and2_bank(8));
    let bank_delays =
        Arc::new(gm_sim::DelayModel::with_variation(&bank.netlist, 0.15, 40.0, args.seed ^ 0x7a51));
    let seqs = all_sequences();
    let leaky_seq = *seqs.iter().find(|s| predicted_leaky(s)).expect("a leaky sequence exists");
    let safe_seq = *seqs.iter().find(|s| !predicted_leaky(s)).expect("a safe sequence exists");
    let mut verdicts = Vec::new();
    for (name, seq, expect_leak) in [("leaky", leaky_seq, true), ("safe", safe_seq, false)] {
        let src = SequenceSource::new(Arc::clone(&bank), Arc::clone(&bank_delays), seq, args.seed);
        let r = metrics.run(
            &format!("table1-{name}"),
            &Campaign { traces: check_traces, threads, seed: args.seed ^ 0x1ab1e },
            &src,
        );
        let t1 = r.t1();
        let max_t = t1.iter().fold(0.0f64, |m, t| m.max(t.abs()));
        let verdict = leaks(&t1);
        println!(
            "  table1 {name} sequence: max|t1| = {max_t:.2} -> {} (expected {})",
            if verdict { "LEAKS" } else { "clean" },
            if expect_leak { "LEAKS" } else { "clean" },
        );
        assert_eq!(verdict, expect_leak, "Table I {name}-sequence conclusion changed");
        verdicts.push((name, max_t));
    }

    let record = BenchRecord::new(&label, "fig15-gate-placement", traces, threads, seconds)
        .with("unit_luts", UNIT_LUTS.to_string())
        .with("backend", "\"compiled-schedule\"".to_owned())
        .with_f64("scalar_traces_per_sec", scalar_tps)
        .with_f64("placement_bias", bias)
        .with_f64("placement_bias_ref", bias_ref)
        .with_f64("table1_leaky_max_t1", verdicts[0].1)
        .with_f64("table1_safe_max_t1", verdicts[1].1);
    append_record(BENCH_FILE, &record.to_json()).expect("write BENCH_gate.json");
    println!("  recorded as \"{label}\" in {BENCH_FILE}");

    // Observability guarantee: metrics collection on a smoke-scale
    // campaign stays under 2% of event-simulator throughput.
    let smoke = Campaign { traces: traces / 10, threads, seed: args.seed ^ 0x0b5 };
    assert_metrics_overhead(&smoke, &src, 2.0, 8);
    metrics.finish().expect("write metrics");
}
