//! Quick speed probe: gate-level masked DES traces per second.
use gm_core::MaskRng;
use gm_des::netlist_gen::driver::EncryptionInputs;
use gm_des::netlist_gen::{build_des_core, DesCoreDriver, SboxStyle};
use gm_sim::{DelayModel, PowerTrace};
use std::time::Instant;

fn main() {
    for (name, style, period) in
        [("FF", SboxStyle::Ff, 20_000u64), ("PD(10)", SboxStyle::Pd { unit_luts: 10 }, 120_000)]
    {
        let core = build_des_core(style);
        println!("{name}: {} gates, {} nets", core.netlist.num_gates(), core.netlist.num_nets());
        let t = gm_netlist::timing::analyze(&core.netlist).unwrap();
        println!("  critical path {} ps -> {:.1} MHz", t.critical_path_ps, t.max_freq_mhz());
        let delays = DelayModel::with_variation(&core.netlist, 0.15, 40.0, 1);
        let mut drv = DesCoreDriver::new(&core, &delays, period, 2);
        let mut rng = MaskRng::new(3);
        let cycles = drv.total_cycles() as u64;
        let mut trace = PowerTrace::new(0, period, cycles as usize);
        let start = Instant::now();
        let n = 50;
        for i in 0..n {
            let inputs = EncryptionInputs::draw(i, 0x133457799BBCDFF1, &mut rng);
            trace.clear();
            let ct = drv.encrypt(&inputs, &mut trace);
            let _ = ct;
        }
        let dt = start.elapsed();
        println!(
            "  {} traces in {:?} -> {:.1} traces/s/thread",
            n,
            dt,
            n as f64 / dt.as_secs_f64()
        );
    }
}
