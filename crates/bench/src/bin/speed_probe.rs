//! Quick speed probe: single-threaded traces per second of every
//! acquisition backend, through the same shared [`TraceSource`]
//! plumbing the campaigns use (no hand-rolled loops — what this probe
//! times is exactly what `Campaign` runs per worker).

use gm_bench::{Args, MetricsSink};
use gm_des::tvla_src::{AnyCycleSource, CoreVariant, GateLevelSource, SourceConfig};
use gm_leakage::tvla::{BlockLayout, Class, TraceSource};
use std::time::Instant;

/// Time an alternating fixed/random block acquisition (the campaign's
/// per-worker quota path) and return seconds elapsed.
fn time_block<S: TraceSource>(src: &mut S, traces: usize) -> f64 {
    let ns = src.num_samples();
    let labels: Vec<Class> =
        (0..traces).map(|i| if i % 2 == 0 { Class::Fixed } else { Class::Random }).collect();
    // Sample-major sources scatter at stride = labels.len(), so each
    // class tile must hold the full label count per sample row.
    let (nf, nr) = match src.block_layout() {
        BlockLayout::RowMajor => (traces.div_ceil(2), traces / 2),
        BlockLayout::SampleMajor => (traces, traces),
    };
    let mut fixed = vec![0.0; nf * ns];
    let mut random = vec![0.0; nr * ns];
    let start = Instant::now();
    src.trace_block(&labels, &mut fixed, &mut random);
    start.elapsed().as_secs_f64()
}

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("speed_probe", &args);

    // Cycle model, scalar reference vs 64-way bitsliced.
    for (name, scalar, n) in
        [("cycle/scalar", true, 2_000usize), ("cycle/bitsliced", false, 20_000)]
    {
        let mut cfg = SourceConfig::new(CoreVariant::Ff);
        cfg.seed = args.seed;
        let mut src = AnyCycleSource::new(cfg, scalar);
        let dt = time_block(&mut src, n);
        println!("{name:>16}: {n} traces in {dt:.3} s -> {:.1} traces/s/thread", n as f64 / dt);
        let mut counters = gm_obs::Report::new();
        src.obs_report(&mut counters);
        metrics.record_phase(name, dt, n as u64, counters);
    }

    // Event-driven gate level, both cores.
    for (name, variant, n) in [
        ("gate/FF", CoreVariant::Ff, 50usize),
        ("gate/PD(10)", CoreVariant::Pd { unit_luts: 10 }, 50),
    ] {
        let mut cfg = SourceConfig::new(variant);
        cfg.seed = args.seed;
        let mut src = GateLevelSource::new(cfg, 2, 0.0);
        let nl = &src.core().netlist;
        let t = gm_netlist::timing::analyze(nl).unwrap();
        println!(
            "{name:>16}: {} gates, {} nets, critical path {} ps -> {:.1} MHz",
            nl.num_gates(),
            nl.num_nets(),
            t.critical_path_ps,
            t.max_freq_mhz()
        );
        let dt = time_block(&mut src, n);
        println!("{:>16}  {n} traces in {dt:.3} s -> {:.1} traces/s/thread", "", n as f64 / dt);
        let mut counters = gm_obs::Report::new();
        src.obs_report(&mut counters);
        metrics.record_phase(name, dt, n as u64, counters);
    }
    metrics.finish().expect("write metrics");
}
