//! **Fig. 17** — leakage assessment of the protected DES design using
//! secAND2-PD with the optimal (10-LUT) DelayUnit.
//!
//! Panels a–c: PRNG on, the same three fixed plaintexts as Fig. 14. The
//! paper observes *marginal but consistent* first-order crossings of
//! ±4.5 — appearing only around 15 M traces — and attributes them to
//! physical coupling between the long delay lines, not to insufficient
//! delay. Panel d: PRNG off flags within 33 k traces.
//!
//! This binary reproduces all of that, including the attribution: the
//! same campaign re-run with the coupling term disabled stays clean.

use gm_bench::panel::{max_abs, print_panel};
use gm_bench::{Args, MetricsSink};
use gm_des::power::PdLeakModel;
use gm_des::tvla_src::{AnyCycleSource, CoreVariant, GateLevelSource, SourceConfig};
use gm_leakage::detect::{consistent_leaks, first_detection};
use gm_leakage::Campaign;

const FIXED_PLAINTEXTS: [u64; 3] = [0x0123456789ABCDEF, 0xDA39A3EE5E6B4B0D, 0x0000000000000000];

/// Gate-level cross-validation of panels a–c: the same campaigns on the
/// event-driven netlist (coupling on), pooled across workers with one
/// persistent simulator per worker. Traces are scaled down — the event
/// simulation resolves the same coupling mechanism with far fewer traces
/// than the calibrated cycle model needs.
fn gate_level_panels(args: &Args, metrics: &mut MetricsSink, traces: u64) {
    let variant = CoreVariant::Pd { unit_luts: 10 };
    println!("--- gate-level cross-validation (event-driven netlist, coupling on) ---");
    // The DES netlist is clocked, so it refuses schedule compilation
    // (`CompiledSchedule::compile` returns `None` on flip-flops) and the
    // campaign stays on the dynamic event wheel; `--scalar` is a no-op here.
    println!("(clocked netlist: dynamic event wheel; schedule compilation does not apply)");
    for (i, (panel, pt)) in ["a", "b", "c"].iter().zip(FIXED_PLAINTEXTS).enumerate() {
        if !(args.panel.is_none() || args.panel.as_deref() == Some(*panel)) {
            continue;
        }
        let mut cfg = SourceConfig::new(variant);
        cfg.fixed_pt = pt;
        cfg.seed = args.seed ^ (i as u64) << 8;
        let src = GateLevelSource::new(cfg, 1, 0.4);
        let mut campaign = Campaign::parallel(traces, args.seed ^ (0x17 + i as u64));
        if let Some(t) = args.threads {
            campaign.threads = t;
        }
        let r = metrics.run_streamed(&format!("fig17{panel}-gate"), &campaign, &src);
        print_panel(
            &format!("panel ({panel}) gate level: PRNG on, fixed plaintext {pt:#018x}"),
            &r,
            &args.out_dir,
            &format!("fig17{panel}_gate"),
        );
    }
}

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("fig17", &args);
    let run_all = args.panel.is_none();
    if args.gate_level {
        let traces = args.trace_count(2_000, 30_000);
        println!("FIG. 17 (gate level) — protected DES with secAND2-PD (10-LUT units)");
        println!("(campaign: {traces} traces; threshold ±4.5)\n");
        gate_level_panels(&args, &mut metrics, traces);
        metrics.finish().expect("write metrics");
        return;
    }
    let traces = args.trace_count(40_000, 400_000);
    let backend = if args.scalar { "scalar reference" } else { "64-way bitsliced" };
    println!("FIG. 17 — leakage assessment, protected DES with secAND2-PD (10-LUT units)");
    println!("(campaign: {traces} traces ≙ the paper's 50M; threshold ±4.5; {backend} backend)\n");

    let variant = CoreVariant::Pd { unit_luts: 10 };

    // Panels (a)-(c): PRNG on.
    let mut t1_curves = Vec::new();
    for (i, (panel, pt)) in ["a", "b", "c"].iter().zip(FIXED_PLAINTEXTS).enumerate() {
        if !(run_all || args.panel.as_deref() == Some(*panel)) {
            continue;
        }
        let mut cfg = SourceConfig::new(variant);
        cfg.fixed_pt = pt;
        cfg.seed = args.seed ^ (i as u64) << 8;
        let src = AnyCycleSource::new(cfg.clone(), args.scalar);
        let r = metrics.run_streamed(
            &format!("fig17{panel}-pt{i}"),
            &Campaign::parallel(traces, args.seed ^ (0x17 + i as u64)),
            &src,
        );
        print_panel(
            &format!("panel ({panel}): PRNG on, fixed plaintext {pt:#018x}"),
            &r,
            &args.out_dir,
            &format!("fig17{panel}"),
        );
        t1_curves.push(r.t1());

        if i == 0 {
            // When does the first-order crossing appear?
            let det = first_detection(
                &Campaign::parallel(traces, args.seed ^ 0x171),
                &AnyCycleSource::new(cfg, args.scalar),
                1024,
            );
            match det.traces {
                Some(n) => println!(
                    "first-order crossing appears after ~{n} traces \
                     (paper: ~15M of 50M ⇒ ~{} here)\n",
                    15_000_000u64 * traces / 50_000_000
                ),
                None => println!("no first-order crossing within the campaign\n"),
            }
        }
    }

    if t1_curves.len() == 3 {
        let consistent = consistent_leaks(&t1_curves);
        let worst = t1_curves.iter().map(|t| max_abs(t)).fold(0.0f64, f64::max);
        println!("=== Fig. 17 verdict (panels a-c) ===");
        println!(
            "worst max|t1| = {worst:.2} — {} (paper: marginal but real crossings)",
            if worst > 4.5 {
                "crossings beyond ±4.5 present"
            } else {
                "no crossing at this (reduced) budget; run the full campaign"
            }
        );
        println!("consistent leaking samples across plaintexts: {consistent:?}\n");
    }

    // Panel (d): PRNG off.
    if run_all || args.panel.as_deref() == Some("d") {
        let mut cfg = SourceConfig::new(variant);
        cfg.prng_on = false;
        cfg.seed = args.seed ^ 0xd;
        let det = first_detection(
            &Campaign::parallel(traces.min(50_000), args.seed ^ 0x17d),
            &AnyCycleSource::new(cfg.clone(), args.scalar),
            16,
        );
        println!("--- panel (d): PRNG off (sanity check) ---");
        match det.traces {
            Some(n) => println!(
                "first-order leakage detected after {n} traces (paper: 33k of 50M scale ⇒ ~{})",
                33_000 * traces / 50_000_000
            ),
            None => println!("NO DETECTION — setup broken!"),
        }
        let src = AnyCycleSource::new(cfg, args.scalar);
        let r = metrics.run_streamed(
            "fig17d-prng-off",
            &Campaign::parallel(12_000.min(traces), args.seed ^ 0x17e),
            &src,
        );
        print_panel("panel (d) t-curves @12k traces", &r, &args.out_dir, "fig17d");
    }

    // Attribution ablation (the paper's §VII-C hypothesis, made testable):
    // same core, coupling term off.
    if run_all {
        let mut cfg = SourceConfig::new(variant);
        cfg.seed = args.seed ^ 0xab1;
        let mut leak = PdLeakModel::optimal();
        leak.coupling_eps = 0.0;
        let src = AnyCycleSource::with_pd_leak(cfg, leak, args.scalar);
        let r = metrics.run_streamed(
            "ablation-no-coupling",
            &Campaign::parallel(traces, args.seed ^ 0xab2),
            &src,
        );
        let m1 = max_abs(&r.t1());
        println!("=== attribution ablation: coupling term disabled ===");
        println!(
            "max|t1| = {m1:.2} over {traces} traces — {}",
            if m1 < 4.5 {
                "clean: the residual first-order leakage is the coupling, \
                 exactly the paper's §VII-C explanation"
            } else {
                "still leaking — attribution NOT confirmed"
            }
        );
    }
    metrics.finish().expect("write metrics");
}
