//! **Fig. 13** — power trace (raw ADC output) covering one full DES
//! operation on the secAND2-FF core, seven cycles per round.
//!
//! Gate-level: the trace is the capacitance-weighted switching activity
//! of the generated netlist, through the amplifier/ADC model. The
//! characteristic shape — sixteen repeating seven-cycle round bursts
//! after the load spike — mirrors the paper's oscilloscope shot.

use gm_bench::panel::{ascii_power, single_trace};
use gm_bench::{Args, MetricsSink};
use gm_des::tvla_src::{CoreVariant, GateLevelSource, SourceConfig};
use gm_leakage::{report, TraceSource};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("fig13", &args);
    let mut cfg = SourceConfig::new(CoreVariant::Ff);
    cfg.seed = args.seed;
    cfg.noise_sigma = 4.0; // oscilloscope-style mild noise
    let bins_per_cycle = 4;
    let mut src = GateLevelSource::new(cfg, bins_per_cycle, 0.0);
    let t0 = Instant::now();
    let trace = single_trace(&mut src);
    let mut counters = gm_obs::Report::new();
    src.obs_report(&mut counters);
    metrics.record_phase("single-trace", t0.elapsed().as_secs_f64(), 1, counters);

    println!("FIG. 13 — power trace of the protected DES (secAND2-FF, 7 cycles/round)");
    println!(
        "{} samples ({} per clock cycle), clock period {} ps",
        trace.len(),
        bins_per_cycle,
        src.period_ps()
    );
    println!();
    println!("{}", ascii_power(&trace, 110));

    let path = format!("{}/fig13_power_trace.csv", args.out_dir);
    report::write_csv(&path, &["sample", "power"], &[&trace]).expect("write CSV");
    println!("CSV written to {path}");

    // Shape checks mirrored in the integration tests: a load burst, then
    // 16 periodic round bursts.
    let per_round = 7 * bins_per_cycle;
    let round_energy: Vec<f64> = (0..16)
        .map(|r| {
            let start = 2 * bins_per_cycle + r * per_round;
            trace[start..start + per_round].iter().sum()
        })
        .collect();
    let mean = round_energy.iter().sum::<f64>() / 16.0;
    println!(
        "\nper-round energy (16 rounds): mean {mean:.0}, min {:.0}, max {:.0}",
        round_energy.iter().cloned().fold(f64::MAX, f64::min),
        round_energy.iter().cloned().fold(f64::MIN, f64::max)
    );
    metrics.finish().expect("write metrics");
}
