//! **Fig. 15** — finding the optimal DelayUnit size for secAND2-PD.
//!
//! Re-creates the paper's sweep: identical protected DES cores differing
//! only in the DelayUnit size (1, 2, 3, 5, 7, 10 LUTs), each assessed
//! with the same fixed plaintext and the same trace budget — plus the
//! paper's follow-up (panel f): the 7-LUT version re-assessed with 10×
//! the traces, where leakage finally appears, motivating the step to 10.
//!
//! Trace scale: the per-version budget (8 k default) corresponds to the
//! paper's 500 k; the panel-f budget to their 5 M.

use gm_bench::panel::summary_line;
use gm_bench::{Args, MetricsSink};
use gm_des::power::order_violation_prob;
use gm_des::tvla_src::{CoreVariant, CycleModelSource, SourceConfig};
use gm_leakage::detect::first_detection;
use gm_leakage::{Campaign, THRESHOLD};

const SIZES: [usize; 6] = [1, 2, 3, 5, 7, 10];

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("fig15", &args);
    let per_version = args.trace_count(2_000, 8_000);
    println!("FIG. 15 — DelayUnit-size sweep, protected DES with secAND2-PD");
    println!("({per_version} traces/version ≙ the paper's 500k; same fixed plaintext)\n");
    println!("  LUTs/unit  P(order violation)  max|t1|  max|t2|  1st-order verdict");
    println!("  ---------  ------------------  -------  -------  -----------------");

    let mut results = Vec::new();
    for unit in SIZES {
        let mut cfg = SourceConfig::new(CoreVariant::Pd { unit_luts: unit });
        cfg.seed = args.seed;
        let src = CycleModelSource::new(cfg);
        let r = metrics.run(
            &format!("unit{unit}"),
            &Campaign::parallel(per_version, args.seed ^ unit as u64),
            &src,
        );
        let (m1, m2, _) = summary_line(&r);
        let verdict = if m1 > THRESHOLD { "LEAKS" } else { "clean" };
        println!(
            "  {unit:>9}  {:>18.4}  {m1:>7.2}  {m2:>7.2}  {verdict}",
            order_violation_prob(unit)
        );
        results.push((unit, m1));
    }

    // Panel (f): 7 LUTs with 10× traces.
    let big = per_version * 10;
    let mut cfg = SourceConfig::new(CoreVariant::Pd { unit_luts: 7 });
    cfg.seed = args.seed ^ 0xf;
    let det = first_detection(
        &Campaign::parallel(big, args.seed ^ 0x15f),
        &CycleModelSource::new(cfg),
        256,
    );
    println!();
    match det.traces {
        Some(n) => println!(
            "panel (f): 7 LUTs re-assessed with {big} traces — first-order leakage \
             appears after ~{n} traces (paper: visible at 5M after clean 500k)"
        ),
        None => {
            println!("panel (f): 7 LUTs stayed clean for {big} traces (paper found leakage at 5M)")
        }
    }

    // Shape assertions, reported.
    println!();
    let leak_small: Vec<usize> =
        results.iter().filter(|&&(_, m)| m > THRESHOLD).map(|&(u, _)| u).collect();
    println!("versions leaking within the 500k-equivalent budget: {leak_small:?}");
    println!(
        "monotone decrease of first-order leakage with DelayUnit size: {}",
        results.windows(2).all(|w| w[0].1 >= w[1].1 * 0.7)
    );
    println!("paper: pronounced leakage at 1 LUT, decreasing with size; clean at");
    println!("10 LUTs (within this budget) — sizes beyond 10 add only cost.");

    let t1s: Vec<f64> = results.iter().map(|r| r.1).collect();
    let units: Vec<f64> = results.iter().map(|r| r.0 as f64).collect();
    gm_leakage::report::write_csv(
        format!("{}/fig15_sweep.csv", args.out_dir),
        &["idx", "unit_luts", "max_t1"],
        &[&units, &t1s],
    )
    .expect("write CSV");
    println!("CSV written to {}/fig15_sweep.csv", args.out_dir);
    metrics.finish().expect("write metrics");
}
