//! **Table II** — DelayUnit sequences for single-cycle products of 3 and
//! 4 variables with `secAND2-PD`.
//!
//! Prints the generalised delay schedule, verifies functional
//! correctness of the chain netlists, and validates the *security* of
//! the sequence with a fixed-vs-random TVLA on the event-driven
//! simulation — plus an ablation with a deliberately wrong sequence
//! (an `x` share arriving last, Table I's leaky pattern), which must
//! leak.
//!
//! Like the other glitch-domain campaigns this one runs on the
//! compiled-schedule lane backend (see DESIGN.md §2.9): the stimulus
//! plan is fixed, so the event cascade is levelized once and 64 traces
//! sweep per pass, with per-lane fallback to the scalar wheel when
//! glitch activity diverges. `--scalar` pins the wheel throughout.

use gm_bench::{Args, MetricsSink};
use gm_core::compose::build_product_chain_pd_with_schedule;
use gm_core::schedule::{chain_delay_schedule, chain_max_units, ShareDelay};
use gm_core::{MaskRng, MaskedBit};
use gm_leakage::{leaks, Campaign, Class, TraceSource};
use gm_netlist::{NetId, Netlist};
use gm_sim::{
    CompiledSchedule, DelayModel, LaneTrace, MeasurementModel, PowerTrace, SchedRunner, SimCore,
    SimGraph, LANES,
};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

const REPLICAS: usize = 8;
const UNIT_LUTS: usize = 10;

struct ChainBank {
    netlist: Netlist,
    /// Prebuilt simulation topology, shared read-only by all workers.
    graph: SimGraph,
    /// Input share nets per variable `(s0, s1)`.
    vars: Vec<(NetId, NetId)>,
    k: usize,
}

/// Build a replicated bank of k-variable product chains. When `sabotage`
/// is true the delay schedule makes an `x` share (`a₁`, the first chain
/// variable's second share) arrive **last** — the arrival pattern
/// Table I shows to leak.
fn build_chain_bank(k: usize, sabotage: bool) -> ChainBank {
    let mut n = Netlist::new("chain_bank");
    let vars: Vec<(NetId, NetId)> =
        (0..k).map(|i| (n.input(format!("v{i}s0")), n.input(format!("v{i}s1")))).collect();
    let schedule: Vec<ShareDelay> = if sabotage {
        chain_delay_schedule(k)
            .into_iter()
            .map(|mut d| {
                if d.var == 0 && d.share == 1 {
                    d.units = 2 * k; // a1 past everything, incl. y shares
                }
                d
            })
            .collect()
    } else {
        chain_delay_schedule(k)
    };
    for r in 0..REPLICAS {
        n.in_module(format!("g{r}"), |n| {
            let chain = build_product_chain_pd_with_schedule(n, &vars, UNIT_LUTS, &schedule);
            n.output(format!("z0_{r}"), chain.out.z0);
            n.output(format!("z1_{r}"), chain.out.z1);
        });
    }
    n.validate().expect("chain validates");
    let graph = SimGraph::new(&n);
    ChainBank { netlist: n, graph, vars, k }
}

struct ChainSource {
    bank: Arc<ChainBank>,
    delays: Arc<DelayModel>,
    mask_rng: MaskRng,
    val_rng: SmallRng,
    measurement: MeasurementModel,
    sim_seed: u64,
    window_ps: u64,
    /// Persistent event core over `bank.graph`, reset per trace (scalar
    /// backend and divergent-lane fallback).
    sim: SimCore,
    /// Persistent trace buffer, cleared per trace.
    trace: PowerTrace,
    /// Levelized stimulus cascade shared by all forks; `None` pins the
    /// scalar wheel.
    compiled: Option<Arc<CompiledSchedule>>,
    runner: SchedRunner,
    /// Persistent lane-major trace buffer, cleared per pass.
    lane_trace: LaneTrace,
}

impl ChainSource {
    fn new(bank: Arc<ChainBank>, delays: Arc<DelayModel>, seed: u64) -> Self {
        let stims: Vec<(NetId, u64)> =
            bank.vars.iter().flat_map(|&(s0, s1)| [(s0, 1_000), (s1, 1_000)]).collect();
        let compiled = CompiledSchedule::compile(&bank.graph, &delays, &stims).map(Arc::new);
        Self::with_backend(bank, delays, seed, compiled)
    }

    fn scalar(bank: Arc<ChainBank>, delays: Arc<DelayModel>, seed: u64) -> Self {
        Self::with_backend(bank, delays, seed, None)
    }

    fn with_backend(
        bank: Arc<ChainBank>,
        delays: Arc<DelayModel>,
        seed: u64,
        compiled: Option<Arc<CompiledSchedule>>,
    ) -> Self {
        let window_ps =
            ((chain_max_units(bank.k) + 2) as u64 * UNIT_LUTS as u64 * 1_150 + 20_000) * 2;
        let sim = SimCore::new(&bank.graph, seed);
        ChainSource {
            sim,
            bank,
            delays,
            mask_rng: MaskRng::new(seed ^ 0x11),
            val_rng: SmallRng::seed_from_u64(seed ^ 0x22),
            measurement: MeasurementModel::new(1.0, 6.0, 18, seed ^ 0x33),
            sim_seed: seed,
            window_ps,
            trace: PowerTrace::new(0, window_ps / 8, 8),
            compiled,
            runner: SchedRunner::new(),
            lane_trace: LaneTrace::new(0, window_ps / 8, 8),
        }
    }
}

impl TraceSource for ChainSource {
    fn fork(&self, stream: u64) -> Self {
        ChainSource::with_backend(
            Arc::clone(&self.bank),
            Arc::clone(&self.delays),
            self.sim_seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            self.compiled.clone(),
        )
    }

    fn num_samples(&self) -> usize {
        8
    }

    fn trace(&mut self, class: Class, out: &mut [f64]) {
        let k = self.bank.k;
        let vals: Vec<bool> = match class {
            Class::Fixed => vec![true; k],
            Class::Random => (0..k).map(|_| self.val_rng.random()).collect(),
        };
        self.sim_seed = self.sim_seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(7);
        self.sim.reset(&self.bank.graph, self.sim_seed);
        self.trace.clear();
        // Single cycle: all input shares fire simultaneously; the
        // DelayUnits inside the netlist create the safe sequence.
        for (i, &v) in vals.iter().enumerate() {
            let b = MaskedBit::mask(v, &mut self.mask_rng);
            self.sim.schedule(self.bank.vars[i].0, 1_000, b.s0);
            self.sim.schedule(self.bank.vars[i].1, 1_000, b.s1);
        }
        self.sim.run_until(&self.bank.graph, &self.delays, self.window_ps, &mut self.trace);
        for (o, &s) in out.iter_mut().zip(self.trace.samples()) {
            *o = self.measurement.sample(s);
        }
    }

    fn trace_block(
        &mut self,
        labels: &[Class],
        fixed: &mut [f64],
        random: &mut [f64],
    ) -> (usize, usize) {
        let Some(sched) = self.compiled.clone() else {
            // Scalar backend: the default per-trace loop.
            let (mut nf, mut nr) = (0usize, 0usize);
            for &class in labels {
                let (buf, row) = match class {
                    Class::Fixed => (&mut *fixed, &mut nf),
                    Class::Random => (&mut *random, &mut nr),
                };
                let start = *row * 8;
                self.trace(class, &mut buf[start..start + 8]);
                *row += 1;
            }
            return (nf, nr);
        };
        let k = self.bank.k;
        let (mut nf, mut nr) = (0usize, 0usize);
        let mut start = 0usize;
        while start < labels.len() {
            let chunk = (labels.len() - start).min(LANES);
            // Draw the per-trace RNG streams in label order — identical
            // to the scalar path — while packing the lane words.
            let mut seeds = [0u64; LANES];
            let mut stim_values = vec![0u64; 2 * k];
            for l in 0..chunk {
                let vals: Vec<bool> = match labels[start + l] {
                    Class::Fixed => vec![true; k],
                    Class::Random => (0..k).map(|_| self.val_rng.random()).collect(),
                };
                self.sim_seed = self.sim_seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(7);
                seeds[l] = self.sim_seed;
                for (i, &v) in vals.iter().enumerate() {
                    let b = MaskedBit::mask(v, &mut self.mask_rng);
                    if b.s0 {
                        stim_values[2 * i] |= 1 << l;
                    }
                    if b.s1 {
                        stim_values[2 * i + 1] |= 1 << l;
                    }
                }
            }
            self.lane_trace.clear();
            let div = self.runner.run_pass(
                &sched,
                &self.bank.graph,
                &self.delays,
                self.bank.graph.weights(),
                &seeds[..chunk],
                &stim_values,
                self.window_ps,
                &mut self.lane_trace,
            );
            let mut bins = [0.0f64; 8];
            for l in 0..chunk {
                if div >> l & 1 != 0 {
                    // Divergent glitch activity: rerun the lane on the
                    // scalar wheel under the same seed.
                    let _fb = self.runner.stats.fallback_ns.span();
                    self.sim.reset(&self.bank.graph, seeds[l]);
                    self.trace.clear();
                    for (i, &(s0, s1)) in self.bank.vars.iter().enumerate() {
                        self.sim.schedule(s0, 1_000, stim_values[2 * i] >> l & 1 != 0);
                        self.sim.schedule(s1, 1_000, stim_values[2 * i + 1] >> l & 1 != 0);
                    }
                    self.sim.run_until(
                        &self.bank.graph,
                        &self.delays,
                        self.window_ps,
                        &mut self.trace,
                    );
                    bins.copy_from_slice(self.trace.samples());
                } else {
                    self.lane_trace.lane_into(l, &mut bins);
                }
                let (buf, row) = match labels[start + l] {
                    Class::Fixed => (&mut *fixed, &mut nf),
                    Class::Random => (&mut *random, &mut nr),
                };
                for (o, &s) in buf[*row * 8..(*row + 1) * 8].iter_mut().zip(bins.iter()) {
                    *o = self.measurement.sample(s);
                }
                *row += 1;
            }
            start += chunk;
        }
        (nf, nr)
    }

    fn obs_report(&self, report: &mut gm_obs::Report) {
        report.set_nonzero("rng.mask_words", self.mask_rng.obs_words_drawn());
        self.sim.obs_report("sim", report);
        self.runner.obs_report("sim.sched", report);
    }
}

fn schedule_row(k: usize) -> String {
    let names = ["a", "b", "c", "d"];
    let mut entries: Vec<(usize, String)> = chain_delay_schedule(k)
        .iter()
        .map(|d| (d.units, format!("{}{}", names[d.var], d.share)))
        .collect();
    entries.sort();
    entries.iter().map(|(u, n)| format!("{n}@{u}")).collect::<Vec<_>>().join(" → ")
}

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("table2", &args);
    let traces = args.trace_count(8_000, 60_000);
    let backend = if args.scalar { "scalar event wheel" } else { "compiled schedule" };
    println!("TABLE II — DelayUnit sequences for secAND2-PD product chains");
    println!(
        "({traces} traces/row, {REPLICAS} replicas, DelayUnit = {UNIT_LUTS} LUTs, {backend})\n"
    );
    println!("  product   sequence (share@DelayUnits)");
    for k in [3, 4] {
        println!("  {k} vars    {}", schedule_row(k));
    }
    println!();
    println!("  row                      max|t1|  leaks   expected");
    println!("  -----------------------  -------  ------  --------");

    for k in [2usize, 3, 4] {
        for sabotage in [false, true] {
            let bank = Arc::new(build_chain_bank(k, sabotage));
            let delays = Arc::new(DelayModel::with_variation(
                &bank.netlist,
                0.15,
                40.0,
                args.seed ^ (k as u64) << 4 | u64::from(sabotage),
            ));
            let src = if args.scalar {
                ChainSource::scalar(Arc::clone(&bank), Arc::clone(&delays), args.seed)
            } else {
                ChainSource::new(Arc::clone(&bank), Arc::clone(&delays), args.seed)
            };
            let mut campaign = Campaign::parallel(traces, args.seed ^ (k as u64));
            if let Some(t) = args.threads {
                campaign.threads = t;
            }
            let phase = format!("k{k}-{}", if sabotage { "sabotaged" } else { "safe" });
            let r = metrics.run(&phase, &campaign, &src);
            let t1 = r.t1();
            let max_t = t1.iter().fold(0.0f64, |m, t| m.max(t.abs()));
            let leak = leaks(&t1);
            let label = if sabotage { "inverted (ablation)" } else { "Table II schedule" };
            let expected = sabotage;
            println!(
                "  {k} vars, {label:<19}  {max_t:>7.2}  {:>6}  {:>8}{}",
                if leak { "YES" } else { "no" },
                if expected { "LEAK" } else { "safe" },
                if leak == expected { "" } else { "   ** UNEXPECTED **" },
            );
        }
    }
    println!();
    println!("The Table II sequences compute 3- and 4-variable products in a single");
    println!("cycle with no first-order leakage at board-equivalent noise; delaying");
    println!("an x share past the final y share (the Table I leaky pattern) flags");
    println!("immediately, confirming the sequence itself is the countermeasure.");
    println!();
    println!("Note (see EXPERIMENTS.md): with near-zero instrument noise the ideal");
    println!("simulator resolves a ~0.02-toggle residual bias in the unrefreshed");
    println!("chain — beneath the resolution of the paper's 500k-trace setup.");
    metrics.finish().expect("write metrics");
}
