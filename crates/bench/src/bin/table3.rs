//! **Table III** — utilisation of the full masked DES implementations
//! (including the masked key schedule).
//!
//! Generates both gate-level cores, runs the area report and static
//! timing analysis, and prints the paper's table side by side with the
//! reproduced numbers. The DOM-indep / DOM-dep rows echo the paper's
//! citations of Sasdrich & Hutter (their netlists are not ours to
//! regenerate, but the per-AND randomness costs are reproduced from our
//! own DOM gadget implementations).

use gm_bench::{Args, MetricsSink};
use gm_core::gadgets::dom::{DOM_DEP_FRESH_BITS, DOM_INDEP_FRESH_BITS};
use gm_des::masked::{MaskedDesFf, MaskedDesPd};
use gm_des::netlist_gen::{build_des_core, driver, SboxStyle};
use gm_netlist::{area, timing, GateKind};
use gm_obs::Report;
use std::time::Instant;

struct Row {
    name: &'static str,
    asic_ge: String,
    fpga: String,
    rand_bits: String,
    cycles: String,
    max_freq: String,
}

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("table3", &args);

    println!("TABLE III — utilisation of full DES implementations (incl. masked key schedule)");
    println!();

    let mut rows = Vec::new();

    // --- secAND2-FF core -------------------------------------------------
    let t0 = Instant::now();
    let ff = build_des_core(SboxStyle::Ff);
    let ff_area = area::report(&ff.netlist);
    let ff_timing = timing::analyze(&ff.netlist).expect("valid core");
    let mut counters = Report::new();
    counters.set("netlist.gates", ff.netlist.gates().len() as u64);
    metrics.record_phase(
        "ff-core-sta",
        t0.elapsed().as_secs_f64(),
        ff.netlist.gates().len() as u64,
        counters,
    );
    rows.push(Row {
        name: "secAND2-FF (ours)",
        asic_ge: format!("{:.0}", ff_area.total_ge),
        fpga: format!("{}/{}", ff_area.ff_count, ff_area.lut_estimate),
        rand_bits: format!("{}", MaskedDesFf::FRESH_BITS_PER_ROUND),
        cycles: format!("{}", MaskedDesFf::CYCLES_PER_ROUND),
        max_freq: format!("{:.0}", ff_timing.max_freq_mhz()),
    });

    // --- secAND2-PD core -------------------------------------------------
    let t0 = Instant::now();
    let pd = build_des_core(SboxStyle::Pd { unit_luts: 10 });
    let pd_area = area::report(&pd.netlist);
    let pd_timing = timing::analyze(&pd.netlist).expect("valid core");
    let mut counters = Report::new();
    counters.set("netlist.gates", pd.netlist.gates().len() as u64);
    metrics.record_phase(
        "pd-core-sta",
        t0.elapsed().as_secs_f64(),
        pd.netlist.gates().len() as u64,
        counters,
    );
    rows.push(Row {
        name: "secAND2-PD (ours)",
        asic_ge: format!("{:.0}", pd_area.total_ge),
        fpga: format!("{}/{}", pd_area.ff_count, pd_area.lut_estimate),
        rand_bits: format!("{}", MaskedDesPd::FRESH_BITS_PER_ROUND),
        cycles: format!("{}", MaskedDesPd::CYCLES_PER_ROUND),
        max_freq: format!("{:.0}", pd_timing.max_freq_mhz()),
    });

    // --- paper's reported numbers ---------------------------------------
    let paper = [
        ("secAND2-FF (paper)", "7671", "819/2129", "14", "7", "183"),
        ("secAND2-PD (paper)", "52273", "672/7428", "14", "2", "21"),
        ("DOM-indep [17] (paper)", "13800", "-", "176", "5", "-"),
        ("DOM-dep [17] (paper)", "22400", "-", "528", "5", "-"),
    ];

    println!(
        "  {:<24} {:>9} {:>11} {:>11} {:>12} {:>10}",
        "Version", "ASIC[GE]", "FPGA[FF/LUT]", "Rand/round", "Cycles/round", "MaxF[MHz]"
    );
    println!("  {}", "-".repeat(84));
    for r in &rows {
        println!(
            "  {:<24} {:>9} {:>11} {:>11} {:>12} {:>10}",
            r.name, r.asic_ge, r.fpga, r.rand_bits, r.cycles, r.max_freq
        );
    }
    for (name, ge, fpga, rand, cyc, freq) in paper {
        println!("  {name:<24} {ge:>9} {fpga:>11} {rand:>11} {cyc:>12} {freq:>10}");
    }

    // --- detail: PD with and without DelayUnits --------------------------
    println!();
    println!("secAND2-PD detail (the paper reports 12592 GE without DelayUnits):");
    println!(
        "  logic only: {:.0} GE; DelayUnits: {:.0} GE over {} delay elements",
        pd_area.logic_ge(),
        pd_area.delay_ge,
        pd_area.delay_buf_count
    );
    println!(
        "  DelayUnits in the design: {} (paper: ~493 of 10 LUTs each)",
        pd_area.delay_buf_count / 10
    );

    // --- randomness accounting -------------------------------------------
    println!();
    println!("Randomness (per round, recycled across 8 S-boxes):");
    println!("  ours: 14 bits (10 product refresh + 4 MUX-stage-1 refresh)");
    println!("  without recycling: 112 bits; DOM-indep: 22 ANDs × {DOM_INDEP_FRESH_BITS} bit; DOM-dep: × {DOM_DEP_FRESH_BITS} bits");

    // --- block latency ----------------------------------------------------
    println!();
    println!("Block latency:");
    println!(
        "  secAND2-FF: {} cycles/block (paper: 115); gate-level driver: {} cycles",
        MaskedDesFf::TOTAL_CYCLES,
        driver::total_cycles(SboxStyle::Ff)
    );
    println!(
        "  secAND2-PD: {} cycles/block; gate-level driver: {} cycles",
        MaskedDesPd::TOTAL_CYCLES,
        driver::total_cycles(SboxStyle::Pd { unit_luts: 10 })
    );

    // --- per-module area breakdown ---------------------------------------
    println!();
    println!("FF-core area by module (GE):");
    let mut mods: Vec<(String, f64)> = area::by_module(&ff.netlist).into_iter().collect();
    mods.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let key_ge: f64 =
        mods.iter().filter(|(m, _)| m.starts_with("key_schedule")).map(|(_, g)| g).sum();
    for (m, g) in mods.iter().take(6) {
        println!("  {:<28} {:>8.0}", if m.is_empty() { "(top)" } else { m }, g);
    }
    println!("  masked key schedule total: {key_ge:.0} GE (paper: ~900 GE overhead)");

    // --- delay element sanity --------------------------------------------
    let ff_delay_gates = ff.netlist.gates().iter().filter(|g| g.kind == GateKind::DelayBuf).count();
    assert_eq!(ff_delay_gates, 0, "the FF core has no delay elements");
    metrics.finish().expect("write metrics");
}
