//! Ablations of the paper's design decisions — each security measure is
//! removed in isolation and the leakage consequence measured:
//!
//! 1. **Refresh layer off** (§III-C): the XOR stage recombines dependent
//!    sharings and the FF core leaks in first order.
//! 2. **Randomness recycling** (§VI-A): sharing the 14 fresh bits across
//!    the eight S-boxes has *no* first-order impact — the paper's
//!    justification for its randomness budget.
//! 3. **secAND2-FF reset discipline** (§II-C): evaluating back-to-back
//!    multiplications without resetting the gadget leaks the *previous*
//!    operation's unshared operand.

use gm_bench::{Args, MetricsSink};
use gm_core::gadgets::sec_and2::build_sec_and2;
use gm_core::gadgets::AndInputs;
use gm_core::{MaskRng, MaskedBit};
use gm_des::masked::{MaskedDes, MaskedDesFf};
use gm_des::power::PowerModel;
use gm_leakage::{Campaign, Class, TraceSource, TvlaResult, THRESHOLD};
use gm_netlist::Netlist;
use gm_sim::power::CountingSink;
use gm_sim::{DelayModel, Simulator};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

// ----------------------------------------------------------------------
// Ablation 1: refresh layer removed.
// ----------------------------------------------------------------------

struct FfSource {
    core: MaskedDesFf,
    power: PowerModel,
    mask_rng: MaskRng,
    pt_rng: SmallRng,
    fixed_pt: u64,
    seed: u64,
}

impl FfSource {
    fn new(core: MaskedDesFf, seed: u64) -> Self {
        FfSource {
            core,
            power: PowerModel::ff(12.0, seed),
            mask_rng: MaskRng::new(seed ^ 0x1),
            pt_rng: SmallRng::seed_from_u64(seed ^ 0x2),
            fixed_pt: 0x0123456789ABCDEF,
            seed,
        }
    }
}

impl TraceSource for FfSource {
    fn fork(&self, stream: u64) -> Self {
        FfSource::new(self.core.clone(), self.seed ^ stream.wrapping_mul(0x9e37_79b9))
    }
    fn num_samples(&self) -> usize {
        MaskedDesFf::TOTAL_CYCLES
    }
    fn trace(&mut self, class: Class, out: &mut [f64]) {
        let pt = match class {
            Class::Fixed => self.fixed_pt,
            Class::Random => self.pt_rng.random(),
        };
        let (_, cycles) = self.core.encrypt_with_cycles(pt, &mut self.mask_rng);
        out.copy_from_slice(&self.power.trace(&cycles));
    }
}

fn ablation_refresh(metrics: &mut MetricsSink, traces: u64, seed: u64) {
    println!("=== ablation 1: refresh layer (§III-C) ===");
    let with = metrics.run(
        "refresh-on",
        &Campaign::sequential(traces, seed),
        &FfSource::new(MaskedDesFf::new(0x133457799BBCDFF1), seed),
    );
    let without = metrics.run(
        "refresh-off",
        &Campaign::sequential(traces, seed ^ 0x10),
        &FfSource::new(MaskedDesFf::without_refresh(0x133457799BBCDFF1), seed),
    );
    let m = |r: &TvlaResult| r.max_abs_t1();
    println!("  with refresh (14 bits/round): max|t1| = {:.2}", m(&with));
    println!("  without refresh (0 bits):     max|t1| = {:.2}", m(&without));
    println!(
        "  ⇒ {}\n",
        if m(&without) > THRESHOLD && m(&with) < THRESHOLD {
            "removing the refresh breaks first-order security — the 14 bits \
             per round are load-bearing, exactly as §III-C argues"
        } else {
            "UNEXPECTED outcome"
        }
    );
}

// ----------------------------------------------------------------------
// Ablation 2: randomness recycling across the eight S-boxes.
// ----------------------------------------------------------------------

struct ValueSource {
    core: MaskedDes,
    mask_rng: MaskRng,
    pt_rng: SmallRng,
    noise: SmallRng,
    seed: u64,
}

impl ValueSource {
    fn new(recycle: bool, seed: u64) -> Self {
        let mut core = MaskedDes::new(0x133457799BBCDFF1);
        core.recycle_randomness = recycle;
        ValueSource {
            core,
            mask_rng: MaskRng::new(seed ^ 0x3),
            pt_rng: SmallRng::seed_from_u64(seed ^ 0x4),
            noise: SmallRng::seed_from_u64(seed ^ 0x5),
            seed,
        }
    }
}

impl TraceSource for ValueSource {
    fn fork(&self, stream: u64) -> Self {
        ValueSource::new(self.core.recycle_randomness, self.seed ^ stream.wrapping_mul(0xa076))
    }
    fn num_samples(&self) -> usize {
        16
    }
    fn trace(&mut self, class: Class, out: &mut [f64]) {
        let pt = match class {
            Class::Fixed => 0x0123456789ABCDEF,
            Class::Random => self.pt_rng.random(),
        };
        let mut samples = [0.0f64; 16];
        let _ = self.core.encrypt_traced(pt, &mut self.mask_rng, |round, l, r| {
            // Per-round power: share-wise HW of the state registers.
            samples[round] = f64::from(
                l.s0.count_ones() + l.s1.count_ones() + r.s0.count_ones() + r.s1.count_ones(),
            );
        });
        for (o, s) in out.iter_mut().zip(samples) {
            *o = s + self.noise.random::<f64>() * 4.0;
        }
    }
}

fn ablation_recycling(metrics: &mut MetricsSink, traces: u64, seed: u64) {
    println!("=== ablation 2: randomness recycling (§VI-A) ===");
    let recycled =
        metrics.run("recycled", &Campaign::sequential(traces, seed), &ValueSource::new(true, seed));
    let fresh = metrics.run(
        "fresh-per-sbox",
        &Campaign::sequential(traces, seed ^ 0x20),
        &ValueSource::new(false, seed),
    );
    println!("  14 bits/round (recycled):  max|t1| = {:.2}", recycled.max_abs_t1());
    println!("  112 bits/round (per-sbox): max|t1| = {:.2}", fresh.max_abs_t1());
    println!(
        "  ⇒ {}\n",
        if recycled.max_abs_t1() < THRESHOLD && fresh.max_abs_t1() < THRESHOLD {
            "both configurations are first-order clean: recycling the 14 bits \
             across S-boxes costs nothing, as the paper claims"
        } else {
            "UNEXPECTED outcome"
        }
    );
}

// ----------------------------------------------------------------------
// Ablation 3: secAND2-FF reset discipline between computations.
// ----------------------------------------------------------------------

fn ablation_reset(trials: u64, seed: u64) {
    println!("=== ablation 3: reset between consecutive multiplications (§II-C) ===");
    // Bare secAND2 on the event simulator. First multiplication (m, n)
    // settles; then the second operation's a0 arrives BEFORE the fresh b
    // shares. Without reset, a0's edge can toggle z0 by HD = n0 ⊕ n1 = n.
    let mut n = Netlist::new("g");
    let io =
        AndInputs { x0: n.input("x0"), x1: n.input("x1"), y0: n.input("y0"), y1: n.input("y1") };
    let out = build_sec_and2(&mut n, io);
    n.output("z0", out.z0);
    n.output("z1", out.z1);
    n.validate().unwrap();
    let delays = DelayModel::with_variation(&n, 0.15, 40.0, seed);

    for reset in [false, true] {
        // E[toggles after a0 arrives | previous n].
        let mut rng = MaskRng::new(seed ^ 0x30);
        let mut sums = [0.0f64; 2];
        let mut counts = [0u64; 2];
        for t in 0..trials {
            let n_val = rng.bit();
            let m = MaskedBit::mask(rng.bit(), &mut rng);
            let nn = MaskedBit::mask(n_val, &mut rng);
            let a = MaskedBit::mask(rng.bit(), &mut rng);

            let mut sim = Simulator::new(&n, &delays, seed ^ t);
            sim.init_all_zero();
            // First multiplication settles.
            sim.schedule(io.y0, 1_000, nn.s0);
            sim.schedule(io.x0, 2_000, m.s0);
            sim.schedule(io.x1, 3_000, m.s1);
            sim.schedule(io.y1, 4_000, nn.s1);
            let mut sink = CountingSink::default();
            sim.run_until(40_000, &mut sink);

            if reset {
                // Clear the inputs (and let the gadget settle) first.
                for net in [io.x0, io.x1, io.y0, io.y1] {
                    sim.schedule(net, 41_000, false);
                }
                sim.run_until(80_000, &mut sink);
            }

            // Second multiplication: a0 arrives first.
            let t0 = sim.time();
            sim.schedule(io.x0, t0 + 1_000, a.s0);
            let mut second = CountingSink::default();
            sim.run_until(t0 + 30_000, &mut second);

            sums[usize::from(n_val)] += second.count as f64;
            counts[usize::from(n_val)] += 1;
        }
        let e0 = sums[0] / counts[0] as f64;
        let e1 = sums[1] / counts[1] as f64;
        println!(
            "  {}: E[toggles|n=0] = {e0:.3}, E[toggles|n=1] = {e1:.3}, bias = {:.3}",
            if reset { "with reset   " } else { "without reset" },
            (e0 - e1).abs()
        );
    }
    println!(
        "  ⇒ without reset, the late a0 exposes the previous operation's \
         unshared n;\n    resetting the inputs removes the bias — the cost \
         the paper's secAND2-PD avoids.\n"
    );
}

fn main() {
    let args = Args::parse();
    let mut metrics = MetricsSink::from_args("ablations", &args);
    let traces = args.trace_count(8_000, 60_000);
    ablation_refresh(&mut metrics, traces, args.seed);
    ablation_recycling(&mut metrics, traces, args.seed ^ 0xaa);
    let reset_trials = args.trace_count(4_000, 20_000);
    let t0 = std::time::Instant::now();
    ablation_reset(reset_trials, args.seed ^ 0xbb);
    metrics.record_phase(
        "reset-discipline",
        t0.elapsed().as_secs_f64(),
        2 * reset_trials,
        gm_obs::Report::new(),
    );
    metrics.finish().expect("write metrics");
}
