//! Shared gate-level TVLA trace sources.
//!
//! The event-driven campaigns (`table1`, `fig15_gate`, `bench_gate`) all
//! acquire traces the same way: a small gadget bank netlist, per-device
//! delay model, per-trace masked stimulus, switching-activity power. This
//! module holds the [`gm_leakage::TraceSource`] implementations so every
//! binary routes through the persistent-worker campaign machinery of
//! `gm-leakage::tvla` instead of hand-rolled acquisition loops.

use gm_core::gadgets::sec_and2::build_sec_and2;
use gm_core::gadgets::sec_and2_pd::{build_sec_and2_pd, PdConfig};
use gm_core::gadgets::AndInputs;
use gm_core::schedule::{ArrivalSequence, InputShare};
use gm_core::{MaskRng, MaskedBit};
use gm_leakage::{Class, TraceSource, TvlaResult};
use gm_netlist::{GateKind, NetId, Netlist};
use gm_obs::Report;
use gm_sim::{DelayModel, MeasurementModel, PowerTrace, SimCore, SimGraph};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Clock period of the Table I arrival-sequence experiment, in ps.
pub const CYCLE_PS: u64 = 50_000;

/// A bank of replicated `secAND2` instances sharing four share inputs
/// (the paper's SNR trick).
pub struct SecAnd2Bank {
    /// The bank netlist.
    pub netlist: Netlist,
    /// Prebuilt simulation topology, shared read-only by all workers.
    pub graph: SimGraph,
    /// Share `x0` input net (fans out to every replica).
    pub x0: NetId,
    /// Share `x1` input net.
    pub x1: NetId,
    /// Share `y0` input net.
    pub y0: NetId,
    /// Share `y1` input net.
    pub y1: NetId,
}

/// Build a bank of `replicas` parallel `secAND2` instances.
pub fn build_sec_and2_bank(replicas: usize) -> SecAnd2Bank {
    let mut n = Netlist::new("secand2_bank");
    let x0 = n.input("x0");
    let x1 = n.input("x1");
    let y0 = n.input("y0");
    let y1 = n.input("y1");
    for r in 0..replicas {
        n.in_module(format!("g{r}"), |n| {
            let out = build_sec_and2(n, AndInputs { x0, x1, y0, y1 });
            n.output(format!("z0_{r}"), out.z0);
            n.output(format!("z1_{r}"), out.z1);
        });
    }
    n.validate().expect("bank validates");
    let graph = SimGraph::new(&n);
    SecAnd2Bank { netlist: n, graph, x0, x1, y0, y1 }
}

/// The bank input net carrying the given share (shared by every
/// experiment that drives a [`SecAnd2Bank`] in some arrival order).
pub fn bank_share_net(bank: &SecAnd2Bank, s: InputShare) -> NetId {
    match s {
        InputShare::X0 => bank.x0,
        InputShare::X1 => bank.x1,
        InputShare::Y0 => bank.y0,
        InputShare::Y1 => bank.y1,
    }
}

/// Table I trace source: drives the four shares into the bank in one
/// arrival order (one share per cycle) and bins switching power per cycle.
pub struct SequenceSource {
    bank: Arc<SecAnd2Bank>,
    delays: Arc<DelayModel>,
    seq: ArrivalSequence,
    mask_rng: MaskRng,
    val_rng: SmallRng,
    measurement: MeasurementModel,
    sim_seed: u64,
    /// Persistent event core over `bank.graph`, reset per trace.
    sim: SimCore,
    /// Persistent trace buffer, cleared per trace.
    trace: PowerTrace,
}

impl SequenceSource {
    /// Build a source for one arrival sequence.
    pub fn new(
        bank: Arc<SecAnd2Bank>,
        delays: Arc<DelayModel>,
        seq: ArrivalSequence,
        seed: u64,
    ) -> Self {
        let sim = SimCore::new(&bank.graph, seed);
        SequenceSource {
            sim,
            bank,
            delays,
            seq,
            mask_rng: MaskRng::new(seed),
            val_rng: SmallRng::seed_from_u64(seed ^ 0xf00d),
            measurement: MeasurementModel::new(1.0, 0.8, 16, seed ^ 0xabc),
            sim_seed: seed,
            trace: PowerTrace::new(0, CYCLE_PS, 4),
        }
    }

    /// The input net carrying the given share.
    pub fn share_net(&self, s: InputShare) -> NetId {
        bank_share_net(&self.bank, s)
    }
}

impl TraceSource for SequenceSource {
    fn fork(&self, stream: u64) -> Self {
        SequenceSource::new(
            Arc::clone(&self.bank),
            Arc::clone(&self.delays),
            self.seq,
            self.sim_seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        )
    }

    fn num_samples(&self) -> usize {
        4
    }

    fn trace(&mut self, class: Class, out: &mut [f64]) {
        // Fixed class: x = 1, y = 1 (any fixed pair works); random class:
        // fresh random x, y. Shares always fresh-random.
        let (x, y) = match class {
            Class::Fixed => (true, true),
            Class::Random => (self.val_rng.random(), self.val_rng.random()),
        };
        let mx = MaskedBit::mask(x, &mut self.mask_rng);
        let my = MaskedBit::mask(y, &mut self.mask_rng);
        let value = |s: InputShare| match s {
            InputShare::X0 => mx.s0,
            InputShare::X1 => mx.s1,
            InputShare::Y0 => my.s0,
            InputShare::Y1 => my.s1,
        };

        self.sim_seed = self.sim_seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(11);
        self.sim.reset(&self.bank.graph, self.sim_seed);
        self.trace.clear();
        for (cycle, &share) in self.seq.iter().enumerate() {
            self.sim.schedule(self.share_net(share), cycle as u64 * CYCLE_PS + 1_000, value(share));
        }
        self.sim.run_until(&self.bank.graph, &self.delays, 4 * CYCLE_PS, &mut self.trace);
        for (o, &s) in out.iter_mut().zip(self.trace.samples()) {
            *o = self.measurement.sample(s);
        }
    }

    fn obs_report(&self, report: &mut Report) {
        report.set_nonzero("rng.mask_words", self.mask_rng.obs_words_drawn());
        self.sim.obs_report("sim", report);
    }
}

/// A `secAND2-PD` gadget instance plus the bits needed to measure one
/// placement's first-order exposure (Fig. 15, gate level).
pub struct PdGadget {
    /// The gadget netlist.
    pub netlist: Netlist,
    /// Prebuilt simulation topology, shared read-only by all workers.
    pub graph: SimGraph,
    /// Share input nets.
    pub io: AndInputs,
    /// Simulation window covering the whole glitch train, in ps.
    pub window_ps: u64,
    /// Per-net toggle weights: core cells by area, delay lines and inputs
    /// excluded (the localized-probe view).
    pub weights: Vec<f64>,
}

/// Build a `secAND2-PD` gadget with the given DelayUnit size.
pub fn build_pd_gadget(unit_luts: usize) -> PdGadget {
    let mut n = Netlist::new("pd");
    let io =
        AndInputs { x0: n.input("x0"), x1: n.input("x1"), y0: n.input("y0"), y1: n.input("y1") };
    let out = build_sec_and2_pd(&mut n, io, PdConfig { unit_luts });
    n.output("z0", out.z0);
    n.output("z1", out.z1);
    n.validate().unwrap();
    let window_ps = (2 * unit_luts as u64 * 1_150) * 3 + 30_000;
    let weights: Vec<f64> = (0..n.num_nets() as u32)
        .map(|i| match n.driver(NetId(i)) {
            gm_netlist::netlist::Driver::Gate(g) if n.gate(g).kind != GateKind::DelayBuf => {
                n.gate(g).kind.area_ge()
            }
            _ => 0.0,
        })
        .collect();
    let graph = SimGraph::new(&n);
    PdGadget { netlist: n, graph, io, window_ps, weights }
}

/// Fig. 15 (gate level) trace source: one scalar sample per trace — the
/// gadget-core switching energy of a single evaluation with `x = 1` and
/// `y` decided by the TVLA class (`Fixed` ⇒ `y = 1`, `Random` ⇒ `y = 0`).
///
/// The class-mean difference of this source *is* the placement's
/// first-order exposure (see [`placement_bias`]); a placement that
/// preserves the safe arrival order shows none.
pub struct PdPlacementSource {
    gadget: Arc<PdGadget>,
    delays: Arc<DelayModel>,
    mask_rng: MaskRng,
    sim_seed: u64,
    /// Persistent event core over `gadget.graph`, reset per trace. Its
    /// per-net weights carry the localized-probe view (delay lines and
    /// inputs at 0), so the per-trace energy is accumulated directly in
    /// a [`gm_sim::power::CountingSink`] — no per-net count array.
    sim: SimCore,
}

impl PdPlacementSource {
    /// Build a source for one placement (one sampled [`DelayModel`]).
    pub fn new(gadget: Arc<PdGadget>, delays: Arc<DelayModel>, seed: u64) -> Self {
        let mut sim = SimCore::new(&gadget.graph, seed);
        for (i, &w) in gadget.weights.iter().enumerate() {
            sim.set_net_weight(NetId(i as u32), w);
        }
        PdPlacementSource {
            sim,
            gadget,
            delays,
            mask_rng: MaskRng::new(seed ^ 0x77),
            sim_seed: seed,
        }
    }
}

impl TraceSource for PdPlacementSource {
    fn fork(&self, stream: u64) -> Self {
        PdPlacementSource::new(
            Arc::clone(&self.gadget),
            Arc::clone(&self.delays),
            self.sim_seed ^ stream.wrapping_mul(0xd192_ed03_a4ab_f2ee),
        )
    }

    fn num_samples(&self) -> usize {
        1
    }

    fn trace(&mut self, class: Class, out: &mut [f64]) {
        let y = class == Class::Fixed;
        let mx = MaskedBit::mask(true, &mut self.mask_rng);
        let my = MaskedBit::mask(y, &mut self.mask_rng);
        self.sim_seed = self.sim_seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(7);
        let io = self.gadget.io;
        self.sim.reset(&self.gadget.graph, self.sim_seed);
        for (net, v) in [(io.x0, mx.s0), (io.x1, mx.s1), (io.y0, my.s0), (io.y1, my.s1)] {
            // Inputs rest at the all-zero baseline; a `false` edge is a
            // no-op the engine would pop and discard (no rng draw, no
            // transition), so skipping it leaves the stream bit-identical.
            if v {
                self.sim.schedule(net, 1_000, v);
            }
        }
        let mut sink = gm_sim::power::CountingSink::default();
        self.sim.run_until(&self.gadget.graph, &self.delays, self.gadget.window_ps, &mut sink);
        out[0] = sink.weighted;
    }

    fn obs_report(&self, report: &mut Report) {
        report.set_nonzero("rng.mask_words", self.mask_rng.obs_words_drawn());
        self.sim.obs_report("sim", report);
    }
}

/// First-order exposure of a placement from an accumulated campaign: the
/// class-mean switching-energy difference `|E[power | y=1] − E[power | y=0]|`.
pub fn placement_bias(result: &TvlaResult) -> f64 {
    (result.fixed.mean()[0] - result.random.mean()[0]).abs()
}
