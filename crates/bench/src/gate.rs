//! Shared gate-level TVLA trace sources.
//!
//! The event-driven campaigns (`table1`, `fig15_gate`, `bench_gate`) all
//! acquire traces the same way: a small gadget bank netlist, per-device
//! delay model, per-trace masked stimulus, switching-activity power. This
//! module holds the [`gm_leakage::TraceSource`] implementations so every
//! binary routes through the persistent-worker campaign machinery of
//! `gm-leakage::tvla` instead of hand-rolled acquisition loops.
//!
//! Both sources run on the compiled-schedule lane backend by default
//! ([`gm_sim::CompiledSchedule`] + [`gm_sim::SchedRunner`]): the stimulus
//! plan is fixed per campaign, so the event cascade is levelized once and
//! each [`TraceSource::trace_block`] call sweeps up to 64 traces per pass.
//! Lanes whose glitch activity diverges from the compiled superset are
//! re-run on the scalar wheel under the same per-trace seed, which keeps
//! every trace bit-identical to the `--scalar` reference backend. The
//! scalar constructors (`SequenceSource::scalar`, `PdPlacementSource::
//! scalar`) pin that reference path for A/B checks.

use gm_core::gadgets::sec_and2::build_sec_and2;
use gm_core::gadgets::sec_and2_pd::{build_sec_and2_pd, PdConfig};
use gm_core::gadgets::AndInputs;
use gm_core::schedule::{ArrivalSequence, InputShare};
use gm_core::{MaskRng, MaskedBit};
use gm_leakage::{Class, TraceSource, TvlaResult};
use gm_netlist::{GateKind, NetId, Netlist};
use gm_obs::Report;
use gm_sim::{
    repair_batch_enabled, CompiledSchedule, DelayModel, LaneBinTrace, LaneEnergy, MeasurementModel,
    PowerTrace, RepairQueue, SchedRunner, SimCore, SimGraph, LANES,
};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Clock period of the Table I arrival-sequence experiment, in ps.
pub const CYCLE_PS: u64 = 50_000;

/// The default per-trace block loop, kept callable so the scalar backend
/// of each source routes through the exact same code whether or not the
/// source overrides [`TraceSource::trace_block`].
fn scalar_block<S: TraceSource>(
    src: &mut S,
    labels: &[Class],
    fixed: &mut [f64],
    random: &mut [f64],
) -> (usize, usize) {
    let ns = src.num_samples();
    let (mut nf, mut nr) = (0usize, 0usize);
    for &class in labels {
        let (buf, row) = match class {
            Class::Fixed => (&mut *fixed, &mut nf),
            Class::Random => (&mut *random, &mut nr),
        };
        let start = *row * ns;
        src.trace(class, &mut buf[start..start + ns]);
        *row += 1;
    }
    (nf, nr)
}

/// A bank of replicated `secAND2` instances sharing four share inputs
/// (the paper's SNR trick).
pub struct SecAnd2Bank {
    /// The bank netlist.
    pub netlist: Netlist,
    /// Prebuilt simulation topology, shared read-only by all workers.
    pub graph: SimGraph,
    /// Share `x0` input net (fans out to every replica).
    pub x0: NetId,
    /// Share `x1` input net.
    pub x1: NetId,
    /// Share `y0` input net.
    pub y0: NetId,
    /// Share `y1` input net.
    pub y1: NetId,
}

/// Build a bank of `replicas` parallel `secAND2` instances.
pub fn build_sec_and2_bank(replicas: usize) -> SecAnd2Bank {
    let mut n = Netlist::new("secand2_bank");
    let x0 = n.input("x0");
    let x1 = n.input("x1");
    let y0 = n.input("y0");
    let y1 = n.input("y1");
    for r in 0..replicas {
        n.in_module(format!("g{r}"), |n| {
            let out = build_sec_and2(n, AndInputs { x0, x1, y0, y1 });
            n.output(format!("z0_{r}"), out.z0);
            n.output(format!("z1_{r}"), out.z1);
        });
    }
    n.validate().expect("bank validates");
    let graph = SimGraph::new(&n);
    SecAnd2Bank { netlist: n, graph, x0, x1, y0, y1 }
}

/// The bank input net carrying the given share (shared by every
/// experiment that drives a [`SecAnd2Bank`] in some arrival order).
pub fn bank_share_net(bank: &SecAnd2Bank, s: InputShare) -> NetId {
    match s {
        InputShare::X0 => bank.x0,
        InputShare::X1 => bank.x1,
        InputShare::Y0 => bank.y0,
        InputShare::Y1 => bank.y1,
    }
}

/// Table I trace source: drives the four shares into the bank in one
/// arrival order (one share per cycle) and bins switching power per cycle.
pub struct SequenceSource {
    bank: Arc<SecAnd2Bank>,
    delays: Arc<DelayModel>,
    seq: ArrivalSequence,
    mask_rng: MaskRng,
    val_rng: SmallRng,
    measurement: MeasurementModel,
    sim_seed: u64,
    /// Persistent event core over `bank.graph`, reset per trace (scalar
    /// backend and divergent-lane fallback).
    sim: SimCore,
    /// Persistent trace buffer, cleared per trace.
    trace: PowerTrace,
    /// Levelized stimulus cascade shared by all forks; `None` pins the
    /// scalar wheel.
    compiled: Option<Arc<CompiledSchedule>>,
    runner: SchedRunner,
    /// Persistent word-level binned sink, cleared per pass.
    lane_bins: LaneBinTrace,
    /// Deferred divergent-lane repair, drained once per pass (the
    /// measurement-noise stream is pinned in label order and the ADC
    /// chain is nonlinear in the noise, so bins must exist before the
    /// label loop samples them).
    repairs: RepairQueue,
    /// Repaired bins per lane slot (`lane * 4 ..`), filled by the drain.
    repair_bins: Vec<f64>,
}

impl SequenceSource {
    /// Build a source for one arrival sequence on the compiled-schedule
    /// backend (falls back to the wheel automatically if the bank refuses
    /// compilation — it never does, the bank is combinational).
    pub fn new(
        bank: Arc<SecAnd2Bank>,
        delays: Arc<DelayModel>,
        seq: ArrivalSequence,
        seed: u64,
    ) -> Self {
        let stims: Vec<(NetId, u64)> = seq
            .iter()
            .enumerate()
            .map(|(cycle, &share)| (bank_share_net(&bank, share), cycle as u64 * CYCLE_PS + 1_000))
            .collect();
        let compiled = CompiledSchedule::compile(&bank.graph, &delays, &stims).map(Arc::new);
        Self::with_backend(bank, delays, seq, seed, compiled)
    }

    /// Build a source pinned to the scalar event wheel (`--scalar`).
    pub fn scalar(
        bank: Arc<SecAnd2Bank>,
        delays: Arc<DelayModel>,
        seq: ArrivalSequence,
        seed: u64,
    ) -> Self {
        Self::with_backend(bank, delays, seq, seed, None)
    }

    fn with_backend(
        bank: Arc<SecAnd2Bank>,
        delays: Arc<DelayModel>,
        seq: ArrivalSequence,
        seed: u64,
        compiled: Option<Arc<CompiledSchedule>>,
    ) -> Self {
        let sim = SimCore::new(&bank.graph, seed);
        let lane_bins = LaneBinTrace::new(0, CYCLE_PS, 4, bank.graph.weights());
        SequenceSource {
            sim,
            bank,
            delays,
            seq,
            mask_rng: MaskRng::new(seed),
            val_rng: SmallRng::seed_from_u64(seed ^ 0xf00d),
            measurement: MeasurementModel::new(1.0, 0.8, 16, seed ^ 0xabc),
            sim_seed: seed,
            trace: PowerTrace::new(0, CYCLE_PS, 4),
            compiled,
            runner: SchedRunner::new(),
            lane_bins,
            repairs: RepairQueue::new(),
            repair_bins: vec![0.0; 4 * LANES],
        }
    }

    /// The input net carrying the given share.
    pub fn share_net(&self, s: InputShare) -> NetId {
        bank_share_net(&self.bank, s)
    }
}

impl TraceSource for SequenceSource {
    fn fork(&self, stream: u64) -> Self {
        SequenceSource::with_backend(
            Arc::clone(&self.bank),
            Arc::clone(&self.delays),
            self.seq,
            self.sim_seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            self.compiled.clone(),
        )
    }

    fn num_samples(&self) -> usize {
        4
    }

    fn trace(&mut self, class: Class, out: &mut [f64]) {
        // Fixed class: x = 1, y = 1 (any fixed pair works); random class:
        // fresh random x, y. Shares always fresh-random.
        let (x, y) = match class {
            Class::Fixed => (true, true),
            Class::Random => (self.val_rng.random(), self.val_rng.random()),
        };
        let mx = MaskedBit::mask(x, &mut self.mask_rng);
        let my = MaskedBit::mask(y, &mut self.mask_rng);
        let value = |s: InputShare| match s {
            InputShare::X0 => mx.s0,
            InputShare::X1 => mx.s1,
            InputShare::Y0 => my.s0,
            InputShare::Y1 => my.s1,
        };

        self.sim_seed = self.sim_seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(11);
        self.sim.reset(&self.bank.graph, self.sim_seed);
        self.trace.clear();
        for (cycle, &share) in self.seq.iter().enumerate() {
            self.sim.schedule(self.share_net(share), cycle as u64 * CYCLE_PS + 1_000, value(share));
        }
        self.sim.run_until(&self.bank.graph, &self.delays, 4 * CYCLE_PS, &mut self.trace);
        self.measurement.sample_into(self.trace.samples(), out);
    }

    fn trace_block(
        &mut self,
        labels: &[Class],
        fixed: &mut [f64],
        random: &mut [f64],
    ) -> (usize, usize) {
        let Some(sched) = self.compiled.clone() else {
            return scalar_block(self, labels, fixed, random);
        };
        let (mut nf, mut nr) = (0usize, 0usize);
        let mut start = 0usize;
        while start < labels.len() {
            let chunk = (labels.len() - start).min(LANES);
            // Draw the per-trace RNG streams in label order — identical to
            // the scalar path — while packing the lane words.
            let mut seeds = [0u64; LANES];
            let mut stim_values = [0u64; 4];
            for l in 0..chunk {
                let (x, y) = match labels[start + l] {
                    Class::Fixed => (true, true),
                    Class::Random => (self.val_rng.random(), self.val_rng.random()),
                };
                let mx = MaskedBit::mask(x, &mut self.mask_rng);
                let my = MaskedBit::mask(y, &mut self.mask_rng);
                self.sim_seed = self.sim_seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(11);
                seeds[l] = self.sim_seed;
                for (s, &share) in self.seq.iter().enumerate() {
                    let v = match share {
                        InputShare::X0 => mx.s0,
                        InputShare::X1 => mx.s1,
                        InputShare::Y0 => my.s0,
                        InputShare::Y1 => my.s1,
                    };
                    if v {
                        stim_values[s] |= 1 << l;
                    }
                }
            }
            self.lane_bins.clear();
            let div = self.runner.run_pass(
                &sched,
                &self.bank.graph,
                &self.delays,
                self.bank.graph.weights(),
                &seeds[..chunk],
                &stim_values,
                4 * CYCLE_PS,
                &mut self.lane_bins,
            );
            self.lane_bins.finish_pass();
            let batch = repair_batch_enabled();
            if batch && div != 0 {
                // Deferred repair: queue every divergent lane of this
                // pass, then drain the batch in one hoisted span (the
                // rerun is a pure function of the ticket, so deferral
                // never changes a byte). Draining before the label loop
                // keeps the measurement-noise stream in label order.
                for (l, &seed) in seeds.iter().enumerate().take(chunk) {
                    if div >> l & 1 != 0 {
                        let mut sb = 0u32;
                        for (s, &v) in stim_values.iter().enumerate() {
                            sb |= ((v >> l & 1) as u32) << s;
                        }
                        self.repairs.push(seed, sb, l as u32);
                    }
                }
                let SequenceSource {
                    sim,
                    bank,
                    delays,
                    seq,
                    trace,
                    runner,
                    repairs,
                    repair_bins,
                    ..
                } = self;
                repairs.drain(&mut runner.stats, |t| {
                    sim.reset(&bank.graph, t.seed);
                    trace.clear();
                    for (cycle, &share) in seq.iter().enumerate() {
                        sim.schedule(
                            bank_share_net(bank, share),
                            cycle as u64 * CYCLE_PS + 1_000,
                            t.stim_bits >> cycle & 1 != 0,
                        );
                    }
                    sim.run_until(&bank.graph, delays, 4 * CYCLE_PS, trace);
                    repair_bins[t.slot as usize * 4..t.slot as usize * 4 + 4]
                        .copy_from_slice(trace.samples());
                });
            }
            let mut bins = [0.0f64; 4];
            for l in 0..chunk {
                if div >> l & 1 != 0 {
                    if batch {
                        bins.copy_from_slice(&self.repair_bins[l * 4..l * 4 + 4]);
                    } else {
                        // Legacy inline fallback (`GM_REPAIR_BATCH=0`):
                        // rerun the lane on the scalar wheel under the
                        // same seed, one span per lane.
                        let _fb = self.runner.stats.fallback_ns.span();
                        self.sim.reset(&self.bank.graph, seeds[l]);
                        self.trace.clear();
                        for (cycle, &share) in self.seq.iter().enumerate() {
                            self.sim.schedule(
                                bank_share_net(&self.bank, share),
                                cycle as u64 * CYCLE_PS + 1_000,
                                stim_values[cycle] >> l & 1 != 0,
                            );
                        }
                        self.sim.run_until(
                            &self.bank.graph,
                            &self.delays,
                            4 * CYCLE_PS,
                            &mut self.trace,
                        );
                        bins.copy_from_slice(self.trace.samples());
                    }
                } else {
                    self.lane_bins.lane_into(l, &mut bins);
                }
                // Measurement noise is drawn in label order, after the
                // pass — 4 draws per trace either way.
                let (buf, row) = match labels[start + l] {
                    Class::Fixed => (&mut *fixed, &mut nf),
                    Class::Random => (&mut *random, &mut nr),
                };
                self.measurement.sample_into(&bins, &mut buf[*row * 4..(*row + 1) * 4]);
                *row += 1;
            }
            start += chunk;
        }
        (nf, nr)
    }

    fn obs_report(&self, report: &mut Report) {
        report.set_nonzero("rng.mask_words", self.mask_rng.obs_words_drawn());
        self.sim.obs_report("sim", report);
        self.runner.obs_report("sim.sched", report);
        self.lane_bins.stats.report_into("sim.pack", report);
    }
}

/// A `secAND2-PD` gadget instance plus the bits needed to measure one
/// placement's first-order exposure (Fig. 15, gate level).
pub struct PdGadget {
    /// The gadget netlist.
    pub netlist: Netlist,
    /// Prebuilt simulation topology, shared read-only by all workers.
    pub graph: SimGraph,
    /// Share input nets.
    pub io: AndInputs,
    /// Simulation window covering the whole glitch train, in ps.
    pub window_ps: u64,
    /// Per-net toggle weights: core cells by area, delay lines and inputs
    /// excluded (the localized-probe view).
    pub weights: Vec<f64>,
}

/// Build a `secAND2-PD` gadget with the given DelayUnit size.
pub fn build_pd_gadget(unit_luts: usize) -> PdGadget {
    let mut n = Netlist::new("pd");
    let io =
        AndInputs { x0: n.input("x0"), x1: n.input("x1"), y0: n.input("y0"), y1: n.input("y1") };
    let out = build_sec_and2_pd(&mut n, io, PdConfig { unit_luts });
    n.output("z0", out.z0);
    n.output("z1", out.z1);
    n.validate().unwrap();
    let window_ps = (2 * unit_luts as u64 * 1_150) * 3 + 30_000;
    let weights: Vec<f64> = (0..n.num_nets() as u32)
        .map(|i| match n.driver(NetId(i)) {
            gm_netlist::netlist::Driver::Gate(g) if n.gate(g).kind != GateKind::DelayBuf => {
                n.gate(g).kind.area_ge()
            }
            _ => 0.0,
        })
        .collect();
    let graph = SimGraph::new(&n);
    PdGadget { netlist: n, graph, io, window_ps, weights }
}

/// Fig. 15 (gate level) trace source: one scalar sample per trace — the
/// gadget-core switching energy of a single evaluation with `x = 1` and
/// `y` decided by the TVLA class (`Fixed` ⇒ `y = 1`, `Random` ⇒ `y = 0`).
///
/// The class-mean difference of this source *is* the placement's
/// first-order exposure (see [`placement_bias`]); a placement that
/// preserves the safe arrival order shows none.
pub struct PdPlacementSource {
    gadget: Arc<PdGadget>,
    delays: Arc<DelayModel>,
    mask_rng: MaskRng,
    sim_seed: u64,
    /// Persistent event core over `gadget.graph`, reset per trace. Its
    /// per-net weights carry the localized-probe view (delay lines and
    /// inputs at 0), so the per-trace energy is accumulated directly in
    /// a [`gm_sim::power::CountingSink`] — no per-net count array.
    sim: SimCore,
    /// Levelized stimulus cascade shared by all forks; `None` pins the
    /// scalar wheel. The lane backend takes `gadget.weights` directly.
    compiled: Option<Arc<CompiledSchedule>>,
    runner: SchedRunner,
    /// Word-level (weight-class)-major energy accumulator, cleared per
    /// pass; converts to per-lane f64 once per pass.
    energy: LaneEnergy,
    /// Deferred divergent-lane tickets. Energies see no measurement
    /// noise, so repair can defer across *all* passes of a block and
    /// drain once — the slot encodes the destination row (bit 31 picks
    /// the fixed buffer).
    repairs: RepairQueue,
}

impl PdPlacementSource {
    /// Build a source for one placement (one sampled [`DelayModel`]) on
    /// the compiled-schedule backend.
    pub fn new(gadget: Arc<PdGadget>, delays: Arc<DelayModel>, seed: u64) -> Self {
        let io = gadget.io;
        let stims = [(io.x0, 1_000), (io.x1, 1_000), (io.y0, 1_000), (io.y1, 1_000)];
        let compiled = CompiledSchedule::compile(&gadget.graph, &delays, &stims).map(Arc::new);
        Self::with_backend(gadget, delays, seed, compiled)
    }

    /// Build a source pinned to the scalar event wheel (`--scalar`).
    pub fn scalar(gadget: Arc<PdGadget>, delays: Arc<DelayModel>, seed: u64) -> Self {
        Self::with_backend(gadget, delays, seed, None)
    }

    fn with_backend(
        gadget: Arc<PdGadget>,
        delays: Arc<DelayModel>,
        seed: u64,
        compiled: Option<Arc<CompiledSchedule>>,
    ) -> Self {
        let mut sim = SimCore::new(&gadget.graph, seed);
        for (i, &w) in gadget.weights.iter().enumerate() {
            sim.set_net_weight(NetId(i as u32), w);
        }
        let energy = LaneEnergy::new(&gadget.weights);
        PdPlacementSource {
            sim,
            gadget,
            delays,
            mask_rng: MaskRng::new(seed ^ 0x77),
            sim_seed: seed,
            compiled,
            runner: SchedRunner::new(),
            energy,
            repairs: RepairQueue::new(),
        }
    }
}

/// Scalar-wheel energy of one trace: the shared reference body for
/// [`TraceSource::trace`] and the divergent-lane fallback (a free
/// function so the fallback timer can hold the runner's stopwatch).
fn pd_scalar_energy(
    sim: &mut SimCore,
    gadget: &PdGadget,
    delays: &DelayModel,
    shares: [bool; 4],
    seed: u64,
) -> f64 {
    let io = gadget.io;
    sim.reset(&gadget.graph, seed);
    for (s, net) in [io.x0, io.x1, io.y0, io.y1].into_iter().enumerate() {
        // Inputs rest at the all-zero baseline; a `false` edge is a
        // no-op the engine would pop and discard (no rng draw, no
        // transition), so skipping it leaves the stream bit-identical.
        if shares[s] {
            sim.schedule(net, 1_000, true);
        }
    }
    let mut sink = gm_sim::power::CountingSink::default();
    sim.run_until(&gadget.graph, delays, gadget.window_ps, &mut sink);
    sink.weighted
}

impl TraceSource for PdPlacementSource {
    fn fork(&self, stream: u64) -> Self {
        PdPlacementSource::with_backend(
            Arc::clone(&self.gadget),
            Arc::clone(&self.delays),
            self.sim_seed ^ stream.wrapping_mul(0xd192_ed03_a4ab_f2ee),
            self.compiled.clone(),
        )
    }

    fn num_samples(&self) -> usize {
        1
    }

    fn trace(&mut self, class: Class, out: &mut [f64]) {
        let y = class == Class::Fixed;
        let mx = MaskedBit::mask(true, &mut self.mask_rng);
        let my = MaskedBit::mask(y, &mut self.mask_rng);
        self.sim_seed = self.sim_seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(7);
        out[0] = pd_scalar_energy(
            &mut self.sim,
            &self.gadget,
            &self.delays,
            [mx.s0, mx.s1, my.s0, my.s1],
            self.sim_seed,
        );
    }

    fn trace_block(
        &mut self,
        labels: &[Class],
        fixed: &mut [f64],
        random: &mut [f64],
    ) -> (usize, usize) {
        let Some(sched) = self.compiled.clone() else {
            return scalar_block(self, labels, fixed, random);
        };
        let batch = repair_batch_enabled();
        let (mut nf, mut nr) = (0usize, 0usize);
        let mut start = 0usize;
        while start < labels.len() {
            let chunk = (labels.len() - start).min(LANES);
            // Draw the per-trace RNG streams in label order — identical to
            // the scalar path — while packing the lane words.
            let mut seeds = [0u64; LANES];
            let mut stim_values = [0u64; 4];
            for l in 0..chunk {
                let y = labels[start + l] == Class::Fixed;
                let mx = MaskedBit::mask(true, &mut self.mask_rng);
                let my = MaskedBit::mask(y, &mut self.mask_rng);
                self.sim_seed = self.sim_seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(7);
                seeds[l] = self.sim_seed;
                for (s, v) in [mx.s0, mx.s1, my.s0, my.s1].into_iter().enumerate() {
                    if v {
                        stim_values[s] |= 1 << l;
                    }
                }
            }
            self.energy.clear();
            let div = self.runner.run_pass(
                &sched,
                &self.gadget.graph,
                &self.delays,
                &self.gadget.weights,
                &seeds[..chunk],
                &stim_values,
                self.gadget.window_ps,
                &mut self.energy,
            );
            let mut energies = [0.0f64; LANES];
            self.energy.energies_into(&mut energies);
            for l in 0..chunk {
                let (row, is_fixed) = match labels[start + l] {
                    Class::Fixed => {
                        nf += 1;
                        (nf - 1, true)
                    }
                    Class::Random => {
                        nr += 1;
                        (nr - 1, false)
                    }
                };
                let e = if div >> l & 1 != 0 {
                    if batch {
                        // Queue the repair; the drain below overwrites
                        // this row, so nothing is written yet.
                        let mut sb = 0u32;
                        for (s, &v) in stim_values.iter().enumerate() {
                            sb |= ((v >> l & 1) as u32) << s;
                        }
                        self.repairs.push(seeds[l], sb, row as u32 | u32::from(is_fixed) << 31);
                        continue;
                    }
                    // Legacy inline fallback (`GM_REPAIR_BATCH=0`): rerun
                    // the lane on the scalar wheel under the same seed
                    // (bit-identical by construction), one span per lane.
                    let _fb = self.runner.stats.fallback_ns.span();
                    let mut shares = [false; 4];
                    for (s, sh) in shares.iter_mut().enumerate() {
                        *sh = stim_values[s] >> l & 1 != 0;
                    }
                    pd_scalar_energy(&mut self.sim, &self.gadget, &self.delays, shares, seeds[l])
                } else {
                    energies[l]
                };
                if is_fixed {
                    fixed[row] = e;
                } else {
                    random[row] = e;
                }
            }
            start += chunk;
        }
        // Energies carry no label-ordered downstream RNG (no measurement
        // noise), so the whole block's repairs drain in one batch.
        if batch {
            let PdPlacementSource { sim, gadget, delays, runner, repairs, .. } = self;
            repairs.drain(&mut runner.stats, |t| {
                let mut shares = [false; 4];
                for (s, sh) in shares.iter_mut().enumerate() {
                    *sh = t.stim_bits >> s & 1 != 0;
                }
                let e = pd_scalar_energy(sim, gadget, delays, shares, t.seed);
                let row = (t.slot & !(1 << 31)) as usize;
                if t.slot >> 31 != 0 {
                    fixed[row] = e;
                } else {
                    random[row] = e;
                }
            });
        }
        (nf, nr)
    }

    fn obs_report(&self, report: &mut Report) {
        report.set_nonzero("rng.mask_words", self.mask_rng.obs_words_drawn());
        self.sim.obs_report("sim", report);
        self.runner.obs_report("sim.sched", report);
        self.energy.stats.report_into("sim.pack", report);
    }
}

/// First-order exposure of a placement from an accumulated campaign: the
/// class-mean switching-energy difference `|E[power | y=1] − E[power | y=0]|`.
pub fn placement_bias(result: &TvlaResult) -> f64 {
    (result.fixed.mean()[0] - result.random.mean()[0]).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_core::schedule::{predicted_leaky, InputShare};
    use gm_leakage::Campaign;

    /// The compiled-schedule backend must reproduce the scalar campaign:
    /// every non-divergent lane is multiset-identical (pinned at the sim
    /// layer), so class means may differ only by floating-point summation
    /// order inside a trace's energy/bins.
    #[test]
    fn pd_compiled_matches_scalar_campaign() {
        let gadget = Arc::new(build_pd_gadget(3));
        let delays = Arc::new(DelayModel::with_variation(
            &gadget.netlist,
            0.85,
            400.0,
            0x5eed ^ (3u64) << 8,
        ));
        let campaign = Campaign::sequential(2_000, 42);
        let compiled =
            campaign.run(&PdPlacementSource::new(Arc::clone(&gadget), Arc::clone(&delays), 7));
        let scalar = campaign.run(&PdPlacementSource::scalar(gadget, delays, 7));
        assert_eq!(compiled.total_traces(), scalar.total_traces());
        let (bc, bs) = (placement_bias(&compiled), placement_bias(&scalar));
        assert!(
            (bc - bs).abs() <= 1e-9 * bs.abs().max(1.0),
            "placement bias moved between backends: compiled {bc} vs scalar {bs}"
        );
        assert!(
            (compiled.fixed.mean()[0] - scalar.fixed.mean()[0]).abs() <= 1e-9,
            "fixed-class mean moved between backends"
        );
    }

    /// The recorded placement bias is a pure function of `(seed, traces,
    /// threads)`: the chunk quota split is deterministic and every
    /// worker forks its own device streams from its index, so repeating
    /// the identical campaign reproduces the bias bit-for-bit. Across
    /// *different* thread counts the per-worker streams regroup and the
    /// estimate moves within its `1/√N` sampling noise — that is the
    /// cross-row drift of `placement_bias` in `BENCH_gate.json`
    /// (documented in EXPERIMENTS.md), not a backend change.
    #[test]
    fn placement_bias_is_seed_stable() {
        let gadget = Arc::new(build_pd_gadget(2));
        let delays =
            Arc::new(DelayModel::with_variation(&gadget.netlist, 0.85, 400.0, 0x5eed ^ 2 << 8));
        let src = PdPlacementSource::new(Arc::clone(&gadget), Arc::clone(&delays), 7);
        for threads in [1usize, 3] {
            let campaign = Campaign { traces: 1_500, threads, seed: 42 };
            let b1 = placement_bias(&campaign.run(&src));
            let b2 = placement_bias(&campaign.run(&src));
            assert_eq!(
                b1.to_bits(),
                b2.to_bits(),
                "same campaign config must reproduce the bias exactly ({threads} threads)"
            );
        }
    }

    /// Same contract for the Table I arrival-sequence source, on one
    /// leaky and one safe order.
    #[test]
    fn sequence_compiled_matches_scalar_campaign() {
        use InputShare::{X0, X1, Y0, Y1};
        let bank = Arc::new(build_sec_and2_bank(4));
        let delays = Arc::new(DelayModel::with_variation(&bank.netlist, 0.3, 60.0, 0xbead));
        for seq in [[X0, Y0, X1, Y1], [X0, X1, Y0, Y1]] {
            let campaign = Campaign::sequential(1_000, 9);
            let compiled =
                campaign.run(&SequenceSource::new(Arc::clone(&bank), Arc::clone(&delays), seq, 3));
            let scalar = campaign.run(&SequenceSource::scalar(
                Arc::clone(&bank),
                Arc::clone(&delays),
                seq,
                3,
            ));
            let (tc, ts) = (compiled.max_abs_t1(), scalar.max_abs_t1());
            assert!(
                (tc - ts).abs() <= 1e-9 * ts.abs().max(1.0),
                "max |t1| moved between backends for {seq:?} (leaky={}): {tc} vs {ts}",
                predicted_leaky(&seq)
            );
        }
    }
}
