//! Campaign metrics collection behind the shared `--metrics PATH` /
//! `--progress` flags.
//!
//! Every experiment binary builds one [`MetricsSink`] from its parsed
//! [`Args`](crate::Args) and routes campaigns through
//! [`MetricsSink::run`] (or [`MetricsSink::run_streamed`] for live
//! convergence telemetry, or records hand-timed phases with
//! [`MetricsSink::record_phase`]). Records stream to the `--metrics`
//! JSONL file the moment they exist, each as one single-buffer write —
//! `"kind":"phase"` records carry the same `traces`/`threads`/`git_rev`
//! envelope as the `BENCH_*.json` records; `"kind":"progress"` records
//! carry incremental max-|t| / traces-done / throughput snapshots. At
//! exit, [`MetricsSink::finish`] exports the captured span tree as
//! Chrome trace-event JSON (under `--trace-out`) and prints a
//! human-readable end-of-run summary table (per-phase wall time, worker
//! balance, simulator events per trace, glitch census).
//!
//! When neither flag is given the sink is inert: campaigns still run
//! through the same observed entry points (whose instrumentation is the
//! always-on `gm-obs` counters, or no-ops under `obs-off`), but nothing
//! is collected, written, or printed.

use crate::cli::Args;
use crate::record::{atomic_write, git_rev};
use gm_leakage::{Campaign, CampaignObs, TraceSource, TvlaResult};
use gm_obs::fmt::{human_count, human_ns};
use gm_obs::{escape_into, Report};
use std::fs::File;
use std::io::Write;
use std::time::Instant;

/// One observed phase (usually one TVLA campaign) of a binary's run.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name (`"fig14-prng-on"`, `"table2-k3-safe"`, ...).
    pub name: String,
    /// Wall time of the phase in seconds (measured with the real clock,
    /// so it is meaningful even under `obs-off`).
    pub seconds: f64,
    /// Traces (or items) the phase processed.
    pub traces: u64,
    /// Worker threads used (1 for inline phases).
    pub threads: usize,
    /// Worker balance in percent (100 = perfectly even; see
    /// [`CampaignObs::worker_balance`]), 100 for non-campaign phases.
    pub balance_pct: u64,
    /// Flattened counters: the campaign's `pool.*` aggregates plus
    /// everything the trace source exported (`sim.*`, `lanes.*`, ...).
    pub counters: Report,
}

/// Collector for all observed phases of one binary run.
#[derive(Debug)]
pub struct MetricsSink {
    bin: &'static str,
    label: Option<String>,
    seed: u64,
    path: Option<String>,
    out: Option<File>,
    trace_out: Option<String>,
    progress: bool,
    progress_every: Option<u64>,
    rev: String,
    phases: Vec<PhaseReport>,
}

impl MetricsSink {
    /// Build the sink for a binary from its parsed arguments. The sink
    /// is inert (collects nothing) unless `--metrics` or `--progress`
    /// was given. With `--metrics` the JSONL file is opened (truncated)
    /// here and every record is appended the moment its phase completes,
    /// each as one single-buffer write — a crash mid-run loses at most
    /// the in-flight record, and every newline-terminated line on disk
    /// is a whole record. With `--trace-out` span
    /// capture is armed here and exported by [`MetricsSink::finish`].
    pub fn from_args(bin: &'static str, args: &Args) -> Self {
        let out = args.metrics.as_ref().map(|p| {
            if let Some(dir) = std::path::Path::new(p).parent() {
                if !dir.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(dir);
                }
            }
            File::create(p).unwrap_or_else(|e| panic!("cannot open --metrics {p}: {e}"))
        });
        if args.trace_out.is_some() {
            gm_obs::trace::start_capture();
        }
        MetricsSink {
            bin,
            label: args.label.clone(),
            seed: args.seed,
            path: args.metrics.clone(),
            out,
            trace_out: args.trace_out.clone(),
            progress: args.progress,
            progress_every: args.progress_every,
            rev: git_rev(),
            phases: Vec::new(),
        }
    }

    /// Whether any collection is active.
    pub fn enabled(&self) -> bool {
        self.path.is_some() || self.progress
    }

    /// Recorded phases so far.
    pub fn phases(&self) -> &[PhaseReport] {
        &self.phases
    }

    /// Run a campaign as an observed phase: identical statistics to
    /// `campaign.run(source)`, plus (when enabled) one recorded
    /// [`PhaseReport`].
    pub fn run<S: TraceSource>(
        &mut self,
        name: &str,
        campaign: &Campaign,
        source: &S,
    ) -> TvlaResult {
        let start = Instant::now();
        let (result, obs) = campaign.run_observed(source);
        self.record_campaign(name, start.elapsed().as_secs_f64(), &obs, result.total_traces());
        result
    }

    /// Streaming counterpart of [`MetricsSink::run`]: identical final
    /// statistics (the returned result is the authoritative chunk-merged
    /// one, bit-equal to `campaign.run`), plus — when `--progress-every N`
    /// was given — live convergence telemetry roughly every N acquired
    /// traces: one `progress` JSONL record per snapshot (when `--metrics`
    /// is active) and a live readout line (when `--progress` is active).
    /// Falls back to [`MetricsSink::run`] when no cadence was requested.
    pub fn run_streamed<S: TraceSource>(
        &mut self,
        name: &str,
        campaign: &Campaign,
        source: &S,
    ) -> TvlaResult {
        let Some(every) = self.progress_every else {
            return self.run(name, campaign, source);
        };
        let start = Instant::now();
        let mut conv = crate::panel::Convergence::new(name, campaign.traces, self.progress);
        let threads = campaign.threads.max(1);
        let (result, obs) = {
            let sink = &*self;
            let mut on_progress = |snap: &TvlaResult| {
                // Early snapshots can have all traces in one class; the
                // t statistic needs two traces of each before it exists.
                if snap.fixed.count() < 2 || snap.random.count() < 2 {
                    return;
                }
                let done = snap.total_traces();
                let seconds = start.elapsed().as_secs_f64();
                let t1 = snap.max_abs_t(1);
                let t2 = snap.max_abs_t(2);
                sink.emit_progress(name, done, campaign.traces, threads, seconds, t1, t2);
                conv.observe(done, t1, seconds);
            };
            campaign.run_streamed_observed(source, every, &mut on_progress)
        };
        conv.finish();
        self.record_campaign(name, start.elapsed().as_secs_f64(), &obs, result.total_traces());
        result
    }

    /// Chunked counterpart of [`MetricsSink::run`]; same contract as
    /// [`Campaign::run_chunked`].
    pub fn run_chunked<S: TraceSource>(
        &mut self,
        name: &str,
        campaign: &Campaign,
        source: &S,
        chunk_ends: &[u64],
        checkpoint: impl FnMut(u64, &TvlaResult) -> bool,
    ) -> Option<TvlaResult> {
        let start = Instant::now();
        let (result, obs) = campaign.run_chunked_observed(source, chunk_ends, checkpoint)?;
        self.record_campaign(name, start.elapsed().as_secs_f64(), &obs, result.total_traces());
        Some(result)
    }

    /// Record a finished campaign from its observations.
    pub fn record_campaign(&mut self, name: &str, seconds: f64, obs: &CampaignObs, traces: u64) {
        if !self.enabled() {
            return;
        }
        let phase = PhaseReport {
            name: name.to_owned(),
            seconds,
            traces,
            threads: obs.threads,
            balance_pct: (obs.worker_balance() * 100.0).round() as u64,
            counters: obs.report(),
        };
        self.push(phase);
    }

    /// Record a hand-timed phase (binaries whose work is not a TVLA
    /// campaign: single-trace figures, censuses, probes). `counters`
    /// carries whatever the phase's components export.
    pub fn record_phase(&mut self, name: &str, seconds: f64, items: u64, counters: Report) {
        if !self.enabled() {
            return;
        }
        let phase = PhaseReport {
            name: name.to_owned(),
            seconds,
            traces: items,
            threads: 1,
            balance_pct: 100,
            counters,
        };
        self.push(phase);
    }

    fn push(&mut self, phase: PhaseReport) {
        if self.progress {
            let tps = if phase.seconds > 0.0 { phase.traces as f64 / phase.seconds } else { 0.0 };
            println!(
                "[metrics] {}: {} traces in {:.3} s ({}/s, {} workers, balance {}%)",
                phase.name,
                phase.traces,
                phase.seconds,
                human_count(tps as u64),
                phase.threads,
                phase.balance_pct,
            );
        }
        self.write_line(&self.record_line(&phase));
        self.phases.push(phase);
    }

    /// Append one record to the JSONL file as a single write (`write_all`
    /// of the line plus newline in one buffer, then flush). A crash or
    /// kill between records loses nothing; a kill mid-write can truncate
    /// only the final, unterminated line (a `write(2)` spanning a page
    /// boundary commits page by page), so every newline-terminated line a
    /// reader sees is a whole record.
    fn write_line(&self, record: &str) {
        let Some(file) = &self.out else { return };
        let mut buf = String::with_capacity(record.len() + 1);
        buf.push_str(record);
        buf.push('\n');
        let mut f: &File = file;
        f.write_all(buf.as_bytes()).expect("write metrics record");
        f.flush().expect("flush metrics record");
    }

    /// Shared opening of every JSONL record: `bin`, `kind`, optional
    /// `label`, `phase`, `git_rev`, `seed` — then the caller appends the
    /// kind-specific members.
    fn record_head(&self, kind: &str, phase: &str) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"bin\":\"");
        escape_into(self.bin, &mut s);
        s.push_str("\",\"kind\":\"");
        s.push_str(kind);
        s.push('"');
        if let Some(label) = &self.label {
            s.push_str(",\"label\":\"");
            escape_into(label, &mut s);
            s.push('"');
        }
        s.push_str(",\"phase\":\"");
        escape_into(phase, &mut s);
        s.push_str("\",\"git_rev\":\"");
        escape_into(&self.rev, &mut s);
        s.push_str(&format!("\",\"seed\":{}", self.seed));
        s
    }

    /// Serialize one phase as a JSONL record (`"kind":"phase"`).
    fn record_line(&self, p: &PhaseReport) -> String {
        let mut s = self.record_head("phase", &p.name);
        s.push_str(&format!(
            ",\"traces\":{},\"threads\":{},\"seconds\":{:.6},\
             \"traces_per_sec\":{:.1},\"balance_pct\":{},\"counters\":",
            p.traces,
            p.threads,
            p.seconds,
            if p.seconds > 0.0 { p.traces as f64 / p.seconds } else { 0.0 },
            p.balance_pct,
        ));
        s.push_str(&p.counters.to_json());
        s.push('}');
        s
    }

    /// Emit one live convergence snapshot (`"kind":"progress"`).
    #[allow(clippy::too_many_arguments)]
    fn emit_progress(
        &self,
        phase: &str,
        done: u64,
        total: u64,
        threads: usize,
        seconds: f64,
        t1: f64,
        t2: f64,
    ) {
        if self.out.is_none() {
            return;
        }
        let mut s = self.record_head("progress", phase);
        s.push_str(&format!(
            ",\"traces_done\":{done},\"traces_total\":{total},\"threads\":{threads},\
             \"seconds\":{seconds:.6},\"traces_per_sec\":{:.1},\
             \"max_abs_t1\":{t1:.12},\"max_abs_t2\":{t2:.12}}}",
            if seconds > 0.0 { done as f64 / seconds } else { 0.0 },
        ));
        self.write_line(&s);
    }

    /// Export the Chrome trace (if `--trace-out` was given) and print the
    /// end-of-run summary (if anything was collected). Call last. The
    /// JSONL records themselves were already streamed out as the phases
    /// completed.
    pub fn finish(&self) -> std::io::Result<()> {
        if let Some(path) = &self.trace_out {
            let events = gm_obs::trace::stop_capture();
            atomic_write(path, &gm_obs::trace::chrome_trace_json(&events))?;
            let dropped = gm_obs::trace::dropped_events();
            if dropped > 0 {
                eprintln!("[trace] ring overflow: {dropped} span event(s) dropped");
            }
            println!("[trace] {} span event(s) -> {path}", events.len());
        }
        if !self.enabled() {
            return Ok(());
        }
        self.print_summary();
        Ok(())
    }

    fn print_summary(&self) {
        if self.phases.is_empty() {
            return;
        }
        println!();
        println!("== campaign metrics: {} (rev {}) ==", self.bin, self.rev);
        println!(
            "  {:<26} {:>9} {:>9} {:>10} {:>8} {:>8}",
            "phase", "traces", "wall", "traces/s", "workers", "balance"
        );
        for p in &self.phases {
            let tps = if p.seconds > 0.0 { p.traces as f64 / p.seconds } else { 0.0 };
            println!(
                "  {:<26} {:>9} {:>8.2}s {:>8}/s {:>8} {:>7}%",
                truncated(&p.name, 26),
                human_count(p.traces),
                p.seconds,
                human_count(tps as u64),
                p.threads,
                p.balance_pct,
            );
        }
        let mut total = Report::new();
        let mut traces = 0u64;
        for p in &self.phases {
            total.merge(&p.counters);
            traces += p.traces;
        }
        if let (Some(acq), idle) = (total.get("pool.acquire_ns"), total.get("pool.idle_ns")) {
            let idle = idle.unwrap_or(0);
            println!(
                "  pool: {} acquiring, {} idle ({:.1}% busy)",
                human_ns(acq),
                human_ns(idle),
                100.0 * acq as f64 / (acq + idle).max(1) as f64,
            );
        }
        if let Some(events) = total.get("sim.events") {
            let per_trace = if traces > 0 { events as f64 / traces as f64 } else { 0.0 };
            println!(
                "  simulator: {} events ({:.0} events/trace), {} transitions",
                human_count(events),
                per_trace,
                human_count(total.get("sim.transitions").unwrap_or(0)),
            );
            let census: Vec<(&str, u64)> = total
                .iter()
                .filter(|(k, _)| k.starts_with("sim.toggle."))
                .map(|(k, v)| (&k["sim.toggle.".len()..], v))
                .collect();
            let all: u64 = census.iter().map(|(_, v)| v).sum();
            if all > 0 {
                let mut census = census;
                census.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
                let line: Vec<String> = census
                    .iter()
                    .take(6)
                    .map(|(k, v)| format!("{k} {:.0}%", 100.0 * *v as f64 / all as f64))
                    .collect();
                println!("  glitch census: {}", line.join(", "));
            }
        }
        if let (Some(used), Some(groups)) = (total.get("lanes.used"), total.get("lanes.groups")) {
            let capacity = groups * gm_netlist::bitslice::LANES as u64;
            println!(
                "  lanes: {:.1}% utilisation ({} groups, {} partial)",
                100.0 * used as f64 / capacity.max(1) as f64,
                human_count(groups),
                human_count(total.get("lanes.groups_partial").unwrap_or(0)),
            );
        }
        if let Some(words) = total.get("rng.mask_words") {
            println!("  rng: {} masking words drawn", human_count(words));
        }
    }
}

fn truncated(s: &str, n: usize) -> &str {
    // Phase names are ASCII; byte truncation is char truncation.
    &s[..s.len().min(n)]
}

/// Wall-time ratio of a metrics-recorded campaign over a plain
/// `Campaign::run`, best of `reps` interleaved passes each (interleaving
/// shares scheduler/thermal conditions between the two variants). The
/// recording sink is enabled but never flushed, so this measures exactly
/// the collection cost the `--metrics` flag adds.
pub fn metrics_overhead_ratio<S: TraceSource>(campaign: &Campaign, source: &S, reps: usize) -> f64 {
    // Sink enabled via a throwaway path; finish() is never called.
    let args = Args { metrics: Some("/dev/null".to_owned()), ..Args::default() };
    let mut sink = MetricsSink::from_args("overhead-probe", &args);
    let mut plain = f64::INFINITY;
    let mut recorded = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let _ = campaign.run(source);
        plain = plain.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let _ = sink.run("probe", campaign, source);
        recorded = recorded.min(t.elapsed().as_secs_f64());
    }
    recorded / plain
}

/// Assert that enabling metrics costs less than `max_pct` percent of
/// campaign throughput. Timing noise makes a single measurement
/// unreliable, so the best ratio over up to `attempts` tries is what
/// must clear the bound — a genuine regression fails every attempt.
pub fn assert_metrics_overhead<S: TraceSource>(
    campaign: &Campaign,
    source: &S,
    max_pct: f64,
    attempts: usize,
) {
    let bound = 1.0 + max_pct / 100.0;
    let mut best = f64::INFINITY;
    for _ in 0..attempts.max(1) {
        best = best.min(metrics_overhead_ratio(campaign, source, 3));
        if best <= bound {
            println!("  metrics overhead check: {:+.2}% (< {max_pct}%)", (best - 1.0) * 100.0);
            return;
        }
    }
    panic!(
        "metrics collection costs {:.2}% of campaign throughput (bound {max_pct}%)",
        (best - 1.0) * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[derive(Clone)]
    struct Noise(u64);
    impl TraceSource for Noise {
        fn fork(&self, stream: u64) -> Self {
            Noise(self.0 ^ stream.wrapping_mul(0x9e37))
        }
        fn num_samples(&self) -> usize {
            4
        }
        fn trace(&mut self, _class: gm_leakage::Class, out: &mut [f64]) {
            let mut rng = SmallRng::seed_from_u64(self.0);
            self.0 = self.0.wrapping_add(1);
            out.iter_mut().for_each(|o| *o = rng.random::<f64>());
        }
        fn obs_report(&self, report: &mut Report) {
            report.add("noise.calls", 1);
        }
    }

    /// Serializes the campaign-heavy tests against the wall-clock
    /// overhead probe: they are individually correct under parallel
    /// execution, but their CPU load is exactly the noise that makes a
    /// timing ratio flaky.
    fn timing_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn test_args(metrics: Option<&str>) -> Args {
        Args {
            metrics: metrics.map(str::to_owned),
            label: Some("unit".to_owned()),
            seed: 5,
            ..Args::default()
        }
    }

    #[test]
    fn disabled_sink_collects_nothing() {
        let mut sink = MetricsSink::from_args("t", &test_args(None));
        assert!(!sink.enabled());
        let r = sink.run("p", &Campaign::sequential(600, 3), &Noise(1));
        assert_eq!(r.total_traces(), 600);
        assert!(sink.phases().is_empty());
        sink.finish().unwrap();
    }

    #[test]
    fn jsonl_records_round_trip() {
        let dir = std::env::temp_dir().join("gm_bench_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.jsonl");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        let mut sink = MetricsSink::from_args("unit_test", &test_args(Some(path)));
        assert!(sink.enabled());
        let c = Campaign { traces: 700, threads: 2, seed: 5 };
        let r = sink.run("alpha", &c, &Noise(7));
        assert_eq!(r.total_traces(), 700);
        let mut extra = Report::new();
        extra.set("custom.thing", 9);
        sink.record_phase("beta", 0.25, 40, extra);
        sink.finish().unwrap();

        let text = std::fs::read_to_string(path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("bin").unwrap().as_str(), Some("unit_test"));
        assert_eq!(first.get("label").unwrap().as_str(), Some("unit"));
        assert_eq!(first.get("phase").unwrap().as_str(), Some("alpha"));
        assert_eq!(first.get("traces").unwrap().as_u64(), Some(700));
        assert_eq!(first.get("threads").unwrap().as_u64(), Some(2));
        assert_eq!(first.get("seed").unwrap().as_u64(), Some(5));
        assert!(first.get("git_rev").unwrap().as_str().is_some());
        assert!(first.get("seconds").unwrap().as_f64().unwrap() >= 0.0);
        let counters = first.get("counters").unwrap();
        assert_eq!(counters.get("noise.calls").unwrap().as_u64(), Some(2), "one per worker");
        assert_eq!(counters.get("pool.workers").unwrap().as_u64(), Some(2));
        let second = json::parse(lines[1]).unwrap();
        assert_eq!(second.get("phase").unwrap().as_str(), Some("beta"));
        assert_eq!(second.get("traces").unwrap().as_u64(), Some(40));
        assert_eq!(second.get("counters").unwrap().get("custom.thing").unwrap().as_u64(), Some(9));
        let _ = std::fs::remove_file(path);
    }

    /// Streaming telemetry: `progress` records land in the JSONL file,
    /// their trajectory is monotone, and the final snapshot's max|t1|
    /// matches the one-shot campaign to 1e-9 (the returned result is
    /// bit-equal by construction; this pins the serialized records too).
    #[test]
    fn streamed_progress_records_round_trip() {
        let _serial = timing_lock();
        let dir = std::env::temp_dir().join("gm_bench_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.jsonl");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        let mut args = test_args(Some(path));
        args.progress_every = Some(100);
        let mut sink = MetricsSink::from_args("unit_stream", &args);
        let c = Campaign::sequential(1_000, 9);
        let r = sink.run_streamed("conv", &c, &Noise(5));
        let one_shot = c.run(&Noise(5));
        assert_eq!(r.t1(), one_shot.t1(), "streaming must not perturb the statistics");
        sink.finish().unwrap();

        let text = std::fs::read_to_string(path).unwrap();
        let progress: Vec<_> = text
            .lines()
            .map(|l| json::parse(l).unwrap())
            .filter(|v| v.get("kind").and_then(json::Json::as_str) == Some("progress"))
            .collect();
        assert!(progress.len() >= 3, "cadence 100 over 1000 traces: got {}", progress.len());
        let counts: Vec<u64> =
            progress.iter().map(|v| v.get("traces_done").unwrap().as_u64().unwrap()).collect();
        assert!(counts.windows(2).all(|w| w[0] < w[1]), "monotone: {counts:?}");
        assert_eq!(*counts.last().unwrap(), 1_000);
        let last_t1 = progress.last().unwrap().get("max_abs_t1").unwrap().as_f64().unwrap();
        assert!((last_t1 - one_shot.max_abs_t(1)).abs() < 1e-9, "{last_t1}");
        let phases = text.lines().filter(|l| l.contains("\"kind\":\"phase\"")).count();
        assert_eq!(phases, 1, "the campaign itself still records one phase");
        let _ = std::fs::remove_file(path);
    }

    /// Without a cadence, `run_streamed` degrades to `run`: one phase
    /// record, no progress records.
    #[test]
    fn run_streamed_without_cadence_is_run() {
        let _serial = timing_lock();
        let mut sink = MetricsSink::from_args("t", &test_args(Some("/dev/null")));
        let r = sink.run_streamed("p", &Campaign::sequential(400, 2), &Noise(8));
        assert_eq!(r.total_traces(), 400);
        assert_eq!(sink.phases().len(), 1);
    }

    /// `--trace-out` exports a Chrome trace-event file: a JSON object
    /// with a `traceEvents` array (empty under `obs-off`, populated with
    /// balanced B/E pairs otherwise).
    #[test]
    fn trace_out_exports_chrome_json() {
        let _serial = timing_lock();
        let dir = std::env::temp_dir().join("gm_bench_trace_out_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        let mut args = test_args(None);
        args.trace_out = Some(path.to_owned());
        let mut sink = MetricsSink::from_args("t", &args);
        let _ = sink.run("p", &Campaign::sequential(300, 4), &Noise(3));
        sink.finish().unwrap();

        let v = json::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        if gm_obs::ENABLED {
            assert!(!events.is_empty(), "campaign spans must be captured");
            assert!(events.iter().any(|e| e.get("name").unwrap().as_str() == Some("tvla.quota")));
        }
        // Sibling tests run campaigns concurrently in this process; their
        // spans still open at stop_capture leave stray B events, so only
        // the direction of the imbalance is pinned here (validate_metrics
        // checks strict balance on the single-campaign CI exports).
        let begins = events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("B")).count();
        let ends = events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("E")).count();
        assert!(begins >= ends, "an end without a begin can never be captured");
        let _ = std::fs::remove_file(path);
    }

    /// Satellite: metrics collection must stay under 2% of campaign
    /// throughput. Retried because wall-clock ratios on a loaded CI
    /// machine are noisy; a real regression fails all attempts.
    #[test]
    fn metrics_overhead_under_two_percent() {
        let _serial = timing_lock();
        // Large enough that the fixed per-phase cost (one record
        // serialized and written per campaign) amortizes the way it does
        // in real seconds-long campaigns; a tiny probe would measure
        // that constant, not the per-trace collection overhead.
        let campaign = Campaign::sequential(20_000, 11);
        assert_metrics_overhead(&campaign, &Noise(9), 2.0, 8);
    }

    #[test]
    fn campaign_counters_present_when_observing() {
        // Gate at runtime on what gm-obs was actually built with: the
        // root `glitchmask/obs-off` feature compiles the pool counters
        // out of gm-leakage without activating gm-bench's own `obs-off`
        // cfg, so a compile-time gate here would miss that configuration.
        if !gm_obs::ENABLED {
            return;
        }
        let mut sink = MetricsSink::from_args("t", &test_args(Some("/dev/null")));
        let _ = sink.run("p", &Campaign::sequential(300, 4), &Noise(3));
        let counters = &sink.phases()[0].counters;
        assert_eq!(counters.get("pool.traces"), Some(300));
        assert_eq!(counters.get("pool.blocks"), Some(2));
        assert!(counters.get("pool.acquire_ns").unwrap_or(0) > 0);
        assert!(counters.iter().any(|(k, _)| k.starts_with("pool.block_ns.ge")));
    }
}
