//! Append-only JSON performance records (`BENCH_*.json`).
//!
//! Each throughput harness appends one flat record per run so successive
//! PRs accumulate a performance trajectory instead of one-off numbers.
//! All writes go through [`atomic_write`] (temp file + rename), so a
//! crashed or interrupted run can truncate at worst its own temp file,
//! never the accumulated history.

use gm_obs::escape_into;
use std::io::Write as _;
use std::path::Path;

/// Short git revision of the working tree, for provenance in bench
/// records. Returns `"unknown"` outside a git checkout (e.g. a source
/// tarball) so the harnesses never fail over bookkeeping.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Write `body` to `path` atomically: write to a sibling temp file, sync,
/// then rename over the destination. Readers never observe a torn file.
pub fn atomic_write(path: &str, body: &str) -> std::io::Result<()> {
    let dest = Path::new(path);
    let dir = dest.parent().filter(|d| !d.as_os_str().is_empty()).unwrap_or_else(|| Path::new("."));
    let file_name = dest.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("bad path {path}"))
    })?;
    let tmp = dir.join(format!(".{file_name}.tmp.{}", std::process::id()));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(body.as_bytes())?;
    f.sync_all()?;
    drop(f);
    match std::fs::rename(&tmp, dest) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Append a record to a JSON array file, creating the file on first use.
/// The rewrite is atomic ([`atomic_write`]), so concurrent readers (CI
/// artifact collection, plotting scripts) never see a half-written array.
///
/// An existing but empty (or whitespace-only) file is treated like a
/// missing one: a trajectory seeded as `touch BENCH_x.json` (or an empty
/// `[]` array) takes its first row gracefully instead of panicking.
pub fn append_record(path: &str, record: &str) -> std::io::Result<()> {
    let body = match std::fs::read_to_string(path) {
        Ok(existing) if !existing.trim().is_empty() => {
            let trimmed = existing.trim_end();
            let inner = trimmed
                .strip_suffix(']')
                .unwrap_or_else(|| panic!("{path} is not a JSON array"))
                .trim_end();
            let sep = if inner.ends_with('[') { "\n" } else { ",\n" };
            format!("{inner}{sep}{record}\n]\n")
        }
        _ => format!("[\n{record}\n]\n"),
    };
    atomic_write(path, &body)
}

/// Read a whole `BENCH_*.json` trajectory, in file (= chronological)
/// order. A missing, empty, or whitespace-only file — the state of a
/// trajectory before its first recorded run — is an empty trajectory,
/// not an error; a file that exists but is not a JSON array of records
/// is.
pub fn read_records(path: &str) -> Result<Vec<BenchRecord>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{path}: {e}")),
    };
    if text.trim().is_empty() {
        return Ok(Vec::new());
    }
    let v = crate::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let arr = v.as_arr().ok_or_else(|| format!("{path}: not a JSON array"))?;
    arr.iter()
        .enumerate()
        .map(|(i, rec)| {
            BenchRecord::from_value(rec).map_err(|e| format!("{path}: record {i}: {e}"))
        })
        .collect()
}

/// The shared envelope of a `BENCH_*.json` throughput record.
///
/// The harness-specific extras (`backend`, `placement_bias`, ...) ride in
/// [`BenchRecord::extra`] as preformatted JSON members; the envelope
/// itself is what cross-harness tooling relies on, and
/// [`BenchRecord::parse`] round-trips it for the schema test.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Free-form run label (`--label`).
    pub label: String,
    /// Campaign identifier (e.g. `"fig14-ff-cycle-model"`).
    pub campaign: String,
    /// Traces acquired.
    pub traces: u64,
    /// Worker threads.
    pub threads: usize,
    /// Wall seconds of the measured pass.
    pub seconds: f64,
    /// Short git revision ([`git_rev`]).
    pub git_rev: String,
    /// Extra harness-specific members, each as `(name, raw-JSON-value)`.
    /// Values must already be valid JSON (numbers, or quoted strings).
    pub extra: Vec<(String, String)>,
}

impl BenchRecord {
    /// A record with the envelope filled and no extras.
    pub fn new(label: &str, campaign: &str, traces: u64, threads: usize, seconds: f64) -> Self {
        BenchRecord {
            label: label.to_owned(),
            campaign: campaign.to_owned(),
            traces,
            threads,
            seconds,
            git_rev: git_rev(),
            extra: Vec::new(),
        }
    }

    /// Attach an extra member with a raw JSON value (builder-style).
    pub fn with(mut self, name: &str, raw_value: String) -> Self {
        self.extra.push((name.to_owned(), raw_value));
        self
    }

    /// Attach an extra numeric member at 3 decimal places.
    pub fn with_f64(self, name: &str, v: f64) -> Self {
        self.with(name, format!("{v:.3}"))
    }

    /// Derived throughput in traces per second.
    pub fn traces_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.traces as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Derived wall cost per trace in nanoseconds — the unit the
    /// phase-floor analysis in EXPERIMENTS.md is written in.
    pub fn ns_per_trace(&self) -> f64 {
        if self.traces > 0 {
            self.seconds * 1e9 / self.traces as f64
        } else {
            0.0
        }
    }

    /// Serialize as the one-line JSON object [`append_record`] stores
    /// (two-space indent to match the array layout). `seconds` is stored
    /// at full precision (`{}` is shortest-round-trip for f64): the old
    /// `{:.3}` truncation collapsed a 0.0400369 s run to `0.04`, a 0.9%
    /// error that poisoned every derived ratio.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(192);
        s.push_str("  {\"label\": \"");
        escape_into(&self.label, &mut s);
        s.push_str("\", \"campaign\": \"");
        escape_into(&self.campaign, &mut s);
        s.push_str(&format!(
            "\", \"traces\": {}, \"threads\": {}, \"seconds\": {}, \
             \"traces_per_sec\": {:.1}, \"ns_per_trace\": {:.2}",
            self.traces,
            self.threads,
            self.seconds,
            self.traces_per_sec(),
            self.ns_per_trace(),
        ));
        for (name, raw) in &self.extra {
            s.push_str(", \"");
            escape_into(name, &mut s);
            s.push_str("\": ");
            s.push_str(raw);
        }
        s.push_str(&format!(", \"git_rev\": \"{}\"}}", self.git_rev));
        s
    }

    /// Parse the envelope back out of a serialized record (extras are
    /// preserved as raw JSON). Fails with a message naming the missing
    /// or mistyped member.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_value(&crate::json::parse(text)?)
    }

    /// Like [`BenchRecord::parse`], from an already-parsed JSON value
    /// (one element of a trajectory array — see
    /// [`read_records`](crate::read_records)).
    pub fn from_value(v: &crate::json::Json) -> Result<Self, String> {
        let obj = v.as_obj().ok_or("record is not an object")?;
        let str_member = |name: &str| {
            v.get(name)
                .and_then(|m| m.as_str())
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string member {name}"))
        };
        let num_member = |name: &str| {
            v.get(name).and_then(|m| m.as_f64()).ok_or_else(|| format!("missing number {name}"))
        };
        const ENVELOPE: [&str; 8] = [
            "label",
            "campaign",
            "traces",
            "threads",
            "seconds",
            "traces_per_sec",
            "ns_per_trace",
            "git_rev",
        ];
        let extra = obj
            .iter()
            .filter(|(k, _)| !ENVELOPE.contains(&k.as_str()))
            .map(|(k, val)| {
                let raw = match val {
                    crate::json::Json::Str(s) => format!("\"{s}\""),
                    other => format!("{:?}", RawNum(other)),
                };
                (k.clone(), raw)
            })
            .collect();
        Ok(BenchRecord {
            label: str_member("label")?,
            campaign: str_member("campaign")?,
            traces: num_member("traces")? as u64,
            threads: num_member("threads")? as usize,
            seconds: num_member("seconds")?,
            // The oldest trajectory rows predate provenance stamping.
            git_rev: str_member("git_rev").unwrap_or_else(|_| "unknown".to_owned()),
            extra,
        })
    }
}

/// Debug-formats a parsed JSON number the way the emitters wrote it
/// (integers without a trailing `.0`, fractions at 3 places).
struct RawNum<'a>(&'a crate::json::Json);

impl std::fmt::Debug for RawNum<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            crate::json::Json::Num(n) if n.fract() == 0.0 => write!(f, "{}", *n as i64),
            crate::json::Json::Num(n) => write!(f, "{n:.3}"),
            other => write!(f, "{other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_then_appends() {
        let dir = std::env::temp_dir().join("gm_bench_record_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        append_record(path, "{\"a\": 1}").unwrap();
        append_record(path, "{\"b\": 2}").unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text, "[\n{\"a\": 1},\n{\"b\": 2}\n]\n");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join("gm_bench_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.json");
        let path = path.to_str().unwrap();
        atomic_write(path, "one").unwrap();
        atomic_write(path, "two").unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "two");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive: {leftovers:?}");
        let _ = std::fs::remove_file(path);
    }

    /// Satellite: the `BENCH_*.json` schema round-trips — serialize,
    /// parse, compare, including the `threads`/`traces`/`git_rev`
    /// envelope the trajectory tooling keys on.
    #[test]
    fn bench_record_schema_round_trips() {
        let rec = BenchRecord {
            label: "pr-4 \"quoted\"".to_owned(),
            campaign: "fig14-ff-cycle-model".to_owned(),
            traces: 100_000,
            threads: 8,
            // Full-precision wall time: `{:.3}` used to truncate this to
            // 0.040 and the round trip would not have noticed.
            seconds: 0.0400369,
            git_rev: "abc1234".to_owned(),
            extra: vec![
                ("backend".to_owned(), "\"bitsliced\"".to_owned()),
                ("max_abs_t1".to_owned(), "3.142".to_owned()),
            ],
        };
        let json = rec.to_json();
        let back = BenchRecord::parse(&json).expect("parses");
        assert_eq!(back, rec);
        assert_eq!(back.seconds, 0.0400369, "seconds must round-trip at full precision");
        // And the derived members the emitters write are present + correct.
        let v = crate::json::parse(&json).unwrap();
        let tps = v.get("traces_per_sec").unwrap().as_f64().unwrap();
        assert!((tps - 100_000.0 / 0.0400369).abs() < 0.1);
        let npt = v.get("ns_per_trace").unwrap().as_f64().unwrap();
        assert!((npt - 0.0400369 * 1e9 / 100_000.0).abs() < 0.01);
    }

    #[test]
    fn bench_record_appends_into_valid_array() {
        let dir = std::env::temp_dir().join("gm_bench_record_arr_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_t.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        for i in 0..3u64 {
            let rec = BenchRecord::new("l", "c", 100 * (i + 1), 2, 0.5).with_f64("bias", 0.25);
            append_record(path, &rec.to_json()).unwrap();
        }
        let text = std::fs::read_to_string(path).unwrap();
        let v = crate::json::parse(&text).expect("whole file is valid JSON");
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("traces").unwrap().as_u64(), Some(300));
        assert_eq!(arr[0].get("bias").unwrap().as_f64(), Some(0.25));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn parse_rejects_missing_envelope() {
        assert!(BenchRecord::parse("{\"label\": \"x\"}").is_err());
        assert!(BenchRecord::parse("[1]").is_err());
    }

    /// Satellite: a trajectory seeded empty (0-byte file, whitespace, or
    /// a bare `[]`) takes its first row gracefully — the states a
    /// `BENCH_*.json` passes through before its first recorded run.
    #[test]
    fn append_into_empty_file_states() {
        let dir = std::env::temp_dir().join("gm_bench_record_empty_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, seed_body) in
            [("zero.json", ""), ("blank.json", "  \n\t\n"), ("bare.json", "[]\n")]
        {
            let path = dir.join(name);
            let path = path.to_str().unwrap();
            std::fs::write(path, seed_body).unwrap();
            append_record(path, "{\"a\": 1}").unwrap();
            let text = std::fs::read_to_string(path).unwrap();
            assert_eq!(text, "[\n{\"a\": 1}\n]\n", "seed body {seed_body:?}");
            let _ = std::fs::remove_file(path);
        }
    }

    /// Satellite: trajectory reads degrade gracefully on the same empty
    /// states, and fully round-trip real rows in file order.
    #[test]
    fn read_records_trajectory() {
        let dir = std::env::temp_dir().join("gm_bench_read_records_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_rr.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        // Missing file, empty file, empty array: all empty trajectories.
        assert_eq!(read_records(path).unwrap(), vec![]);
        std::fs::write(path, "").unwrap();
        assert_eq!(read_records(path).unwrap(), vec![]);
        std::fs::write(path, "[]\n").unwrap();
        assert_eq!(read_records(path).unwrap(), vec![]);

        let _ = std::fs::remove_file(path);
        let first = BenchRecord::new("l0", "c", 100, 1, 0.5).with("backend", "\"x\"".to_owned());
        let second = BenchRecord::new("l1", "c", 200, 2, 0.25);
        append_record(path, &first.to_json()).unwrap();
        append_record(path, &second.to_json()).unwrap();
        let rows = read_records(path).unwrap();
        assert_eq!(rows, vec![first, second], "file order is chronological order");

        // A non-array file is a real error, not an empty trajectory.
        std::fs::write(path, "{\"not\": \"an array\"}").unwrap();
        assert!(read_records(path).is_err());
        let _ = std::fs::remove_file(path);
    }
}
