//! Append-only JSON performance records (`BENCH_*.json`).
//!
//! Each throughput harness appends one flat record per run so successive
//! PRs accumulate a performance trajectory instead of one-off numbers.

use std::io::Write as _;

/// Short git revision of the working tree, for provenance in bench
/// records. Returns `"unknown"` outside a git checkout (e.g. a source
/// tarball) so the harnesses never fail over bookkeeping.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Append a record to a JSON array file, creating the file on first use.
pub fn append_record(path: &str, record: &str) -> std::io::Result<()> {
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let inner = trimmed
                .strip_suffix(']')
                .unwrap_or_else(|| panic!("{path} is not a JSON array"))
                .trim_end();
            let sep = if inner.ends_with('[') { "\n" } else { ",\n" };
            format!("{inner}{sep}{record}\n]\n")
        }
        Err(_) => format!("[\n{record}\n]\n"),
    };
    let mut f = std::fs::File::create(path)?;
    f.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_then_appends() {
        let dir = std::env::temp_dir().join("gm_bench_record_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        append_record(path, "{\"a\": 1}").unwrap();
        append_record(path, "{\"b\": 2}").unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text, "[\n{\"a\": 1},\n{\"b\": 2}\n]\n");
        let _ = std::fs::remove_file(path);
    }
}
