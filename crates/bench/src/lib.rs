//! # gm-bench
//!
//! Shared helpers for the table/figure regeneration binaries and criterion
//! benches. Each evaluation artefact of the paper has its own binary:
//!
//! | Artefact | Binary |
//! |---|---|
//! | Table I (safe input sequences) | `table1` |
//! | Table II (delay sequences) | `table2` |
//! | Table III (utilisation) | `table3` |
//! | Fig. 13 (power trace, FF core) | `fig13` |
//! | Fig. 14 (TVLA, FF core) | `fig14` |
//! | Fig. 15 (DelayUnit sweep) | `fig15` |
//! | Fig. 16 (power trace, PD core) | `fig16` |
//! | Fig. 17 (TVLA, PD core) | `fig17` |
//!
//! Beyond the paper:
//!
//! | Artefact | Binary |
//! |---|---|
//! | Design-decision ablations (refresh, recycling, reset) | `ablations` |
//! | CPA key recovery (orders 1 and 2) | `cpa_attack` |
//! | Fig. 15 mechanism at gate level (placement lottery) | `fig15_gate` |
//! | Per-module glitch census of both cores | `glitch_census` |
//! | SNR vs. gadget replication | `snr_replication` |
//! | Leak-model calibration sweep | `calibrate` |
//! | Simulation throughput probe | `speed_probe` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod gate;
pub mod json;
pub mod metrics;
pub mod panel;
pub mod record;

pub use cli::Args;
pub use metrics::MetricsSink;
pub use record::{read_records, BenchRecord};
