//! Minimal flag parsing shared by the experiment binaries
//! (we avoid external CLI crates; see DESIGN.md §4.6).

/// Parsed command-line arguments of an experiment binary.
#[derive(Debug, Clone)]
pub struct Args {
    /// `--traces N`: number of traces per TVLA campaign.
    pub traces: Option<u64>,
    /// `--seed S`: master seed.
    pub seed: u64,
    /// `--panel X`: restrict a multi-panel figure to one panel.
    pub panel: Option<String>,
    /// `--out DIR`: directory for CSV dumps (default `target/experiments`).
    pub out_dir: String,
    /// `--quick`: reduced trace counts for CI smoke runs.
    pub quick: bool,
    /// `--threads N`: worker threads for campaign binaries that honour it.
    pub threads: Option<usize>,
    /// `--label S`: free-form label attached to recorded results
    /// (used by `bench_tvla` to tag BENCH_tvla.json entries).
    pub label: Option<String>,
    /// `--gate-level`: run the campaign on the event-driven gate-level
    /// netlist instead of the cycle model (binaries that support both).
    pub gate_level: bool,
    /// `--scalar`: use the scalar reference backend instead of the
    /// 64-way lane-parallel one (bit-identical results, slower). For
    /// cycle-model campaigns that is the per-trace evaluator instead of
    /// the bitsliced engine; for gate-level campaigns it is the dynamic
    /// event wheel instead of the compiled schedule.
    pub scalar: bool,
    /// `--metrics PATH`: write one JSONL campaign-metrics record per
    /// observed phase to PATH (see `gm_bench::metrics`).
    pub metrics: Option<String>,
    /// `--progress`: print per-phase observability lines as phases
    /// complete, plus the end-of-run summary table.
    pub progress: bool,
    /// `--progress-every N`: stream live convergence records (max-|t|,
    /// traces done, throughput) roughly every N acquired traces for
    /// campaigns that support streaming (`progress` JSONL record kind).
    pub progress_every: Option<u64>,
    /// `--trace-out PATH`: capture begin/end span events across the run
    /// and write them to PATH as Chrome trace-event JSON at exit.
    pub trace_out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            traces: None,
            seed: 2023,
            panel: None,
            out_dir: "target/experiments".to_owned(),
            quick: false,
            threads: None,
            label: None,
            gate_level: false,
            scalar: false,
            metrics: None,
            progress: false,
            progress_every: None,
            trace_out: None,
        }
    }
}

impl Args {
    /// Parse `std::env::args()`, panicking with a usage message on
    /// unknown flags.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            let grab = &mut || it.next().unwrap_or_else(|| panic!("flag {flag} needs a value"));
            match flag.as_str() {
                "--traces" => args.traces = Some(grab().parse().expect("--traces takes a number")),
                "--seed" => args.seed = grab().parse().expect("--seed takes a number"),
                "--panel" => args.panel = Some(grab()),
                "--out" => args.out_dir = grab(),
                "--quick" => args.quick = true,
                "--threads" => {
                    args.threads = Some(grab().parse().expect("--threads takes a number"))
                }
                "--label" => args.label = Some(grab()),
                "--gate-level" => args.gate_level = true,
                "--scalar" => args.scalar = true,
                "--metrics" => args.metrics = Some(grab()),
                "--progress" => args.progress = true,
                "--progress-every" => {
                    args.progress_every =
                        Some(grab().parse().expect("--progress-every takes a trace count"))
                }
                "--trace-out" => args.trace_out = Some(grab()),
                other => panic!(
                    "unknown flag {other}; supported: --traces N --seed S --panel X --out DIR \
                     --quick --threads N --label S --gate-level --scalar --metrics PATH \
                     --progress --progress-every N --trace-out PATH"
                ),
            }
        }
        args
    }

    /// Trace count to use: explicit `--traces`, else `quick`, else `full`.
    pub fn trace_count(&self, quick: u64, full: u64) -> u64 {
        self.traces.unwrap_or(if self.quick { quick } else { full })
    }

    /// Worker-thread count: explicit `--threads`, else every core the
    /// machine offers. This is THE default for campaign bench binaries
    /// (`bench_tvla` and `bench_gate` both use it) so recorded rows are
    /// comparable; every bench row records the count actually used.
    pub fn thread_count(&self) -> usize {
        self.threads.unwrap_or_else(default_threads)
    }
}

/// `available_parallelism`, with 1 when the machine cannot say.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse_from(s.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn defaults() {
        let a = parse("");
        assert_eq!(a.seed, 2023);
        assert!(a.traces.is_none());
        assert!(!a.quick);
        assert_eq!(a.trace_count(10, 100), 100);
    }

    #[test]
    fn flags() {
        let a = parse(
            "--traces 5000 --seed 7 --panel d --out /tmp/x --quick --threads 8 --label s \
             --gate-level --scalar --metrics /tmp/m.jsonl --progress --progress-every 500 \
             --trace-out /tmp/t.json",
        );
        assert_eq!(a.traces, Some(5000));
        assert_eq!(a.seed, 7);
        assert_eq!(a.panel.as_deref(), Some("d"));
        assert_eq!(a.out_dir, "/tmp/x");
        assert_eq!(a.trace_count(10, 100), 5000);
        assert_eq!(a.threads, Some(8));
        assert_eq!(a.label.as_deref(), Some("s"));
        assert!(a.gate_level);
        assert!(a.scalar);
        assert_eq!(a.metrics.as_deref(), Some("/tmp/m.jsonl"));
        assert!(a.progress);
        assert_eq!(a.progress_every, Some(500));
        assert_eq!(a.trace_out.as_deref(), Some("/tmp/t.json"));
    }

    #[test]
    fn metrics_default_off() {
        let a = parse("");
        assert!(a.metrics.is_none());
        assert!(!a.progress);
        assert!(a.progress_every.is_none());
        assert!(a.trace_out.is_none());
    }

    #[test]
    fn quick_picks_quick_count() {
        let a = parse("--quick");
        assert_eq!(a.trace_count(10, 100), 10);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = parse("--bogus");
    }
}
