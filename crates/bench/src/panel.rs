//! Shared rendering for the TVLA figure panels (Figs. 14, 15, 17):
//! first/second/third-order t curves as ASCII profiles plus CSV dumps,
//! mirroring the three-row subfigures of the paper — and the
//! oscilloscope-style single-trace rendering of Figs. 13/16.

use gm_leakage::tvla::{Class, TraceSource};
use gm_leakage::{report, TvlaResult, THRESHOLD};
use std::path::Path;

/// Maximum |t| of a curve.
pub fn max_abs(t: &[f64]) -> f64 {
    t.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Print one panel (three t-test orders) and write its CSV.
pub fn print_panel(title: &str, result: &TvlaResult, out_dir: &str, file_stem: &str) {
    let t1 = result.t1();
    let t2 = result.t2();
    let t3 = result.t3();
    println!("--- {title} ({} traces) ---", result.total_traces());
    for (order, t) in [("1st", &t1), ("2nd", &t2), ("3rd", &t3)] {
        let m = max_abs(t);
        let verdict = if m > THRESHOLD { "EXCEEDS ±4.5" } else { "below ±4.5" };
        println!("{order}-order t-test: max|t| = {m:6.2}  ({verdict})");
        println!("{}", report::ascii_curve(t, 72));
    }
    let path = Path::new(out_dir).join(format!("{file_stem}.csv"));
    report::write_csv(&path, &["sample", "t1", "t2", "t3"], &[&t1, &t2, &t3]).expect("write CSV");
    println!("CSV written to {}\n", path.display());
}

/// One-line panel summary (for sweep tables).
pub fn summary_line(result: &TvlaResult) -> (f64, f64, f64) {
    (max_abs(&result.t1()), max_abs(&result.t2()), max_abs(&result.t3()))
}

/// Acquire one fixed-class trace from any [`TraceSource`] (the Figs.
/// 13/16 single-shot view).
pub fn single_trace<S: TraceSource>(src: &mut S) -> Vec<f64> {
    let mut trace = vec![0.0; src.num_samples()];
    src.trace(Class::Fixed, &mut trace);
    trace
}

/// Oscilloscope-style ASCII rendering of a power trace
/// (positive-only amplitude rows, peak-hold downsampling).
pub fn ascii_power(trace: &[f64], width: usize) -> String {
    const ROWS: usize = 12;
    let cols = width.min(trace.len()).max(1);
    let window = trace.len().div_ceil(cols);
    let peaks: Vec<f64> =
        trace.chunks(window).map(|c| c.iter().cloned().fold(0.0, f64::max)).collect();
    let max = peaks.iter().cloned().fold(1.0, f64::max);
    let mut out = String::new();
    for row in (1..=ROWS).rev() {
        let level = max * row as f64 / ROWS as f64;
        out.push_str("  ");
        for &p in &peaks {
            out.push(if p >= level { '#' } else { ' ' });
        }
        out.push('\n');
    }
    out.push_str("  ");
    out.push_str(&"-".repeat(peaks.len()));
    out
}

/// Live convergence readout for a streamed TVLA campaign: collects
/// `(traces_done, max|t1|)` snapshots and — when live printing is on —
/// renders one `[conv]` line per snapshot (a bar scaled against the
/// ±4.5 decision threshold) plus an end-of-campaign ASCII curve of
/// max|t1| over acquired traces.
#[derive(Debug)]
pub struct Convergence {
    name: String,
    total: u64,
    live: bool,
    points: Vec<(u64, f64)>,
}

impl Convergence {
    /// New readout for a campaign of `total` traces; `live` enables the
    /// per-snapshot terminal lines (tie this to `--progress`).
    pub fn new(name: &str, total: u64, live: bool) -> Self {
        Convergence { name: name.to_owned(), total, live, points: Vec::new() }
    }

    /// Record one snapshot (and print its live line).
    pub fn observe(&mut self, done: u64, max_t1: f64, seconds: f64) {
        self.points.push((done, max_t1));
        if self.live {
            // 36 columns span twice the threshold, so the gate sits
            // mid-bar: a bar crossing its midpoint marker is a leak.
            const COLS: usize = 36;
            let filled = ((max_t1 / (2.0 * THRESHOLD)) * COLS as f64).round() as usize;
            let mut bar = String::with_capacity(COLS);
            for i in 0..COLS {
                bar.push(if i == COLS / 2 {
                    if filled > i {
                        '|'
                    } else {
                        ':'
                    }
                } else if i < filled {
                    '='
                } else {
                    ' '
                });
            }
            let tps = if seconds > 0.0 { done as f64 / seconds } else { 0.0 };
            println!(
                "[conv] {:<18} {:>9}/{:<9} max|t1| {:6.2} [{bar}] {:>9.0}/s",
                truncate_ascii(&self.name, 18),
                done,
                self.total,
                max_t1,
                tps
            );
        }
    }

    /// Snapshots collected so far.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Render the end-of-campaign convergence curve (live mode only,
    /// needs at least two snapshots to be a curve).
    pub fn finish(&self) {
        if !self.live || self.points.len() < 2 {
            return;
        }
        let t: Vec<f64> = self.points.iter().map(|&(_, v)| v).collect();
        println!(
            "[conv] {}: max|t1| over {} snapshots ({} traces):",
            self.name,
            self.points.len(),
            self.points.last().map_or(0, |&(n, _)| n)
        );
        println!("{}", report::ascii_curve(&t, 72));
    }
}

fn truncate_ascii(s: &str, n: usize) -> &str {
    // Phase names are ASCII; byte truncation is char truncation.
    &s[..s.len().min(n)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_basics() {
        assert_eq!(max_abs(&[1.0, -3.0, 2.0]), 3.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn convergence_collects_points_silently() {
        let mut c = Convergence::new("unit", 1000, false);
        c.observe(200, 1.5, 0.1);
        c.observe(400, 2.5, 0.2);
        c.observe(1000, 3.0, 0.5);
        assert_eq!(c.points(), &[(200, 1.5), (400, 2.5), (1000, 3.0)]);
        c.finish();
    }

    #[test]
    fn convergence_live_lines_do_not_panic() {
        let mut c = Convergence::new("a-rather-long-phase-name", 100, true);
        c.observe(50, 0.0, 0.0);
        c.observe(100, 40.0, 0.1); // bar saturates past 2×threshold
        c.finish();
    }
}
