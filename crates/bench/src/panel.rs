//! Shared rendering for the TVLA figure panels (Figs. 14, 15, 17):
//! first/second/third-order t curves as ASCII profiles plus CSV dumps,
//! mirroring the three-row subfigures of the paper — and the
//! oscilloscope-style single-trace rendering of Figs. 13/16.

use gm_leakage::tvla::{Class, TraceSource};
use gm_leakage::{report, TvlaResult, THRESHOLD};
use std::path::Path;

/// Maximum |t| of a curve.
pub fn max_abs(t: &[f64]) -> f64 {
    t.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Print one panel (three t-test orders) and write its CSV.
pub fn print_panel(title: &str, result: &TvlaResult, out_dir: &str, file_stem: &str) {
    let t1 = result.t1();
    let t2 = result.t2();
    let t3 = result.t3();
    println!("--- {title} ({} traces) ---", result.total_traces());
    for (order, t) in [("1st", &t1), ("2nd", &t2), ("3rd", &t3)] {
        let m = max_abs(t);
        let verdict = if m > THRESHOLD { "EXCEEDS ±4.5" } else { "below ±4.5" };
        println!("{order}-order t-test: max|t| = {m:6.2}  ({verdict})");
        println!("{}", report::ascii_curve(t, 72));
    }
    let path = Path::new(out_dir).join(format!("{file_stem}.csv"));
    report::write_csv(&path, &["sample", "t1", "t2", "t3"], &[&t1, &t2, &t3]).expect("write CSV");
    println!("CSV written to {}\n", path.display());
}

/// One-line panel summary (for sweep tables).
pub fn summary_line(result: &TvlaResult) -> (f64, f64, f64) {
    (max_abs(&result.t1()), max_abs(&result.t2()), max_abs(&result.t3()))
}

/// Acquire one fixed-class trace from any [`TraceSource`] (the Figs.
/// 13/16 single-shot view).
pub fn single_trace<S: TraceSource>(src: &mut S) -> Vec<f64> {
    let mut trace = vec![0.0; src.num_samples()];
    src.trace(Class::Fixed, &mut trace);
    trace
}

/// Oscilloscope-style ASCII rendering of a power trace
/// (positive-only amplitude rows, peak-hold downsampling).
pub fn ascii_power(trace: &[f64], width: usize) -> String {
    const ROWS: usize = 12;
    let cols = width.min(trace.len()).max(1);
    let window = trace.len().div_ceil(cols);
    let peaks: Vec<f64> =
        trace.chunks(window).map(|c| c.iter().cloned().fold(0.0, f64::max)).collect();
    let max = peaks.iter().cloned().fold(1.0, f64::max);
    let mut out = String::new();
    for row in (1..=ROWS).rev() {
        let level = max * row as f64 / ROWS as f64;
        out.push_str("  ");
        for &p in &peaks {
            out.push(if p >= level { '#' } else { ' ' });
        }
        out.push('\n');
    }
    out.push_str("  ");
    out.push_str(&"-".repeat(peaks.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_basics() {
        assert_eq!(max_abs(&[1.0, -3.0, 2.0]), 3.0);
        assert_eq!(max_abs(&[]), 0.0);
    }
}
