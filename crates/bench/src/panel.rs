//! Shared rendering for the TVLA figure panels (Figs. 14, 15, 17):
//! first/second/third-order t curves as ASCII profiles plus CSV dumps,
//! mirroring the three-row subfigures of the paper.

use gm_leakage::{report, TvlaResult, THRESHOLD};
use std::path::Path;

/// Maximum |t| of a curve.
pub fn max_abs(t: &[f64]) -> f64 {
    t.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Print one panel (three t-test orders) and write its CSV.
pub fn print_panel(title: &str, result: &TvlaResult, out_dir: &str, file_stem: &str) {
    let t1 = result.t1();
    let t2 = result.t2();
    let t3 = result.t3();
    println!("--- {title} ({} traces) ---", result.total_traces());
    for (order, t) in [("1st", &t1), ("2nd", &t2), ("3rd", &t3)] {
        let m = max_abs(t);
        let verdict = if m > THRESHOLD { "EXCEEDS ±4.5" } else { "below ±4.5" };
        println!("{order}-order t-test: max|t| = {m:6.2}  ({verdict})");
        println!("{}", report::ascii_curve(t, 72));
    }
    let path = Path::new(out_dir).join(format!("{file_stem}.csv"));
    report::write_csv(&path, &["sample", "t1", "t2", "t3"], &[&t1, &t2, &t3]).expect("write CSV");
    println!("CSV written to {}\n", path.display());
}

/// One-line panel summary (for sweep tables).
pub fn summary_line(result: &TvlaResult) -> (f64, f64, f64) {
    (max_abs(&result.t1()), max_abs(&result.t2()), max_abs(&result.t3()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_basics() {
        assert_eq!(max_abs(&[1.0, -3.0, 2.0]), 3.0);
        assert_eq!(max_abs(&[]), 0.0);
    }
}
