//! Structural properties of the gate-level control schedules.

use gm_des::netlist_gen::driver::{schedule, CycleCtl};
use gm_des::netlist_gen::SboxStyle;
use gm_des::tables::SHIFTS;

fn count(s: &[CycleCtl], f: impl Fn(&CycleCtl) -> bool) -> usize {
    s.iter().filter(|c| f(c)).count()
}

#[test]
fn ff_schedule_control_counts() {
    let s = schedule(SboxStyle::Ff);
    assert_eq!(count(&s, |c| c.load), 1);
    assert_eq!(count(&s, |c| c.load_key), 1);
    assert_eq!(count(&s, |c| c.ir_en), 16, "one IR capture per round");
    assert_eq!(count(&s, |c| c.and1), 16);
    assert_eq!(count(&s, |c| c.and2), 16);
    assert_eq!(count(&s, |c| c.sel), 16);
    assert_eq!(count(&s, |c| c.mux2), 16);
    assert_eq!(count(&s, |c| c.sout), 16);
    assert_eq!(count(&s, |c| c.state_en), 16);
    assert_eq!(count(&s, |c| c.mid), 0, "no mid register in the FF core");
}

#[test]
fn pd_schedule_control_counts() {
    let s = schedule(SboxStyle::Pd { unit_luts: 10 });
    assert_eq!(count(&s, |c| c.load), 2, "load + preload (state path held)");
    assert_eq!(count(&s, |c| c.load_key), 1);
    assert_eq!(count(&s, |c| c.ir_en), 16, "preload + 15 overlapped captures");
    assert_eq!(count(&s, |c| c.mid), 16);
    assert_eq!(count(&s, |c| c.state_en), 16);
    assert_eq!(count(&s, |c| c.and1), 0, "no FF enables in the PD core");
}

#[test]
fn rotation_amounts_follow_the_standard() {
    // Every ir_en cycle carries the shift amount of the upcoming rotation;
    // collecting them over the schedule must reproduce SHIFTS.
    for style in [SboxStyle::Ff, SboxStyle::Pd { unit_luts: 10 }] {
        let shifts: Vec<u8> = schedule(style)
            .iter()
            .filter(|c| c.ir_en)
            .map(|c| if c.shift2 { 2 } else { 1 })
            .collect();
        assert_eq!(shifts.len(), 16, "{style:?}");
        assert_eq!(shifts, SHIFTS.to_vec(), "{style:?}");
    }
}

#[test]
fn masks_presented_before_every_round() {
    for style in [SboxStyle::Ff, SboxStyle::Pd { unit_luts: 10 }] {
        let rounds: Vec<usize> = schedule(style).iter().filter_map(|c| c.masks_for_round).collect();
        assert_eq!(rounds, (0..16).collect::<Vec<_>>(), "{style:?}");
    }
}

#[test]
fn at_most_one_capture_control_group_per_cycle() {
    // Controls that capture different pipeline stages never overlap in
    // the FF core (its whole point is sequencing the arrival order).
    for c in schedule(SboxStyle::Ff) {
        let stages =
            [c.and1, c.and2, c.sel, c.mux2, c.sout, c.state_en].iter().filter(|&&b| b).count();
        assert!(stages <= 1, "FF stages are strictly sequenced: {c:?}");
    }
}
