//! Property-based tests for the DES crate: cipher correctness under
//! arbitrary keys/plaintexts, table structure, and masked-domain
//! equivalence.

use gm_core::MaskRng;
use gm_des::masked::{MaskedDes, MaskedDesFf, MaskedDesPd};
use gm_des::reference::{round_keys, Des, Tdes};
use gm_des::sbox::anf::Anf4;
use gm_des::tables::{permute, rotl, E, FP, IP, P, PC1};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decrypt ∘ encrypt = identity for any key/plaintext.
    #[test]
    fn roundtrip(key in any::<u64>(), pt in any::<u64>()) {
        let des = Des::new(key);
        prop_assert_eq!(des.decrypt_block(des.encrypt_block(pt)), pt);
    }

    /// The complementation property E_{!k}(!p) = !E_k(p).
    #[test]
    fn complementation(key in any::<u64>(), pt in any::<u64>()) {
        let a = Des::new(key).encrypt_block(pt);
        let b = Des::new(!key).encrypt_block(!pt);
        prop_assert_eq!(b, !a);
    }

    /// Both masked cores equal the reference for any key/pt/mask stream.
    #[test]
    fn masked_cores_equal_reference(key in any::<u64>(), pt in any::<u64>(), seed in any::<u64>()) {
        let want = Des::new(key).encrypt_block(pt);
        let mut rng = MaskRng::new(seed);
        prop_assert_eq!(MaskedDes::new(key).encrypt_block(pt, &mut rng), want);
        prop_assert_eq!(MaskedDesFf::new(key).encrypt_with_cycles(pt, &mut rng).0, want);
        prop_assert_eq!(MaskedDesPd::new(key).encrypt_with_cycles(pt, &mut rng).0, want);
    }

    /// Key parity bits never influence the ciphertext.
    #[test]
    fn parity_bits_ignored(key in any::<u64>(), pt in any::<u64>(), parity in any::<u8>()) {
        // Spread the 8 parity flips over the 8 LSBs of each key byte.
        let mut flipped = key;
        for byte in 0..8 {
            if parity & (1 << byte) != 0 {
                flipped ^= 1u64 << (8 * byte);
            }
        }
        prop_assert_eq!(
            Des::new(key).encrypt_block(pt),
            Des::new(flipped).encrypt_block(pt)
        );
    }

    /// TDES with all keys equal degenerates to single DES; roundtrip
    /// holds for any key triple.
    #[test]
    fn tdes_properties(k1 in any::<u64>(), k2 in any::<u64>(), k3 in any::<u64>(), pt in any::<u64>()) {
        let t = Tdes::new(k1, k2, k3);
        prop_assert_eq!(t.decrypt_block(t.encrypt_block(pt)), pt);
        let same = Tdes::new(k1, k1, k1);
        prop_assert_eq!(same.encrypt_block(pt), Des::new(k1).encrypt_block(pt));
    }

    /// FP inverts IP on arbitrary words, and E/P/PC1 stay in range.
    #[test]
    fn permutation_structure(v in any::<u64>()) {
        prop_assert_eq!(permute(permute(v, 64, &IP), 64, &FP), v);
        prop_assert!(permute(v, 32, &E) < (1u64 << 48));
        prop_assert!(permute(v & 0xFFFF_FFFF, 32, &P) < (1u64 << 32));
        prop_assert!(permute(v, 64, &PC1) < (1u64 << 56));
    }

    /// rotl is periodic with the word width.
    #[test]
    fn rotl_period(v in any::<u64>(), by in 0u32..28) {
        let w = v & 0x0FFF_FFFF;
        let mut r = w;
        for _ in 0..28 {
            r = rotl(r, 28, 1);
        }
        prop_assert_eq!(r, w);
        // rotating by `by` equals `by` single rotations
        let mut step = w;
        for _ in 0..by {
            step = rotl(step, 28, 1);
        }
        if by > 0 {
            prop_assert_eq!(rotl(w, 28, by), step);
        }
    }

    /// Round keys accumulate 28 rotations total: the C/D halves return
    /// to their PC1 state after the 16th round.
    #[test]
    fn key_schedule_returns_home(key in any::<u64>()) {
        let _ = round_keys(key); // must not panic for any key
        let pc1 = permute(key, 64, &PC1);
        let mut c = (pc1 >> 28) & 0x0FFF_FFFF;
        for s in gm_des::tables::SHIFTS {
            c = rotl(c, 28, u32::from(s));
        }
        prop_assert_eq!(c, (pc1 >> 28) & 0x0FFF_FFFF);
    }

    /// ANF round-trips arbitrary 4-bit truth tables.
    #[test]
    fn anf_roundtrip(tt in any::<u16>()) {
        prop_assert_eq!(Anf4::from_truth_table(tt).truth_table(), tt);
    }

    /// Degree-0/1 functions are exactly the affine ones.
    #[test]
    fn anf_degree_one_is_affine(c in any::<bool>(), m in 0u8..16) {
        // f = c ⊕ XOR of variables in m.
        let tt = (0..16u16).fold(0u16, |tt, x| {
            let v = (x as u8 & m).count_ones() % 2 == 1;
            tt | (u16::from(v ^ c) << x)
        });
        let anf = Anf4::from_truth_table(tt);
        prop_assert!(anf.degree() <= 1);
    }
}
