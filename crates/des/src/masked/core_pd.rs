//! The secAND2-PD DES core (Fig. 9): 2 cycles per round.
//!
//! All AND stages evaluate combinationally within a cycle thanks to the
//! path-delayed input sequencing; the S-box output feeds the input
//! register directly (not through the state register), which is how the
//! round fits in two cycles:
//!
//! | cycle | activity |
//! |---|---|
//! | 0 | input register loads `E(R) ⊕ K`; mini AND + XOR stage and MUX stage 1 (+ refresh) evaluate; mid register captures |
//! | 1 | MUX stages 2/3, P, Feistel combine; state registers update; key rotates |
//!
//! Unlike the FF core, every `secAND2` evaluation here relies on the
//! DelayUnit ordering, so each cycle-0 record carries the glitch and
//! coupling exposure of all eight S-boxes — the handles for the Fig. 15
//! sweep and the Fig. 17 residual-coupling leakage.

use super::core_ff::{share_hd, share_hw, traces_exposures, traces_product_hw, CycleRecord};
use super::datapath::{
    expand_and_mix, final_permutation, initial_permutation, permute_p, sbox_layer_into,
};
use super::key_schedule::MaskedKeySchedule;
use crate::sbox::masked::SboxTrace;
use crate::sbox::SboxRandomness;
use gm_core::{MaskRng, MaskedWord};

/// The secAND2-PD masked DES core.
#[derive(Debug, Clone)]
pub struct MaskedDesPd {
    key: u64,
    /// DelayUnit size in LUTs (10 = the paper's optimum).
    pub unit_luts: usize,
    /// When false, the 14-bit refresh layer is skipped (§III-C ablation).
    pub refresh_enabled: bool,
}

impl MaskedDesPd {
    /// Cycles per round (Table III).
    pub const CYCLES_PER_ROUND: usize = 2;
    /// Cycles per block: 2 lead-in + 16 × 2.
    pub const TOTAL_CYCLES: usize = 2 + 16 * Self::CYCLES_PER_ROUND;
    /// Fresh random bits per round (same budget as the FF core).
    pub const FRESH_BITS_PER_ROUND: usize = SboxRandomness::BITS;

    /// A core with the paper's optimal DelayUnit size.
    pub fn new(key: u64) -> Self {
        MaskedDesPd { key, unit_luts: 10, refresh_enabled: true }
    }

    /// A core with an explicit DelayUnit size (the Fig. 15 sweep).
    pub fn with_unit_luts(key: u64, unit_luts: usize) -> Self {
        MaskedDesPd { key, unit_luts, refresh_enabled: true }
    }

    /// Encrypt one block, returning the ciphertext and one
    /// [`CycleRecord`] per clock cycle.
    pub fn encrypt_with_cycles(
        &self,
        plaintext: u64,
        rng: &mut MaskRng,
    ) -> (u64, Vec<CycleRecord>) {
        let mut cycles = Vec::with_capacity(Self::TOTAL_CYCLES);
        let ct = self.encrypt_with_cycles_into(plaintext, rng, &mut cycles);
        (ct, cycles)
    }

    /// As [`Self::encrypt_with_cycles`], reusing a caller-provided cycle
    /// buffer (cleared first) — the allocation-free path large TVLA
    /// campaigns run per trace.
    pub fn encrypt_with_cycles_into(
        &self,
        plaintext: u64,
        rng: &mut MaskRng,
        cycles: &mut Vec<CycleRecord>,
    ) -> u64 {
        self.crypt_with_cycles(plaintext, rng, false, cycles)
    }

    /// Decrypt one block in the masked domain (reverse key schedule).
    pub fn decrypt_with_cycles(
        &self,
        ciphertext: u64,
        rng: &mut MaskRng,
    ) -> (u64, Vec<CycleRecord>) {
        let mut cycles = Vec::with_capacity(Self::TOTAL_CYCLES);
        let pt = self.crypt_with_cycles(ciphertext, rng, true, &mut cycles);
        (pt, cycles)
    }

    fn crypt_with_cycles(
        &self,
        plaintext: u64,
        rng: &mut MaskRng,
        decrypt: bool,
        cycles: &mut Vec<CycleRecord>,
    ) -> u64 {
        cycles.clear();
        cycles.reserve(Self::TOTAL_CYCLES);

        // Lead-in cycle 0: key masking + load.
        let mut ks = MaskedKeySchedule::new(self.key, rng);
        let (c_reg, d_reg) = ks.state();
        cycles.push(CycleRecord {
            reg_toggles: share_hw(c_reg) + share_hw(d_reg),
            ..Default::default()
        });

        // Lead-in cycle 1: plaintext masking, IP, initial L/R load.
        let pt = MaskedWord::mask(plaintext, 64, rng);
        let (mut l, mut r) = initial_permutation(pt);
        cycles.push(CycleRecord {
            reg_toggles: share_hw(l) + share_hw(r),
            comb_toggles: share_hw(pt),
            ..Default::default()
        });

        let mut ir = MaskedWord::constant(0, 48);
        // Previous mid-register contents (4 selects + 16 mini outputs per
        // S-box) for an exact share-wise Hamming distance.
        let mut mid_prev = [gm_core::MaskedBit::constant(false); 8 * 20];
        let mut traces = [SboxTrace::default(); 8];

        for _round in 0..16 {
            let rk = if decrypt { ks.next_round_key_decrypt() } else { ks.next_round_key() };
            let pool = if self.refresh_enabled {
                SboxRandomness::draw(rng)
            } else {
                SboxRandomness::default()
            };

            // Cycle 0: IR load; AND/XOR/MUX-1 evaluate combinationally.
            let mixed = expand_and_mix(r, rk);
            let ir_hd = share_hd(ir, mixed);
            ir = mixed;
            let sout_raw = sbox_layer_into(ir, &[pool], &mut traces);
            let (glitch_units, coupling_units) = traces_exposures(&traces);
            let mut mid_hd = 0u32;
            let mut mid_hw = 0u32;
            for (s, t) in traces.iter().enumerate() {
                let mids = t.sel.iter().chain(t.mini_out.iter().flatten());
                for (j, b) in mids.enumerate() {
                    let old = &mut mid_prev[20 * s + j];
                    mid_hd += u32::from(old.s0 != b.s0) + u32::from(old.s1 != b.s1);
                    mid_hw += u32::from(b.s0) + u32::from(b.s1);
                    *old = *b;
                }
            }
            cycles.push(CycleRecord {
                reg_toggles: ir_hd + mid_hd,
                comb_toggles: traces_product_hw(&traces, 0..10) + mid_hw,
                glitch_units,
                coupling_units,
            });

            // Cycle 1: MUX stage 2/3, P, combine; state + key registers.
            let (c_old, d_old) = ks.state();
            let fr = permute_p(sout_raw);
            let new_r = l.xor(fr);
            let state_hd = share_hd(l, r) + share_hd(r, new_r);
            l = r;
            r = new_r;
            let (c_new, d_new) = ks.state();
            cycles.push(CycleRecord {
                reg_toggles: state_hd + share_hd(c_old, c_new) + share_hd(d_old, d_new),
                comb_toggles: share_hw(sout_raw) + share_hw(fr),
                ..Default::default()
            });
        }

        debug_assert_eq!(cycles.len(), Self::TOTAL_CYCLES);
        final_permutation(l, r).unmask()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::Des;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn cycle_counts_match_paper() {
        assert_eq!(MaskedDesPd::CYCLES_PER_ROUND, 2);
        assert_eq!(MaskedDesPd::TOTAL_CYCLES, 34);
        assert!(MaskedDesPd::TOTAL_CYCLES < MaskedDesFfTotal::get());
    }

    struct MaskedDesFfTotal;
    impl MaskedDesFfTotal {
        fn get() -> usize {
            super::super::core_ff::MaskedDesFf::TOTAL_CYCLES
        }
    }

    #[test]
    fn functional_equivalence_with_reference() {
        let mut seeds = SmallRng::seed_from_u64(8);
        let mut rng = MaskRng::new(141);
        for _ in 0..12 {
            let key: u64 = seeds.random();
            let pt: u64 = seeds.random();
            let core = MaskedDesPd::new(key);
            let (ct, cycles) = core.encrypt_with_cycles(pt, &mut rng);
            assert_eq!(ct, Des::new(key).encrypt_block(pt));
            assert_eq!(cycles.len(), 34);
        }
    }

    #[test]
    fn pd_cycles_carry_exposures() {
        let mut rng = MaskRng::new(142);
        let core = MaskedDesPd::new(0x133457799BBCDFF1);
        let (_, cycles) = core.encrypt_with_cycles(0x0123456789ABCDEF, &mut rng);
        let glitch: u32 = cycles.iter().map(|c| c.glitch_units).sum();
        let coupling: u32 = cycles.iter().map(|c| c.coupling_units).sum();
        assert!(glitch > 100, "AND-stage exposure expected: {glitch}");
        assert!(coupling > 100, "coupling exposure expected: {coupling}");
        // Only the S-box evaluation cycles carry exposure.
        for round in 0..16 {
            assert_eq!(cycles[2 + round * 2 + 1].glitch_units, 0, "round {round} cycle 1");
        }
    }

    #[test]
    fn unit_luts_is_configuration_only() {
        // The DelayUnit size never changes values — only timing/leakage.
        let mut a = MaskRng::new(10);
        let mut b = MaskRng::new(10);
        let c1 = MaskedDesPd::with_unit_luts(1, 1).encrypt_with_cycles(99, &mut a);
        let c10 = MaskedDesPd::with_unit_luts(1, 10).encrypt_with_cycles(99, &mut b);
        assert_eq!(c1.0, c10.0);
        assert_eq!(c1.1, c10.1);
    }
}
