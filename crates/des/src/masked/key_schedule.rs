//! Masked DES key schedule.
//!
//! Every step (PC1, the per-round rotations of the C/D halves, PC2) is
//! linear over GF(2), so it is applied to each share independently. The
//! key is re-masked before every DES operation (the paper masks the fixed
//! key afresh per encryption), and the schedule runs in parallel with the
//! datapath — it contributes ~900 GE to the FF core's area (§VI-A).

use crate::tables::{permute, rotl, rotr, PC1, PC2, SHIFTS};
use gm_core::{MaskRng, MaskedWord};

/// Masked key-schedule state: the shared C and D halves.
#[derive(Debug, Clone)]
pub struct MaskedKeySchedule {
    c: MaskedWord,
    d: MaskedWord,
    round: usize,
}

impl MaskedKeySchedule {
    /// Mask `key` with fresh randomness and apply PC1.
    pub fn new(key: u64, rng: &mut MaskRng) -> Self {
        let masked = MaskedWord::mask(key, 64, rng);
        Self::from_shares(masked)
    }

    /// Start from an already-shared key.
    pub fn from_shares(key: MaskedWord) -> Self {
        assert_eq!(key.width, 64, "DES key is 64 bits");
        let pc1_0 = permute(key.s0, 64, &PC1);
        let pc1_1 = permute(key.s1, 64, &PC1);
        MaskedKeySchedule {
            c: MaskedWord { s0: pc1_0 >> 28, s1: pc1_1 >> 28, width: 28 },
            d: MaskedWord { s0: pc1_0 & 0x0FFF_FFFF, s1: pc1_1 & 0x0FFF_FFFF, width: 28 },
            round: 0,
        }
    }

    /// Rounds already emitted.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Current C/D register shares (for power modelling).
    pub fn state(&self) -> (MaskedWord, MaskedWord) {
        (self.c, self.d)
    }

    /// Rotate and emit the next masked 48-bit round key.
    ///
    /// # Panics
    ///
    /// Panics after 16 rounds.
    pub fn next_round_key(&mut self) -> MaskedWord {
        assert!(self.round < 16, "DES has 16 rounds");
        let s = u32::from(SHIFTS[self.round]);
        self.c = MaskedWord { s0: rotl(self.c.s0, 28, s), s1: rotl(self.c.s1, 28, s), width: 28 };
        self.d = MaskedWord { s0: rotl(self.d.s0, 28, s), s1: rotl(self.d.s1, 28, s), width: 28 };
        self.round += 1;
        self.emit()
    }

    /// Emit the next masked round key in *decryption* order
    /// (K16, K15, …, K1): the hardware-friendly reverse walk — no
    /// rotation before K16 (the halves are back at their PC1 state after
    /// the 28 encryption rotations), right-rotations thereafter.
    ///
    /// # Panics
    ///
    /// Panics after 16 rounds. Do not mix with [`Self::next_round_key`]
    /// on the same instance.
    pub fn next_round_key_decrypt(&mut self) -> MaskedWord {
        assert!(self.round < 16, "DES has 16 rounds");
        if self.round > 0 {
            let s = u32::from(SHIFTS[16 - self.round]);
            self.c =
                MaskedWord { s0: rotr(self.c.s0, 28, s), s1: rotr(self.c.s1, 28, s), width: 28 };
            self.d =
                MaskedWord { s0: rotr(self.d.s0, 28, s), s1: rotr(self.d.s1, 28, s), width: 28 };
        }
        self.round += 1;
        self.emit()
    }

    fn emit(&self) -> MaskedWord {
        let cd0 = (self.c.s0 << 28) | self.d.s0;
        let cd1 = (self.c.s1 << 28) | self.d.s1;
        MaskedWord { s0: permute(cd0, 56, &PC2), s1: permute(cd1, 56, &PC2), width: 48 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::round_keys;

    #[test]
    fn matches_reference_schedule() {
        let mut rng = MaskRng::new(111);
        for key in [0x133457799BBCDFF1u64, 0x0E329232EA6D0D73, 0xFFFFFFFFFFFFFFFF, 0] {
            let want = round_keys(key);
            let mut ks = MaskedKeySchedule::new(key, &mut rng);
            for (r, w) in want.iter().enumerate() {
                let got = ks.next_round_key();
                assert_eq!(got.unmask(), *w, "key {key:016x} round {r}");
                assert_eq!(got.width, 48);
            }
        }
    }

    #[test]
    fn decrypt_order_is_reversed_encrypt_order() {
        let mut rng = MaskRng::new(115);
        let key = 0x133457799BBCDFF1;
        let fwd = round_keys(key);
        let mut ks = MaskedKeySchedule::new(key, &mut rng);
        for r in 0..16 {
            assert_eq!(ks.next_round_key_decrypt().unmask(), fwd[15 - r], "decrypt round {r}");
        }
    }

    #[test]
    fn shares_stay_masked() {
        let mut rng = MaskRng::new(112);
        let mut ks = MaskedKeySchedule::new(0x133457799BBCDFF1, &mut rng);
        let k1 = ks.next_round_key();
        // With randomness on, share 0 should essentially never equal the
        // unshared round key (probability 2^-48).
        assert_ne!(k1.s0, k1.unmask());
    }

    #[test]
    fn prng_off_degenerates() {
        let mut rng = MaskRng::disabled();
        let mut ks = MaskedKeySchedule::new(0x133457799BBCDFF1, &mut rng);
        let k1 = ks.next_round_key();
        assert_eq!(k1.s0, 0, "PRNG off: the mask share is all-zero");
        assert_eq!(k1.s1, round_keys(0x133457799BBCDFF1)[0]);
    }

    #[test]
    #[should_panic(expected = "16 rounds")]
    fn seventeenth_round_panics() {
        let mut rng = MaskRng::new(113);
        let mut ks = MaskedKeySchedule::new(0, &mut rng);
        for _ in 0..17 {
            let _ = ks.next_round_key();
        }
    }
}
