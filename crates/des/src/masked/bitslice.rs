//! 64-way bitsliced evaluation of the masked DES cycle cores.
//!
//! [`BitslicedDes`] runs **64 independent masked encryptions at once**:
//! every sensitive bit of the design is held as a [`LaneBit`] — two
//! `u64` shares whose bit `ℓ` belongs to trace lane `ℓ` — so one word
//! operation advances all 64 traces through a gate or gadget. The DES
//! bit permutations (IP, E, P, PC1, PC2, FP) become index remaps of
//! `[LaneBit; N]` arrays and cost nothing at run time.
//!
//! The engine replicates the *exact* cycle schedules of
//! [`super::MaskedDesFf`] (3 lead-in + 16 × 7 = 115 cycles) and
//! [`super::MaskedDesPd`] (2 lead-in + 16 × 2 = 34 cycles): every
//! register/combinational toggle contribution a scalar core records is
//! pushed as one toggle word into a [`CycleLaneCounters`], which reduces
//! them to per-lane [`CycleRecord`](crate::masked::core_ff::CycleRecord)s
//! by transpose + `count_ones`. Randomness is drawn from the *same*
//! [`MaskRng`] in per-lane trace order (key mask, plaintext mask, then
//! 16 × 14 refresh bits per lane), so lane `ℓ` of a group consumes the
//! identical mask stream as the `ℓ`-th sequential scalar encryption —
//! ciphertexts *and* cycle records are bit-identical, which the tests
//! below and the campaign golden tests pin.
//!
//! A group may hold fewer than 64 lanes (the campaign tail): inactive
//! lanes draw no randomness, compute with all-zero inputs, and are
//! discarded at demux.

use crate::power::CycleLaneCounters;
use crate::sbox::masked::xor_plans;
use crate::sbox::mini::TEN_PRODUCTS;
use crate::tables::{E, FP, IP, P, PC1, PC2, SHIFTS};
use gm_core::bitslice::{lanes_to_bits, sec_and2_lanes, splat, LaneBit};
use gm_core::MaskRng;
use gm_netlist::bitslice::{transpose64, SegLaneCounter};

/// Apply a 1-based-from-MSB DES permutation table as an index remap.
///
/// Mirrors `crate::tables::permute` on LSB-indexed `[LaneBit]` arrays:
/// output bit `k` (LSB-first) is source bit `src_width − table[L−1−k]`.
fn bs_permute<const L: usize>(src: &[LaneBit], src_width: usize, table: &[u8; L]) -> [LaneBit; L] {
    std::array::from_fn(|k| src[src_width - table[L - 1 - k] as usize])
}

/// Rotate-left of a 28-bit half, as an index remap: out bit `i` is in
/// bit `(i + 28 − by) mod 28` (mirrors `crate::tables::rotl`).
fn rot28(v: &[LaneBit; 28], by: usize) -> [LaneBit; 28] {
    std::array::from_fn(|i| v[(i + 28 - by) % 28])
}

/// Push the share-wise Hamming weight of a word (one toggle word per
/// share bit, batched through [`SegLaneCounter::extend`]).
fn push_hw(c: &mut SegLaneCounter, w: &[LaneBit]) {
    c.extend(w.iter().flat_map(|b| [b.s0, b.s1]));
}

/// Push the share-wise Hamming distance between two words.
fn push_hd(c: &mut SegLaneCounter, a: &[LaneBit], b: &[LaneBit]) {
    c.extend(a.iter().zip(b).flat_map(|(x, y)| [x.s0 ^ y.s0, x.s1 ^ y.s1]));
}

/// Record one `secAND2` evaluation's glitch/coupling exposure (the PD
/// core's handles; the FF core passes `None` — its gadget never exposes).
fn count_gadget(
    exp: &mut Option<(&mut SegLaneCounter, &mut SegLaneCounter)>,
    x: LaneBit,
    y: LaneBit,
) {
    if let Some((glitch, coupling)) = exp.as_mut() {
        glitch.push(y.unmask());
        coupling.push(x.unmask());
    }
}

/// Lane-parallel masked key schedule (all linear, applied per share).
struct BsKs {
    c: [LaneBit; 28],
    d: [LaneBit; 28],
    round: usize,
}

impl BsKs {
    /// Mask `key` with per-lane mask words `km_t` (bit-major: `km_t[b]`
    /// holds bit `b` of every lane's mask) and apply PC1.
    fn new(key: u64, km_t: &[u64; 64]) -> Self {
        let key_word: [LaneBit; 64] = std::array::from_fn(|b| LaneBit {
            s0: km_t[b],
            s1: splat((key >> b) & 1 == 1) ^ km_t[b],
        });
        let pc1 = bs_permute(&key_word, 64, &PC1);
        let mut c = [LaneBit::default(); 28];
        let mut d = [LaneBit::default(); 28];
        d.copy_from_slice(&pc1[..28]);
        c.copy_from_slice(&pc1[28..]);
        BsKs { c, d, round: 0 }
    }

    fn next_round_key(&mut self) -> [LaneBit; 48] {
        let by = usize::from(SHIFTS[self.round]);
        self.c = rot28(&self.c, by);
        self.d = rot28(&self.d, by);
        self.round += 1;
        let mut cd = [LaneBit::default(); 56];
        cd[..28].copy_from_slice(&self.d);
        cd[28..].copy_from_slice(&self.c);
        bs_permute(&cd, 56, &PC2)
    }
}

/// All intermediates of one lane-parallel S-box evaluation (the word
/// form of [`crate::sbox::masked::SboxTrace`]; the exposure sums live in
/// the caller's [`SegLaneCounter`]s instead of per-trace fields).
#[derive(Debug, Clone, Copy)]
struct BsSboxTrace {
    products: [LaneBit; 10],
    sel: [LaneBit; 4],
    mini_out: [[LaneBit; 4]; 4],
    out: [LaneBit; 4],
}

impl Default for BsSboxTrace {
    fn default() -> Self {
        let z = LaneBit::default();
        BsSboxTrace { products: [z; 10], sel: [z; 4], mini_out: [[z; 4]; 4], out: [z; 4] }
    }
}

/// Lane-parallel [`crate::sbox::masked::masked_sbox_trace`]: identical
/// gadget composition and refresh points, word-wide. `pm`/`mm` are the
/// per-lane fresh-mask words of the round's shared pool.
fn bs_sbox_trace(
    sbox: usize,
    bits: &[LaneBit; 6],
    pm: &[u64; 10],
    mm: &[u64; 4],
    exp: &mut Option<(&mut SegLaneCounter, &mut SegLaneCounter)>,
) -> BsSboxTrace {
    let v = [bits[4], bits[3], bits[2], bits[1]];

    // AND stage: the ten products, then per-product refresh.
    let mut products = [LaneBit::default(); 10];
    for (i, &mask) in TEN_PRODUCTS.iter().enumerate() {
        let mut acc: Option<LaneBit> = None;
        for (k, &var) in v.iter().enumerate() {
            if mask & (1 << k) != 0 {
                acc = Some(match acc {
                    None => var,
                    Some(a) => {
                        count_gadget(exp, a, var);
                        sec_and2_lanes(a, var)
                    }
                });
            }
        }
        let p = acc.expect("every product has at least two variables");
        products[i] = p.refresh_with(pm[i]);
    }

    // XOR stage via the same precompiled per-output recipes.
    let rows = &xor_plans()[sbox];
    let mut mini_out = [[LaneBit::default(); 4]; 4];
    for (r, plans) in rows.iter().enumerate() {
        for (j, plan) in plans.iter().enumerate() {
            let mut acc = LaneBit::constant(plan.constant);
            for (k, &var) in v.iter().enumerate() {
                if plan.lin & (1 << k) != 0 {
                    acc = acc.xor(var);
                }
            }
            for (idx, &p) in products.iter().enumerate() {
                if plan.prods & (1 << idx) != 0 {
                    acc = acc.xor(p);
                }
            }
            mini_out[r][j] = acc;
        }
    }

    // MUX stage 1: select products of (b0, b5), refreshed.
    let mut sel = [LaneBit::default(); 4];
    for (r, s) in sel.iter_mut().enumerate() {
        let hi = if r & 0b10 != 0 { bits[0] } else { bits[0].not() };
        let lo = if r & 0b01 != 0 { bits[5] } else { bits[5].not() };
        count_gadget(exp, hi, lo);
        *s = sec_and2_lanes(hi, lo).refresh_with(mm[r]);
    }

    // MUX stages 2 and 3.
    let mut out = [LaneBit::default(); 4];
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = LaneBit::constant(false);
        for r in 0..4 {
            count_gadget(exp, sel[r], mini_out[r][j]);
            acc = acc.xor(sec_and2_lanes(sel[r], mini_out[r][j]));
        }
        *o = acc;
    }
    BsSboxTrace { products, sel, mini_out, out }
}

/// Lane-parallel S-box layer on the mixed 48-bit word (LSB-indexed).
fn bs_sbox_layer(
    ir: &[LaneBit; 48],
    pm: &[u64; 10],
    mm: &[u64; 4],
    traces: &mut [BsSboxTrace; 8],
    mut exp: Option<(&mut SegLaneCounter, &mut SegLaneCounter)>,
) -> [LaneBit; 32] {
    let mut out = [LaneBit::default(); 32];
    for s in 0..8 {
        let bits: [LaneBit; 6] = std::array::from_fn(|i| ir[47 - (6 * s + i)]);
        let t = bs_sbox_trace(s, &bits, pm, mm, &mut exp);
        for (j, b) in t.out.iter().enumerate() {
            out[31 - (4 * s + j)] = *b;
        }
        traces[s] = t;
    }
    out
}

/// One group's pre-drawn randomness, in per-lane trace order.
struct GroupRandomness {
    /// Lane-major key-mask words.
    km: [u64; 64],
    /// Lane-major plaintext-mask words.
    ptm: [u64; 64],
    /// Per-round fresh-mask words, already lane-transposed:
    /// `pools[round][k]` bit `ℓ` = lane `ℓ`'s `k`-th drawn bit
    /// (0–9 product masks, 10–13 MUX masks).
    pools: [[u64; 14]; 16],
}

impl GroupRandomness {
    /// Draw everything `active` sequential scalar encryptions would,
    /// in the same per-lane order. Inactive lanes stay all-zero.
    fn draw(rng: &mut MaskRng, active: usize, refresh_enabled: bool) -> Self {
        let mut g = GroupRandomness { km: [0; 64], ptm: [0; 64], pools: [[0; 14]; 16] };
        // 16 rounds × 14 = 224 refresh bits per lane, pulled from the
        // buffered bit stream in word gulps (same values the scalar
        // cores' 224 single `bit()` calls would see) into lane-major
        // chunk words, then lane-transposed once per 64 stream
        // positions. `pools[round][k]` bit ℓ is lane ℓ's stream bit
        // `q = 14·round + k`, i.e. bit `q % 64` of chunk `q / 64`.
        let mut chunks = [[0u64; 64]; 4];
        for lane in 0..active {
            g.km[lane] = rng.bits(64);
            g.ptm[lane] = rng.bits(64);
            if refresh_enabled {
                let mut left = 16 * 14u32;
                for chunk in chunks.iter_mut() {
                    chunk[lane] = rng.bits_buffered(left.min(64));
                    left = left.saturating_sub(64);
                }
            }
        }
        if refresh_enabled {
            for chunk in chunks.iter_mut() {
                transpose64(chunk);
            }
            for (round, pool) in g.pools.iter_mut().enumerate() {
                for (k, w) in pool.iter_mut().enumerate() {
                    let q = 14 * round + k;
                    *w = chunks[q / 64][q % 64];
                }
            }
        }
        g
    }

    fn round_pool(&self, round: usize) -> (&[u64; 14], [u64; 10], [u64; 4]) {
        let w = &self.pools[round];
        let pm: [u64; 10] = w[..10].try_into().expect("10 product masks");
        let mm: [u64; 4] = w[10..].try_into().expect("4 mux masks");
        (w, pm, mm)
    }
}

/// Unmask a 64-bit word array and transpose to lane-major values.
fn bs_unmask_to_lanes(word: &[LaneBit; 64]) -> [u64; 64] {
    let mut t: [u64; 64] = std::array::from_fn(|b| word[b].unmask());
    gm_netlist::bitslice::transpose64(&mut t);
    t
}

/// The 64-lane bitsliced masked DES engine (FF and PD schedules).
#[derive(Debug, Clone)]
pub struct BitslicedDes {
    key: u64,
    /// When false, the 14-bit refresh layer is skipped (no pool draws),
    /// matching the scalar cores' §III-C ablation.
    pub refresh_enabled: bool,
}

impl BitslicedDes {
    /// An engine for a fixed key (re-masked per encryption, per lane).
    pub fn new(key: u64) -> Self {
        BitslicedDes { key, refresh_enabled: true }
    }

    /// Encrypt up to 64 plaintexts through the secAND2-FF schedule,
    /// appending 115 cycles × 64 lanes of records to `counters`
    /// (reset first). Returns the 64 lane ciphertexts (lanes beyond
    /// `pts.len()` are meaningless).
    pub fn encrypt_ff_group(
        &self,
        pts: &[u64],
        rng: &mut MaskRng,
        counters: &mut CycleLaneCounters,
    ) -> [u64; 64] {
        assert!(!pts.is_empty() && pts.len() <= 64, "1..=64 lanes per group");
        counters.reset();
        let rnd = GroupRandomness::draw(rng, pts.len(), self.refresh_enabled);
        let mut km_t = [0u64; 64];
        let mut ptm_t = [0u64; 64];
        let mut pt_t = [0u64; 64];
        lanes_to_bits(&rnd.km, &mut km_t);
        lanes_to_bits(&rnd.ptm, &mut ptm_t);
        lanes_to_bits(pts, &mut pt_t);

        // Lead-in cycle 0: key masking + key register load.
        let mut ks = BsKs::new(self.key, &km_t);
        push_hw(&mut counters.reg, &ks.c);
        push_hw(&mut counters.reg, &ks.d);
        counters.end_cycle();

        // Lead-in cycle 1: plaintext masking + IP (wiring only).
        let pt_word: [LaneBit; 64] =
            std::array::from_fn(|b| LaneBit { s0: ptm_t[b], s1: pt_t[b] ^ ptm_t[b] });
        push_hw(&mut counters.comb, &pt_word);
        counters.end_cycle();

        // Lead-in cycle 2: initial L/R load.
        let ip = bs_permute(&pt_word, 64, &IP);
        let mut r: [LaneBit; 32] = ip[..32].try_into().expect("R half");
        let mut l: [LaneBit; 32] = ip[32..].try_into().expect("L half");
        push_hw(&mut counters.reg, &l);
        push_hw(&mut counters.reg, &r);
        counters.end_cycle();

        let mut ir = [LaneBit::default(); 48];
        let mut sel_regs = [LaneBit::default(); 32];
        let mut sbox_out_reg = [LaneBit::default(); 32];
        let mut traces = [BsSboxTrace::default(); 8];

        for round in 0..16 {
            let (c_old, d_old) = (ks.c, ks.d);
            let rk = ks.next_round_key();
            let (c_new, d_new) = (ks.c, ks.d);

            // Cycle 0: IR load + key rotation.
            let e = bs_permute(&r, 32, &E);
            let mixed: [LaneBit; 48] = std::array::from_fn(|i| e[i].xor(rk[i]));
            push_hd(&mut counters.reg, &ir, &mixed);
            push_hd(&mut counters.reg, &c_old, &c_new);
            push_hd(&mut counters.reg, &d_old, &d_new);
            push_hw(&mut counters.comb, &mixed);
            counters.end_cycle();
            ir = mixed;

            let (_, pm, mm) = rnd.round_pool(round);
            // The FF gadget enforces the safe arrival order: no exposure.
            let sout_raw = bs_sbox_layer(&ir, &pm, &mm, &mut traces, None);

            // Cycle 1: AND stage layer 1 (the six pair products).
            for t in &traces {
                push_hw(&mut counters.comb, &t.products[..6]);
            }
            counters.end_cycle();

            // Cycle 2: AND stage layer 2 + MUX stage-1 register.
            for (s, t) in traces.iter().enumerate() {
                let old = &mut sel_regs[4 * s..4 * s + 4];
                push_hd(&mut counters.reg, old, &t.sel);
                old.copy_from_slice(&t.sel);
                push_hw(&mut counters.comb, &t.products[6..10]);
            }
            counters.end_cycle();

            // Cycle 3: AND-stage settle (y1 FF captures).
            for t in &traces {
                push_hw(&mut counters.comb, &t.products);
            }
            counters.end_cycle();

            // Cycle 4: XOR stage (mini S-box outputs).
            for t in &traces {
                for row in &t.mini_out {
                    push_hw(&mut counters.comb, row);
                }
            }
            counters.end_cycle();

            // Cycle 5: MUX stages 2/3 + S-box output register.
            push_hd(&mut counters.reg, &sbox_out_reg, &sout_raw);
            push_hw(&mut counters.comb, &sout_raw);
            counters.end_cycle();
            sbox_out_reg = sout_raw;

            // Cycle 6: Feistel combine + state registers.
            let fr = bs_permute(&sbox_out_reg, 32, &P);
            let new_r: [LaneBit; 32] = std::array::from_fn(|i| l[i].xor(fr[i]));
            push_hd(&mut counters.reg, &l, &r);
            push_hd(&mut counters.reg, &r, &new_r);
            push_hw(&mut counters.comb, &fr);
            counters.end_cycle();
            l = r;
            r = new_r;
        }

        counters.finish();
        debug_assert_eq!(counters.num_cycles(), super::MaskedDesFf::TOTAL_CYCLES);
        self.final_lanes(&l, &r)
    }

    /// Encrypt up to 64 plaintexts through the secAND2-PD schedule,
    /// appending 34 cycles × 64 lanes of records (including glitch and
    /// coupling exposure) to `counters` (reset first).
    pub fn encrypt_pd_group(
        &self,
        pts: &[u64],
        rng: &mut MaskRng,
        counters: &mut CycleLaneCounters,
    ) -> [u64; 64] {
        assert!(!pts.is_empty() && pts.len() <= 64, "1..=64 lanes per group");
        counters.reset();
        let rnd = GroupRandomness::draw(rng, pts.len(), self.refresh_enabled);
        let mut km_t = [0u64; 64];
        let mut ptm_t = [0u64; 64];
        let mut pt_t = [0u64; 64];
        lanes_to_bits(&rnd.km, &mut km_t);
        lanes_to_bits(&rnd.ptm, &mut ptm_t);
        lanes_to_bits(pts, &mut pt_t);

        // Lead-in cycle 0: key masking + load.
        let mut ks = BsKs::new(self.key, &km_t);
        push_hw(&mut counters.reg, &ks.c);
        push_hw(&mut counters.reg, &ks.d);
        counters.end_cycle();

        // Lead-in cycle 1: plaintext masking, IP, initial L/R load.
        let pt_word: [LaneBit; 64] =
            std::array::from_fn(|b| LaneBit { s0: ptm_t[b], s1: pt_t[b] ^ ptm_t[b] });
        let ip = bs_permute(&pt_word, 64, &IP);
        let mut r: [LaneBit; 32] = ip[..32].try_into().expect("R half");
        let mut l: [LaneBit; 32] = ip[32..].try_into().expect("L half");
        push_hw(&mut counters.reg, &l);
        push_hw(&mut counters.reg, &r);
        push_hw(&mut counters.comb, &pt_word);
        counters.end_cycle();

        let mut ir = [LaneBit::default(); 48];
        let mut mid_prev = [LaneBit::default(); 8 * 20];
        let mut traces = [BsSboxTrace::default(); 8];

        for round in 0..16 {
            let rk = ks.next_round_key();
            let (_, pm, mm) = rnd.round_pool(round);

            // Cycle 0: IR load; AND/XOR/MUX-1 evaluate combinationally.
            let e = bs_permute(&r, 32, &E);
            let mixed: [LaneBit; 48] = std::array::from_fn(|i| e[i].xor(rk[i]));
            push_hd(&mut counters.reg, &ir, &mixed);
            ir = mixed;
            let sout_raw = bs_sbox_layer(
                &ir,
                &pm,
                &mm,
                &mut traces,
                Some((&mut counters.glitch, &mut counters.coupling)),
            );
            for (s, t) in traces.iter().enumerate() {
                let old = &mut mid_prev[20 * s..20 * s + 20];
                let mids = t.sel.iter().chain(t.mini_out.iter().flatten());
                counters.reg.extend(
                    old.iter().zip(mids.clone()).flat_map(|(o, b)| [o.s0 ^ b.s0, o.s1 ^ b.s1]),
                );
                counters.comb.extend(mids.clone().flat_map(|b| [b.s0, b.s1]));
                for (o, b) in old.iter_mut().zip(mids) {
                    *o = *b;
                }
                push_hw(&mut counters.comb, &t.products);
            }
            counters.end_cycle();

            // Cycle 1: MUX stage 2/3, P, combine; state + key registers.
            // (The scalar core's key-register HD here brackets no
            // rotation and is structurally zero — nothing to push.)
            let fr = bs_permute(&sout_raw, 32, &P);
            let new_r: [LaneBit; 32] = std::array::from_fn(|i| l[i].xor(fr[i]));
            push_hd(&mut counters.reg, &l, &r);
            push_hd(&mut counters.reg, &r, &new_r);
            push_hw(&mut counters.comb, &sout_raw);
            push_hw(&mut counters.comb, &fr);
            counters.end_cycle();
            l = r;
            r = new_r;
        }

        counters.finish();
        debug_assert_eq!(counters.num_cycles(), super::MaskedDesPd::TOTAL_CYCLES);
        self.final_lanes(&l, &r)
    }

    /// FP on the pre-output halves and per-lane unmasking.
    fn final_lanes(&self, l: &[LaneBit; 32], r: &[LaneBit; 32]) -> [u64; 64] {
        let mut pre = [LaneBit::default(); 64];
        pre[..32].copy_from_slice(l);
        pre[32..].copy_from_slice(r);
        let ct_word = bs_permute(&pre, 64, &FP);
        bs_unmask_to_lanes(&ct_word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::masked::core_ff::CycleRecord;
    use crate::masked::{MaskedDesFf, MaskedDesPd};
    use crate::reference::Des;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_pts(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random()).collect()
    }

    /// Compare one bitsliced group against `pts.len()` sequential scalar
    /// encryptions drawing from an identically-seeded `MaskRng`:
    /// ciphertexts and full per-cycle records must be bit-identical.
    fn assert_group_matches_scalar(pd: bool, pts: &[u64], mask_seed: Option<u64>) {
        let key = 0x133457799BBCDFF1u64;
        let mk_rng = || match mask_seed {
            Some(s) => MaskRng::new(s),
            None => MaskRng::disabled(),
        };
        let bs = BitslicedDes::new(key);
        let mut counters = CycleLaneCounters::new();
        let mut bs_rng = mk_rng();
        let cts = if pd {
            bs.encrypt_pd_group(pts, &mut bs_rng, &mut counters)
        } else {
            bs.encrypt_ff_group(pts, &mut bs_rng, &mut counters)
        };

        let reference = Des::new(key);
        let mut sc_rng = mk_rng();
        let mut lane_rec: Vec<CycleRecord> = Vec::new();
        for (lane, &pt) in pts.iter().enumerate() {
            let (ct, cycles) = if pd {
                MaskedDesPd::new(key).encrypt_with_cycles(pt, &mut sc_rng)
            } else {
                MaskedDesFf::new(key).encrypt_with_cycles(pt, &mut sc_rng)
            };
            assert_eq!(cts[lane], ct, "lane {lane} ciphertext");
            assert_eq!(ct, reference.encrypt_block(pt), "lane {lane} vs reference");
            counters.lane_into(lane, &mut lane_rec);
            assert_eq!(lane_rec, cycles, "lane {lane} cycle records");
        }
    }

    #[test]
    fn ff_full_group_matches_scalar() {
        assert_group_matches_scalar(false, &random_pts(64, 41), Some(777));
    }

    #[test]
    fn pd_full_group_matches_scalar() {
        assert_group_matches_scalar(true, &random_pts(64, 42), Some(778));
    }

    #[test]
    fn partial_tail_groups_match_scalar() {
        // Lane counts not divisible by 64: the campaign tail.
        assert_group_matches_scalar(false, &random_pts(5, 43), Some(779));
        assert_group_matches_scalar(true, &random_pts(17, 44), Some(780));
        assert_group_matches_scalar(true, &random_pts(1, 45), Some(781));
    }

    #[test]
    fn prng_off_matches_scalar() {
        assert_group_matches_scalar(false, &random_pts(64, 46), None);
        assert_group_matches_scalar(true, &random_pts(64, 47), None);
    }

    /// Consecutive groups off one RNG equal one long scalar sequence —
    /// the exact situation in a TVLA block of 256 traces.
    #[test]
    fn group_sequence_matches_scalar_stream() {
        let key = 0x0E329232EA6D0D73u64;
        let pts = random_pts(96, 48);
        let bs = BitslicedDes::new(key);
        let mut counters = CycleLaneCounters::new();
        let mut bs_rng = MaskRng::new(900);
        let mut bs_cts = Vec::new();
        for chunk in pts.chunks(64) {
            let cts = bs.encrypt_pd_group(chunk, &mut bs_rng, &mut counters);
            bs_cts.extend_from_slice(&cts[..chunk.len()]);
        }
        let mut sc_rng = MaskRng::new(900);
        let core = MaskedDesPd::new(key);
        for (i, &pt) in pts.iter().enumerate() {
            let (ct, _) = core.encrypt_with_cycles(pt, &mut sc_rng);
            assert_eq!(bs_cts[i], ct, "trace {i}");
        }
    }
}
