//! The secAND2-FF DES core (Fig. 8): 7 cycles per round, 115 per block.
//!
//! Cycle budget per round, matching the paper's schedule:
//!
//! | cycle | activity |
//! |---|---|
//! | 0 | key halves rotate; S-box input register loads `E(R) ⊕ K` |
//! | 1 | mini S-box AND stage, layer 1 (pair products) |
//! | 2 | AND stage layer 2 (triple products); MUX stage-1 register loads |
//! | 3 | AND stage settle (secAND2-FF y₁ captures) |
//! | 4 | XOR stage + product refresh |
//! | 5 | MUX stage 2/3; S-box output register loads |
//! | 6 | state registers L/R update (Feistel combine) |
//!
//! Three lead-in cycles (key masking + load, plaintext masking + IP,
//! initial L/R load) complete the paper's 115-cycle total.
//!
//! The engine is value-level but cycle-accurate: every cycle yields a
//! [`CycleRecord`] with the share-wise register and combinational toggle
//! counts the fast power model consumes. The FF gadget guarantees the
//! safe arrival order, so its records never carry glitch exposure.

use super::datapath::{
    expand_and_mix, final_permutation, initial_permutation, permute_p, sbox_layer_into,
};
use super::key_schedule::MaskedKeySchedule;
use crate::sbox::masked::SboxTrace;
use crate::sbox::SboxRandomness;
use gm_core::{MaskRng, MaskedBit, MaskedWord};

/// Share-level activity of one clock cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleRecord {
    /// Register share bits that toggled this cycle (Hamming distance).
    pub reg_toggles: u32,
    /// Combinational share activity (Hamming weight / distance proxy).
    pub comb_toggles: u32,
    /// Glitch-exposure units: Σ over AND gadgets evaluated this cycle of
    /// the unshared `y` operand (only realised as power when the arrival
    /// order is violated — see `gm_des::power`).
    pub glitch_units: u32,
    /// Coupling-exposure units: Σ of the unshared `x` operands (realised
    /// with the crosstalk ε).
    pub coupling_units: u32,
}

/// Share-wise Hamming distance between two masked words.
pub(crate) fn share_hd(a: MaskedWord, b: MaskedWord) -> u32 {
    (a.s0 ^ b.s0).count_ones() + (a.s1 ^ b.s1).count_ones()
}

/// Share-wise Hamming weight of a masked word.
pub(crate) fn share_hw(w: MaskedWord) -> u32 {
    w.s0.count_ones() + w.s1.count_ones()
}

pub(crate) fn bit_hw(bits: &[MaskedBit]) -> u32 {
    bits.iter().map(|b| u32::from(b.s0) + u32::from(b.s1)).sum()
}

pub(crate) fn traces_product_hw(traces: &[SboxTrace], range: std::ops::Range<usize>) -> u32 {
    traces.iter().map(|t| bit_hw(&t.products[range.clone()])).sum()
}

pub(crate) fn traces_exposures(traces: &[SboxTrace]) -> (u32, u32) {
    traces.iter().fold((0, 0), |(g, c), t| (g + t.glitch_y_units, c + t.coupling_x_units))
}

/// The secAND2-FF masked DES core.
#[derive(Debug, Clone)]
pub struct MaskedDesFf {
    key: u64,
    /// When false, the 14-bit refresh layer is skipped (§III-C ablation:
    /// the XOR stage then recombines dependent sharings and the core
    /// leaks in first order).
    pub refresh_enabled: bool,
}

impl MaskedDesFf {
    /// Cycles per round (Table III).
    pub const CYCLES_PER_ROUND: usize = 7;
    /// Cycles per block: 3 lead-in + 16 × 7 (the paper's "115 clock
    /// cycles compared to 84" trade-off, §VIII).
    pub const TOTAL_CYCLES: usize = 3 + 16 * Self::CYCLES_PER_ROUND;
    /// Fresh random bits per round.
    pub const FRESH_BITS_PER_ROUND: usize = SboxRandomness::BITS;

    /// A core for a fixed key (re-masked per encryption).
    pub fn new(key: u64) -> Self {
        MaskedDesFf { key, refresh_enabled: true }
    }

    /// The §III-C ablation: refresh disabled (functionally identical,
    /// first-order insecure).
    pub fn without_refresh(key: u64) -> Self {
        MaskedDesFf { key, refresh_enabled: false }
    }

    /// Encrypt one block, returning the ciphertext and one
    /// [`CycleRecord`] per clock cycle.
    pub fn encrypt_with_cycles(
        &self,
        plaintext: u64,
        rng: &mut MaskRng,
    ) -> (u64, Vec<CycleRecord>) {
        let mut cycles = Vec::with_capacity(Self::TOTAL_CYCLES);
        let ct = self.encrypt_with_cycles_into(plaintext, rng, &mut cycles);
        (ct, cycles)
    }

    /// As [`Self::encrypt_with_cycles`], reusing a caller-provided cycle
    /// buffer (cleared first) — the allocation-free path large TVLA
    /// campaigns run per trace.
    pub fn encrypt_with_cycles_into(
        &self,
        plaintext: u64,
        rng: &mut MaskRng,
        cycles: &mut Vec<CycleRecord>,
    ) -> u64 {
        self.crypt_with_cycles(plaintext, rng, false, cycles)
    }

    /// Decrypt one block in the masked domain (reverse key schedule —
    /// the same datapath, as in hardware).
    pub fn decrypt_with_cycles(
        &self,
        ciphertext: u64,
        rng: &mut MaskRng,
    ) -> (u64, Vec<CycleRecord>) {
        let mut cycles = Vec::with_capacity(Self::TOTAL_CYCLES);
        let pt = self.crypt_with_cycles(ciphertext, rng, true, &mut cycles);
        (pt, cycles)
    }

    fn crypt_with_cycles(
        &self,
        plaintext: u64,
        rng: &mut MaskRng,
        decrypt: bool,
        cycles: &mut Vec<CycleRecord>,
    ) -> u64 {
        cycles.clear();
        cycles.reserve(Self::TOTAL_CYCLES);

        // Lead-in cycle 0: key masking + key register load.
        let mut ks = MaskedKeySchedule::new(self.key, rng);
        let (c_reg, d_reg) = ks.state();
        cycles.push(CycleRecord {
            reg_toggles: share_hw(c_reg) + share_hw(d_reg),
            ..Default::default()
        });

        // Lead-in cycle 1: plaintext masking + IP (wiring only).
        let pt = MaskedWord::mask(plaintext, 64, rng);
        cycles.push(CycleRecord { comb_toggles: share_hw(pt), ..Default::default() });

        // Lead-in cycle 2: initial L/R load.
        let (mut l, mut r) = initial_permutation(pt);
        cycles.push(CycleRecord { reg_toggles: share_hw(l) + share_hw(r), ..Default::default() });

        // Architectural registers that persist across rounds.
        let mut ir = MaskedWord::constant(0, 48); // S-box input register
        let mut sel_regs = [MaskedBit::constant(false); 32];
        let mut sbox_out_reg = MaskedWord::constant(0, 32);
        let mut traces = [SboxTrace::default(); 8];

        for _round in 0..16 {
            let (c_old, d_old) = ks.state();
            let rk = if decrypt { ks.next_round_key_decrypt() } else { ks.next_round_key() };
            let (c_new, d_new) = ks.state();
            let key_hd = share_hd(c_old, c_new) + share_hd(d_old, d_new);

            // Cycle 0: IR load + key rotation.
            let mixed = expand_and_mix(r, rk);
            cycles.push(CycleRecord {
                reg_toggles: share_hd(ir, mixed) + key_hd,
                comb_toggles: share_hw(mixed),
                ..Default::default()
            });
            ir = mixed;

            let pool = if self.refresh_enabled {
                SboxRandomness::draw(rng)
            } else {
                SboxRandomness::default()
            };
            let sout_raw = sbox_layer_into(ir, &[pool], &mut traces);

            // Cycle 1: AND stage layer 1 (the six pair products).
            cycles.push(CycleRecord {
                comb_toggles: traces_product_hw(&traces, 0..6),
                // The FF gadget enforces the safe order: glitch exposure
                // never becomes power. Recorded as zero by construction.
                glitch_units: 0,
                coupling_units: 0,
                ..Default::default()
            });

            // Cycle 2: AND stage layer 2 (triples) + MUX stage-1 register.
            let mut sel_hd = 0u32;
            for (s, t) in traces.iter().enumerate() {
                for (j, b) in t.sel.iter().enumerate() {
                    let old = &mut sel_regs[4 * s + j];
                    sel_hd += u32::from(old.s0 != b.s0) + u32::from(old.s1 != b.s1);
                    *old = *b;
                }
            }
            cycles.push(CycleRecord {
                reg_toggles: sel_hd,
                comb_toggles: traces_product_hw(&traces, 6..10),
                ..Default::default()
            });

            // Cycle 3: AND-stage settle (y1 FF captures).
            cycles.push(CycleRecord {
                comb_toggles: traces_product_hw(&traces, 0..10),
                ..Default::default()
            });

            // Cycle 4: XOR stage (mini S-box outputs).
            let mini_hw: u32 =
                traces.iter().map(|t| t.mini_out.iter().map(|row| bit_hw(row)).sum::<u32>()).sum();
            cycles.push(CycleRecord { comb_toggles: mini_hw, ..Default::default() });

            // Cycle 5: MUX stages 2/3 + S-box output register. The FF
            // gadget enforces the safe order and keeps wires short, so no
            // glitch or coupling exposure is ever realised.
            cycles.push(CycleRecord {
                reg_toggles: share_hd(sbox_out_reg, sout_raw),
                comb_toggles: share_hw(sout_raw),
                ..Default::default()
            });
            sbox_out_reg = sout_raw;

            // Cycle 6: Feistel combine + state registers.
            let fr = permute_p(sbox_out_reg);
            let new_r = l.xor(fr);
            let state_hd = share_hd(l, r) + share_hd(r, new_r);
            l = r;
            r = new_r;
            cycles.push(CycleRecord {
                reg_toggles: state_hd,
                comb_toggles: share_hw(fr),
                ..Default::default()
            });
        }

        debug_assert_eq!(cycles.len(), Self::TOTAL_CYCLES);
        final_permutation(l, r).unmask()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::Des;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn cycle_count_matches_paper() {
        assert_eq!(MaskedDesFf::CYCLES_PER_ROUND, 7);
        assert_eq!(MaskedDesFf::TOTAL_CYCLES, 115);
    }

    #[test]
    fn functional_equivalence_with_reference() {
        let mut seeds = SmallRng::seed_from_u64(7);
        let mut rng = MaskRng::new(131);
        for _ in 0..12 {
            let key: u64 = seeds.random();
            let pt: u64 = seeds.random();
            let core = MaskedDesFf::new(key);
            let (ct, cycles) = core.encrypt_with_cycles(pt, &mut rng);
            assert_eq!(ct, Des::new(key).encrypt_block(pt));
            assert_eq!(cycles.len(), 115);
        }
    }

    #[test]
    fn ff_core_never_carries_glitch_exposure_as_power() {
        let mut rng = MaskRng::new(132);
        let core = MaskedDesFf::new(0x133457799BBCDFF1);
        let (_, cycles) = core.encrypt_with_cycles(0x0123456789ABCDEF, &mut rng);
        // Exposure units recorded only where the PD model would use them;
        // for the FF core the AND-stage cycles carry none.
        let and_stage_glitches: u32 =
            cycles.iter().skip(3).step_by(7).map(|c| c.glitch_units).sum();
        assert_eq!(and_stage_glitches, 0);
    }

    #[test]
    fn cycles_have_activity() {
        let mut rng = MaskRng::new(133);
        let core = MaskedDesFf::new(0x0123456789ABCDEF);
        let (_, cycles) = core.encrypt_with_cycles(0x5555AAAA5555AAAA, &mut rng);
        let total: u32 = cycles.iter().map(|c| c.reg_toggles + c.comb_toggles).sum();
        assert!(total > 1_000, "a full DES must toggle a lot: {total}");
        // Every round's state-update cycle moves registers.
        for round in 0..16 {
            let c = cycles[3 + round * 7 + 6];
            assert!(c.reg_toggles > 0, "round {round} state update");
        }
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let core = MaskedDesFf::new(0xDEADBEEFCAFEBABE);
        let mut a = MaskRng::new(9);
        let mut b = MaskRng::new(9);
        let (ca, ta) = core.encrypt_with_cycles(1, &mut a);
        let (cb, tb) = core.encrypt_with_cycles(1, &mut b);
        assert_eq!(ca, cb);
        assert_eq!(ta, tb);
    }
}
