//! The shared value-level masked DES round function and a full masked
//! encryption model.
//!
//! [`MaskedDes`] is the *functional* core both cycle-accurate engines
//! wrap: IP per share, sixteen Feistel rounds whose S-box layer runs
//! through [`crate::sbox::masked_sbox`] with 14 fresh bits per round
//! (recycled across the eight S-boxes), swap, FP per share.

use crate::sbox::masked::{masked_sbox_trace, SboxTrace};
use crate::sbox::SboxRandomness;
use crate::tables::{permute, E, FP, IP, P};
use gm_core::{MaskRng, MaskedBit, MaskedWord};

/// Value-level masked DES engine.
#[derive(Debug, Clone)]
pub struct MaskedDes {
    key: u64,
    /// When false, the paper's "no randomness recycling" alternative is
    /// modelled: 112 fresh bits per round (8 × 14) instead of 14.
    pub recycle_randomness: bool,
}

/// Masked expansion and key mix: `E(R) ⊕ K` — the value the FF core's
/// S-box input register captures.
pub fn expand_and_mix(r: MaskedWord, round_key: MaskedWord) -> MaskedWord {
    assert_eq!(r.width, 32);
    assert_eq!(round_key.width, 48);
    let expanded = MaskedWord { s0: permute(r.s0, 32, &E), s1: permute(r.s1, 32, &E), width: 48 };
    expanded.xor(round_key)
}

/// The masked S-box layer on a mixed 48-bit word, returning all eight
/// [`SboxTrace`]s and the assembled 32-bit output (before P).
pub fn sbox_layer_traced(
    mixed: MaskedWord,
    rnd: &[SboxRandomness],
) -> (Vec<SboxTrace>, MaskedWord) {
    let mut traces = [SboxTrace::default(); 8];
    let out = sbox_layer_into(mixed, rnd, &mut traces);
    (traces.to_vec(), out)
}

/// As [`sbox_layer_traced`], writing the eight traces into a
/// caller-provided buffer — the allocation-free path the cycle-accurate
/// cores run per round.
pub fn sbox_layer_into(
    mixed: MaskedWord,
    rnd: &[SboxRandomness],
    traces: &mut [SboxTrace; 8],
) -> MaskedWord {
    assert_eq!(mixed.width, 48);
    assert!(rnd.len() == 1 || rnd.len() == 8, "one shared pool or one per S-box");
    let mut out = MaskedWord::constant(0, 32);
    for s in 0..8 {
        // Six input bits of S-box s, MSB-first.
        let bits: [MaskedBit; 6] = std::array::from_fn(|i| mixed.bit(47 - (6 * s + i) as u32));
        let pool = if rnd.len() == 1 { &rnd[0] } else { &rnd[s] };
        let t = masked_sbox_trace(s, &bits, pool);
        for (j, b) in t.out.iter().enumerate() {
            let pos = 31 - (4 * s + j) as u32;
            out.s0 |= (b.s0 as u64) << pos;
            out.s1 |= (b.s1 as u64) << pos;
        }
        traces[s] = t;
    }
    out
}

/// The round permutation P applied per share.
pub fn permute_p(w: MaskedWord) -> MaskedWord {
    assert_eq!(w.width, 32);
    MaskedWord { s0: permute(w.s0, 32, &P), s1: permute(w.s1, 32, &P), width: 32 }
}

/// The masked f-function: expansion, key mix, S-boxes, P.
///
/// All eight S-boxes consume the same `rnd` pool when recycling (the
/// paper's default); otherwise the caller provides eight pools.
pub fn masked_f(r: MaskedWord, round_key: MaskedWord, rnd: &[SboxRandomness]) -> MaskedWord {
    let mixed = expand_and_mix(r, round_key);
    let (_, out) = sbox_layer_traced(mixed, rnd);
    permute_p(out)
}

/// Masked IP: split a freshly-shared plaintext into the (L, R) halves.
pub fn initial_permutation(pt: MaskedWord) -> (MaskedWord, MaskedWord) {
    assert_eq!(pt.width, 64);
    let ip0 = permute(pt.s0, 64, &IP);
    let ip1 = permute(pt.s1, 64, &IP);
    (
        MaskedWord { s0: ip0 >> 32, s1: ip1 >> 32, width: 32 },
        MaskedWord { s0: ip0 & 0xFFFF_FFFF, s1: ip1 & 0xFFFF_FFFF, width: 32 },
    )
}

/// Masked FP on the pre-output `(L16, R16)` and recombination.
pub fn final_permutation(l: MaskedWord, r: MaskedWord) -> MaskedWord {
    let pre0 = (r.s0 << 32) | l.s0;
    let pre1 = (r.s1 << 32) | l.s1;
    MaskedWord { s0: permute(pre0, 64, &FP), s1: permute(pre1, 64, &FP), width: 64 }
}

impl MaskedDes {
    /// A masked DES engine for a fixed key. The key is re-masked with
    /// fresh randomness at the start of every encryption, as in the
    /// paper's evaluation setup.
    pub fn new(key: u64) -> Self {
        MaskedDes { key, recycle_randomness: true }
    }

    /// Fresh random bits consumed per round by this configuration.
    pub fn fresh_bits_per_round(&self) -> usize {
        if self.recycle_randomness {
            SboxRandomness::BITS
        } else {
            8 * SboxRandomness::BITS
        }
    }

    /// Encrypt one block in the masked domain; `rng` supplies the initial
    /// masks and the per-round refresh bits.
    pub fn encrypt_block(&self, plaintext: u64, rng: &mut MaskRng) -> u64 {
        self.encrypt_traced(plaintext, rng, |_, _, _| {})
    }

    /// Encrypt while observing each round: the callback receives
    /// `(round, L, R)` *after* the round's Feistel update — the hook the
    /// cycle-accurate engines and power models build on.
    pub fn encrypt_traced(
        &self,
        plaintext: u64,
        rng: &mut MaskRng,
        mut observe: impl FnMut(usize, MaskedWord, MaskedWord),
    ) -> u64 {
        let pt = MaskedWord::mask(plaintext, 64, rng);
        let mut ks = super::key_schedule::MaskedKeySchedule::new(self.key, rng);
        let (mut l, mut r) = initial_permutation(pt);

        for round in 0..16 {
            let rk = ks.next_round_key();
            let pools = self.draw_pools(rng);
            let fr = masked_f(r, rk, &pools);
            let new_r = l.xor(fr);
            l = r;
            r = new_r;
            observe(round, l, r);
        }

        final_permutation(l, r).unmask()
    }

    /// Draw the round's fresh-randomness pools (1 when recycling, 8
    /// otherwise).
    pub fn draw_round_pools(&self, rng: &mut MaskRng) -> Vec<SboxRandomness> {
        self.draw_pools(rng)
    }

    fn draw_pools(&self, rng: &mut MaskRng) -> Vec<SboxRandomness> {
        if self.recycle_randomness {
            vec![SboxRandomness::draw(rng)]
        } else {
            (0..8).map(|_| SboxRandomness::draw(rng)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::Des;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn matches_reference_des() {
        let mut seed_rng = SmallRng::seed_from_u64(5);
        let mut rng = MaskRng::new(121);
        for _ in 0..24 {
            let key: u64 = seed_rng.random();
            let pt: u64 = seed_rng.random();
            let masked = MaskedDes::new(key);
            assert_eq!(
                masked.encrypt_block(pt, &mut rng),
                Des::new(key).encrypt_block(pt),
                "key {key:016x} pt {pt:016x}"
            );
        }
    }

    #[test]
    fn textbook_vector_masked() {
        let mut rng = MaskRng::new(122);
        let masked = MaskedDes::new(0x133457799BBCDFF1);
        assert_eq!(masked.encrypt_block(0x0123456789ABCDEF, &mut rng), 0x85E813540F0AB405);
    }

    #[test]
    fn prng_off_still_functional() {
        let mut rng = MaskRng::disabled();
        let masked = MaskedDes::new(0x133457799BBCDFF1);
        assert_eq!(masked.encrypt_block(0x0123456789ABCDEF, &mut rng), 0x85E813540F0AB405);
    }

    #[test]
    fn no_recycling_matches_too() {
        let mut rng = MaskRng::new(123);
        let mut masked = MaskedDes::new(0x0E329232EA6D0D73);
        masked.recycle_randomness = false;
        assert_eq!(masked.fresh_bits_per_round(), 112);
        assert_eq!(masked.encrypt_block(0x8787878787878787, &mut rng), 0);
    }

    /// The masked f-function equals the reference f on random inputs.
    #[test]
    fn masked_f_matches_reference_f() {
        use crate::reference::f;
        let mut seeds = SmallRng::seed_from_u64(77);
        let mut rng = MaskRng::new(177);
        for _ in 0..64 {
            let r: u32 = seeds.random();
            let k: u64 = seeds.random::<u64>() & ((1 << 48) - 1);
            let mr = MaskedWord::mask(u64::from(r), 32, &mut rng);
            let mk = MaskedWord::mask(k, 48, &mut rng);
            let pool = vec![crate::sbox::SboxRandomness::draw(&mut rng)];
            assert_eq!(masked_f(mr, mk, &pool).unmask() as u32, f(r, k));
        }
    }

    /// Per-S-box pools (no recycling) compute the same values.
    #[test]
    fn eight_pools_equal_one_pool_in_value() {
        use crate::reference::f;
        let mut rng = MaskRng::new(178);
        let r: u32 = 0xCAFE_BABE;
        let k: u64 = 0x0123_4567_89AB & ((1 << 48) - 1);
        let mr = MaskedWord::mask(u64::from(r), 32, &mut rng);
        let mk = MaskedWord::mask(k, 48, &mut rng);
        let pools: Vec<_> = (0..8).map(|_| crate::sbox::SboxRandomness::draw(&mut rng)).collect();
        assert_eq!(masked_f(mr, mk, &pools).unmask() as u32, f(r, k));
    }

    #[test]
    fn observe_sees_sixteen_rounds_masked() {
        let mut rng = MaskRng::new(124);
        let masked = MaskedDes::new(0x133457799BBCDFF1);
        let mut rounds = Vec::new();
        let _ = masked.encrypt_traced(0x0123456789ABCDEF, &mut rng, |r, l, _| {
            rounds.push(r);
            // Shares must be non-degenerate with PRNG on.
            assert_ne!(l.s0, l.unmask());
        });
        assert_eq!(rounds, (0..16).collect::<Vec<_>>());
    }
}
