//! Masked Triple-DES (EDE).
//!
//! The paper motivates DES through TDES ("the main building block of
//! Triple-DES, which is still widely used today") and compares against a
//! DOM-protected TDES; this module closes the loop: three masked DES
//! passes — encrypt, decrypt, encrypt — each with its own freshly-masked
//! key and its own per-round randomness, concatenating the cycle records
//! so the whole operation can feed the leakage pipeline.

use super::core_ff::{CycleRecord, MaskedDesFf};
use super::core_pd::MaskedDesPd;
use gm_core::MaskRng;

/// Masked 3-key EDE Triple-DES over the secAND2-FF cores.
#[derive(Debug, Clone)]
pub struct MaskedTdesFf {
    e1: MaskedDesFf,
    d2: MaskedDesFf,
    e3: MaskedDesFf,
}

impl MaskedTdesFf {
    /// Cycles per block: three chained masked DES operations.
    pub const TOTAL_CYCLES: usize = 3 * MaskedDesFf::TOTAL_CYCLES;

    /// Three-key EDE.
    pub fn new(k1: u64, k2: u64, k3: u64) -> Self {
        MaskedTdesFf {
            e1: MaskedDesFf::new(k1),
            d2: MaskedDesFf::new(k2),
            e3: MaskedDesFf::new(k3),
        }
    }

    /// Two-key variant (`k3 = k1`), the common TDES deployment.
    pub fn new_2key(k1: u64, k2: u64) -> Self {
        Self::new(k1, k2, k1)
    }

    /// Encrypt one block: `E_{k3}(D_{k2}(E_{k1}(p)))`, returning the
    /// concatenated per-cycle records of all three passes.
    pub fn encrypt_with_cycles(&self, pt: u64, rng: &mut MaskRng) -> (u64, Vec<CycleRecord>) {
        let (a, mut cycles) = self.e1.encrypt_with_cycles(pt, rng);
        let (b, c2) = self.d2.decrypt_with_cycles(a, rng);
        let (ct, c3) = self.e3.encrypt_with_cycles(b, rng);
        cycles.extend(c2);
        cycles.extend(c3);
        (ct, cycles)
    }

    /// Decrypt one block.
    pub fn decrypt_with_cycles(&self, ct: u64, rng: &mut MaskRng) -> (u64, Vec<CycleRecord>) {
        let (a, mut cycles) = self.e3.decrypt_with_cycles(ct, rng);
        let (b, c2) = self.d2.encrypt_with_cycles(a, rng);
        let (pt, c3) = self.e1.decrypt_with_cycles(b, rng);
        cycles.extend(c2);
        cycles.extend(c3);
        (pt, cycles)
    }
}

/// Masked 3-key EDE Triple-DES over the secAND2-PD cores.
#[derive(Debug, Clone)]
pub struct MaskedTdesPd {
    e1: MaskedDesPd,
    d2: MaskedDesPd,
    e3: MaskedDesPd,
}

impl MaskedTdesPd {
    /// Cycles per block.
    pub const TOTAL_CYCLES: usize = 3 * MaskedDesPd::TOTAL_CYCLES;

    /// Three-key EDE with the paper's optimal DelayUnit size.
    pub fn new(k1: u64, k2: u64, k3: u64) -> Self {
        MaskedTdesPd {
            e1: MaskedDesPd::new(k1),
            d2: MaskedDesPd::new(k2),
            e3: MaskedDesPd::new(k3),
        }
    }

    /// Encrypt one block with concatenated cycle records.
    pub fn encrypt_with_cycles(&self, pt: u64, rng: &mut MaskRng) -> (u64, Vec<CycleRecord>) {
        let (a, mut cycles) = self.e1.encrypt_with_cycles(pt, rng);
        let (b, c2) = self.d2.decrypt_with_cycles(a, rng);
        let (ct, c3) = self.e3.encrypt_with_cycles(b, rng);
        cycles.extend(c2);
        cycles.extend(c3);
        (ct, cycles)
    }

    /// Decrypt one block.
    pub fn decrypt_with_cycles(&self, ct: u64, rng: &mut MaskRng) -> (u64, Vec<CycleRecord>) {
        let (a, mut cycles) = self.e3.decrypt_with_cycles(ct, rng);
        let (b, c2) = self.d2.encrypt_with_cycles(a, rng);
        let (pt, c3) = self.e1.decrypt_with_cycles(b, rng);
        cycles.extend(c2);
        cycles.extend(c3);
        (pt, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::Tdes;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn masked_tdes_matches_reference() {
        let mut seeds = SmallRng::seed_from_u64(0x7de5);
        let mut rng = MaskRng::new(201);
        for _ in 0..6 {
            let (k1, k2, k3): (u64, u64, u64) = (seeds.random(), seeds.random(), seeds.random());
            let pt: u64 = seeds.random();
            let want = Tdes::new(k1, k2, k3).encrypt_block(pt);
            let ff = MaskedTdesFf::new(k1, k2, k3);
            let (ct, cycles) = ff.encrypt_with_cycles(pt, &mut rng);
            assert_eq!(ct, want);
            assert_eq!(cycles.len(), MaskedTdesFf::TOTAL_CYCLES);
            let pd = MaskedTdesPd::new(k1, k2, k3);
            assert_eq!(pd.encrypt_with_cycles(pt, &mut rng).0, want);
        }
    }

    #[test]
    fn masked_decrypt_inverts() {
        let mut rng = MaskRng::new(202);
        let t = MaskedTdesFf::new_2key(0x133457799BBCDFF1, 0x0E329232EA6D0D73);
        let (ct, _) = t.encrypt_with_cycles(0xDEADBEEF, &mut rng);
        let (pt, cycles) = t.decrypt_with_cycles(ct, &mut rng);
        assert_eq!(pt, 0xDEADBEEF);
        assert_eq!(cycles.len(), 3 * 115);
    }

    #[test]
    fn single_des_decrypt_inverts_encrypt() {
        let mut rng = MaskRng::new(203);
        let core = MaskedDesFf::new(0x133457799BBCDFF1);
        let (ct, _) = core.encrypt_with_cycles(0x0123456789ABCDEF, &mut rng);
        let (pt, _) = core.decrypt_with_cycles(ct, &mut rng);
        assert_eq!(pt, 0x0123456789ABCDEF);

        let pd = MaskedDesPd::new(0x133457799BBCDFF1);
        let (ct2, _) = pd.encrypt_with_cycles(0x0123456789ABCDEF, &mut rng);
        let (pt2, _) = pd.decrypt_with_cycles(ct2, &mut rng);
        assert_eq!(pt2, 0x0123456789ABCDEF);
    }

    #[test]
    fn cycle_budget_vs_dom_tdes() {
        // Sasdrich & Hutter's DOM TDES: 5·48 + 4 = 244 cycles. Ours pays
        // three full masked key schedules: 345 (FF) / 102 (PD).
        assert_eq!(MaskedTdesFf::TOTAL_CYCLES, 345);
        assert_eq!(MaskedTdesPd::TOTAL_CYCLES, 102);
    }
}
