//! The two first-order masked DES cores.
//!
//! * [`key_schedule`] — the masked key schedule (all linear: PC1,
//!   rotations, PC2 applied per share), running alongside the datapath.
//! * [`datapath`] — the shared value-level round function: expansion,
//!   key mix, eight masked S-boxes fed by the same 14 fresh bits,
//!   P-permutation, Feistel combine.
//! * [`core_ff`] — the secAND2-FF core: 7 cycles per round
//!   (115 cycles per block), input/output S-box registers, FSM-controlled
//!   enables (Fig. 8).
//! * [`core_pd`] — the secAND2-PD core: 2 cycles per round, the S-box
//!   output wired straight into the input register (Fig. 9).
//!
//! The cycle-accurate cores also expose per-cycle register snapshots so
//! the fast power model in [`crate::power`] can derive Hamming-distance
//! traces without gate-level simulation; the gate-level path lives in
//! [`crate::netlist_gen`].

pub mod bitslice;
pub mod core_ff;
pub mod core_pd;
pub mod datapath;
pub mod key_schedule;
pub mod tdes;

pub use bitslice::BitslicedDes;
pub use core_ff::MaskedDesFf;
pub use core_pd::MaskedDesPd;
pub use datapath::MaskedDes;
pub use key_schedule::MaskedKeySchedule;
pub use tdes::{MaskedTdesFf, MaskedTdesPd};
