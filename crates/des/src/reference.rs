//! Reference (unprotected) DES and Triple-DES.
//!
//! The classical round-based architecture the paper starts from (§IV-A):
//! IP, sixteen Feistel rounds with the key schedule running alongside,
//! swap, FP. Byte-exact against the FIPS 46-3 test vectors.

use crate::tables::{permute, rotl, E, FP, IP, P, PC1, PC2, SBOXES, SHIFTS};

/// A DES instance with a precomputed key schedule.
///
/// # Examples
///
/// ```
/// use gm_des::Des;
///
/// let des = Des::new(0x133457799BBCDFF1);
/// let ct = des.encrypt_block(0x0123456789ABCDEF);
/// assert_eq!(ct, 0x85E813540F0AB405);
/// assert_eq!(des.decrypt_block(ct), 0x0123456789ABCDEF);
/// ```
#[derive(Debug, Clone)]
pub struct Des {
    round_keys: [u64; 16],
}

impl Des {
    /// Expand a 64-bit key (parity bits ignored) into the 16 round keys.
    pub fn new(key: u64) -> Self {
        Des { round_keys: round_keys(key) }
    }

    /// The 48-bit round keys.
    pub fn round_keys(&self) -> &[u64; 16] {
        &self.round_keys
    }

    /// Encrypt one 64-bit block.
    pub fn encrypt_block(&self, plaintext: u64) -> u64 {
        self.crypt(plaintext, false)
    }

    /// Decrypt one 64-bit block.
    pub fn decrypt_block(&self, ciphertext: u64) -> u64 {
        self.crypt(ciphertext, true)
    }

    fn crypt(&self, block: u64, decrypt: bool) -> u64 {
        let ip = permute(block, 64, &IP);
        let mut l = (ip >> 32) as u32;
        let mut r = (ip & 0xFFFF_FFFF) as u32;
        for round in 0..16 {
            let k = if decrypt { self.round_keys[15 - round] } else { self.round_keys[round] };
            let new_r = l ^ f(r, k);
            l = r;
            r = new_r;
        }
        // Final swap: R16 on the left.
        let preoutput = ((r as u64) << 32) | l as u64;
        permute(preoutput, 64, &FP)
    }
}

/// The Feistel function `f(R, K)`: expand, key-mix, S-boxes, permute.
pub fn f(r: u32, round_key: u64) -> u32 {
    let x = permute(u64::from(r), 32, &E) ^ round_key;
    let mut out = 0u32;
    for (i, sbox) in SBOXES.iter().enumerate() {
        let six = ((x >> (42 - 6 * i)) & 0x3F) as u8;
        out = (out << 4) | u32::from(sbox_lookup(sbox, six));
    }
    permute(u64::from(out), 32, &P) as u32
}

/// One S-box lookup on a 6-bit input: row = outer bits, column = inner.
pub fn sbox_lookup(sbox: &[[u8; 16]; 4], six: u8) -> u8 {
    let row = ((six >> 4) & 0b10) | (six & 1);
    let col = (six >> 1) & 0xF;
    sbox[row as usize][col as usize]
}

/// Compute the 16 round keys of `key`.
pub fn round_keys(key: u64) -> [u64; 16] {
    let pc1 = permute(key, 64, &PC1);
    let mut c = (pc1 >> 28) & 0x0FFF_FFFF;
    let mut d = pc1 & 0x0FFF_FFFF;
    let mut keys = [0u64; 16];
    for (round, k) in keys.iter_mut().enumerate() {
        let s = u32::from(SHIFTS[round]);
        c = rotl(c, 28, s);
        d = rotl(d, 28, s);
        *k = permute((c << 28) | d, 56, &PC2);
    }
    keys
}

/// Triple-DES (EDE, three independent keys).
#[derive(Debug, Clone)]
pub struct Tdes {
    k1: Des,
    k2: Des,
    k3: Des,
}

impl Tdes {
    /// Three-key EDE Triple-DES.
    pub fn new(k1: u64, k2: u64, k3: u64) -> Self {
        Tdes { k1: Des::new(k1), k2: Des::new(k2), k3: Des::new(k3) }
    }

    /// Two-key variant (`k3 = k1`), the common TDES deployment the paper
    /// references as "still widely used today".
    pub fn new_2key(k1: u64, k2: u64) -> Self {
        Self::new(k1, k2, k1)
    }

    /// Encrypt one block: `E_{k3}(D_{k2}(E_{k1}(p)))`.
    pub fn encrypt_block(&self, plaintext: u64) -> u64 {
        self.k3.encrypt_block(self.k2.decrypt_block(self.k1.encrypt_block(plaintext)))
    }

    /// Decrypt one block.
    pub fn decrypt_block(&self, ciphertext: u64) -> u64 {
        self.k1.decrypt_block(self.k2.encrypt_block(self.k3.decrypt_block(ciphertext)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    /// The classic worked example (used in countless DES walk-throughs).
    #[test]
    fn textbook_vector() {
        let des = Des::new(0x133457799BBCDFF1);
        assert_eq!(des.encrypt_block(0x0123456789ABCDEF), 0x85E813540F0AB405);
    }

    /// Another widely-published pair.
    #[test]
    fn second_vector() {
        let des = Des::new(0x0E329232EA6D0D73);
        assert_eq!(des.encrypt_block(0x8787878787878787), 0x0000000000000000);
        assert_eq!(des.decrypt_block(0), 0x8787878787878787);
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            let key: u64 = rng.random();
            let pt: u64 = rng.random();
            let des = Des::new(key);
            assert_eq!(des.decrypt_block(des.encrypt_block(pt)), pt);
        }
    }

    #[test]
    fn avalanche() {
        let des = Des::new(0x133457799BBCDFF1);
        let c1 = des.encrypt_block(0x0123456789ABCDEF);
        let c2 = des.encrypt_block(0x0123456789ABCDEE);
        let flipped = (c1 ^ c2).count_ones();
        assert!((20..=44).contains(&flipped), "avalanche too weak: {flipped}");
    }

    #[test]
    fn round_key_structure() {
        let keys = round_keys(0x133457799BBCDFF1);
        // First round key of the textbook example.
        assert_eq!(keys[0], 0b000110_110000_001011_101111_111111_000111_000001_110010);
        // All keys fit in 48 bits and differ.
        assert!(keys.iter().all(|k| *k < (1 << 48)));
        let distinct: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(distinct.len(), 16);
    }

    #[test]
    fn tdes_single_key_equals_des() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..16 {
            let key: u64 = rng.random();
            let pt: u64 = rng.random();
            let tdes = Tdes::new(key, key, key);
            assert_eq!(tdes.encrypt_block(pt), Des::new(key).encrypt_block(pt));
        }
    }

    #[test]
    fn tdes_roundtrip_and_2key() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (k1, k2): (u64, u64) = (rng.random(), rng.random());
        let t3 = Tdes::new(k1, k2, k1);
        let t2 = Tdes::new_2key(k1, k2);
        for _ in 0..16 {
            let pt: u64 = rng.random();
            assert_eq!(t3.encrypt_block(pt), t2.encrypt_block(pt));
            assert_eq!(t2.decrypt_block(t2.encrypt_block(pt)), pt);
        }
    }

    #[test]
    fn complementation_property() {
        // DES's famous property: E_{!k}(!p) = !E_k(p).
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..8 {
            let key: u64 = rng.random();
            let pt: u64 = rng.random();
            let a = Des::new(key).encrypt_block(pt);
            let b = Des::new(!key).encrypt_block(!pt);
            assert_eq!(b, !a);
        }
    }
}
