//! The paper's S-box decomposition (§IV-A): each DES S-box as four 4-bit
//! *mini S-boxes* (its rows) selected by a masked 4:1 MUX, with the mini
//! S-boxes expressed in Algebraic Normal Form so the AND stage reduces to
//! the ten possible product terms of the four middle input bits.

pub mod anf;
pub mod masked;
pub mod mini;

pub use anf::Anf4;
pub use masked::{masked_sbox, SboxRandomness};
pub use mini::{mini_sbox_anfs, mini_truth_tables, MiniSboxAnf};
