//! The masked DES S-box (value-level model of Fig. 8a / Fig. 9a).
//!
//! Pipeline:
//!
//! 1. **AND stage** — the ten shared products of the four middle bits,
//!    computed with `secAND2` compositions (no fresh randomness);
//! 2. **refresh** — each product re-masked with one of 10 fresh bits
//!    (§IV-A: the AND outputs are not independent of the inputs);
//! 3. **XOR stage** — the four mini S-box outputs assembled per ANF;
//! 4. **MUX stage 1** — the four select products of `b₀`, `b₅`,
//!    refreshed with 4 more fresh bits (the paper's cost-saving move of
//!    refreshing right after stage 1);
//! 5. **MUX stage 2 + 3** — select-AND and final XOR.
//!
//! Total fresh randomness: **14 bits**, shared by all eight S-boxes of a
//! round (the paper's recycling choice).

use super::mini::{mini_sbox_anfs, MiniSboxAnf, TEN_PRODUCTS};
use gm_core::gadgets::sec_and2;
use gm_core::{MaskRng, MaskedBit};
use std::sync::OnceLock;

/// The 14 fresh mask bits consumed by one S-box evaluation (and, in the
/// paper's design, recycled by all eight parallel S-boxes of the round).
#[derive(Debug, Clone, Copy, Default)]
pub struct SboxRandomness {
    /// Masks for the ten AND-stage products.
    pub product_masks: [bool; 10],
    /// Masks for the four MUX stage-1 select products.
    pub mux_masks: [bool; 4],
}

impl SboxRandomness {
    /// Draw 14 fresh bits (all zero when the PRNG is disabled).
    pub fn draw(rng: &mut MaskRng) -> Self {
        let mut s = SboxRandomness::default();
        for m in &mut s.product_masks {
            *m = rng.bit();
        }
        for m in &mut s.mux_masks {
            *m = rng.bit();
        }
        s
    }

    /// Number of fresh bits per draw — Table III's "Rand" column.
    pub const BITS: usize = 14;
}

fn anfs() -> &'static Vec<[MiniSboxAnf; 4]> {
    static CACHE: OnceLock<Vec<[MiniSboxAnf; 4]>> = OnceLock::new();
    CACHE.get_or_init(mini_sbox_anfs)
}

/// Precompiled XOR-stage recipe for one mini S-box output bit: the ANF
/// collapsed to a constant, a mask over the four linear variables, and a
/// mask over the ten shared products. Evaluating through this instead of
/// re-walking the ANF keeps the hot path allocation-free (the ANF walk
/// builds a `Vec` per monomial query, which dominated campaign cost).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct XorPlan {
    /// ANF constant term.
    pub(crate) constant: bool,
    /// Bit `k` set ⇔ variable `v_k` appears linearly.
    pub(crate) lin: u8,
    /// Bit `i` set ⇔ product `TEN_PRODUCTS[i]` appears.
    pub(crate) prods: u16,
}

/// `xor_plans()[sbox][row][output bit]`.
pub(crate) fn xor_plans() -> &'static [[[XorPlan; 4]; 4]; 8] {
    static CACHE: OnceLock<[[[XorPlan; 4]; 4]; 8]> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut plans = [[[XorPlan::default(); 4]; 4]; 8];
        for (s, rows) in anfs().iter().enumerate() {
            for (r, anf) in rows.iter().enumerate() {
                for (j, out_anf) in anf.outputs.iter().enumerate() {
                    let mut plan = XorPlan { constant: out_anf.constant(), ..XorPlan::default() };
                    for m in out_anf.monomials_of_degree(1) {
                        plan.lin |= m;
                    }
                    for d in 2..=3u32 {
                        for m in out_anf.monomials_of_degree(d) {
                            let idx = TEN_PRODUCTS
                                .iter()
                                .position(|&t| t == m)
                                .expect("all monomials covered by the ten products");
                            plan.prods |= 1 << idx;
                        }
                    }
                    plans[s][r][j] = plan;
                }
            }
        }
        plans
    })
}

/// All intermediate masked values of one S-box evaluation — the
/// cycle-accurate cores and the fast power model consume these.
#[derive(Debug, Clone, Copy)]
pub struct SboxTrace {
    /// The ten AND-stage products, already refreshed.
    pub products: [MaskedBit; 10],
    /// MUX stage-1 select products, already refreshed.
    pub sel: [MaskedBit; 4],
    /// Mini S-box outputs, `mini_out[row][bit]`.
    pub mini_out: [[MaskedBit; 4]; 4],
    /// Final S-box output bits, MSB-first.
    pub out: [MaskedBit; 4],
    /// Σ over every `secAND2` evaluation of the unshared value of its
    /// *y* operand: the quantity a glitch exposes when the safe arrival
    /// order is violated (§II-B). Basis of the Fig. 15 leak model.
    pub glitch_y_units: u32,
    /// Σ over every `secAND2` evaluation of the unshared value of its
    /// *x* operand: the quantity crosstalk between the adjacent
    /// equally-delayed x₀/x₁ lines exposes (§VII-C). Basis of the
    /// Fig. 17 coupling model.
    pub coupling_x_units: u32,
}

impl Default for SboxTrace {
    fn default() -> Self {
        let z = MaskedBit::constant(false);
        SboxTrace {
            products: [z; 10],
            sel: [z; 4],
            mini_out: [[z; 4]; 4],
            out: [z; 4],
            glitch_y_units: 0,
            coupling_x_units: 0,
        }
    }
}

/// Evaluate DES S-box `sbox` (0-based) on six masked input bits
/// (`bits[0]` = MSB) with the given fresh randomness. Returns the four
/// masked output bits, MSB-first.
pub fn masked_sbox(sbox: usize, bits: &[MaskedBit; 6], rnd: &SboxRandomness) -> [MaskedBit; 4] {
    masked_sbox_trace(sbox, bits, rnd).out
}

/// As [`masked_sbox`], exposing all intermediates (see [`SboxTrace`]).
pub fn masked_sbox_trace(sbox: usize, bits: &[MaskedBit; 6], rnd: &SboxRandomness) -> SboxTrace {
    // ANF variables over the column index: v_k = bit k (little-endian),
    // so v0 = b4, v1 = b3, v2 = b2, v3 = b1.
    let v = [bits[4], bits[3], bits[2], bits[1]];
    let mut glitch_y_units = 0u32;
    let mut coupling_x_units = 0u32;
    let mut count_gadget = |x: MaskedBit, y: MaskedBit| {
        glitch_y_units += u32::from(y.unmask());
        coupling_x_units += u32::from(x.unmask());
    };

    // AND stage: the ten products, then per-product refresh.
    let mut products = [MaskedBit::constant(false); 10];
    for (i, &mask) in TEN_PRODUCTS.iter().enumerate() {
        let mut acc: Option<MaskedBit> = None;
        for (k, &var) in v.iter().enumerate() {
            if mask & (1 << k) != 0 {
                acc = Some(match acc {
                    None => var,
                    Some(a) => {
                        count_gadget(a, var);
                        sec_and2(a, var)
                    }
                });
            }
        }
        let p = acc.expect("every product has at least two variables");
        products[i] = p.refresh_with(rnd.product_masks[i]);
    }

    // XOR stage: the four mini S-box outputs per row, via the precompiled
    // per-output recipes (constant ⊕ linear vars ⊕ shared products).
    let rows = &xor_plans()[sbox];
    let mut mini_out = [[MaskedBit::constant(false); 4]; 4];
    for (r, plans) in rows.iter().enumerate() {
        for (j, plan) in plans.iter().enumerate() {
            let mut acc = MaskedBit::constant(plan.constant);
            for (k, &var) in v.iter().enumerate() {
                if plan.lin & (1 << k) != 0 {
                    acc = acc.xor(var);
                }
            }
            for (idx, &p) in products.iter().enumerate() {
                if plan.prods & (1 << idx) != 0 {
                    acc = acc.xor(p);
                }
            }
            mini_out[r][j] = acc;
        }
    }

    // MUX stage 1: select products of (b0, b5), refreshed.
    let mut sel = [MaskedBit::constant(false); 4];
    for (r, s) in sel.iter_mut().enumerate() {
        let hi = if r & 0b10 != 0 { bits[0] } else { bits[0].not() };
        let lo = if r & 0b01 != 0 { bits[5] } else { bits[5].not() };
        count_gadget(hi, lo);
        *s = sec_and2(hi, lo).refresh_with(rnd.mux_masks[r]);
    }

    // MUX stages 2 and 3.
    let mut out = [MaskedBit::constant(false); 4];
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = MaskedBit::constant(false);
        for r in 0..4 {
            count_gadget(sel[r], mini_out[r][j]);
            acc = acc.xor(sec_and2(sel[r], mini_out[r][j]));
        }
        *o = acc;
    }
    SboxTrace { products, sel, mini_out, out, glitch_y_units, coupling_x_units }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sbox_lookup;
    use crate::tables::SBOXES;

    fn run_sbox(sbox: usize, six: u8, rng: &mut MaskRng) -> u8 {
        let bits: [MaskedBit; 6] =
            std::array::from_fn(|i| MaskedBit::mask((six >> (5 - i)) & 1 == 1, rng));
        let rnd = SboxRandomness::draw(rng);
        let out = masked_sbox(sbox, &bits, &rnd);
        out.iter().fold(0u8, |acc, b| (acc << 1) | u8::from(b.unmask()))
    }

    /// Exhaustive functional correctness: all 8 S-boxes × 64 inputs, with
    /// several random sharings each.
    #[allow(clippy::needless_range_loop)]
    #[test]
    fn matches_reference_lookup() {
        let mut rng = MaskRng::new(101);
        for s in 0..8 {
            for six in 0..64u8 {
                for _ in 0..3 {
                    assert_eq!(
                        run_sbox(s, six, &mut rng),
                        sbox_lookup(&SBOXES[s], six),
                        "S{s} input {six:06b}"
                    );
                }
            }
        }
    }

    /// Still correct with the PRNG off (shares degenerate but the value
    /// pipeline must hold) — the paper's sanity-check mode.
    #[allow(clippy::needless_range_loop)]
    #[test]
    fn correct_with_prng_off() {
        let mut rng = MaskRng::disabled();
        for s in 0..8 {
            for six in 0..64u8 {
                assert_eq!(run_sbox(s, six, &mut rng), sbox_lookup(&SBOXES[s], six));
            }
        }
    }

    /// The randomness budget is exactly 14 bits.
    #[test]
    fn randomness_budget() {
        assert_eq!(SboxRandomness::BITS, 14);
        let d = SboxRandomness::default();
        assert_eq!(d.product_masks.len() + d.mux_masks.len(), 14);
    }

    /// With fresh randomness the S-box output shares are uniform, even
    /// for a fixed unshared input (the composition goal of §III-C).
    #[test]
    fn output_shares_uniform() {
        let mut rng = MaskRng::new(103);
        let n = 8_000;
        let mut ones = [0u32; 4];
        for _ in 0..n {
            let bits: [MaskedBit; 6] =
                std::array::from_fn(|i| MaskedBit::mask((0b101010 >> (5 - i)) & 1 == 1, &mut rng));
            let rnd = SboxRandomness::draw(&mut rng);
            let out = masked_sbox(0, &bits, &rnd);
            for (j, o) in out.iter().enumerate() {
                ones[j] += o.s0 as u32;
            }
        }
        for (j, &c) in ones.iter().enumerate() {
            let p = f64::from(c) / f64::from(n);
            assert!((p - 0.5).abs() < 0.03, "output {j} share bias: {p}");
        }
    }
}
