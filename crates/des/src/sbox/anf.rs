//! Algebraic Normal Form of 4-variable Boolean functions.
//!
//! A function is stored as a 16-bit truth table (`tt` bit `i` = value at
//! input `i`, variables little-endian in `i`). Its ANF is another 16-bit
//! vector: bit `m` is the coefficient of the monomial `∏_{k ∈ m} v_k`,
//! obtained by the Möbius transform.

/// A 4-variable Boolean function in ANF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anf4 {
    /// Coefficient bit per monomial mask (bit `m` ⇔ monomial `m` present).
    pub coeffs: u16,
}

impl Anf4 {
    /// Möbius transform of a truth table.
    pub fn from_truth_table(tt: u16) -> Self {
        let mut c = tt;
        // Butterfly over each variable.
        for k in 0..4 {
            let bit = 1u16 << k;
            let mut m = 0u16;
            for i in 0..16u16 {
                if i & bit != 0 {
                    let lower = (c >> (i ^ bit)) & 1;
                    m |= (((c >> i) & 1) ^ lower) << i;
                } else {
                    m |= ((c >> i) & 1) << i;
                }
            }
            c = m;
        }
        Anf4 { coeffs: c }
    }

    /// Evaluate at `x` (variables little-endian).
    pub fn eval(&self, x: u8) -> bool {
        let mut acc = false;
        for m in 0..16u16 {
            if self.coeffs & (1 << m) != 0 && (u16::from(x) & m) == m {
                acc ^= true;
            }
        }
        acc
    }

    /// Back to a truth table (inverse Möbius — the transform is an
    /// involution, but evaluate directly for an independent check).
    pub fn truth_table(&self) -> u16 {
        (0..16u8).fold(0u16, |tt, x| tt | (u16::from(self.eval(x)) << x))
    }

    /// Algebraic degree (0 for the zero function).
    pub fn degree(&self) -> u32 {
        (0..16u16)
            .filter(|m| self.coeffs & (1 << m) != 0)
            .map(|m| m.count_ones())
            .max()
            .unwrap_or(0)
    }

    /// The constant-term coefficient.
    pub fn constant(&self) -> bool {
        self.coeffs & 1 != 0
    }

    /// Monomial masks of exactly `deg` variables present in the ANF.
    pub fn monomials_of_degree(&self, deg: u32) -> Vec<u8> {
        (0..16u16)
            .filter(|m| m.count_ones() == deg && self.coeffs & (1 << m) != 0)
            .map(|m| m as u8)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_and_single_variable() {
        let zero = Anf4::from_truth_table(0);
        assert_eq!(zero.coeffs, 0);
        assert_eq!(zero.degree(), 0);

        let one = Anf4::from_truth_table(0xFFFF);
        assert_eq!(one.coeffs, 1, "constant 1 has only the empty monomial");

        // f = v0: truth table has bit set wherever input bit 0 is set.
        let tt_v0 = (0..16u8).fold(0u16, |tt, x| tt | (u16::from(x & 1) << x));
        let v0 = Anf4::from_truth_table(tt_v0);
        assert_eq!(v0.coeffs, 0b10, "only monomial {{v0}}");
        assert_eq!(v0.degree(), 1);
    }

    #[test]
    fn and_of_all_four() {
        // f = v0v1v2v3: only input 15 maps to 1.
        let anf = Anf4::from_truth_table(1 << 15);
        assert_eq!(anf.coeffs, 1 << 15);
        assert_eq!(anf.degree(), 4);
        assert_eq!(anf.monomials_of_degree(4), vec![15]);
    }

    #[test]
    fn roundtrip_all_functions_sampled() {
        // The transform must invert via evaluation for arbitrary tables.
        for seed in [0x0123u16, 0xBEEF, 0x8001, 0x5A5A, 0xFFFE, 0x7E57] {
            let anf = Anf4::from_truth_table(seed);
            assert_eq!(anf.truth_table(), seed, "tt {seed:04x}");
        }
    }

    #[test]
    fn xor_is_degree_one() {
        // f = v0 ⊕ v1 ⊕ v2 ⊕ v3.
        let tt = (0..16u8).fold(0u16, |tt, x| tt | (((x.count_ones() & 1) as u16) << x));
        let anf = Anf4::from_truth_table(tt);
        assert_eq!(anf.degree(), 1);
        assert_eq!(anf.monomials_of_degree(1).len(), 4);
    }
}
