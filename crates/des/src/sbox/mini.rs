//! Mini S-boxes: the rows of each DES S-box as 4-bit permutations, and
//! their ANF — verifying the structural claims of §IV-A that make the
//! masked S-box cheap:
//!
//! * every output bit has algebraic degree ≤ 3;
//! * across the four output bits of a mini S-box, only the 6 possible
//!   degree-2 and 4 possible degree-3 monomials occur, so **ten** shared
//!   product terms cover the whole AND stage.
//!
//! Variable convention: the mini S-box input is the DES column index
//! `col`, with ANF variable `v_k` = bit `k` of `col` (little-endian).
//! `col` itself is formed from the S-box input bits `b1..b4` MSB-first.

use super::anf::Anf4;
use crate::tables::SBOXES;

/// Truth tables of one mini S-box's four output bits, MSB-first:
/// `tts[j]` is output bit `j` (`j = 0` the most significant).
pub type MiniTruthTables = [u16; 4];

/// Truth tables of mini S-box `row` of S-box `sbox` (0-based).
pub fn mini_truth_tables(sbox: usize, row: usize) -> MiniTruthTables {
    let table = &SBOXES[sbox][row];
    let mut tts = [0u16; 4];
    for (col, &val) in table.iter().enumerate() {
        for (j, tt) in tts.iter_mut().enumerate() {
            let bit = (val >> (3 - j)) & 1;
            *tt |= u16::from(bit) << col;
        }
    }
    tts
}

/// The ANF of one mini S-box.
#[derive(Debug, Clone)]
pub struct MiniSboxAnf {
    /// ANF per output bit, MSB-first.
    pub outputs: [Anf4; 4],
}

impl MiniSboxAnf {
    /// Compute the ANF of mini S-box `row` of S-box `sbox`.
    pub fn new(sbox: usize, row: usize) -> Self {
        let tts = mini_truth_tables(sbox, row);
        MiniSboxAnf { outputs: tts.map(Anf4::from_truth_table) }
    }

    /// Highest algebraic degree over the four outputs.
    pub fn max_degree(&self) -> u32 {
        self.outputs.iter().map(Anf4::degree).max().unwrap_or(0)
    }

    /// Distinct non-linear monomial masks (degree ≥ 2) used by any output.
    pub fn product_terms(&self) -> Vec<u8> {
        let mut set = std::collections::BTreeSet::new();
        for o in &self.outputs {
            for d in 2..=4u32 {
                set.extend(o.monomials_of_degree(d));
            }
        }
        set.into_iter().collect()
    }
}

/// ANFs of all 32 mini S-boxes, indexed `[sbox][row]`.
pub fn mini_sbox_anfs() -> Vec<[MiniSboxAnf; 4]> {
    (0..8).map(|s| [0, 1, 2, 3].map(|r| MiniSboxAnf::new(s, r))).collect()
}

/// The ten canonical product-term monomials of the masked AND stage:
/// all six pairs then all four triples of the four variables, as
/// little-endian variable masks.
pub const TEN_PRODUCTS: [u8; 10] = [
    0b0011, 0b0101, 0b1001, 0b0110, 0b1010, 0b1100, // pairs
    0b0111, 0b1011, 0b1101, 0b1110, // triples
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sbox_lookup;

    /// ANFs evaluate back to the original tables for every mini S-box.
    #[allow(clippy::needless_range_loop)]
    #[test]
    fn anf_matches_tables() {
        for s in 0..8 {
            for r in 0..4 {
                let anf = MiniSboxAnf::new(s, r);
                for col in 0..16u8 {
                    let want = SBOXES[s][r][col as usize];
                    let mut got = 0u8;
                    for j in 0..4 {
                        got = (got << 1) | u8::from(anf.outputs[j].eval(col));
                    }
                    assert_eq!(got, want, "S{s} row {r} col {col}");
                }
            }
        }
    }

    /// §IV-A: degree at most 3 — never 4 — for every mini S-box output.
    #[test]
    fn degree_at_most_three() {
        for (s, rows) in mini_sbox_anfs().iter().enumerate() {
            for (r, anf) in rows.iter().enumerate() {
                assert!(anf.max_degree() <= 3, "S{s} row {r} degree {}", anf.max_degree());
            }
        }
    }

    /// §IV-A: the ten products cover every non-linear monomial.
    #[test]
    fn ten_products_suffice() {
        let ten: std::collections::BTreeSet<u8> = TEN_PRODUCTS.into_iter().collect();
        assert_eq!(ten.len(), 10);
        for (s, rows) in mini_sbox_anfs().iter().enumerate() {
            for (r, anf) in rows.iter().enumerate() {
                for term in anf.product_terms() {
                    assert!(ten.contains(&term), "S{s} row {r} monomial {term:04b} not covered");
                }
            }
        }
    }

    /// Mini S-box + row selection reproduces the full S-box lookup.
    #[allow(clippy::needless_range_loop)]
    #[test]
    fn row_column_decomposition() {
        for s in 0..8 {
            for six in 0..64u8 {
                let row = (((six >> 4) & 0b10) | (six & 1)) as usize;
                let col = (six >> 1) & 0xF;
                assert_eq!(
                    SBOXES[s][row][col as usize],
                    sbox_lookup(&SBOXES[s], six),
                    "S{s} input {six:06b}"
                );
            }
        }
    }

    /// The paper's Eq. 3 is the ANF of S1's first mini S-box, with its
    /// `x1..x4` mapping to our column-bit variables `v3..v0`. All four
    /// output equations match **bit-exactly** — the strongest possible
    /// cross-validation of the decomposition pipeline.
    #[test]
    fn eq3_is_s1_row0_exactly() {
        // Monomial over paper variables -> our little-endian v-mask bit.
        let m = |xs: &[u32]| -> u16 {
            let mask: u8 = xs.iter().map(|&x| 1u8 << (4 - x)).sum();
            1u16 << mask
        };
        let y1 = 1
            | m(&[1])
            | m(&[2])
            | m(&[1, 2])
            | m(&[2, 3])
            | m(&[1, 2, 3])
            | m(&[4])
            | m(&[2, 3, 4]);
        let y2 = 1 | m(&[1]) | m(&[2]) | m(&[1, 3]) | m(&[2, 4]) | m(&[3, 4]) | m(&[1, 3, 4]);
        let y3 = 1
            | m(&[1, 2])
            | m(&[3])
            | m(&[1, 3])
            | m(&[2, 3])
            | m(&[1, 2, 3])
            | m(&[4])
            | m(&[1, 4])
            | m(&[2, 4])
            | m(&[1, 2, 4])
            | m(&[3, 4]);
        let y4 = m(&[1]) | m(&[3]) | m(&[1, 4]) | m(&[2, 4]) | m(&[1, 3, 4]);
        let anf = MiniSboxAnf::new(0, 0);
        assert_eq!(anf.outputs[0].coeffs, y1, "Eq. 3 y1");
        assert_eq!(anf.outputs[1].coeffs, y2, "Eq. 3 y2");
        assert_eq!(anf.outputs[2].coeffs, y3, "Eq. 3 y3");
        assert_eq!(anf.outputs[3].coeffs, y4, "Eq. 3 y4");
    }

    /// Count the paper's "at most six degree-2 and four degree-3 terms".
    #[test]
    fn per_minibox_term_counts() {
        for rows in mini_sbox_anfs() {
            for anf in rows {
                let deg2: std::collections::BTreeSet<u8> =
                    anf.outputs.iter().flat_map(|o| o.monomials_of_degree(2)).collect();
                let deg3: std::collections::BTreeSet<u8> =
                    anf.outputs.iter().flat_map(|o| o.monomials_of_degree(3)).collect();
                assert!(deg2.len() <= 6);
                assert!(deg3.len() <= 4);
            }
        }
    }
}
