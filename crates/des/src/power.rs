//! Fast cycle-accurate power model for large TVLA campaigns.
//!
//! The gate-level event simulator (via [`crate::netlist_gen`]) is the
//! high-fidelity reference; this model trades wire-level detail for
//! ~100× speed while keeping the statistical structure that the paper's
//! leakage results rest on:
//!
//! * per cycle, power = Σ share-wise register/combinational toggles
//!   (Hamming distances of the actual share values). Linear in the
//!   shares ⇒ no first-order leakage from a sound sharing, but the
//!   variance of `HW(x₀) + HW(x₁)` depends on the unshared value ⇒ the
//!   strong **second-order** leakage of Fig. 14;
//! * with the PRNG off the shares degenerate and the same toggle terms
//!   expose values directly ⇒ Fig. 14a / 17d;
//! * the **glitch term**: each `secAND2` evaluation whose safe arrival
//!   order is violated (probability [`PdLeakModel::order_violation_prob`],
//!   a function of the DelayUnit size) adds toggles proportional to the
//!   unshared *y* operand (§II-B's exposed Hamming distance) ⇒ Fig. 15;
//! * the **coupling term**: crosstalk between the adjacent
//!   equally-delayed x₀/x₁ lines adds `ε`-weighted toggles proportional
//!   to the unshared *x* operand ⇒ the residual first-order leakage of
//!   Fig. 17.

use crate::masked::core_ff::CycleRecord;
use gm_sim::MeasurementModel;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Leakage mechanisms specific to the secAND2-PD core.
#[derive(Debug, Clone, Copy)]
pub struct PdLeakModel {
    /// Probability that one `secAND2-PD` evaluation sees its safe arrival
    /// order violated. See [`order_violation_prob`] for the mapping from
    /// DelayUnit size.
    pub order_violation_prob: f64,
    /// Extra toggles per violated gadget whose exposed `y` is 1.
    pub glitch_gain: f64,
    /// Crosstalk energy per gadget whose unshared `x` is 1 (the ε of the
    /// Miller-coupling between the x₀ and x₁ delay lines).
    pub coupling_eps: f64,
}

impl PdLeakModel {
    /// The paper's final configuration: DelayUnit = 10 LUTs (order
    /// violations negligible) but physical coupling present. ε = 0.048
    /// places the first-order onset near 120 k traces — the paper's
    /// "approximately 15 M" at the 400 k ≙ 50 M scale.
    pub fn optimal() -> Self {
        PdLeakModel {
            order_violation_prob: order_violation_prob(10),
            glitch_gain: 6.0,
            coupling_eps: 0.048,
        }
    }

    /// A DelayUnit-size sweep point with default gains (Fig. 15).
    pub fn with_unit_luts(unit_luts: usize) -> Self {
        PdLeakModel {
            order_violation_prob: order_violation_prob(unit_luts),
            glitch_gain: 6.0,
            coupling_eps: 0.048,
        }
    }
}

/// Probability that per-event jitter reorders two edges that a DelayUnit
/// of `unit_luts` LUTs is supposed to separate.
///
/// The nominal separation grows linearly with the unit size
/// (`unit_luts · d_LUT`) while the timing noise of the competing paths is
/// roughly constant. Routing-dominated FPGA jitter is heavy-tailed, so
/// we use a Laplace tail `½·e^{−u/λ}` rather than a Gaussian one.
/// λ = 1.75 calibrates the Fig. 15 → Fig. 17 progression at the
/// workspace's 400 k ≙ 50 M trace scale: 1–3 LUTs leak within the
/// 8 k-trace sweep budget, 5 LUTs flags at a few ×, 7 LUTs only at ~10×
/// (the paper's 5 M follow-up), and at 10 LUTs order violations are so
/// rare that the coupling term dominates the residual leakage.
pub fn order_violation_prob(unit_luts: usize) -> f64 {
    const LAMBDA: f64 = 1.75;
    0.5 * (-(unit_luts as f64) / LAMBDA).exp()
}

/// Converts per-cycle [`CycleRecord`]s into a noisy power trace.
#[derive(Debug)]
pub struct PowerModel {
    /// Weight per register share toggle.
    pub reg_weight: f64,
    /// Weight per combinational share toggle.
    pub comb_weight: f64,
    /// PD-specific leak mechanisms; `None` for the FF core.
    pub pd: Option<PdLeakModel>,
    measurement: MeasurementModel,
    rng: SmallRng,
}

impl PowerModel {
    /// Model for the secAND2-FF core.
    pub fn ff(noise_sigma: f64, seed: u64) -> Self {
        PowerModel {
            reg_weight: 4.7,
            comb_weight: 1.6,
            pd: None,
            measurement: MeasurementModel::new(1.0, noise_sigma, 16, seed ^ 0x5f35),
            rng: SmallRng::seed_from_u64(seed ^ 0x1234_5678_9abc_def0),
        }
    }

    /// Model for the secAND2-PD core.
    pub fn pd(leak: PdLeakModel, noise_sigma: f64, seed: u64) -> Self {
        PowerModel { pd: Some(leak), ..Self::ff(noise_sigma, seed) }
    }

    /// Convert one encryption's cycle records into a power trace
    /// (one sample per cycle).
    pub fn trace(&mut self, cycles: &[CycleRecord]) -> Vec<f64> {
        cycles
            .iter()
            .map(|c| {
                let mut p = self.reg_weight * f64::from(c.reg_toggles)
                    + self.comb_weight * f64::from(c.comb_toggles);
                if let Some(pd) = self.pd {
                    // Binomial thinning: each exposed-y gadget violates
                    // its arrival order independently.
                    if pd.order_violation_prob > 0.0 {
                        let mut violated = 0u32;
                        for _ in 0..c.glitch_units {
                            if self.rng.random::<f64>() < pd.order_violation_prob {
                                violated += 1;
                            }
                        }
                        p += pd.glitch_gain * f64::from(violated);
                    }
                    p += pd.coupling_eps * f64::from(c.coupling_units);
                }
                self.measurement.sample(p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_prob_monotone_and_calibrated() {
        let p1 = order_violation_prob(1);
        let p3 = order_violation_prob(3);
        let p7 = order_violation_prob(7);
        let p10 = order_violation_prob(10);
        assert!(p1 > p3 && p3 > p7 && p7 > p10);
        assert!(p1 > 0.25 && p1 < 0.40, "1 LUT ≈ 30%: {p1}");
        assert!(p7 > 5.0 * p10, "clear gap between 7 and 10 LUTs");
        assert!(p10 < 0.01, "10 LUTs well below coupling floor: {p10}");
    }

    #[test]
    fn trace_scales_with_toggles() {
        let mut m = PowerModel::ff(0.0, 1);
        let quiet = CycleRecord::default();
        let busy = CycleRecord { reg_toggles: 10, comb_toggles: 20, ..Default::default() };
        let t = m.trace(&[quiet, busy]);
        assert!(t[1] > t[0] + 10.0);
    }

    #[test]
    fn glitch_term_active_only_for_pd() {
        let cyc = CycleRecord { glitch_units: 100, ..Default::default() };
        let mut ff = PowerModel::ff(0.0, 2);
        assert_eq!(ff.trace(&[cyc])[0], 0.0);
        let mut pd = PowerModel::pd(
            PdLeakModel { order_violation_prob: 1.0, glitch_gain: 2.0, coupling_eps: 0.0 },
            0.0,
            2,
        );
        assert_eq!(pd.trace(&[cyc])[0], 200.0);
    }
}
