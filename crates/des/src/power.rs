//! Fast cycle-accurate power model for large TVLA campaigns.
//!
//! The gate-level event simulator (via [`crate::netlist_gen`]) is the
//! high-fidelity reference; this model trades wire-level detail for
//! ~100× speed while keeping the statistical structure that the paper's
//! leakage results rest on:
//!
//! * per cycle, power = Σ share-wise register/combinational toggles
//!   (Hamming distances of the actual share values). Linear in the
//!   shares ⇒ no first-order leakage from a sound sharing, but the
//!   variance of `HW(x₀) + HW(x₁)` depends on the unshared value ⇒ the
//!   strong **second-order** leakage of Fig. 14;
//! * with the PRNG off the shares degenerate and the same toggle terms
//!   expose values directly ⇒ Fig. 14a / 17d;
//! * the **glitch term**: each `secAND2` evaluation whose safe arrival
//!   order is violated (probability [`PdLeakModel::order_violation_prob`],
//!   a function of the DelayUnit size) adds toggles proportional to the
//!   unshared *y* operand (§II-B's exposed Hamming distance) ⇒ Fig. 15;
//! * the **coupling term**: crosstalk between the adjacent
//!   equally-delayed x₀/x₁ lines adds `ε`-weighted toggles proportional
//!   to the unshared *x* operand ⇒ the residual first-order leakage of
//!   Fig. 17.

use crate::masked::core_ff::CycleRecord;
use gm_netlist::bitslice::{SegLaneCounter, LANES};
use gm_sim::MeasurementModel;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Leakage mechanisms specific to the secAND2-PD core.
#[derive(Debug, Clone, Copy)]
pub struct PdLeakModel {
    /// Probability that one `secAND2-PD` evaluation sees its safe arrival
    /// order violated. See [`order_violation_prob`] for the mapping from
    /// DelayUnit size.
    pub order_violation_prob: f64,
    /// Extra toggles per violated gadget whose exposed `y` is 1.
    pub glitch_gain: f64,
    /// Crosstalk energy per gadget whose unshared `x` is 1 (the ε of the
    /// Miller-coupling between the x₀ and x₁ delay lines).
    pub coupling_eps: f64,
}

impl PdLeakModel {
    /// The paper's final configuration: DelayUnit = 10 LUTs (order
    /// violations negligible) but physical coupling present. ε = 0.048
    /// places the first-order onset near 120 k traces — the paper's
    /// "approximately 15 M" at the 400 k ≙ 50 M scale.
    pub fn optimal() -> Self {
        PdLeakModel {
            order_violation_prob: order_violation_prob(10),
            glitch_gain: 6.0,
            coupling_eps: 0.048,
        }
    }

    /// A DelayUnit-size sweep point with default gains (Fig. 15).
    pub fn with_unit_luts(unit_luts: usize) -> Self {
        PdLeakModel {
            order_violation_prob: order_violation_prob(unit_luts),
            glitch_gain: 6.0,
            coupling_eps: 0.048,
        }
    }
}

/// Probability that per-event jitter reorders two edges that a DelayUnit
/// of `unit_luts` LUTs is supposed to separate.
///
/// The nominal separation grows linearly with the unit size
/// (`unit_luts · d_LUT`) while the timing noise of the competing paths is
/// roughly constant. Routing-dominated FPGA jitter is heavy-tailed, so
/// we use a Laplace tail `½·e^{−u/λ}` rather than a Gaussian one.
/// λ = 1.75 calibrates the Fig. 15 → Fig. 17 progression at the
/// workspace's 400 k ≙ 50 M trace scale: 1–3 LUTs leak within the
/// 8 k-trace sweep budget, 5 LUTs flags at a few ×, 7 LUTs only at ~10×
/// (the paper's 5 M follow-up), and at 10 LUTs order violations are so
/// rare that the coupling term dominates the residual leakage.
pub fn order_violation_prob(unit_luts: usize) -> f64 {
    const LAMBDA: f64 = 1.75;
    0.5 * (-(unit_luts as f64) / LAMBDA).exp()
}

/// Mean (`n·p`) below which [`binomial`] uses exact CDF inversion.
///
/// Inversion walks the CDF from 0, so its expected cost is `O(n·p)` draws
/// of the probability recurrence — bounded by this constant. Above it the
/// Gaussian approximation is used; at `n·p ≥ 10` (with `p ≤ ½` after the
/// symmetry flip) the normal approximation's total-variation error is
/// below ~1%, far under the measurement noise it feeds into.
const BINV_MAX_MEAN: f64 = 10.0;

/// Draw `Binomial(n, p)` in O(1) expected time.
///
/// Replaces per-unit thinning (one uniform per glitch unit) on the
/// campaign hot path: exact CDF inversion while `n·p ≤` a documented
/// threshold ([`BINV_MAX_MEAN`]), Gaussian-tail approximation above it.
/// `p` is clamped to `[0, 1]`; `p ≥ 1` returns `n` exactly (the
/// deterministic case tests rely on).
pub fn binomial(rng: &mut SmallRng, n: u32, p: f64) -> u32 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    // Sample the rarer outcome and mirror, keeping q ≤ ½ so both branches
    // stay in their accurate/cheap regime.
    let flip = p > 0.5;
    let q = if flip { 1.0 - p } else { p };
    let x = if f64::from(n) * q <= BINV_MAX_MEAN {
        binomial_inversion(rng, n, q)
    } else {
        binomial_gaussian(rng, n, q)
    };
    if flip {
        n - x
    } else {
        x
    }
}

/// Exact inversion (the classic BINV walk): subtract pmf terms from one
/// uniform until it is exhausted. Expected iterations = `n·q`.
fn binomial_inversion(rng: &mut SmallRng, n: u32, q: f64) -> u32 {
    let s = q / (1.0 - q);
    let mut pr = (1.0 - q).powi(n as i32);
    let mut u: f64 = rng.random();
    let mut x = 0u32;
    while u > pr {
        u -= pr;
        x += 1;
        if x > n {
            // Float round-off past the end of the support.
            return n;
        }
        pr *= s * f64::from(n - x + 1) / f64::from(x);
    }
    x
}

/// Gaussian approximation with continuity correction, clamped to `[0, n]`.
fn binomial_gaussian(rng: &mut SmallRng, n: u32, q: f64) -> u32 {
    let mean = f64::from(n) * q;
    let sd = (mean * (1.0 - q)).sqrt();
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mean + sd * g + 0.5).floor().clamp(0.0, f64::from(n)) as u32
}

/// Converts per-cycle [`CycleRecord`]s into a noisy power trace.
#[derive(Debug)]
pub struct PowerModel {
    /// Weight per register share toggle.
    pub reg_weight: f64,
    /// Weight per combinational share toggle.
    pub comb_weight: f64,
    /// PD-specific leak mechanisms; `None` for the FF core.
    pub pd: Option<PdLeakModel>,
    measurement: MeasurementModel,
    rng: SmallRng,
}

impl PowerModel {
    /// Model for the secAND2-FF core.
    pub fn ff(noise_sigma: f64, seed: u64) -> Self {
        PowerModel {
            reg_weight: 4.7,
            comb_weight: 1.6,
            pd: None,
            measurement: MeasurementModel::new(1.0, noise_sigma, 16, seed ^ 0x5f35),
            rng: SmallRng::seed_from_u64(seed ^ 0x1234_5678_9abc_def0),
        }
    }

    /// Model for the secAND2-PD core.
    pub fn pd(leak: PdLeakModel, noise_sigma: f64, seed: u64) -> Self {
        PowerModel { pd: Some(leak), ..Self::ff(noise_sigma, seed) }
    }

    /// Convert one encryption's cycle records into a power trace
    /// (one sample per cycle).
    pub fn trace(&mut self, cycles: &[CycleRecord]) -> Vec<f64> {
        let mut out = vec![0.0; cycles.len()];
        self.trace_into(cycles, &mut out);
        out
    }

    /// As [`Self::trace`], filling a caller-provided buffer — the
    /// allocation-free path TVLA campaigns run per trace.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != cycles.len()`.
    pub fn trace_into(&mut self, cycles: &[CycleRecord], out: &mut [f64]) {
        assert_eq!(cycles.len(), out.len(), "trace buffer length mismatch");
        if self.pd.is_none() {
            // FF path: the deterministic weighting vectorises once it is
            // separated from the serial noise/quantisation pass, which
            // consumes the measurement RNG in the same per-sample order
            // as the fused loop — the output is bit-identical.
            for (o, c) in out.iter_mut().zip(cycles) {
                *o = self.reg_weight * f64::from(c.reg_toggles)
                    + self.comb_weight * f64::from(c.comb_toggles);
            }
            self.measurement.apply(out);
            return;
        }
        for (o, c) in out.iter_mut().zip(cycles) {
            let mut p = self.reg_weight * f64::from(c.reg_toggles)
                + self.comb_weight * f64::from(c.comb_toggles);
            if let Some(pd) = self.pd {
                // Binomial thinning: each exposed-y gadget violates its
                // arrival order independently — drawn in one shot.
                if pd.order_violation_prob > 0.0 {
                    let violated = binomial(&mut self.rng, c.glitch_units, pd.order_violation_prob);
                    p += pd.glitch_gain * f64::from(violated);
                }
                p += pd.coupling_eps * f64::from(c.coupling_units);
            }
            *o = self.measurement.sample(p);
        }
    }

    /// Convert one ≤64-lane group's finished counters into per-lane power
    /// traces without ever building [`CycleRecord`]s — the lane-major tail
    /// of the bitsliced TVLA pipeline (DESIGN.md §2.13).
    ///
    /// Stage 1 computes the deterministic base energies for all 64 lanes
    /// at once, straight off the sample-major count planes (one
    /// contiguous, autovectorised sweep — the bit-plane popcounts are
    /// already done inside [`SegLaneCounter`]). Stage 2 prefills one
    /// measurement-noise tile for the whole group with a single bulk
    /// ziggurat fill. Stage 3 finishes each of the first `lanes` lanes in
    /// label order and hands the trace to `emit(lane, trace)`.
    ///
    /// Bit-identical to `lanes` successive [`Self::lane_into`] +
    /// [`Self::trace_into`] calls on the same counters: every per-sample
    /// arithmetic expression is unchanged, and both RNG streams (the
    /// measurement ziggurat and the glitch binomial) are consumed in the
    /// same (lane, sample) order the scalar demux uses. The callers'
    /// golden-trace and campaign-identity tests pin this.
    ///
    /// # Panics
    ///
    /// Panics when `lanes > 64`.
    pub fn trace_group_into(
        &mut self,
        counters: &mut CycleLaneCounters,
        lanes: usize,
        scratch: &mut GroupScratch,
        mut emit: impl FnMut(usize, &[f64]),
    ) {
        assert!(lanes <= LANES, "a bitsliced group has at most {LANES} lanes");
        let n = counters.num_cycles();
        let reg = counters.reg.finish();
        let comb = counters.comb.finish();
        let glitch = counters.glitch.finish();
        let coupling = counters.coupling.finish();

        // Stage 1: base energies for the full 64-lane width, sample-major
        // (`energy[cycle * LANES + lane]`). Idle lanes compute values that
        // are never read; the branch-free full-width loop vectorises.
        if scratch.energy.len() != n * LANES {
            scratch.energy.resize(n * LANES, 0.0);
        }
        let (rw, cw) = (self.reg_weight, self.comb_weight);
        for ((e, &r), &c) in scratch.energy.iter_mut().zip(reg).zip(comb) {
            *e = rw * f64::from(r) + cw * f64::from(c);
        }

        // Stage 2: one noise tile per group, lane-major
        // (`noise[lane * n + cycle]`) — exactly the (lane, sample) order
        // the per-lane scalar chain draws the ziggurat stream in.
        let sigma = self.measurement.noise_sigma;
        if sigma > 0.0 {
            if scratch.noise.len() != lanes * n {
                scratch.noise.resize(lanes * n, 0.0);
            }
            self.measurement.fill_gauss(&mut scratch.noise[..lanes * n]);
        }

        // Stage 3a: 8×8-blocked transpose of the base energies to
        // lane-major rows (`et[lane * n + cycle]`). The finishing loops
        // below then stream unit-stride — the 512-byte column stride of
        // the sample-major planes defeated vectorisation and burned one
        // cache line per sample per lane.
        if scratch.et.len() != n * LANES {
            scratch.et.resize(n * LANES, 0.0);
        }
        let full = n - n % 8;
        for cb in (0..full).step_by(8) {
            for lb in (0..LANES).step_by(8) {
                for c in cb..cb + 8 {
                    for l in lb..lb + 8 {
                        scratch.et[l * n + c] = scratch.energy[c * LANES + l];
                    }
                }
            }
        }
        for c in full..n {
            for l in 0..LANES {
                scratch.et[l * n + c] = scratch.energy[c * LANES + l];
            }
        }

        // Stage 3b: per-lane finish in label order, in place over each
        // lane's `et` row. The glitch binomial stays serial here — it
        // consumes a data-dependent number of RNG words — but it runs on
        // count planes directly, no records; the FF combine is a pure
        // element-wise sweep over two unit-stride rows and vectorises.
        let gain = self.measurement.gain;
        let fs = self.measurement.full_scale();
        for l in 0..lanes {
            let row = &mut scratch.et[l * n..][..n];
            let noise_row: &[f64] = if sigma > 0.0 { &scratch.noise[l * n..][..n] } else { &[] };
            if let Some(pd) = self.pd {
                for (c, e) in row.iter_mut().enumerate() {
                    let mut p = *e;
                    if pd.order_violation_prob > 0.0 {
                        let violated =
                            binomial(&mut self.rng, glitch[c * LANES + l], pd.order_violation_prob);
                        p += pd.glitch_gain * f64::from(violated);
                    }
                    p += pd.coupling_eps * f64::from(coupling[c * LANES + l]);
                    let mut v = p * gain;
                    if sigma > 0.0 {
                        v += noise_row[c] * sigma;
                    }
                    *e = v.round().clamp(-fs, fs - 1.0);
                }
            } else if sigma > 0.0 {
                for (e, &z) in row.iter_mut().zip(noise_row) {
                    let v = *e * gain + z * sigma;
                    *e = v.round().clamp(-fs, fs - 1.0);
                }
            } else {
                for e in row.iter_mut() {
                    *e = (*e * gain).round().clamp(-fs, fs - 1.0);
                }
            }
            emit(l, row);
        }
    }
}

/// Reusable workspace for [`PowerModel::trace_group_into`]: the group's
/// sample-major base energies, their lane-major transpose (finished in
/// place into the emitted traces), and the lane-major noise tile.
#[derive(Debug, Default)]
pub struct GroupScratch {
    energy: Vec<f64>,
    et: Vec<f64>,
    noise: Vec<f64>,
}

impl GroupScratch {
    /// An empty workspace; buffers size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Popcount-based per-cycle activity accumulator for the 64-lane
/// bitsliced cycle engines ([`crate::masked::bitslice`]).
///
/// The bitsliced cores push one *toggle word* per share bit per cycle
/// into the four [`SegLaneCounter`]s (bit `ℓ` of a word = lane `ℓ`'s
/// 0/1 contribution) and close each clock cycle with
/// [`CycleLaneCounters::end_cycle`] — a boundary note, not a reduction.
/// Blocks of 64 words are transposed as they fill, each cycle's share
/// reduced with one masked `count_ones` per lane, and
/// [`CycleLaneCounters::finish`] materialises the exact
/// [`CycleRecord`]s for all lanes, stored lane-major so
/// [`CycleLaneCounters::lane_into`] is a straight copy.
#[derive(Debug, Default)]
pub struct CycleLaneCounters {
    /// Register-toggle (share-wise Hamming distance) words.
    pub reg: SegLaneCounter,
    /// Combinational-activity (share-wise Hamming weight) words.
    pub comb: SegLaneCounter,
    /// Glitch-exposure words: one push per `secAND2` gadget, bit `ℓ` =
    /// the gadget's unshared *y* in lane `ℓ`.
    pub glitch: SegLaneCounter,
    /// Coupling-exposure words: bit `ℓ` = the gadget's unshared *x*.
    pub coupling: SegLaneCounter,
    /// When set, [`Self::finish`] reduces the four count planes but skips
    /// materialising [`CycleRecord`]s — the lane-major pipeline reads the
    /// sample-major planes directly via [`PowerModel::trace_group_into`],
    /// so the 64-lane record transpose (~117 KB per group on the FF core)
    /// is pure waste there. Default `false` keeps the scalar demux path
    /// unchanged; [`Self::lane_into`] asserts the records exist.
    pub skip_records: bool,
    /// Lane-major records: `records[lane * num_cycles + cycle]`, valid
    /// after [`Self::finish`] (unless [`Self::skip_records`]).
    records: Vec<CycleRecord>,
    cycles: usize,
}

impl CycleLaneCounters {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear all counters and close no cycles. Stored records stay
    /// allocated (they are fully overwritten by the next
    /// [`Self::finish`]).
    pub fn reset(&mut self) {
        self.reg.reset();
        self.comb.reset();
        self.glitch.reset();
        self.coupling.reset();
        self.cycles = 0;
    }

    /// Close the current clock cycle on all four counters.
    pub fn end_cycle(&mut self) {
        self.reg.mark();
        self.comb.mark();
        self.glitch.mark();
        self.coupling.mark();
    }

    /// Reduce everything pushed since [`Self::reset`] into per-lane
    /// [`CycleRecord`]s. The engines call this once per 64-lane group,
    /// after the last [`Self::end_cycle`].
    pub fn finish(&mut self) {
        let n = self.reg.num_segments();
        self.cycles = n;
        let reg = self.reg.finish();
        let comb = self.comb.finish();
        let glitch = self.glitch.finish();
        let coupling = self.coupling.finish();
        if self.skip_records {
            // The count planes above are reduced and stay readable
            // through the public counter fields; nothing else to do.
            return;
        }
        if self.records.len() != n * LANES {
            self.records.resize(n * LANES, CycleRecord::default());
        }
        // Cycle-outer: the four count slices are read sequentially and
        // the 64 scattered writes per cycle land in the same cache
        // lines for four consecutive cycles.
        for c in 0..n {
            let base = c * LANES;
            for l in 0..LANES {
                self.records[l * n + c] = CycleRecord {
                    reg_toggles: reg[base + l],
                    comb_toggles: comb[base + l],
                    glitch_units: glitch[base + l],
                    coupling_units: coupling[base + l],
                };
            }
        }
    }

    /// Number of closed cycles (valid after [`Self::finish`]).
    pub fn num_cycles(&self) -> usize {
        self.cycles
    }

    /// Copy one lane's cycle column into `out` (cleared first) — the
    /// demux step feeding each lane's records to the unchanged scalar
    /// [`PowerModel::trace_into`].
    pub fn lane_into(&self, lane: usize, out: &mut Vec<CycleRecord>) {
        assert!(lane < LANES);
        assert!(!self.skip_records, "records were skipped; lane demux unavailable");
        out.clear();
        out.extend_from_slice(&self.records[lane * self.cycles..][..self.cycles]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_counters_roundtrip() {
        let mut c = CycleLaneCounters::new();
        // Cycle 0: lane 0 gets 2 reg toggles, lane 63 one comb toggle,
        // lane 5 one glitch and one coupling unit.
        c.reg.push(1);
        c.reg.push(1);
        c.comb.push(1 << 63);
        c.glitch.push(1 << 5);
        c.coupling.push(1 << 5);
        c.end_cycle();
        // Cycle 1: everything quiet except lane 1.
        c.reg.push(2);
        c.end_cycle();
        c.finish();
        assert_eq!(c.num_cycles(), 2);

        let mut lane = Vec::new();
        c.lane_into(0, &mut lane);
        assert_eq!(lane[0], CycleRecord { reg_toggles: 2, ..Default::default() });
        assert_eq!(lane[1], CycleRecord::default());
        c.lane_into(5, &mut lane);
        assert_eq!(
            lane[0],
            CycleRecord { glitch_units: 1, coupling_units: 1, ..Default::default() }
        );
        c.lane_into(63, &mut lane);
        assert_eq!(lane[0], CycleRecord { comb_toggles: 1, ..Default::default() });
        c.lane_into(1, &mut lane);
        assert_eq!(lane[1], CycleRecord { reg_toggles: 1, ..Default::default() });

        c.reset();
        assert_eq!(c.num_cycles(), 0);
    }

    #[test]
    fn violation_prob_monotone_and_calibrated() {
        let p1 = order_violation_prob(1);
        let p3 = order_violation_prob(3);
        let p7 = order_violation_prob(7);
        let p10 = order_violation_prob(10);
        assert!(p1 > p3 && p3 > p7 && p7 > p10);
        assert!(p1 > 0.25 && p1 < 0.40, "1 LUT ≈ 30%: {p1}");
        assert!(p7 > 5.0 * p10, "clear gap between 7 and 10 LUTs");
        assert!(p10 < 0.01, "10 LUTs well below coupling floor: {p10}");
    }

    #[test]
    fn trace_scales_with_toggles() {
        let mut m = PowerModel::ff(0.0, 1);
        let quiet = CycleRecord::default();
        let busy = CycleRecord { reg_toggles: 10, comb_toggles: 20, ..Default::default() };
        let t = m.trace(&[quiet, busy]);
        assert!(t[1] > t[0] + 10.0);
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(binomial(&mut rng, 10, 1.0), 10);
        for _ in 0..100 {
            assert!(binomial(&mut rng, 5, 0.5) <= 5);
        }
    }

    /// χ² goodness-of-fit for the exact-inversion regime (n·q ≤ 10):
    /// the sampled histogram must match the exact binomial pmf.
    #[test]
    fn binomial_inversion_chi_squared() {
        let (n, p) = (12u32, 0.3f64);
        let draws = 50_000usize;
        let mut rng = SmallRng::seed_from_u64(0x0b10_0b1e);
        let mut counts = [0u64; 13];
        for _ in 0..draws {
            counts[binomial(&mut rng, n, p) as usize] += 1;
        }
        // Exact pmf via the ratio recurrence.
        let mut pmf = [0.0f64; 13];
        pmf[0] = (1.0 - p).powi(n as i32);
        for k in 0..12usize {
            pmf[k + 1] = pmf[k] * ((n - k as u32) as f64) / ((k + 1) as f64) * p / (1.0 - p);
        }
        // Bins with expectation ≥ 5 (k = 0..=10 here, 10 dof);
        // χ²(10, 0.9999) ≈ 35.6 — anything near that flags a broken sampler.
        let mut chi2 = 0.0;
        for k in 0..13usize {
            let expect = pmf[k] * draws as f64;
            if expect >= 5.0 {
                let d = counts[k] as f64 - expect;
                chi2 += d * d / expect;
            }
        }
        assert!(chi2 < 40.0, "chi2 = {chi2}");
    }

    /// Gaussian-approximation regime (n·q > 10): mean and variance must
    /// track n·p and n·p·(1−p), and the p > 0.5 symmetry flip must hold.
    #[test]
    fn binomial_gaussian_moments() {
        let draws = 40_000usize;
        for p in [0.3f64, 0.7] {
            let n = 500u32;
            let mut rng = SmallRng::seed_from_u64(0x6a55_1a4d);
            let xs: Vec<f64> = (0..draws).map(|_| f64::from(binomial(&mut rng, n, p))).collect();
            let mean = xs.iter().sum::<f64>() / draws as f64;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / draws as f64;
            let (want_mean, want_var) = (f64::from(n) * p, f64::from(n) * p * (1.0 - p));
            assert!((mean - want_mean).abs() < 0.5, "p={p}: mean {mean} vs {want_mean}");
            assert!((var / want_var - 1.0).abs() < 0.1, "p={p}: var {var} vs {want_var}");
            assert!(xs.iter().all(|&x| (0.0..=f64::from(n)).contains(&x)));
        }
    }

    /// Push a deterministic multi-cycle activity pattern into counters.
    fn synthetic_counters() -> CycleLaneCounters {
        let mut c = CycleLaneCounters::new();
        let mut word = 0x9e37_79b9_7f4a_7c15u64;
        for cycle in 0..7 {
            for _ in 0..(3 + cycle % 4) {
                word = word.rotate_left(13) ^ 0xa076_1d64_78bd_642f;
                c.reg.push(word);
                c.comb.push(word.rotate_right(7));
                c.glitch.push(word & 0x00ff_00ff_00ff_00ff);
                c.coupling.push(word >> 1);
            }
            c.end_cycle();
        }
        c.finish();
        c
    }

    /// The lane-major group path must be BIT-identical to the per-lane
    /// record demux + scalar trace chain, for both cores, with noise.
    #[test]
    fn trace_group_into_bit_identical_to_lane_demux() {
        let models: [fn() -> PowerModel; 2] = [
            || PowerModel::ff(3.0, 42),
            || {
                PowerModel::pd(
                    PdLeakModel {
                        order_violation_prob: 0.4,
                        glitch_gain: 6.0,
                        coupling_eps: 0.048,
                    },
                    3.0,
                    42,
                )
            },
        ];
        for (mi, make) in models.iter().enumerate() {
            for lanes in [1usize, 5, 64] {
                let mut counters = synthetic_counters();
                let n = counters.num_cycles();

                let mut scalar = make();
                let mut records = Vec::new();
                let mut want = vec![0.0; lanes * n];
                for l in 0..lanes {
                    counters.lane_into(l, &mut records);
                    scalar.trace_into(&records, &mut want[l * n..][..n]);
                }

                let mut wide = make();
                let mut scratch = GroupScratch::new();
                let mut got = vec![0.0; lanes * n];
                wide.trace_group_into(&mut counters, lanes, &mut scratch, |l, trace| {
                    got[l * n..][..n].copy_from_slice(trace);
                });
                assert_eq!(got, want, "model {mi}, {lanes} lanes");
            }
        }
    }

    /// `skip_records` keeps the count planes valid (the wide path reads
    /// them) but makes the record demux unavailable.
    #[test]
    #[should_panic(expected = "records were skipped")]
    fn skip_records_blocks_lane_demux() {
        let mut c = CycleLaneCounters::new();
        c.skip_records = true;
        c.reg.push(1);
        c.end_cycle();
        c.finish();
        assert_eq!(c.num_cycles(), 1);
        let mut lane = Vec::new();
        c.lane_into(0, &mut lane);
    }

    #[test]
    fn glitch_term_active_only_for_pd() {
        let cyc = CycleRecord { glitch_units: 100, ..Default::default() };
        let mut ff = PowerModel::ff(0.0, 2);
        assert_eq!(ff.trace(&[cyc])[0], 0.0);
        let mut pd = PowerModel::pd(
            PdLeakModel { order_violation_prob: 1.0, glitch_gain: 2.0, coupling_eps: 0.0 },
            0.0,
            2,
        );
        assert_eq!(pd.trace(&[cyc])[0], 200.0);
    }
}
