//! The full gate-level masked DES cores (Fig. 8b / Fig. 9b).
//!
//! Everything sensitive is in the netlist: state and key registers, the
//! round-key extraction, the masked S-box layer, the Feistel combine.
//! Permutations (IP, FP, E, P, PC1, PC2, rotations) are wire reorders.
//! Control signals are primary inputs pulsed by the
//! [`super::driver::DesCoreDriver`] FSM, and the paper's 14 fresh mask
//! bits per round enter through shared primary inputs.

use super::sbox_ff::{build_sbox_ff, SboxFfControls};
use super::sbox_pd::build_sbox_pd;
use super::MaskedWire;
use crate::tables::{E, FP, IP, P, PC1, PC2};
use gm_netlist::{NetId, Netlist};

/// Which AND gadget the S-boxes use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SboxStyle {
    /// secAND2-FF (7 cycles per round).
    Ff,
    /// secAND2-PD with the given DelayUnit size (2 cycles per round).
    Pd {
        /// LUT-buffers per DelayUnit.
        unit_luts: usize,
    },
}

/// Control inputs of a core.
#[derive(Debug, Clone)]
pub struct CoreControls {
    /// Load plaintext into L/R (also asserted during the PD core's
    /// pre-load cycle so the IR source mux sees the IP right half).
    pub load: NetId,
    /// Load the PC1-selected key into C/D (block start only).
    pub load_key: NetId,
    /// Rotate the key halves and capture the S-box input register.
    pub ir_en: NetId,
    /// Rotate by 2 instead of 1 this round.
    pub shift2: NetId,
    /// Update the L/R state registers (Feistel combine).
    pub state_en: NetId,
    /// FF style: y₁ capture of pair/select gadgets.
    pub and1_en: NetId,
    /// FF style: y₁ capture of triple gadgets.
    pub and2_en: NetId,
    /// FF style: MUX stage-1 select register load.
    pub sel_en: NetId,
    /// FF style: y₁ capture of MUX stage-2 gadgets.
    pub mux2_en: NetId,
    /// FF style: S-box output register load.
    pub sout_en: NetId,
    /// PD style: mid-register (selects + mini outputs) load.
    pub mid_en: NetId,
}

/// A generated masked DES core with its interface nets.
#[derive(Debug, Clone)]
pub struct DesCoreNetlist {
    /// The circuit.
    pub netlist: Netlist,
    /// Masked plaintext input bus (64 bits).
    pub pt: MaskedWire,
    /// Masked key input bus (64 bits).
    pub key: MaskedWire,
    /// The 14 shared fresh-mask inputs.
    pub masks: Vec<NetId>,
    /// Control inputs.
    pub ctl: CoreControls,
    /// Masked ciphertext nets (FP wiring from the final state).
    pub ct: MaskedWire,
    /// Gadget style used.
    pub style: SboxStyle,
    /// PD only: adjacent equal-delay share-line pairs for coupling models.
    pub coupled_pairs: Vec<(NetId, NetId)>,
}

/// Build a complete masked DES core of the given style.
pub fn build_des_core(style: SboxStyle) -> DesCoreNetlist {
    let mut n = Netlist::new(match style {
        SboxStyle::Ff => "masked_des_ff",
        SboxStyle::Pd { .. } => "masked_des_pd",
    });

    let pt = MaskedWire::inputs(&mut n, "pt", 64);
    let key = MaskedWire::inputs(&mut n, "key", 64);
    let masks: Vec<NetId> = (0..14).map(|i| n.input(format!("mask{i}"))).collect();
    let ctl = CoreControls {
        load: n.input("ctl_load"),
        load_key: n.input("ctl_load_key"),
        ir_en: n.input("ctl_ir_en"),
        shift2: n.input("ctl_shift2"),
        state_en: n.input("ctl_state_en"),
        and1_en: n.input("ctl_and1_en"),
        and2_en: n.input("ctl_and2_en"),
        sel_en: n.input("ctl_sel_en"),
        mux2_en: n.input("ctl_mux2_en"),
        sout_en: n.input("ctl_sout_en"),
        mid_en: n.input("ctl_mid_en"),
    };

    // ---- key schedule ------------------------------------------------
    n.enter_module("key_schedule");
    let pc1 = key.permute(&PC1); // 56 bits: C (28) ++ D (28)
                                 // C/D registers with a rotate-1/rotate-2 mux and a load mux. The
                                 // rotation mux output doubles as the *current round key* source so
                                 // the S-box input register and the key registers can update on the
                                 // same edge. Register feedback is built in two phases: create the
                                 // DFFs on a placeholder input, build the mux tree from their
                                 // outputs, then patch the d-pins.
    let (c_regs, d_regs, rk);
    {
        // Phase 1: create the DFF gates with dummy inputs (const0), then
        // patch their input nets once the mux tree exists.
        let zero = n.const0();
        let mk_regs = |n: &mut Netlist, en: NetId| -> MaskedWire {
            MaskedWire {
                s0: (0..28).map(|_| n.dff_en(zero, en)).collect(),
                s1: (0..28).map(|_| n.dff_en(zero, en)).collect(),
            }
        };
        // Key registers update on key load OR rotation.
        let key_en = n.or2(ctl.load_key, ctl.ir_en);
        let c_q = mk_regs(&mut n, key_en);
        let d_q = mk_regs(&mut n, key_en);

        // Rotation wiring and muxes from the register outputs.
        let c_rot1 = c_q.rotl(1);
        let c_rot2 = c_q.rotl(2);
        let d_rot1 = d_q.rotl(1);
        let d_rot2 = d_q.rotl(2);
        let c_rot = MaskedWire::mux(&mut n, ctl.shift2, &c_rot1, &c_rot2);
        let d_rot = MaskedWire::mux(&mut n, ctl.shift2, &d_rot1, &d_rot2);
        let c_next = MaskedWire::mux(&mut n, ctl.load_key, &c_rot, &pc1.slice(0, 28));
        let d_next = MaskedWire::mux(&mut n, ctl.load_key, &d_rot, &pc1.slice(28, 28));

        // Phase 2: patch the DFF d-pins.
        patch_dff_inputs(&mut n, &c_q, &c_next);
        patch_dff_inputs(&mut n, &d_q, &d_next);

        // Round key = PC2 over the *post-rotation* halves, so the S-box
        // input register capturing on the same edge sees this round's key.
        let cd_rot = c_rot.concat(&d_rot);
        rk = cd_rot.permute(&PC2);
        c_regs = c_q;
        d_regs = d_q;
    }
    let _ = (&c_regs, &d_regs);
    n.exit_module();

    // ---- state registers ----------------------------------------------
    n.enter_module("state");
    let zero = n.const0();
    let state_en_any = n.or2(ctl.load, ctl.state_en);
    let l_q = MaskedWire {
        s0: (0..32).map(|_| n.dff_en(zero, state_en_any)).collect(),
        s1: (0..32).map(|_| n.dff_en(zero, state_en_any)).collect(),
    };
    let r_q = MaskedWire {
        s0: (0..32).map(|_| n.dff_en(zero, state_en_any)).collect(),
        s1: (0..32).map(|_| n.dff_en(zero, state_en_any)).collect(),
    };
    n.exit_module();

    // ---- round function -------------------------------------------------
    // S-box input register (two-phase: patched once the Feistel feedback
    // exists — the PD core feeds it from the *next* state, Fig. 9b).
    n.enter_module("round");
    let ir = MaskedWire {
        s0: (0..48).map(|_| n.dff_en(zero, ctl.ir_en)).collect(),
        s1: (0..48).map(|_| n.dff_en(zero, ctl.ir_en)).collect(),
    };

    let mut sout = MaskedWire { s0: Vec::new(), s1: Vec::new() };
    let mut coupled_pairs = Vec::new();
    for s in 0..8 {
        let six = ir.slice(6 * s, 6);
        let out = match style {
            SboxStyle::Ff => {
                let sc = SboxFfControls {
                    and1_en: ctl.and1_en,
                    and2_en: ctl.and2_en,
                    sel_en: ctl.sel_en,
                    mux2_en: ctl.mux2_en,
                };
                build_sbox_ff(&mut n, s, &six, &masks, &sc)
            }
            SboxStyle::Pd { unit_luts } => {
                let (out, art) = build_sbox_pd(&mut n, s, &six, &masks, ctl.mid_en, unit_luts);
                coupled_pairs.extend(art.coupled_pairs);
                out
            }
        };
        sout = sout.concat(&out);
    }

    // FF core: a registered S-box output (Fig. 8b); PD core wires
    // through (Fig. 9b removes it).
    let sout = match style {
        SboxStyle::Ff => sout.register(&mut n, ctl.sout_en),
        SboxStyle::Pd { .. } => sout,
    };

    // Feistel combine.
    let f_out = sout.permute(&P);
    let new_r = l_q.xor(&mut n, &f_out);

    // State register next-value muxes: load chooses IP halves.
    let ip = pt.permute(&IP);
    let l_next = MaskedWire::mux(&mut n, ctl.load, &r_q, &ip.slice(0, 32));
    let r_next = MaskedWire::mux(&mut n, ctl.load, &new_r, &ip.slice(32, 32));
    patch_dff_inputs(&mut n, &l_q, &l_next);
    patch_dff_inputs(&mut n, &r_q, &r_next);

    // S-box input register source: the FF core reads the state register
    // (Fig. 8b); the PD core taps the next-state value so the state
    // update and the IR capture share one edge (Fig. 9b).
    let ir_src = match style {
        SboxStyle::Ff => &r_q,
        SboxStyle::Pd { .. } => &r_next,
    };
    let mixed = ir_src.permute(&E).xor(&mut n, &rk);
    patch_dff_inputs(&mut n, &ir, &mixed);
    n.exit_module();

    // Ciphertext = FP over (R16 ++ L16).
    let preoutput = r_q.concat(&l_q);
    let ct = preoutput.permute(&FP);
    for (i, (&c0, &c1)) in ct.s0.iter().zip(&ct.s1).enumerate() {
        n.output(format!("ct_s0_{i}"), c0);
        n.output(format!("ct_s1_{i}"), c1);
    }

    n.validate().expect("generated core must validate");
    DesCoreNetlist { netlist: n, pt, key, masks, ctl, ct, style, coupled_pairs }
}

/// Re-point the `d` pins of register buses created with placeholder
/// inputs (two-phase feedback construction).
fn patch_dff_inputs(n: &mut Netlist, regs: &MaskedWire, next: &MaskedWire) {
    for (q, d) in regs.s0.iter().zip(&next.s0).chain(regs.s1.iter().zip(&next.s1)) {
        let gm_netlist::netlist::Driver::Gate(g) = n.driver(*q) else {
            panic!("register output must be gate-driven")
        };
        n.set_gate_input(g, 0, *d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ff_core_builds_and_validates() {
        let core = build_des_core(SboxStyle::Ff);
        assert!(core.netlist.num_gates() > 3_000, "gates: {}", core.netlist.num_gates());
        assert!(core.coupled_pairs.is_empty());
        assert_eq!(core.ct.width(), 64);
    }

    #[test]
    fn pd_core_builds_with_delays() {
        let core = build_des_core(SboxStyle::Pd { unit_luts: 2 });
        let delays = core
            .netlist
            .gates()
            .iter()
            .filter(|g| g.kind == gm_netlist::GateKind::DelayBuf)
            .count();
        assert!(delays > 500, "delay elements: {delays}");
        assert_eq!(core.coupled_pairs.len(), 8 * 10);
    }

    #[test]
    fn ff_core_register_budget() {
        let core = build_des_core(SboxStyle::Ff);
        let ffs = core.netlist.gates().iter().filter(|g| g.kind.is_sequential()).count();
        // 112 key + 128 state + 96 IR + 64 sout + 8×38 sbox = 704.
        assert_eq!(ffs, 112 + 128 + 96 + 64 + 8 * 38);
    }
}
