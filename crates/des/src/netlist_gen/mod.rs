//! Gate-level netlist generators for the two masked DES cores.
//!
//! These are the circuits the paper synthesises: the area/timing numbers
//! of Table III come from `gm-netlist`'s reports over these netlists, and
//! the gate-level leakage experiments run them through `gm-sim`'s event
//! engine, where glitches arise from timing alone.
//!
//! Conventions:
//!
//! * buses are [`MaskedWire`]s, MSB-first (index 0 = the spec's bit 1),
//!   so FIPS permutation tables apply as simple wire reorders — free in
//!   hardware and free here;
//! * the round FSM is *not* part of the netlist: control signals are
//!   primary inputs pulsed by the [`driver`], mirroring how the paper's
//!   security argument covers the masked datapath while control is
//!   public;
//! * fresh randomness enters through 14 mask input nets shared by all
//!   eight S-boxes (the paper's recycling).

pub mod core;
pub mod driver;
pub mod sbox_ff;
pub mod sbox_pd;

pub use core::{build_des_core, CoreControls, DesCoreNetlist, SboxStyle};
pub use driver::{DesCoreDriver, DesDriverCore};

use gm_netlist::{NetId, Netlist};

/// A masked bus: one net per bit and share, MSB-first.
#[derive(Debug, Clone)]
pub struct MaskedWire {
    /// Share-0 nets.
    pub s0: Vec<NetId>,
    /// Share-1 nets.
    pub s1: Vec<NetId>,
}

impl MaskedWire {
    /// Width in bits.
    pub fn width(&self) -> usize {
        debug_assert_eq!(self.s0.len(), self.s1.len());
        self.s0.len()
    }

    /// Declare a fresh input bus `name_s<share>_<bit>`.
    pub fn inputs(n: &mut Netlist, name: &str, width: usize) -> Self {
        MaskedWire {
            s0: (0..width).map(|i| n.input(format!("{name}_s0_{i}"))).collect(),
            s1: (0..width).map(|i| n.input(format!("{name}_s1_{i}"))).collect(),
        }
    }

    /// Apply a FIPS-style permutation table (1-based from MSB): pure
    /// wiring, no gates.
    pub fn permute(&self, table: &[u8]) -> Self {
        MaskedWire {
            s0: table.iter().map(|&p| self.s0[p as usize - 1]).collect(),
            s1: table.iter().map(|&p| self.s1[p as usize - 1]).collect(),
        }
    }

    /// Share-wise XOR with another bus of the same width.
    pub fn xor(&self, n: &mut Netlist, other: &MaskedWire) -> Self {
        assert_eq!(self.width(), other.width(), "bus width mismatch");
        MaskedWire {
            s0: self.s0.iter().zip(&other.s0).map(|(&a, &b)| n.xor2(a, b)).collect(),
            s1: self.s1.iter().zip(&other.s1).map(|(&a, &b)| n.xor2(a, b)).collect(),
        }
    }

    /// Register every bit behind `enable`.
    pub fn register(&self, n: &mut Netlist, enable: NetId) -> Self {
        MaskedWire {
            s0: self.s0.iter().map(|&d| n.dff_en(d, enable)).collect(),
            s1: self.s1.iter().map(|&d| n.dff_en(d, enable)).collect(),
        }
    }

    /// 2:1 mux per bit: `sel ? b : a`.
    pub fn mux(n: &mut Netlist, sel: NetId, a: &MaskedWire, b: &MaskedWire) -> Self {
        assert_eq!(a.width(), b.width(), "bus width mismatch");
        MaskedWire {
            s0: a.s0.iter().zip(&b.s0).map(|(&x, &y)| n.mux2(sel, x, y)).collect(),
            s1: a.s1.iter().zip(&b.s1).map(|(&x, &y)| n.mux2(sel, x, y)).collect(),
        }
    }

    /// Concatenate (self MSBs first).
    pub fn concat(&self, other: &MaskedWire) -> Self {
        let mut s0 = self.s0.clone();
        let mut s1 = self.s1.clone();
        s0.extend(&other.s0);
        s1.extend(&other.s1);
        MaskedWire { s0, s1 }
    }

    /// The sub-bus `[from, from + len)`.
    pub fn slice(&self, from: usize, len: usize) -> Self {
        MaskedWire {
            s0: self.s0[from..from + len].to_vec(),
            s1: self.s1[from..from + len].to_vec(),
        }
    }

    /// One bit as a share pair.
    pub fn bit(&self, i: usize) -> (NetId, NetId) {
        (self.s0[i], self.s1[i])
    }

    /// Rotate the bus left by `by` positions (wiring only).
    pub fn rotl(&self, by: usize) -> Self {
        let w = self.width();
        let rot = |v: &Vec<NetId>| -> Vec<NetId> { (0..w).map(|i| v[(i + by) % w]).collect() };
        MaskedWire { s0: rot(&self.s0), s1: rot(&self.s1) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_netlist::Evaluator;

    #[test]
    fn permute_is_wiring_only() {
        let mut n = Netlist::new("t");
        let w = MaskedWire::inputs(&mut n, "a", 4);
        let p = w.permute(&[4, 3, 2, 1]);
        assert_eq!(n.num_gates(), 0);
        assert_eq!(p.s0[0], w.s0[3]);
        assert_eq!(p.s1[3], w.s1[0]);
    }

    #[test]
    fn rotl_matches_value_rotation() {
        let mut n = Netlist::new("t");
        let w = MaskedWire::inputs(&mut n, "a", 4);
        // MSB-first bus: rotl(1) moves bit 1 into MSB position.
        let r = w.rotl(1);
        assert_eq!(r.s0[0], w.s0[1]);
        assert_eq!(r.s0[3], w.s0[0]);
    }

    #[test]
    fn xor_and_register_behave() {
        let mut n = Netlist::new("t");
        let a = MaskedWire::inputs(&mut n, "a", 2);
        let b = MaskedWire::inputs(&mut n, "b", 2);
        let x = a.xor(&mut n, &b);
        let en = n.input("en");
        let q = x.register(&mut n, en);
        for (i, &net) in q.s0.iter().chain(&q.s1).enumerate() {
            n.output(format!("q{i}"), net);
        }
        n.validate().unwrap();
        let mut ev = Evaluator::new(&n).unwrap();
        ev.set_input(a.s0[0], true);
        ev.set_input(b.s0[0], false);
        ev.set_input(en, true);
        ev.clock(&n);
        assert!(ev.value(q.s0[0]));
        assert!(!ev.value(q.s0[1]));
    }
}
